// Package eblow is an open-source reproduction of "E-BLOW: E-Beam Lithography
// Overlapping aware Stencil Planning for MCC System" (Yu, Yuan, Gao, Pan;
// DAC 2013). It plans the stencil of a character-projection e-beam
// lithography system: given character candidates with per-region repeat
// counts and VSB shot counts, it selects a subset and places it on the
// stencil (sharing blank margins between neighbours) so that the maximum
// per-region writing time of the multi-column-cell system is minimized.
//
// The package is a facade over the internal implementation, organised
// around one unified solver API:
//
//   - Solver is the single interface every planning strategy implements;
//     Params configures any of them and Result is the uniform outcome.
//   - Lookup / Solvers / SolverInfos expose the strategy registry: "eblow"
//     (the paper's 1D and 2D planners), the prior-work baselines "greedy",
//     "heuristic24", "row25" and "sa24", the exact ILP "exact", and
//     "portfolio" (a race of the others under one deadline).
//   - SolveWith runs one strategy, or races several, from one entry point;
//     Solve is the zero-configuration shorthand.
//   - Benchmark / SmallInstance generate the paper's synthetic instances;
//     ReadInstance / WriteInstance / DecodeInstance / EncodeInstance move
//     instances as JSON.
//
// The older per-strategy functions (Solve1D, Greedy1D, Exact1D, ...) remain
// as thin deprecated wrappers over the unified API.
package eblow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/gen"
	"eblow/internal/learn"
	"eblow/internal/oned"
	"eblow/internal/portfolio"
	"eblow/internal/solver"
	"eblow/internal/twod"
)

// Re-exported model types. See the internal/core package for full
// documentation of every field.
type (
	// Instance is a complete OSP problem instance.
	Instance = core.Instance
	// Character is one character candidate.
	Character = core.Character
	// Solution is a stencil plan (selection plus placement).
	Solution = core.Solution
	// Placement locates one character on the stencil.
	Placement = core.Placement
	// Row is one stencil row of a 1D solution.
	Row = core.Row
	// Kind distinguishes 1DOSP from 2DOSP instances.
	Kind = core.Kind
)

// Problem kinds.
const (
	OneD = core.OneD
	TwoD = core.TwoD
)

// Options1D configures the E-BLOW 1D planner; the zero value uses the
// paper's parameters. Set Params.Options1D to pass it through the unified
// API.
type Options1D = oned.Options

// Options2D configures the E-BLOW 2D planner; the zero value uses the
// paper's parameters. Set Params.Options2D to pass it through the unified
// API.
type Options2D = twod.Options

// RowGroup pins a band of stencil rows to a set of wafer regions — the
// stencil band of one MCC column cell. Set Options1D.RowGroups (or generate
// the instance with bands attached: Instance.RowGroups, cmd/ospgen -bands)
// to make the 1D planner treat the stencil as per-column-cell bands; the LP
// relaxation then decomposes into independent blocks solved in parallel.
type RowGroup = oned.RowGroup

// CellBands derives the per-column-cell stencil banding of a 1DOSP
// instance: one row band per wafer region, stencil rows dealt round-robin.
// Assign the result to Instance.RowGroups (or pass it as
// Options1D.RowGroups) to run the planner in banded MCC mode; it returns
// nil when the instance cannot be banded (2DOSP, fewer than two regions, or
// fewer rows than regions).
func CellBands(in *Instance) []RowGroup { return gen.CellBands(in) }

// Trace1D exposes the successive-rounding iteration trace (Figs. 5 and 6 of
// the paper); Result.Trace carries it when Params.CollectTrace is set.
type Trace1D = oned.Trace

// ClusterStats reports what the 2D clustering stage did (Result.Stats).
type ClusterStats = twod.Stats

// ExactResult is the outcome of an exact ILP solve (Result.Exact).
type ExactResult = exact.Result

// Defaults1D returns the paper's parameter settings for the 1D planner.
func Defaults1D() Options1D { return oned.Defaults() }

// Defaults2D returns the paper's parameter settings for the 2D planner.
func Defaults2D() Options2D { return twod.Defaults() }

// PortfolioOptions configures SolvePortfolio; the zero value races every
// applicable strategy with one worker per CPU and no deadline.
type PortfolioOptions = portfolio.Options

// PortfolioResult is the outcome of a portfolio race: the best feasible
// plan, the winning strategy, and every entrant's run record.
type PortfolioResult = portfolio.Result

// PortfolioRun is one strategy's outcome inside a portfolio race.
type PortfolioRun = portfolio.Run

// Learned portfolio scheduling. A LearnStore accumulates, per instance
// shape (LearnShape), which strategy wins portfolio races of that shape;
// the portfolio consults it to reorder the race by win rate, prune heavy
// entrants that never win the shape, and rebalance its worker split — with
// a cold store reproducing the static registry order bit-for-bit. Opt in
// via Params.Learn/LearnPath (the race opens, records and saves the store
// itself) or Params.LearnStore (an already-open store shared across solves,
// persisted by its owner; cmd/eblowd holds one per server).
type (
	// LearnStore is the persistent shape-conditioned outcome store
	// (JSON on disk, atomic rewrite, merge-on-load).
	LearnStore = learn.Store
	// LearnShape is an instance fingerprint: coarse buckets for kind,
	// region count, character count, VSB pressure and stencil pressure.
	LearnShape = learn.Shape
	// LearnPlan is a scheduled race: entrant order, pruned entrants and
	// heavy-pool weights (Result.Plan reports the one actually used).
	LearnPlan = learn.Plan
	// LearnShapeStats aggregates every strategy's record on one shape.
	LearnShapeStats = learn.ShapeStats
	// LearnStrategyStats is one strategy's record on one shape.
	LearnStrategyStats = learn.StrategyStats
)

// DefaultLearnPath is the store file used when Params.Learn is set without
// a Params.LearnPath.
const DefaultLearnPath = learn.DefaultPath

// OpenLearn opens (or, on first save, creates) the learned-scheduling
// statistics store at path.
func OpenLearn(path string) (*LearnStore, error) { return learn.Open(path) }

// NewLearnStore returns an empty in-memory store with no backing file,
// useful for learning within one process without persistence.
func NewLearnStore() *LearnStore { return learn.NewStore() }

// Fingerprint buckets the instance into the shape the learned portfolio
// conditions its statistics on.
func Fingerprint(in *Instance) LearnShape { return learn.Fingerprint(in) }

// PlanRace returns the race plan the learned portfolio would use for the
// instance under the store's current statistics, without running anything:
// the default racing entrants for the instance's kind, reordered and pruned
// by the recorded win rates (or the static order when the store is cold for
// the instance's shape).
func PlanRace(store *LearnStore, in *Instance) *LearnPlan {
	entries := solver.Racing(in.Kind)
	ents := make([]learn.Entrant, len(entries))
	for i, e := range entries {
		ents[i] = e.LearnEntrant()
	}
	return store.Plan(learn.Fingerprint(in), ents, learn.PlanConfig{})
}

// Solve plans the stencil of the instance with the E-BLOW planner for its
// kind under the default parameters. It is shorthand for SolveWith with a
// zero Params.
func Solve(ctx context.Context, in *Instance) (*Solution, error) {
	r, err := SolveWith(ctx, in, Params{})
	if err != nil {
		return nil, err
	}
	return r.Solution, nil
}

// Solve1D plans the stencil of a 1DOSP instance with E-BLOW. The context
// cancels the run: an already-done context returns ctx.Err() immediately
// and a deadline stops the planner at its next checkpoint. The solution is
// deterministic for fixed options regardless of opt.Workers.
//
// Deprecated: use SolveWith (or Lookup("eblow")) with Params.Options1D; the
// trace is returned in Result.Trace.
func Solve1D(ctx context.Context, in *Instance, opt Options1D) (*Solution, *Trace1D, error) {
	if in.Kind != OneD {
		return nil, nil, fmt.Errorf("eblow: instance %q is not a 1DOSP instance", in.Name)
	}
	r, err := SolveWith(ctx, in, Params{Options1D: &opt})
	if err != nil {
		return nil, nil, err
	}
	return r.Solution, r.Trace, nil
}

// Solve2D plans the stencil of a 2DOSP instance with E-BLOW; cancellation
// and determinism follow the same contract as Solve1D.
//
// Deprecated: use SolveWith (or Lookup("eblow")) with Params.Options2D; the
// clustering stats are returned in Result.Stats.
func Solve2D(ctx context.Context, in *Instance, opt Options2D) (*Solution, *ClusterStats, error) {
	if in.Kind != TwoD {
		return nil, nil, fmt.Errorf("eblow: instance %q is not a 2DOSP instance", in.Name)
	}
	r, err := SolveWith(ctx, in, Params{Options2D: &opt})
	if err != nil {
		return nil, nil, err
	}
	return r.Solution, r.Stats, nil
}

// SolvePortfolio races E-BLOW against the prior-work baselines under one
// shared deadline (ctx plus opt.Timeout) and returns the best feasible plan
// any strategy found. Cheap heuristics guarantee an incumbent even when the
// deadline cuts the heavier planners off; with room to spare the best
// overall plan wins. The result is deterministic for a fixed seed
// regardless of opt.Workers as long as no deadline truncates an entrant
// mid-run.
//
// Deprecated: use SolveWith with several Params.Strategies (or
// Lookup("portfolio")); the per-entrant records are returned in Result.Runs.
func SolvePortfolio(ctx context.Context, in *Instance, opt PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Solve(ctx, in, opt)
}

// PortfolioStrategies lists the strategies SolvePortfolio races for the
// given instance kind, in race order.
//
// Deprecated: use Solvers or SolverInfos; the racing entries are the ones
// whose SolverInfo.Racing is set.
func PortfolioStrategies(kind Kind) []string { return portfolio.Names(kind) }

// Exact1D solves formulation (3) of the paper exactly with branch and
// bound. The context cancels the search; the time limit bounds it even
// without a context deadline.
//
// Deprecated: use Lookup("exact") with Params.Deadline as the time limit and
// Params.Workers for the parallel branch and bound; the details are returned
// in Result.Exact.
func Exact1D(ctx context.Context, in *Instance, timeLimit time.Duration) (*ExactResult, error) {
	return exact.Solve1D(ctx, in, exact.Options{TimeLimit: timeLimit})
}

// Exact2D solves formulation (7) of the paper exactly with branch and bound.
//
// Deprecated: use Lookup("exact") with Params.Deadline as the time limit and
// Params.Workers for the parallel branch and bound; the details are returned
// in Result.Exact.
func Exact2D(ctx context.Context, in *Instance, timeLimit time.Duration) (*ExactResult, error) {
	return exact.Solve2D(ctx, in, exact.Options{TimeLimit: timeLimit})
}

// Greedy1D is the greedy 1D baseline of the paper's Table 3.
//
// Deprecated: use Lookup("greedy") or SolveWith with Params.Strategies
// {"greedy"}.
func Greedy1D(in *Instance) (*Solution, error) {
	if in.Kind != OneD {
		return nil, fmt.Errorf("eblow: instance %q is not a 1DOSP instance", in.Name)
	}
	return solutionOf(solver.Solve(context.Background(), "greedy", in, Params{}))
}

// Heuristic1D is the prior-work two-step 1D heuristic ([24] in the paper).
//
// Deprecated: use Lookup("heuristic24") with Params.Seed.
func Heuristic1D(ctx context.Context, in *Instance, seed int64) (*Solution, error) {
	return solutionOf(solver.Solve(ctx, "heuristic24", in, Params{Seed: seed}))
}

// RowHeuristic1D is the deterministic row-structure 1D heuristic ([25] in
// the paper).
//
// Deprecated: use Lookup("row25").
func RowHeuristic1D(in *Instance) (*Solution, error) {
	return solutionOf(solver.Solve(context.Background(), "row25", in, Params{}))
}

// Greedy2D is the greedy 2D baseline of the paper's Table 4.
//
// Deprecated: use Lookup("greedy") or SolveWith with Params.Strategies
// {"greedy"}.
func Greedy2D(in *Instance) (*Solution, error) {
	if in.Kind != TwoD {
		return nil, fmt.Errorf("eblow: instance %q is not a 2DOSP instance", in.Name)
	}
	return solutionOf(solver.Solve(context.Background(), "greedy", in, Params{}))
}

// AnnealedBaseline2D is the prior-work fixed-outline floorplanner ([24]).
//
// Deprecated: use Lookup("sa24") with Params.Seed and Params.Deadline.
func AnnealedBaseline2D(ctx context.Context, in *Instance, seed int64, timeLimit time.Duration) (*Solution, error) {
	return solutionOf(solver.Solve(ctx, "sa24", in, Params{Seed: seed, Deadline: timeLimit}))
}

// solutionOf projects a unified Result onto the legacy (*Solution, error)
// wrapper signatures.
func solutionOf(r *Result, err error) (*Solution, error) {
	if err != nil {
		return nil, err
	}
	return r.Solution, nil
}

// Benchmark returns the named synthetic benchmark instance ("1D-1" .. "1D-4",
// "1M-1" .. "1M-8", "2D-1" .. "2D-4", "2M-1" .. "2M-8", "1T-1" .. "1T-5",
// "2T-1" .. "2T-4").
func Benchmark(name string) (*Instance, error) { return gen.ByName(name) }

// BenchmarkNames lists every named benchmark in the order the paper reports
// them.
func BenchmarkNames() []string { return gen.AllNames() }

// SmallInstance generates a reduced-size instance with the same structure as
// the benchmark families; useful for quick starts and tests.
func SmallInstance(kind Kind, numChars, numRegions int, seed int64) *Instance {
	return gen.Small(kind, numChars, numRegions, seed)
}

// EncodeInstance writes an instance as indented JSON to w.
func EncodeInstance(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		return fmt.Errorf("eblow: encoding instance: %w", err)
	}
	return nil
}

// DecodeInstance reads an instance as JSON from r and validates it.
func DecodeInstance(r io.Reader) (*Instance, error) {
	in, err := decodeInstance(r)
	if err != nil {
		return nil, fmt.Errorf("eblow: %w", err)
	}
	return in, nil
}

// decodeInstance decodes and validates without the "eblow:" prefix, so both
// DecodeInstance and ReadInstance can add their own context exactly once.
func decodeInstance(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("invalid instance: %w", err)
	}
	return &in, nil
}

// WriteInstance saves an instance as JSON.
func WriteInstance(path string, in *Instance) error {
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("eblow: writing instance: %w", err)
	}
	return nil
}

// ReadInstance loads an instance from JSON and validates it.
func ReadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eblow: reading instance: %w", err)
	}
	defer f.Close()
	in, err := decodeInstance(f)
	if err != nil {
		return nil, fmt.Errorf("eblow: reading %s: %w", path, err)
	}
	return in, nil
}
