// Package eblow is an open-source reproduction of "E-BLOW: E-Beam Lithography
// Overlapping aware Stencil Planning for MCC System" (Yu, Yuan, Gao, Pan;
// DAC 2013). It plans the stencil of a character-projection e-beam
// lithography system: given character candidates with per-region repeat
// counts and VSB shot counts, it selects a subset and places it on the
// stencil (sharing blank margins between neighbours) so that the maximum
// per-region writing time of the multi-column-cell system is minimized.
//
// The package is a facade over the internal implementation:
//
//   - Solve1D runs the E-BLOW 1DOSP planner (successive LP rounding, fast ILP
//     convergence, DP row refinement, post-swap/insertion).
//   - Solve2D runs the E-BLOW 2DOSP planner (pre-filter, KD-tree clustering,
//     sequence-pair simulated annealing).
//   - SolvePortfolio races E-BLOW against the baselines on a worker pool
//     under one deadline and returns the best feasible plan found.
//   - Exact1D / Exact2D solve the full ILP formulations with branch and bound
//     (only sensible for tiny instances).
//   - Greedy1D, Heuristic1D, RowHeuristic1D, Greedy2D, AnnealedBaseline2D are
//     the prior-work baselines the paper compares against.
//   - Benchmark generates the named synthetic benchmark instances (1D-x,
//     1M-x, 2D-x, 2M-x, 1T-x, 2T-x) with the parameters published in the
//     paper.
package eblow

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"eblow/internal/baseline"
	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/gen"
	"eblow/internal/oned"
	"eblow/internal/portfolio"
	"eblow/internal/twod"
)

// Re-exported model types. See the internal/core package for full
// documentation of every field.
type (
	// Instance is a complete OSP problem instance.
	Instance = core.Instance
	// Character is one character candidate.
	Character = core.Character
	// Solution is a stencil plan (selection plus placement).
	Solution = core.Solution
	// Placement locates one character on the stencil.
	Placement = core.Placement
	// Row is one stencil row of a 1D solution.
	Row = core.Row
	// Kind distinguishes 1DOSP from 2DOSP instances.
	Kind = core.Kind
)

// Problem kinds.
const (
	OneD = core.OneD
	TwoD = core.TwoD
)

// Options1D configures the E-BLOW 1D planner; the zero value uses the
// paper's parameters.
type Options1D = oned.Options

// Options2D configures the E-BLOW 2D planner; the zero value uses the
// paper's parameters.
type Options2D = twod.Options

// Trace1D exposes the successive-rounding iteration trace (Figs. 5 and 6 of
// the paper).
type Trace1D = oned.Trace

// ClusterStats reports what the 2D clustering stage did.
type ClusterStats = twod.Stats

// ExactResult is the outcome of an exact ILP solve.
type ExactResult = exact.Result

// Defaults1D returns the paper's parameter settings for the 1D planner.
func Defaults1D() Options1D { return oned.Defaults() }

// Defaults2D returns the paper's parameter settings for the 2D planner.
func Defaults2D() Options2D { return twod.Defaults() }

// PortfolioOptions configures SolvePortfolio; the zero value races every
// applicable strategy with one worker per CPU and no deadline.
type PortfolioOptions = portfolio.Options

// PortfolioResult is the outcome of a portfolio race: the best feasible
// plan, the winning strategy, and every entrant's run record.
type PortfolioResult = portfolio.Result

// PortfolioRun is one strategy's outcome inside a portfolio race.
type PortfolioRun = portfolio.Run

// Solve1D plans the stencil of a 1DOSP instance with E-BLOW. The context
// cancels the run: an already-done context returns ctx.Err() immediately
// and a deadline stops the planner at its next checkpoint. The solution is
// deterministic for fixed options regardless of opt.Workers.
func Solve1D(ctx context.Context, in *Instance, opt Options1D) (*Solution, *Trace1D, error) {
	return oned.Solve(ctx, in, opt)
}

// Solve2D plans the stencil of a 2DOSP instance with E-BLOW; cancellation
// and determinism follow the same contract as Solve1D.
func Solve2D(ctx context.Context, in *Instance, opt Options2D) (*Solution, *ClusterStats, error) {
	return twod.Solve(ctx, in, opt)
}

// Solve dispatches to Solve1D or Solve2D based on the instance kind, using
// the default options.
func Solve(ctx context.Context, in *Instance) (*Solution, error) {
	switch in.Kind {
	case core.OneD:
		sol, _, err := Solve1D(ctx, in, Defaults1D())
		return sol, err
	case core.TwoD:
		sol, _, err := Solve2D(ctx, in, Defaults2D())
		return sol, err
	default:
		return nil, fmt.Errorf("eblow: unknown instance kind %v", in.Kind)
	}
}

// SolvePortfolio races E-BLOW against the prior-work baselines under one
// shared deadline (ctx plus opt.Timeout) and returns the best feasible plan
// any strategy found. Cheap heuristics guarantee an incumbent even when the
// deadline cuts the heavier planners off; with room to spare the best
// overall plan wins. The result is deterministic for a fixed seed
// regardless of opt.Workers as long as no deadline truncates an entrant
// mid-run.
func SolvePortfolio(ctx context.Context, in *Instance, opt PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Solve(ctx, in, opt)
}

// PortfolioStrategies lists the strategies SolvePortfolio races for the
// given instance kind, in race order.
func PortfolioStrategies(kind Kind) []string { return portfolio.Names(kind) }

// Exact1D solves formulation (3) of the paper exactly with branch and
// bound. The context cancels the search; the time limit bounds it even
// without a context deadline.
func Exact1D(ctx context.Context, in *Instance, timeLimit time.Duration) (*ExactResult, error) {
	return exact.Solve1D(ctx, in, timeLimit)
}

// Exact2D solves formulation (7) of the paper exactly with branch and bound.
func Exact2D(ctx context.Context, in *Instance, timeLimit time.Duration) (*ExactResult, error) {
	return exact.Solve2D(ctx, in, timeLimit)
}

// Greedy1D is the greedy 1D baseline of the paper's Table 3.
func Greedy1D(in *Instance) (*Solution, error) { return baseline.Greedy1D(in) }

// Heuristic1D is the prior-work two-step 1D heuristic ([24] in the paper).
func Heuristic1D(ctx context.Context, in *Instance, seed int64) (*Solution, error) {
	return baseline.Heuristic1D(ctx, in, baseline.Heuristic1DOptions{Seed: seed})
}

// RowHeuristic1D is the deterministic row-structure 1D heuristic ([25] in
// the paper).
func RowHeuristic1D(in *Instance) (*Solution, error) { return baseline.RowHeuristic1D(in) }

// Greedy2D is the greedy 2D baseline of the paper's Table 4.
func Greedy2D(in *Instance) (*Solution, error) { return baseline.Greedy2D(in) }

// AnnealedBaseline2D is the prior-work fixed-outline floorplanner ([24]).
func AnnealedBaseline2D(ctx context.Context, in *Instance, seed int64, timeLimit time.Duration) (*Solution, error) {
	return baseline.SA2D(ctx, in, baseline.SA2DOptions{Seed: seed, TimeLimit: timeLimit})
}

// Benchmark returns the named synthetic benchmark instance ("1D-1" .. "1D-4",
// "1M-1" .. "1M-8", "2D-1" .. "2D-4", "2M-1" .. "2M-8", "1T-1" .. "1T-5",
// "2T-1" .. "2T-4").
func Benchmark(name string) (*Instance, error) { return gen.ByName(name) }

// BenchmarkNames lists every named benchmark in the order the paper reports
// them.
func BenchmarkNames() []string { return gen.AllNames() }

// SmallInstance generates a reduced-size instance with the same structure as
// the benchmark families; useful for quick starts and tests.
func SmallInstance(kind Kind, numChars, numRegions int, seed int64) *Instance {
	return gen.Small(kind, numChars, numRegions, seed)
}

// WriteInstance saves an instance as JSON.
func WriteInstance(path string, in *Instance) error {
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return fmt.Errorf("eblow: encoding instance: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadInstance loads an instance from JSON and validates it.
func ReadInstance(path string) (*Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("eblow: decoding %s: %w", path, err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}
