package eblow

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

func TestSolveDispatch(t *testing.T) {
	in1 := SmallInstance(OneD, 50, 3, 1)
	sol, err := Solve(context.Background(), in1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in1); err != nil {
		t.Fatalf("1D solution invalid: %v", err)
	}

	in2 := SmallInstance(TwoD, 40, 2, 2)
	sol2, err := Solve(context.Background(), in2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol2.Validate(in2); err != nil {
		t.Fatalf("2D solution invalid: %v", err)
	}
}

func TestFacadeBaselinesAndExact(t *testing.T) {
	if testing.Short() {
		t.Skip("exact ILP solve is slow; run without -short")
	}
	in := SmallInstance(OneD, 40, 2, 3)
	if _, err := Greedy1D(in); err != nil {
		t.Error(err)
	}
	if _, err := Heuristic1D(context.Background(), in, 1); err != nil {
		t.Error(err)
	}
	if _, err := RowHeuristic1D(in); err != nil {
		t.Error(err)
	}
	in2 := SmallInstance(TwoD, 30, 2, 4)
	if _, err := Greedy2D(in2); err != nil {
		t.Error(err)
	}
	if _, err := AnnealedBaseline2D(context.Background(), in2, 1, 2*time.Second); err != nil {
		t.Error(err)
	}

	tiny, err := Benchmark("1T-1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact1D(context.Background(), tiny, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil && res.Status.String() == "" {
		t.Error("exact result carries no information")
	}
}

func TestBenchmarkNamesResolve(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 33 {
		t.Fatalf("expected 33 named benchmarks, got %d", len(names))
	}
	for _, name := range names[:4] {
		if _, err := Benchmark(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Benchmark("bogus-1"); err == nil {
		t.Error("bogus benchmark accepted")
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	in := SmallInstance(OneD, 20, 2, 5)
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := WriteInstance(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != in.Name || back.NumCharacters() != in.NumCharacters() || back.Kind != in.Kind {
		t.Error("round trip lost data")
	}
	if _, err := ReadInstance(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDefaultsExposed(t *testing.T) {
	if Defaults1D().Thinv != 0.9 {
		t.Error("1D defaults not exposed")
	}
	if Defaults2D().SimilarityBound != 0.2 {
		t.Error("2D defaults not exposed")
	}
}
