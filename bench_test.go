package eblow

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark iteration regenerates the corresponding
// table/figure on the synthetic benchmark suite and reports it through b.Log,
// so `go test -bench . -benchmem` reproduces the full evaluation.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"eblow/internal/oned"
	"eblow/internal/report"
	"eblow/internal/twod"
)

// benchConfig keeps the full evaluation affordable on a laptop: the prior
// work annealer and the exact ILP get fixed per-case budgets (the paper used
// an hour per ILP; only the shape "which cases finish" matters).
func benchConfig() report.Config {
	return report.Config{
		Seed:             1,
		SATimeLimit:      8 * time.Second,
		EBlow2DTimeLimit: 5 * time.Second,
		ExactTimeLimit:   10 * time.Second,
	}
}

// BenchmarkTable3 regenerates Table 3: 1DOSP writing time, character count
// and runtime for Greedy, [24], [25] and E-BLOW on 1D-1..4 and 1M-1..8.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table3(context.Background(), report.Table3Cases(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatRows("Table 3 (1DOSP)", rows))
	}
}

// BenchmarkTable4 regenerates Table 4: 2DOSP writing time, character count
// and runtime for Greedy, [24] and E-BLOW on 2D-1..4 and 2M-1..8.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table4(context.Background(), report.Table4Cases(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatRows("Table 4 (2DOSP)", rows))
	}
}

// BenchmarkTable5 regenerates Table 5: exact ILP formulations (3)/(7) versus
// E-BLOW on the tiny 1T/2T cases.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table5(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatRows("Table 5 (ILP vs E-BLOW)", rows))
	}
}

// BenchmarkFig5 regenerates Fig. 5: unsolved characters per LP rounding
// iteration on 1M-1..4.
func BenchmarkFig5(b *testing.B) {
	cases := []string{"1M-1", "1M-2", "1M-3", "1M-4"}
	for i := 0; i < b.N; i++ {
		data, err := report.Fig5(context.Background(), cases, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatFig5(data))
	}
}

// BenchmarkFig6 regenerates Fig. 6: histogram of LP values in the last
// rounding iteration of 1M-1.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hist, err := report.Fig6(context.Background(), "1M-1", benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatFig6("1M-1", hist))
	}
}

// BenchmarkFig11And12 regenerates Figs. 11 and 12: writing time and runtime
// of E-BLOW-0 versus E-BLOW-1 on the 1D/1M cases.
func BenchmarkFig11And12(b *testing.B) {
	cases := report.Table3Cases()
	for i := 0; i < b.N; i++ {
		rows, err := report.Ablation(context.Background(), cases, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + report.FormatAblation(rows))
	}
}

// --- Ablation benches for the design choices listed in DESIGN.md. ---

// BenchmarkAblationThinv varies the successive-rounding threshold.
func BenchmarkAblationThinv(b *testing.B) {
	in, err := Benchmark("1M-2")
	if err != nil {
		b.Fatal(err)
	}
	for _, thinv := range []float64{0.5, 0.7, 0.9, 0.99} {
		b.Run(formatFloat("thinv", thinv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := oned.Defaults()
				opt.Thinv = thinv
				sol, _, err := oned.Solve(context.Background(), in, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.WritingTime), "writingTime")
			}
		})
	}
}

// BenchmarkAblationConvergence compares E-BLOW with and without the fast ILP
// convergence step.
func BenchmarkAblationConvergence(b *testing.B) {
	in, err := Benchmark("1M-3")
	if err != nil {
		b.Fatal(err)
	}
	for _, enabled := range []bool{false, true} {
		name := "without-fast-ilp"
		if enabled {
			name = "with-fast-ilp"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := oned.Defaults()
				opt.EnableFastConvergence = enabled
				sol, _, err := oned.Solve(context.Background(), in, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.WritingTime), "writingTime")
			}
		})
	}
}

// BenchmarkAblationPrune varies the refinement pruning threshold.
func BenchmarkAblationPrune(b *testing.B) {
	in, err := Benchmark("1D-3")
	if err != nil {
		b.Fatal(err)
	}
	for _, prune := range []int{1, 5, 20, 100} {
		b.Run(formatInt("prune", prune), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := oned.Defaults()
				opt.PruneThreshold = prune
				sol, _, err := oned.Solve(context.Background(), in, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.WritingTime), "writingTime")
			}
		})
	}
}

// BenchmarkAblationClusterBound varies the 2D clustering similarity bound.
func BenchmarkAblationClusterBound(b *testing.B) {
	in, err := Benchmark("2M-2")
	if err != nil {
		b.Fatal(err)
	}
	for _, bound := range []float64{0.05, 0.2, 0.5} {
		b.Run(formatFloat("bound", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := twod.Defaults()
				opt.SimilarityBound = bound
				opt.TimeLimit = 5 * time.Second
				sol, stats, err := twod.Solve(context.Background(), in, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.WritingTime), "writingTime")
				b.ReportMetric(float64(stats.Clusters), "clusters")
			}
		})
	}
}

// BenchmarkAblationLPBackend compares the structured knapsack relaxation with
// the dense simplex on a small instance where both are affordable.
func BenchmarkAblationLPBackend(b *testing.B) {
	in := SmallInstance(OneD, 120, 4, 7)
	for _, backend := range []oned.LPBackend{oned.StructuredLP, oned.SimplexLP} {
		b.Run(backend.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := oned.Defaults()
				opt.Backend = backend
				sol, _, err := oned.Solve(context.Background(), in, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sol.WritingTime), "writingTime")
			}
		})
	}
}

// BenchmarkEBlow1DLarge measures a single E-BLOW 1D solve on the largest MCC
// case (useful for profiling the planner itself).
func BenchmarkEBlow1DLarge(b *testing.B) {
	in, err := Benchmark("1M-8")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve1D(context.Background(), in, Defaults1D()); err != nil {
			b.Fatal(err)
		}
	}
}

func formatFloat(prefix string, v float64) string { return fmt.Sprintf("%s=%g", prefix, v) }
func formatInt(prefix string, v int) string       { return fmt.Sprintf("%s=%d", prefix, v) }
