// MCC 1D stencil planning: run the full benchmark case 1M-2 (1000 standard
// cell characters, 10 character projections) and compare E-BLOW against the
// prior-work baselines, showing how the MCC objective (the slowest region)
// differs from simply maximizing the total shot-count reduction.
package main

import (
	"context"
	"fmt"
	"log"

	"eblow"
)

func main() {
	in, err := eblow.Benchmark("1M-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d candidates, %d regions, stencil %dx%d um\n\n",
		in.Name, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)

	type entry struct {
		name string
		sol  *eblow.Solution
	}
	var results []entry

	greedy, err := eblow.Greedy1D(in)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, entry{"Greedy", greedy})

	heur, err := eblow.Heuristic1D(context.Background(), in, 1)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, entry{"Heuristic [24]", heur})

	row25, err := eblow.RowHeuristic1D(in)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, entry{"Row heuristic [25]", row25})

	eblowSol, _, err := eblow.Solve1D(context.Background(), in, eblow.Defaults1D())
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, entry{"E-BLOW", eblowSol})

	fmt.Printf("%-20s %12s %8s %10s   %s\n", "planner", "writing time", "chars", "runtime", "slowest/fastest region")
	for _, e := range results {
		if err := e.sol.Validate(in); err != nil {
			log.Fatalf("%s produced an invalid plan: %v", e.name, err)
		}
		slowest, fastest := e.sol.RegionTimes[0], e.sol.RegionTimes[0]
		for _, t := range e.sol.RegionTimes {
			if t > slowest {
				slowest = t
			}
			if t < fastest {
				fastest = t
			}
		}
		fmt.Printf("%-20s %12d %8d %10s   %d / %d\n",
			e.name, e.sol.WritingTime, e.sol.NumSelected(), e.sol.Runtime.Round(1e6), slowest, fastest)
	}
	fmt.Println("\nThe MCC writing time is the slowest region: balancing the regions is what")
	fmt.Println("separates E-BLOW from planners that only maximize the total reduction.")
}
