// Exact ILP vs E-BLOW: on a tiny single-row instance the full ILP
// formulation (3) can be solved to optimality with the built-in branch and
// bound; this example measures the optimality gap of the E-BLOW heuristic
// and shows how quickly the exact approach becomes hopeless as the candidate
// count grows (the point of Table 5 in the paper).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"eblow"
)

func main() {
	for _, name := range []string{"1T-1", "1T-2", "1T-3"} {
		in, err := eblow.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}

		exact, err := eblow.Exact1D(context.Background(), in, 20*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		heur, _, err := eblow.Solve1D(context.Background(), in, eblow.Defaults1D())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s: %d candidates, %d binary variables in formulation (3)\n",
			name, in.NumCharacters(), exact.BinaryVariables)
		if exact.Solution != nil {
			status := "optimal"
			if !exact.Optimal {
				status = "feasible (time limit hit)"
			}
			gap := float64(heur.WritingTime-exact.Solution.WritingTime) / float64(exact.Solution.WritingTime) * 100
			fmt.Printf("  ILP   : T=%6d  %-26s nodes=%-6d %s\n",
				exact.Solution.WritingTime, status, exact.Nodes, exact.Elapsed.Round(time.Millisecond))
			fmt.Printf("  E-BLOW: T=%6d  gap to ILP %.1f%%          %s\n",
				heur.WritingTime, gap, heur.Runtime.Round(time.Millisecond))
		} else {
			fmt.Printf("  ILP   : no solution within the time limit (status %s)\n", exact.Status)
			fmt.Printf("  E-BLOW: T=%6d in %s\n", heur.WritingTime, heur.Runtime.Round(time.Millisecond))
		}
		fmt.Println()
	}
}
