// 2D stencil planning: plan a stencil holding complex via/wire characters
// whose blank margins differ in both directions (the 2DOSP problem), using
// the KD-tree clustering + simulated annealing flow of E-BLOW, and print the
// resulting placement.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"eblow"
)

func main() {
	// A via-layer style instance: 300 candidate characters with non-uniform
	// blanks, two wafer regions.
	in := eblow.SmallInstance(eblow.TwoD, 300, 2, 7)
	in.Name = "via-layer-demo"

	opt := eblow.Defaults2D()
	opt.Seed = 7
	opt.TimeLimit = 5 * time.Second

	sol, stats, err := eblow.Solve2D(context.Background(), in, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		log.Fatalf("planner produced an invalid stencil: %v", err)
	}

	fmt.Printf("candidates            : %d\n", stats.Candidates)
	fmt.Printf("after profit pre-filter: %d\n", stats.AfterFilter)
	fmt.Printf("clustered blocks       : %d (%d characters absorbed)\n", stats.Clusters, stats.ClusteredAway)
	fmt.Printf("characters on stencil  : %d\n", sol.NumSelected())
	fmt.Printf("writing time           : %d\n", sol.WritingTime)
	fmt.Printf("planner runtime        : %s\n\n", sol.Runtime)

	greedy, err := eblow.Greedy2D(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy baseline        : writing time %d with %d characters\n\n", greedy.WritingTime, greedy.NumSelected())

	fmt.Println("first placements (character, x, y, size):")
	for i, p := range sol.Placements {
		if i >= 8 {
			break
		}
		c := in.Characters[p.Char]
		fmt.Printf("  char %4d at (%4d,%4d)  %dx%d, blanks l%d r%d t%d b%d\n",
			p.Char, p.X, p.Y, c.Width, c.Height, c.BlankLeft, c.BlankRight, c.BlankTop, c.BlankBottom)
	}
}
