// Quickstart: generate a small 1DOSP instance, plan its stencil through the
// unified solver API and print what ended up on the stencil.
package main

import (
	"context"
	"fmt"
	"log"

	"eblow"
)

func main() {
	// A small MCC system: 120 character candidates, 4 character projections
	// sharing one stencil.
	in := eblow.SmallInstance(eblow.OneD, 120, 4, 42)

	// The zero Params run the E-BLOW planner for the instance kind with
	// the paper's parameters; CollectTrace additionally records the
	// successive-rounding iterations in res.Trace.
	res, err := eblow.SolveWith(context.Background(), in, eblow.Params{CollectTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatalf("planner produced an invalid stencil")
	}
	sol := res.Solution

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("strategy          : %s\n", res.Strategy)
	fmt.Printf("candidates        : %d\n", in.NumCharacters())
	fmt.Printf("on stencil        : %d\n", sol.NumSelected())
	fmt.Printf("writing time      : %d (pure VSB would be %d)\n", res.Objective, vsbOnly)
	fmt.Printf("per-region times  : %v\n", sol.RegionTimes)
	if res.Trace != nil {
		fmt.Printf("rounding iterations: %d\n", len(res.Trace.UnsolvedPerIteration))
	}
	fmt.Printf("planner runtime   : %s\n", res.Elapsed)

	// Show the first stencil row.
	if len(sol.Rows) > 0 {
		row := sol.Rows[0]
		fmt.Printf("row 0 (y=%d) holds %d characters, packed width %d of %d\n",
			row.Y, len(row.Chars), row.Width(in), in.StencilWidth)
	}
}
