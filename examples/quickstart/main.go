// Quickstart: generate a small 1DOSP instance, plan its stencil with E-BLOW
// and print what ended up on the stencil.
package main

import (
	"context"
	"fmt"
	"log"

	"eblow"
)

func main() {
	// A small MCC system: 120 character candidates, 4 character projections
	// sharing one stencil.
	in := eblow.SmallInstance(eblow.OneD, 120, 4, 42)

	sol, trace, err := eblow.Solve1D(context.Background(), in, eblow.Defaults1D())
	if err != nil {
		log.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		log.Fatalf("planner produced an invalid stencil: %v", err)
	}

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("candidates        : %d\n", in.NumCharacters())
	fmt.Printf("on stencil        : %d\n", sol.NumSelected())
	fmt.Printf("writing time      : %d (pure VSB would be %d)\n", sol.WritingTime, vsbOnly)
	fmt.Printf("per-region times  : %v\n", sol.RegionTimes)
	fmt.Printf("rounding iterations: %d\n", len(trace.UnsolvedPerIteration))
	fmt.Printf("planner runtime   : %s\n", sol.Runtime)

	// Show the first stencil row.
	if len(sol.Rows) > 0 {
		row := sol.Rows[0]
		fmt.Printf("row 0 (y=%d) holds %d characters, packed width %d of %d\n",
			row.Y, len(row.Chars), row.Width(in), in.StencilWidth)
	}
}
