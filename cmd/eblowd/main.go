// Command eblowd is the batched OSP job server: a long-running HTTP service
// that queues many stencil-planning instances, drains them through one
// bounded worker pool shared across all jobs, and streams per-job progress
// events. Any strategy of the unified solver registry can be scheduled by
// name ("eblow", "greedy", "heuristic24", "row25", "sa24", "exact",
// "portfolio").
//
// The server is hardened for sustained traffic: finished job records are
// evicted after -record-ttl so memory stays bounded, and once -max-pending
// jobs are waiting new submissions are rejected with 429 Too Many Requests
// instead of growing the queue without limit.
//
// With -wal the job queue is durable: every accepted job is fsynced to a
// write-ahead log before the 202 ack, so a crash or kill -9 loses nothing —
// on restart the log replays, unfinished jobs re-enqueue in their original
// order (re-solving is deterministic for fixed seeds), finished jobs stay
// readable as digest-only records, and the log compacts itself once it
// outgrows -wal-max-bytes.
//
// With -auth-keys every request must present an API key from the given file
// (one "name secret [readonly] [pending=N] [rate=R] [burst=B]" per line)
// via "Authorization: Bearer <secret>" or "X-API-Key": unknown keys get
// 401, read-only keys get 403 on mutating methods, and each key is bounded
// by a token-bucket request rate plus a pending-job quota (both 429). The
// key's name is stamped into job records, events and the WAL.
//
// With -learn-path the server keeps one learned-scheduling store shared by
// every job: portfolio races are reordered and pruned by the accumulated
// per-shape win rates, every race outcome is recorded back, and the store
// is persisted after each job. GET /v1/learn exposes the statistics.
//
// By default (-batch) the queue drains through a cost-model scheduler
// instead of FIFO order: cheap jobs are estimated (chars x regions x
// strategy, sharpened by the learn store's measured runtimes when one is
// loaded) and may overtake expensive ones, and compatible small jobs are
// grouped into cohorts (-batch-size, -batch-chars) that run struct-of-
// arrays batched kernels in lockstep. Per-job results stay bit-identical
// to solo FIFO execution, and -aging hard-bounds how many later jobs may
// overtake a waiting one (no starvation). GET /v1/stats exposes the queue
// depth and the scheduler's counters; -batch=false restores the plain
// FIFO drain.
//
// With -dispatch the process becomes a fleet front-end instead of a solver:
// it owns the public API and shards submitted jobs across the named backend
// eblowd nodes by consistent hashing on the instance's learned-scheduling
// fingerprint, so every job of one shape lands on the same node and that
// node's learn store and batch cohorts stay hot. Status, results, cancels
// and event streams are proxied back; GET /v1/stats and GET /v1/learn
// aggregate across the fleet. With -wal the dispatcher keeps its own log of
// accepted submissions: when a backend node dies (detected after -fail-after
// failed probes, probed every -health-interval), its unfinished jobs are
// re-dispatched to the surviving nodes from the logged specs — deterministic
// re-solving makes the failed-over results bit-identical. Solver-side flags
// (-workers, -batch, -learn-path, ...) are ignored in dispatch mode; they
// belong to the backend nodes.
//
// API (JSON unless noted; see docs/eblowd-api.md for the full reference):
//
//	GET    /v1/solvers            registered strategies
//	GET    /v1/stats              queue depth, per-state job counts, batch counters
//	GET    /v1/learn              learned-scheduling statistics snapshot
//	POST   /v1/jobs               submit {"benchmark": "1M-2"} or {"instance": {...}}
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          status + result summary
//	GET    /v1/jobs/{id}/result   full result including the stencil plan
//	GET    /v1/jobs/{id}/events   NDJSON progress stream
//	DELETE /v1/jobs/{id}          cancel
//
// Examples:
//
//	eblowd -addr 127.0.0.1:8080 -workers 8
//	eblowd -addr 127.0.0.1:8080 -learn-path eblow.learn.json
//	eblowd -addr 127.0.0.1:8090 -dispatch "a=http://127.0.0.1:8081,b=http://127.0.0.1:8082" -wal dispatch.wal
//	curl -s localhost:8080/v1/jobs -d '{"benchmark": "1T-1", "params": {"seed": 1}}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN localhost:8080/v1/jobs/j1/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"eblow"
	"eblow/internal/dispatch"
	"eblow/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eblowd: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 for a random free port)")
		workers     = flag.Int("workers", runtime.NumCPU(), "worker pool size shared by every submitted job")
		recordTTL   = flag.Duration("record-ttl", time.Hour, "how long finished job records stay readable (0 keeps them forever)")
		maxPending  = flag.Int("max-pending", 1024, "max queued jobs before submissions are rejected with 429 (0 = unbounded)")
		learnPath   = flag.String("learn-path", "", "JSON store for learned portfolio scheduling, shared across all jobs and persisted after each race (\"\" disables learning)")
		walPath     = flag.String("wal", "", "durable write-ahead job log: accepted jobs are fsynced before the ack and replayed on restart (\"\" disables durability)")
		walMaxBytes = flag.Int64("wal-max-bytes", service.DefaultWALMaxBytes, "compact the WAL to a live-job snapshot once it exceeds this size")
		authKeys    = flag.String("auth-keys", "", "API key file (one \"name secret [readonly] [pending=N] [rate=R] [burst=B]\" per line); \"\" serves unauthenticated")
		batchOn     = flag.Bool("batch", true, "cost-model scheduling + batched cohort execution of compatible queued jobs (per-job results stay bit-identical to the FIFO drain)")
		batchSize   = flag.Int("batch-size", 8, "max jobs per execution cohort")
		batchChars  = flag.Int("batch-chars", 400, "largest instance (characters) that may join a cohort; bigger jobs run solo")
		aging       = flag.Int("aging", 16, "scheduler aging bound: max later-submitted jobs that may overtake a waiting job (-1 = strict submission order)")

		dispatchNodes  = flag.String("dispatch", "", "run as a fleet front-end instead of a solver: comma-separated \"name=url\" backend eblowd nodes to shard jobs across (\"\" runs the normal single-node server)")
		vnodes         = flag.Int("vnodes", dispatch.DefaultVNodes, "dispatch mode: virtual nodes per backend on the consistent-hash ring")
		healthInterval = flag.Duration("health-interval", time.Second, "dispatch mode: backend probe-and-sync period")
		failAfter      = flag.Int("fail-after", 3, "dispatch mode: consecutive failed probes before a node is declared dead and its jobs fail over")
	)
	flag.Parse()

	if *dispatchNodes != "" {
		runDispatch(*addr, *dispatchNodes, *walPath, *authKeys, *vnodes, *healthInterval, *failAfter)
		return
	}

	var store *eblow.LearnStore
	if *learnPath != "" {
		var err error
		if store, err = eblow.OpenLearn(*learnPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("learned scheduling on, store %s", *learnPath)
	}

	var wal *service.WAL
	if *walPath != "" {
		var err error
		if wal, err = service.OpenWAL(*walPath, *walMaxBytes); err != nil {
			log.Fatal(err)
		}
	}

	batchCfg := service.BatchConfig{Enabled: *batchOn, MaxBatch: *batchSize, MaxChars: *batchChars, MaxJump: *aging}
	if *batchOn {
		log.Printf("batch scheduling on: cohorts up to %d jobs of <= %d characters, aging bound %d", *batchSize, *batchChars, *aging)
	}
	m := service.New(service.Config{Workers: *workers, RecordTTL: *recordTTL, MaxPending: *maxPending, Learn: store, WAL: wal, Batch: batchCfg})
	if wal != nil {
		// New consumed the log: report what the replay found (the chaos
		// test greps this line).
		s := wal.Stats()
		log.Printf("wal %s: %d records, %d jobs resumed, %d terminal records restored, %d lines skipped",
			*walPath, s.Records, s.Resumed, s.Terminal, s.SkippedLines)
	}

	handler := http.Handler(service.NewHandler(m))
	if *authKeys != "" {
		keyring, err := service.LoadKeyring(*authKeys)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("auth on, %d API keys from %s", keyring.Len(), *authKeys)
		handler = keyring.Wrap(handler)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}

	// Ctrl-C / SIGINT drains in-flight requests, cancels running jobs and
	// exits instead of dropping connections mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		// Cancel the jobs first: open /v1/jobs/{id}/events streams only end
		// when their job goes terminal, so draining HTTP before cancelling
		// would park Shutdown behind every attached subscriber.
		m.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	// The smoke tests parse this line to find a randomly assigned port.
	fmt.Printf("eblowd: %d workers, listening on http://%s\n", m.Workers(), ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Serve returns as soon as Shutdown starts; wait for the drain and the
	// manager teardown to actually finish before exiting.
	<-shutdownDone
}

// parseNodes parses the -dispatch value: comma-separated "name=url" pairs.
func parseNodes(spec string) ([]dispatch.NodeConfig, error) {
	var nodes []dispatch.NodeConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -dispatch entry %q: want name=url", part)
		}
		nodes = append(nodes, dispatch.NodeConfig{Name: name, URL: url})
	}
	if len(nodes) == 0 {
		return nil, errors.New("-dispatch names no nodes")
	}
	return nodes, nil
}

// runDispatch is the -dispatch main: fleet front-end instead of solver.
func runDispatch(addr, nodesSpec, walPath, authKeys string, vnodes int, healthInterval time.Duration, failAfter int) {
	nodes, err := parseNodes(nodesSpec)
	if err != nil {
		log.Fatal(err)
	}

	var wal *dispatch.WAL
	if walPath != "" {
		if wal, err = dispatch.OpenWAL(walPath); err != nil {
			log.Fatal(err)
		}
	}

	d, err := dispatch.New(dispatch.Config{
		Nodes:          nodes,
		VNodes:         vnodes,
		HealthInterval: healthInterval,
		FailAfter:      failAfter,
		WAL:            wal,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if wal != nil {
		// New consumed the log: report what the replay found (the chaos
		// test greps this line).
		s := wal.Stats()
		log.Printf("dispatch wal %s: %d records, %d jobs resumed, %d terminal records restored, %d lines skipped",
			walPath, s.Records, s.Resumed, s.Terminal, s.SkippedLines)
	}

	handler := http.Handler(dispatch.NewHandler(d))
	if authKeys != "" {
		keyring, err := service.LoadKeyring(authKeys)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("auth on, %d API keys from %s", keyring.Len(), authKeys)
		handler = keyring.Wrap(handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		// Close the dispatcher first: it ends open event streams, so the
		// HTTP drain below cannot park behind an attached subscriber. The
		// backend nodes are separate processes and keep running.
		d.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	// The smoke tests parse this line to find a randomly assigned port.
	fmt.Printf("eblowd: dispatching across %d nodes, listening on http://%s\n", len(nodes), ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
}
