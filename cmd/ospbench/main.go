// Command ospbench regenerates the tables and figures of the E-BLOW paper's
// evaluation section on the synthetic benchmark suite.
//
// Examples:
//
//	ospbench -table 3
//	ospbench -table 4 -sa-time 10s -eblow-time 5s
//	ospbench -table 5 -exact-time 30s
//	ospbench -figure 5
//	ospbench -figure 11
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"eblow/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospbench: ")

	var (
		table     = flag.Int("table", 0, "table to regenerate: 3, 4 or 5")
		figure    = flag.Int("figure", 0, "figure to regenerate: 5, 6, 11 or 12")
		cases     = flag.String("cases", "", "comma-separated case list (default: the paper's cases)")
		seed      = flag.Int64("seed", 1, "seed for randomized planners")
		saTime    = flag.Duration("sa-time", 20*time.Second, "time limit per case for the prior-work 2D annealer")
		eblowTime = flag.Duration("eblow-time", 10*time.Second, "time limit per case for the E-BLOW 2D annealer")
		exactTime = flag.Duration("exact-time", 20*time.Second, "time limit per case for the exact ILP (Table 5)")
	)
	flag.Parse()

	cfg := report.Config{Seed: *seed, SATimeLimit: *saTime, EBlow2DTimeLimit: *eblowTime, ExactTimeLimit: *exactTime}

	caseList := func(def []string) []string {
		if *cases == "" {
			return def
		}
		return strings.Split(*cases, ",")
	}

	switch {
	case *table == 3:
		rows, err := report.Table3(caseList(report.Table3Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 3 (1DOSP): Greedy / [24] / [25] / E-BLOW", rows))
	case *table == 4:
		rows, err := report.Table4(caseList(report.Table4Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 4 (2DOSP): Greedy / [24] / E-BLOW", rows))
	case *table == 5:
		rows, err := report.Table5(cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 5: exact ILP vs E-BLOW", rows))
	case *figure == 5:
		data, err := report.Fig5(caseList([]string{"1M-1", "1M-2", "1M-3", "1M-4"}))
		fail(err)
		fmt.Print(report.FormatFig5(data))
	case *figure == 6:
		names := caseList([]string{"1M-1"})
		hist, err := report.Fig6(names[0])
		fail(err)
		fmt.Print(report.FormatFig6(names[0], hist))
	case *figure == 11, *figure == 12:
		rows, err := report.Ablation(caseList(report.Table3Cases()))
		fail(err)
		fmt.Print(report.FormatAblation(rows))
	default:
		log.Fatal("specify -table 3|4|5 or -figure 5|6|11|12")
	}
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
