// Command ospbench regenerates the tables and figures of the E-BLOW paper's
// evaluation section on the synthetic benchmark suite, and measures the
// parallel portfolio race.
//
// Examples:
//
//	ospbench -table 3
//	ospbench -table 4 -sa-time 10s -eblow-time 5s
//	ospbench -table 5 -exact-time 30s
//	ospbench -figure 5
//	ospbench -figure 11
//	ospbench -portfolio 2D-1 -timeout 20s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"eblow"
	"eblow/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospbench: ")

	var (
		table     = flag.Int("table", 0, "table to regenerate: 3, 4 or 5")
		figure    = flag.Int("figure", 0, "figure to regenerate: 5, 6, 11 or 12")
		portfolio = flag.String("portfolio", "", "race the solver portfolio on this benchmark case (e.g. 2D-1), once with 1 worker and once with -workers, and report both wall-clock times")
		cases     = flag.String("cases", "", "comma-separated case list (default: the paper's cases)")
		seed      = flag.Int64("seed", 1, "seed for randomized planners")
		workers   = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel solver stages")
		restarts  = flag.Int("restarts", 2, "annealing restarts for the portfolio race")
		timeout   = flag.Duration("timeout", 30*time.Second, "deadline for each portfolio race")
		saTime    = flag.Duration("sa-time", 20*time.Second, "time limit per case for the prior-work 2D annealer")
		eblowTime = flag.Duration("eblow-time", 10*time.Second, "time limit per case for the E-BLOW 2D annealer")
		exactTime = flag.Duration("exact-time", 20*time.Second, "time limit per case for the exact ILP (Table 5)")
	)
	flag.Parse()

	cfg := report.Config{
		Seed: *seed, SATimeLimit: *saTime, EBlow2DTimeLimit: *eblowTime,
		ExactTimeLimit: *exactTime, Workers: *workers,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	caseList := func(def []string) []string {
		if *cases == "" {
			return def
		}
		return strings.Split(*cases, ",")
	}

	switch {
	case *portfolio != "":
		fail(racePortfolio(ctx, *portfolio, *workers, *restarts, *seed, *timeout))
	case *table == 3:
		rows, err := report.Table3(ctx, caseList(report.Table3Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 3 (1DOSP): Greedy / [24] / [25] / E-BLOW", rows))
	case *table == 4:
		rows, err := report.Table4(ctx, caseList(report.Table4Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 4 (2DOSP): Greedy / [24] / E-BLOW", rows))
	case *table == 5:
		rows, err := report.Table5(ctx, cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 5: exact ILP vs E-BLOW", rows))
	case *figure == 5:
		data, err := report.Fig5(ctx, caseList([]string{"1M-1", "1M-2", "1M-3", "1M-4"}), cfg)
		fail(err)
		fmt.Print(report.FormatFig5(data))
	case *figure == 6:
		names := caseList([]string{"1M-1"})
		hist, err := report.Fig6(ctx, names[0], cfg)
		fail(err)
		fmt.Print(report.FormatFig6(names[0], hist))
	case *figure == 11, *figure == 12:
		rows, err := report.Ablation(ctx, caseList(report.Table3Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatAblation(rows))
	default:
		log.Fatal("specify -table 3|4|5, -figure 5|6|11|12 or -portfolio <case>")
	}
}

// racePortfolio runs the same seeded portfolio race twice — once on a
// single worker and once on the requested worker count — and reports both
// wall-clock times plus the (identical) winning plans, demonstrating the
// parallel speedup without changing the result. The race goes through the
// unified solver API: strategy "portfolio" with one Params struct.
func racePortfolio(ctx context.Context, caseName string, workers, restarts int, seed int64, timeout time.Duration) error {
	in, err := eblow.Benchmark(caseName)
	if err != nil {
		return err
	}
	fmt.Printf("portfolio race on %s (%s, %d characters, %d regions), strategies %v, deadline %s\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, eblow.PortfolioStrategies(in.Kind), timeout)

	type outcome struct {
		workers int
		res     *eblow.Result
	}
	runsAt := []int{1, workers}
	if workers <= 1 {
		runsAt = runsAt[:1] // nothing to compare against
	}
	var outcomes []outcome
	for _, w := range runsAt {
		res, err := eblow.SolveWith(ctx, in, eblow.Params{
			Workers:    w,
			Deadline:   timeout,
			Seed:       seed,
			Restarts:   restarts,
			Strategies: []string{"portfolio"},
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		outcomes = append(outcomes, outcome{w, res})
		fmt.Printf("workers=%-3d wall %-10s winner %-12s T=%d chars=%d\n",
			w, res.Elapsed.Round(time.Millisecond), res.Strategy,
			res.Objective, res.Solution.NumSelected())
		for _, r := range res.Runs {
			status := fmt.Sprintf("T=%d", int64OrNA(r))
			if r.Err != nil {
				status = fmt.Sprintf("dropped (%v)", r.Err)
			}
			fmt.Printf("  %-12s %-10s %s\n", r.Name, r.Elapsed.Round(time.Millisecond), status)
		}
	}
	if len(outcomes) == 2 && outcomes[1].workers > 1 {
		a, b := outcomes[0].res, outcomes[1].res
		fmt.Printf("speedup: %.2fx (%s -> %s)", a.Elapsed.Seconds()/b.Elapsed.Seconds(),
			a.Elapsed.Round(time.Millisecond), b.Elapsed.Round(time.Millisecond))
		if a.Objective == b.Objective && a.Strategy == b.Strategy {
			fmt.Printf(", identical result either way\n")
		} else {
			fmt.Printf(", results differ (deadline cut strategies off)\n")
		}
	}
	return nil
}

func int64OrNA(r eblow.Run) int64 {
	if r.Solution == nil {
		return -1
	}
	return r.Solution.WritingTime
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
