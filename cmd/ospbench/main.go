// Command ospbench regenerates the tables and figures of the E-BLOW paper's
// evaluation section on the synthetic benchmark suite, and measures the
// parallel portfolio race.
//
// Examples:
//
//	ospbench -table 3
//	ospbench -table 4 -sa-time 10s -eblow-time 5s
//	ospbench -table 5 -exact-time 30s
//	ospbench -figure 5
//	ospbench -figure 11
//	ospbench -portfolio 2D-1 -timeout 20s
//	ospbench -workers-sweep 1T-3 -sweep-workers 1,2,4,8 -exact-time 10s
//	ospbench -perf small-1M -bench-json BENCH_small-1M.json
//	ospbench -lp-perf small-1M -bench-json BENCH_lp.json
//	ospbench -learn-replay 2T-1,2T-2,2T-3,2T-4 -learn-path stats.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"eblow"
	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/floorsa"
	"eblow/internal/gen"
	"eblow/internal/oned"
	"eblow/internal/pack2d"
	"eblow/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospbench: ")

	var (
		table        = flag.Int("table", 0, "table to regenerate: 3, 4 or 5")
		figure       = flag.Int("figure", 0, "figure to regenerate: 5, 6, 11 or 12")
		portfolio    = flag.String("portfolio", "", "race the solver portfolio on this benchmark case (e.g. 2D-1), once with 1 worker and once with -workers, and report both wall-clock times")
		workersSweep = flag.String("workers-sweep", "", "run the exact branch and bound on this benchmark case (e.g. 1T-3) at every -sweep-workers count and report the node-throughput scaling curve")
		perf         = flag.String("perf", "", "measure the solver hot paths on this case (e.g. small-1M, 1M-5, small-2M): annealer moves/sec for 2D, solve + relaxation wall-clock at 1 and -workers workers for 1D")
		lpPerf       = flag.String("lp-perf", "", "measure the sparse LP engine on this 1D case: relaxation pivots/sec with the simplex backend, and the warm-vs-cold re-solve pivot ratio the dual-simplex warm starts buy")
		benchJSON    = flag.String("bench-json", "", "write the -perf record as JSON to this file (the BENCH_*.json perf trajectory)")
		throughput   = flag.Bool("throughput", false, "benchmark the job service on a generated mixed workload: FIFO drain vs the cost-model batch scheduler, reporting jobs/sec and SLO goodput for both plus a cross-mode result-digest identity check")
		tpJobs       = flag.Int("tp-jobs", 120, "workload size for -throughput")
		tpSpan       = flag.Duration("tp-span", 2*time.Second, "open-loop arrival window for -throughput: jobs are submitted evenly across this span")
		tpSLO        = flag.Duration("tp-slo", 400*time.Millisecond, "per-job latency budget for -throughput goodput (submit to finish)")
		tpWorkers    = flag.Int("tp-workers", 4, "service worker-pool size for -throughput")
		assertSpdup  = flag.Float64("assert-speedup", 0, "fail -throughput unless batched goodput is at least this multiple of the FIFO drain's (0 disables the assertion)")
		benchSummary = flag.Bool("bench-summary", false, "aggregate every BENCH_*.json record in the current directory into one table")
		learnReplay  = flag.String("learn-replay", "", "replay this comma-separated benchmark case list through recorded portfolio races to warm the -learn-path store, then print the learned race ordering vs the static one per case")
		learnPath    = flag.String("learn-path", "", "JSON statistics store for -learn-replay (\"\" uses a throwaway in-memory store)")
		learnRounds  = flag.Int("learn-rounds", 3, "how many recorded races to replay per case for -learn-replay")
		sweepWorkers = flag.String("sweep-workers", "1,2,4,8", "comma-separated worker counts for -workers-sweep")
		sweepJSON    = flag.Bool("json", false, "emit the -workers-sweep result as JSON (for BENCH tracking) instead of a table")
		cases        = flag.String("cases", "", "comma-separated case list (default: the paper's cases)")
		seed         = flag.Int64("seed", 1, "seed for randomized planners")
		workers      = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel solver stages")
		restarts     = flag.Int("restarts", 2, "annealing restarts for the portfolio race")
		timeout      = flag.Duration("timeout", 30*time.Second, "deadline for each portfolio race")
		saTime       = flag.Duration("sa-time", 20*time.Second, "time limit per case for the prior-work 2D annealer")
		eblowTime    = flag.Duration("eblow-time", 10*time.Second, "time limit per case for the E-BLOW 2D annealer")
		exactTime    = flag.Duration("exact-time", 20*time.Second, "time limit per case for the exact ILP (Table 5, -workers-sweep)")
	)
	flag.Parse()

	cfg := report.Config{
		Seed: *seed, SATimeLimit: *saTime, EBlow2DTimeLimit: *eblowTime,
		ExactTimeLimit: *exactTime, Workers: *workers,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	caseList := func(def []string) []string {
		if *cases == "" {
			return def
		}
		return strings.Split(*cases, ",")
	}

	switch {
	case *benchSummary:
		fail(runBenchSummary("."))
	case *throughput:
		fail(runThroughput(ctx, *tpJobs, *tpWorkers, *tpSpan, *tpSLO, *seed, *assertSpdup, *benchJSON))
	case *learnReplay != "":
		fail(replayLearn(ctx, *learnReplay, *learnPath, *learnRounds, *workers, *restarts, *seed, *timeout))
	case *lpPerf != "":
		fail(runLPPerf(ctx, *lpPerf, *benchJSON))
	case *perf != "":
		fail(runPerf(ctx, *perf, *workers, *seed, *benchJSON))
	case *workersSweep != "":
		fail(sweepExactWorkers(ctx, *workersSweep, *sweepWorkers, *exactTime, *sweepJSON))
	case *portfolio != "":
		fail(racePortfolio(ctx, *portfolio, *workers, *restarts, *seed, *timeout))
	case *table == 3:
		rows, err := report.Table3(ctx, caseList(report.Table3Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 3 (1DOSP): Greedy / [24] / [25] / E-BLOW", rows))
	case *table == 4:
		rows, err := report.Table4(ctx, caseList(report.Table4Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 4 (2DOSP): Greedy / [24] / E-BLOW", rows))
	case *table == 5:
		rows, err := report.Table5(ctx, cfg)
		fail(err)
		fmt.Print(report.FormatRows("Table 5: exact ILP vs E-BLOW", rows))
	case *figure == 5:
		data, err := report.Fig5(ctx, caseList([]string{"1M-1", "1M-2", "1M-3", "1M-4"}), cfg)
		fail(err)
		fmt.Print(report.FormatFig5(data))
	case *figure == 6:
		names := caseList([]string{"1M-1"})
		hist, err := report.Fig6(ctx, names[0], cfg)
		fail(err)
		fmt.Print(report.FormatFig6(names[0], hist))
	case *figure == 11, *figure == 12:
		rows, err := report.Ablation(ctx, caseList(report.Table3Cases()), cfg)
		fail(err)
		fmt.Print(report.FormatAblation(rows))
	default:
		log.Fatal("specify -table 3|4|5, -figure 5|6|11|12, -portfolio <case>, -workers-sweep <case> or -perf <case>")
	}
}

// perfRecord is one -perf measurement, shaped for the BENCH_*.json perf
// trajectory log. 2D cases fill the annealer fields (wall-clock
// milliseconds), 1D cases the planner fields (microseconds).
type perfRecord struct {
	Case    string `json:"case"`
	Kind    string `json:"kind"`
	Workers int    `json:"workers"`

	// 2D: incremental sequence-pair annealer throughput.
	Moves       int     `json:"moves,omitempty"`
	AnnealMs    int64   `json:"annealMs,omitempty"`
	MovesPerSec float64 `json:"movesPerSec,omitempty"`

	// 1D: full planner and LP-relaxation wall-clock at 1 and at Workers
	// workers, under the default shared-stencil configuration, plus the
	// same planner run with one auto-derived row band per region so the
	// block-decomposed relaxation path is exercised and tracked too.
	// Microseconds, so the small CI cases still resolve.
	SolveUs1W       int64 `json:"solveUs1Worker,omitempty"`
	RelaxUs1W       int64 `json:"relaxUs1Worker,omitempty"`
	SolveUs         int64 `json:"solveUs,omitempty"`
	RelaxUs         int64 `json:"relaxUs,omitempty"`
	RelaxBlocksUs1W int64 `json:"relaxBlocksUs1Worker,omitempty"`
	RelaxBlocksUs   int64 `json:"relaxBlocksUs,omitempty"`
}

// perfInstance resolves a -perf case name: "small-<family>" maps to the
// reduced deterministic instances, anything else to the full benchmarks.
func perfInstance(name string) (*core.Instance, error) {
	if fam, ok := strings.CutPrefix(name, "small-"); ok {
		return gen.SmallFamily(fam)
	}
	return eblow.Benchmark(name)
}

// runPerf measures the hot paths reworked for incremental evaluation — the
// sequence-pair annealer (2D) and the block-decomposed relaxation planner
// (1D) — and emits one perf-trajectory record.
func runPerf(ctx context.Context, caseName string, workers int, seed int64, jsonPath string) error {
	in, err := perfInstance(caseName)
	if err != nil {
		return err
	}
	rec := perfRecord{Case: in.Name, Kind: in.Kind.String(), Workers: workers}

	if in.Kind == eblow.TwoD {
		blocks := make([]floorsa.Block, in.NumCharacters())
		for i, c := range in.Characters {
			reds := make([]int64, in.NumRegions)
			for r := range reds {
				reds[r] = in.Reduction(i, r)
			}
			blocks[i] = floorsa.Block{
				Block: pack2d.Block{
					W: c.Width, H: c.Height,
					BlankL: c.BlankLeft, BlankR: c.BlankRight,
					BlankT: c.BlankTop, BlankB: c.BlankBottom,
				},
				Reductions: reds,
			}
		}
		budget := 40 * in.NumCharacters()
		// One restart on one goroutine: the record measures single-core
		// move throughput, not restart parallelism.
		rec.Workers = 1
		start := time.Now()
		res := floorsa.Pack(ctx, blocks, in.VSBTime(), in.StencilWidth, in.StencilHeight,
			floorsa.Options{Seed: seed, MoveBudget: budget, Restarts: 1})
		elapsed := time.Since(start)
		rec.Moves = res.Moves
		rec.AnnealMs = elapsed.Milliseconds()
		if s := elapsed.Seconds(); s > 0 {
			rec.MovesPerSec = float64(res.Moves) / s
		}
		fmt.Printf("%s (%s): %d moves in %s -> %.0f moves/sec\n",
			in.Name, in.Kind, res.Moves, elapsed.Round(time.Millisecond), rec.MovesPerSec)
	} else {
		solve := func(w int, groups []oned.RowGroup) (time.Duration, time.Duration, error) {
			opt := oned.Defaults()
			opt.Workers = w
			opt.RowGroups = groups
			start := time.Now()
			_, trace, err := oned.Solve(ctx, in, opt)
			if err != nil {
				return 0, 0, err
			}
			return time.Since(start), trace.RelaxElapsed, nil
		}
		wall1, relax1, err := solve(1, nil)
		if err != nil {
			return err
		}
		wallN, relaxN, err := solve(workers, nil)
		if err != nil {
			return err
		}
		rec.SolveUs1W, rec.RelaxUs1W = wall1.Microseconds(), relax1.Microseconds()
		rec.SolveUs, rec.RelaxUs = wallN.Microseconds(), relaxN.Microseconds()
		fmt.Printf("%s (%s): solve %s (relaxation %s) at 1 worker, %s (relaxation %s) at %d workers\n",
			in.Name, in.Kind, wall1.Round(time.Microsecond), relax1.Round(time.Microsecond),
			wallN.Round(time.Microsecond), relaxN.Round(time.Microsecond), workers)
		// The shared-stencil default runs the relaxation as one block; the
		// generator's per-column-cell banding exercises the decomposed path
		// so the trajectory can catch regressions there.
		if groups := gen.CellBands(in); groups != nil {
			_, blocks1, err := solve(1, groups)
			if err != nil {
				return err
			}
			_, blocksN, err := solve(workers, groups)
			if err != nil {
				return err
			}
			rec.RelaxBlocksUs1W = blocks1.Microseconds()
			rec.RelaxBlocksUs = blocksN.Microseconds()
			fmt.Printf("%s (%s): banded relaxation (%d blocks max) %s at 1 worker, %s at %d workers\n",
				in.Name, in.Kind, in.NumRegions, blocks1.Round(time.Microsecond),
				blocksN.Round(time.Microsecond), workers)
		}
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("perf record written to %s\n", jsonPath)
	}
	return nil
}

// lpPerfRecord is one -lp-perf measurement, shaped for the BENCH_lp.json
// perf trajectory. All counts come from Workers=1 runs so they are
// deterministic run to run; only PivotsPerSec carries wall clock.
type lpPerfRecord struct {
	Case string `json:"case"`
	Kind string `json:"kind"`

	// Successive-rounding relaxation with the simplex backend (warm run).
	RelaxSolves    int     `json:"relaxSolves"`
	RelaxPivots    int     `json:"relaxPivots"`
	RelaxElapsedUs int64   `json:"relaxElapsedUs"`
	PivotsPerSec   float64 `json:"pivotsPerSec"`

	// Re-solves (block solves for which a previous basis existed), warm run
	// vs an identical planner run with ColdLP. The modes may take different
	// iteration counts (degenerate relaxations can stop at different optimal
	// vertices), so the ratio compares per-solve averages.
	WarmResolves         int     `json:"warmResolves"`
	WarmResolvePivots    int     `json:"warmResolvePivots"`
	ColdResolves         int     `json:"coldResolves"`
	ColdResolvePivots    int     `json:"coldResolvePivots"`
	WarmColdResolveRatio float64 `json:"warmColdResolveRatio"`

	// Fast-ILP-convergence branch and bound: total node-relaxation pivots
	// with parent-basis warm starts vs cold.
	FastILPPivotsWarm int `json:"fastIlpPivotsWarm"`
	FastILPPivotsCold int `json:"fastIlpPivotsCold"`
}

// runLPPerf runs the 1D planner twice on one case with the simplex LP
// backend — once with warm starts (the default) and once with ColdLP — and
// reports the relaxation pivot throughput plus the warm-vs-cold re-solve
// pivot ratio. The perf trajectory gates warm starts staying cheap: the
// target is warm re-solves within 10% of the cold pivot count on the
// golden families.
func runLPPerf(ctx context.Context, caseName, jsonPath string) error {
	in, err := perfInstance(caseName)
	if err != nil {
		return err
	}
	if in.Kind != core.OneD {
		return fmt.Errorf("-lp-perf needs a 1D case; %s is %s", in.Name, in.Kind)
	}
	solve := func(cold bool) (*oned.Trace, error) {
		opt := oned.Defaults()
		opt.Backend = oned.SimplexLP
		opt.Workers = 1
		opt.ColdLP = cold
		_, trace, err := oned.Solve(ctx, in, opt)
		return trace, err
	}
	warm, err := solve(false)
	if err != nil {
		return err
	}
	cold, err := solve(true)
	if err != nil {
		return err
	}

	rec := lpPerfRecord{
		Case: in.Name, Kind: in.Kind.String(),
		RelaxSolves:       warm.RelaxSolves,
		RelaxPivots:       warm.RelaxPivots,
		RelaxElapsedUs:    warm.RelaxElapsed.Microseconds(),
		WarmResolves:      warm.RelaxResolves,
		WarmResolvePivots: warm.RelaxResolvePivots,
		ColdResolves:      cold.RelaxResolves,
		ColdResolvePivots: cold.RelaxResolvePivots,
		FastILPPivotsWarm: warm.FastILPPivots,
		FastILPPivotsCold: cold.FastILPPivots,
	}
	if s := warm.RelaxElapsed.Seconds(); s > 0 {
		rec.PivotsPerSec = float64(warm.RelaxPivots) / s
	}
	if rec.WarmResolves > 0 && rec.ColdResolves > 0 && rec.ColdResolvePivots > 0 {
		warmPer := float64(rec.WarmResolvePivots) / float64(rec.WarmResolves)
		coldPer := float64(rec.ColdResolvePivots) / float64(rec.ColdResolves)
		rec.WarmColdResolveRatio = warmPer / coldPer
	}

	fmt.Printf("%s (%s): %d relaxation solves, %d pivots in %s -> %.0f pivots/sec\n",
		in.Name, in.Kind, rec.RelaxSolves, rec.RelaxPivots,
		warm.RelaxElapsed.Round(time.Microsecond), rec.PivotsPerSec)
	fmt.Printf("re-solves: warm %d pivots over %d solves, cold %d pivots over %d solves -> warm/cold ratio %.3f\n",
		rec.WarmResolvePivots, rec.WarmResolves, rec.ColdResolvePivots, rec.ColdResolves,
		rec.WarmColdResolveRatio)
	fmt.Printf("fast-ILP branch and bound: %d pivots warm-started, %d cold\n",
		rec.FastILPPivotsWarm, rec.FastILPPivotsCold)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("lp perf record written to %s\n", jsonPath)
	}
	return nil
}

// sweepRun is one -workers-sweep measurement, shaped for the BENCH json log.
type sweepRun struct {
	Case        string  `json:"case"`
	Workers     int     `json:"workers"`
	Status      string  `json:"status"`
	Objective   int64   `json:"objective"`
	Nodes       int     `json:"nodes"`
	ElapsedMs   int64   `json:"elapsedMs"`
	NodesPerSec float64 `json:"nodesPerSec"`
	ThroughputX float64 `json:"throughputX"` // node throughput relative to workers=1
}

// sweepExactWorkers runs the exact branch and bound on one benchmark case at
// each requested worker count under the same time limit and reports the
// scaling curve: wall clock, explored nodes, node throughput, and the
// throughput ratio against the single-worker run. The solver guarantees a
// worker-count-independent result, so the sweep also cross-checks that the
// status and objective agree across all runs.
func sweepExactWorkers(ctx context.Context, caseName, workerList string, limit time.Duration, asJSON bool) error {
	in, err := eblow.Benchmark(caseName)
	if err != nil {
		return err
	}
	var counts []int
	for _, f := range strings.Split(workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -sweep-workers entry %q", f)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 {
		return fmt.Errorf("-sweep-workers lists no worker counts")
	}
	if !asJSON {
		fmt.Printf("exact workers sweep on %s (%s, %d characters, %d regions), time limit %s per run\n",
			in.Name, in.Kind, in.NumCharacters(), in.NumRegions, limit)
	}

	var runs []sweepRun
	for _, w := range counts {
		// Straight to the formulation layer rather than the registry
		// wrapper: a run that hits the limit with no incumbent is still a
		// valid throughput measurement, not an error.
		var ex *eblow.ExactResult
		if in.Kind == eblow.OneD {
			ex, err = exact.Solve1D(ctx, in, exact.Options{TimeLimit: limit, Workers: w})
		} else {
			ex, err = exact.Solve2D(ctx, in, exact.Options{TimeLimit: limit, Workers: w})
		}
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		run := sweepRun{
			Case:      in.Name,
			Workers:   w,
			Status:    ex.Status.String(),
			Objective: -1,
			Nodes:     ex.Nodes,
			ElapsedMs: ex.Elapsed.Milliseconds(),
		}
		if ex.Solution != nil {
			run.Objective = ex.Solution.WritingTime
		}
		if s := ex.Elapsed.Seconds(); s > 0 {
			run.NodesPerSec = float64(ex.Nodes) / s
		}
		run.ThroughputX = 1
		if len(runs) > 0 && runs[0].NodesPerSec > 0 {
			run.ThroughputX = run.NodesPerSec / runs[0].NodesPerSec
		}
		runs = append(runs, run)
		if !asJSON {
			fmt.Printf("workers=%-3d wall %-10s status %-9s T=%-8d nodes=%-8d nodes/s=%-10.1f x%.2f\n",
				run.Workers, ex.Elapsed.Round(time.Millisecond), run.Status, run.Objective,
				run.Nodes, run.NodesPerSec, run.ThroughputX)
		}
	}
	if asJSON {
		return json.NewEncoder(os.Stdout).Encode(runs)
	}
	// The determinism cross-check: every run must agree on status and
	// objective (node counts may differ — a faster incumbent skips work).
	for _, r := range runs[1:] {
		if r.Status != runs[0].Status || r.Objective != runs[0].Objective {
			fmt.Printf("WARNING: workers=%d returned %s T=%d, workers=%d returned %s T=%d — time limit truncated the runs differently\n",
				runs[0].Workers, runs[0].Status, runs[0].Objective, r.Workers, r.Status, r.Objective)
			return nil
		}
	}
	fmt.Printf("identical status/objective at every worker count\n")
	return nil
}

// replayLearn warms a learned-scheduling store by replaying recorded
// portfolio races over a benchmark case list, persists it, and prints the
// learned race ordering next to the static registry one per case — showing
// which heavy entrants the accumulated win rates reorder or prune on each
// family.
func replayLearn(ctx context.Context, caseList, path string, rounds, workers, restarts int, seed int64, timeout time.Duration) error {
	var store *eblow.LearnStore
	var err error
	if path != "" {
		if store, err = eblow.OpenLearn(path); err != nil {
			return err
		}
	} else {
		store = eblow.NewLearnStore()
	}
	names := strings.Split(caseList, ",")
	if rounds < 1 {
		rounds = 1
	}

	fmt.Printf("replaying %d recorded race(s) per case over %v\n", rounds, names)
	instances := make([]*core.Instance, len(names))
	for i, name := range names {
		if instances[i], err = eblow.Benchmark(strings.TrimSpace(name)); err != nil {
			return err
		}
	}
	for round := 0; round < rounds; round++ {
		for _, in := range instances {
			res, err := eblow.SolveWith(ctx, in, eblow.Params{
				Workers:    workers,
				Restarts:   restarts,
				Seed:       seed + int64(round),
				Deadline:   timeout,
				Strategies: []string{"portfolio"},
				LearnStore: store,
			})
			if err != nil {
				return fmt.Errorf("%s round %d: %w", in.Name, round+1, err)
			}
			fmt.Printf("  %-6s round %d: %-12s T=%-8d %s\n",
				in.Name, round+1, res.Strategy, res.Objective, res.Elapsed.Round(time.Millisecond))
		}
	}
	if err := store.Save(); err != nil {
		return err
	}
	if path != "" {
		fmt.Printf("store persisted to %s\n", path)
	}

	fmt.Printf("\nlearned schedule per case (static order vs the warmed store):\n")
	for _, in := range instances {
		plan := eblow.PlanRace(store, in)
		fmt.Printf("%-6s shape %s\n", in.Name, plan.Shape)
		fmt.Printf("  static  : %v\n", eblow.PortfolioStrategies(in.Kind))
		if !plan.Learned {
			fmt.Printf("  learned : (cold — too few races for this shape)\n")
			continue
		}
		fmt.Printf("  learned : %v\n", plan.Order)
		if len(plan.Pruned) > 0 {
			fmt.Printf("  pruned  : %v\n", plan.Pruned)
		} else {
			fmt.Printf("  pruned  : none\n")
		}
	}
	return nil
}

// racePortfolio runs the same seeded portfolio race twice — once on a
// single worker and once on the requested worker count — and reports both
// wall-clock times plus the (identical) winning plans, demonstrating the
// parallel speedup without changing the result. The race goes through the
// unified solver API: strategy "portfolio" with one Params struct.
func racePortfolio(ctx context.Context, caseName string, workers, restarts int, seed int64, timeout time.Duration) error {
	in, err := eblow.Benchmark(caseName)
	if err != nil {
		return err
	}
	fmt.Printf("portfolio race on %s (%s, %d characters, %d regions), strategies %v, deadline %s\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, eblow.PortfolioStrategies(in.Kind), timeout)

	type outcome struct {
		workers int
		res     *eblow.Result
	}
	runsAt := []int{1, workers}
	if workers <= 1 {
		runsAt = runsAt[:1] // nothing to compare against
	}
	var outcomes []outcome
	for _, w := range runsAt {
		res, err := eblow.SolveWith(ctx, in, eblow.Params{
			Workers:    w,
			Deadline:   timeout,
			Seed:       seed,
			Restarts:   restarts,
			Strategies: []string{"portfolio"},
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		outcomes = append(outcomes, outcome{w, res})
		fmt.Printf("workers=%-3d wall %-10s winner %-12s T=%d chars=%d\n",
			w, res.Elapsed.Round(time.Millisecond), res.Strategy,
			res.Objective, res.Solution.NumSelected())
		for _, r := range res.Runs {
			status := fmt.Sprintf("T=%d", int64OrNA(r))
			if r.Err != nil {
				status = fmt.Sprintf("dropped (%v)", r.Err)
			}
			fmt.Printf("  %-12s %-10s %s\n", r.Name, r.Elapsed.Round(time.Millisecond), status)
		}
	}
	if len(outcomes) == 2 && outcomes[1].workers > 1 {
		a, b := outcomes[0].res, outcomes[1].res
		fmt.Printf("speedup: %.2fx (%s -> %s)", a.Elapsed.Seconds()/b.Elapsed.Seconds(),
			a.Elapsed.Round(time.Millisecond), b.Elapsed.Round(time.Millisecond))
		if a.Objective == b.Objective && a.Strategy == b.Strategy {
			fmt.Printf(", identical result either way\n")
		} else {
			fmt.Printf(", results differ (deadline cut strategies off)\n")
		}
	}
	return nil
}

func int64OrNA(r eblow.Run) int64 {
	if r.Solution == nil {
		return -1
	}
	return r.Solution.WritingTime
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
