package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// runBenchSummary aggregates every BENCH_*.json perf record in dir into one
// table: file by file, each record's JSON flattened to dotted keys with
// aligned values. The records are heterogeneous by design (annealer perf,
// LP perf, worker sweeps, throughput), so the summary is schema-agnostic —
// whatever a record tracks, it shows.
func runBenchSummary(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json records in %s", dir)
	}
	sort.Strings(paths)
	fmt.Printf("bench summary: %d record(s)\n", len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		flat := map[string]string{}
		flatten("", doc, flat)
		keys := make([]string, 0, len(flat))
		width := 0
		for k := range flat {
			keys = append(keys, k)
			if len(k) > width {
				width = len(k)
			}
		}
		sort.Strings(keys)
		fmt.Printf("\n%s\n", filepath.Base(p))
		for _, k := range keys {
			fmt.Printf("  %-*s  %s\n", width, k, flat[k])
		}
	}
	return nil
}

// flatten renders nested JSON as dotted-key leaves: objects recurse with
// "parent.child" keys, arrays with "parent[i]".
func flatten(prefix string, v any, out map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, x[k], out)
		}
	case []any:
		for i, e := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), e, out)
		}
	case float64:
		out[prefix] = strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		out[prefix] = strconv.FormatBool(x)
	case nil:
		out[prefix] = "null"
	default:
		out[prefix] = fmt.Sprint(x)
	}
}
