package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"eblow"
	"eblow/internal/core"
	"eblow/internal/gen"
	"eblow/internal/service"
)

// tpJob is one unit of the generated throughput workload.
type tpJob struct {
	in     *core.Instance
	solver string
	params eblow.Params
}

// throughputWorkload generates the adversarial mixed stream the batch
// scheduler is built for: a steady run of tiny batchable instances
// interleaved with heavy multi-restart annealing blockers (too large for
// any cohort) and medium E-BLOW jobs. Under a FIFO drain the blockers
// capture the pool and every tiny job behind them blows its latency
// budget; the cost-model scheduler lets the tiny jobs overtake (within the
// aging bound) and packs them into lockstep cohorts.
func throughputWorkload(n int, seed int64) []tpJob {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]tpJob, n)
	for i := range jobs {
		s := seed + int64(i)*131
		p := eblow.Params{Seed: 1, Workers: 1}
		switch {
		case i%4 == 3:
			// Heavy blocker: above the cohort char cap, so it always runs
			// solo, and multi-restart so it holds its worker a while.
			p.Restarts = 4
			jobs[i] = tpJob{in: gen.Small(core.TwoD, 420+rng.Intn(80), 2, s), solver: "sa24", params: p}
		case i%8 == 6:
			// Medium non-batchable job for strategy diversity.
			jobs[i] = tpJob{in: gen.Small(core.OneD, 180+rng.Intn(80), 4, s), solver: "eblow", params: p}
		case i%3 == 0:
			jobs[i] = tpJob{in: gen.Small(core.TwoD, 14+rng.Intn(10), 2, s), solver: "sa24", params: p}
		case i%3 == 1:
			jobs[i] = tpJob{in: gen.Small(core.OneD, 24+rng.Intn(16), 2, s), solver: "greedy", params: p}
		default:
			jobs[i] = tpJob{in: gen.Small(core.OneD, 24+rng.Intn(16), 2, s), solver: "row25", params: p}
		}
	}
	return jobs
}

// tpModeStats is the per-mode half of the throughput record.
type tpModeStats struct {
	// JobsPerSec is raw completion throughput: jobs finished per second of
	// wall-clock from first submission to last completion.
	JobsPerSec float64 `json:"jobsPerSec"`
	// GoodputPerSec is SLO-constrained throughput: only jobs whose
	// submit-to-finish latency met the -tp-slo budget count.
	GoodputPerSec float64 `json:"goodputPerSec"`
	SLOMet        int     `json:"sloMet"`
	P50Ms         float64 `json:"p50Ms"`
	P95Ms         float64 `json:"p95Ms"`
	MaxMs         float64 `json:"maxMs"`
	WallMs        int64   `json:"wallMs"`
	// Cohort counters are zero for the solo (FIFO) mode.
	Cohorts     int `json:"cohorts,omitempty"`
	BatchedJobs int `json:"batchedJobs,omitempty"`
	MaxCohort   int `json:"maxCohort,omitempty"`
	AgedPops    int `json:"agedPops,omitempty"`
}

// throughputRecord is the BENCH_throughput.json shape.
type throughputRecord struct {
	Jobs    int   `json:"jobs"`
	SpanMs  int64 `json:"spanMs"`
	SLOMs   int64 `json:"sloMs"`
	Workers int   `json:"workers"`
	Seed    int64 `json:"seed"`

	Solo    tpModeStats `json:"solo"`
	Batched tpModeStats `json:"batched"`

	// SpeedupJobsPerSec and SpeedupGoodput are batched over solo ratios;
	// the goodput ratio is the headline (throughput at the fixed latency
	// budget).
	SpeedupJobsPerSec float64 `json:"speedupJobsPerSec"`
	SpeedupGoodput    float64 `json:"speedupGoodput"`
}

// runThroughputMode drains the workload through one manager configuration
// with open-loop arrivals spread over span, and returns the latency stats
// plus the per-job result digests (for the cross-mode identity check).
func runThroughputMode(ctx context.Context, jobs []tpJob, workers int, batch service.BatchConfig, span, slo time.Duration) (tpModeStats, []string, error) {
	m := service.New(service.Config{Workers: workers, Batch: batch})
	defer m.Close()

	interval := span / time.Duration(len(jobs))
	start := time.Now()
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		if wait := time.Until(start.Add(time.Duration(i) * interval)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return tpModeStats{}, nil, ctx.Err()
			}
		}
		s, err := m.Submit(service.JobSpec{Instance: j.in, Solver: j.solver, Params: j.params})
		if err != nil {
			return tpModeStats{}, nil, fmt.Errorf("submit job %d: %w", i, err)
		}
		ids[i] = s.ID
	}

	digests := make([]string, len(jobs))
	latencies := make([]time.Duration, len(jobs))
	var lastFinish time.Time
	for i, id := range ids {
		for {
			s, err := m.Status(id)
			if err != nil {
				return tpModeStats{}, nil, err
			}
			if s.State.Terminal() {
				if s.State != service.StateDone {
					return tpModeStats{}, nil, fmt.Errorf("job %d (%s) finished %s: %v", i, jobs[i].solver, s.State, s.Err)
				}
				digests[i] = s.Digest
				latencies[i] = s.Finished.Sub(s.Submitted)
				if s.Finished.After(lastFinish) {
					lastFinish = s.Finished
				}
				break
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
				return tpModeStats{}, nil, ctx.Err()
			}
		}
	}

	wall := lastFinish.Sub(start)
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	met := 0
	for _, l := range latencies {
		if l <= slo {
			met++
		}
	}
	st := tpModeStats{
		JobsPerSec:    float64(len(jobs)) / wall.Seconds(),
		GoodputPerSec: float64(met) / wall.Seconds(),
		SLOMet:        met,
		P50Ms:         float64(quantile(0.50)) / float64(time.Millisecond),
		P95Ms:         float64(quantile(0.95)) / float64(time.Millisecond),
		MaxMs:         float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
		WallMs:        wall.Milliseconds(),
	}
	if bs := m.Stats().Batch; bs.Enabled {
		st.Cohorts, st.BatchedJobs, st.MaxCohort, st.AgedPops = bs.Cohorts, bs.BatchedJobs, bs.MaxCohort, bs.AgedPops
	}
	return st, digests, nil
}

// runThroughput benchmarks the job service end to end on a generated mixed
// workload, once with the plain FIFO drain and once with the cost-model
// batch scheduler, and reports jobs/sec plus SLO goodput for both. The two
// runs solve identical instances with identical seeds, so their result
// digests must match job for job — any divergence is a hard failure, which
// makes every bench run double as a batch-identity check.
func runThroughput(ctx context.Context, nJobs, workers int, span, slo time.Duration, seed int64, assertSpeedup float64, jsonPath string) error {
	jobs := throughputWorkload(nJobs, seed)
	fmt.Printf("throughput: %d jobs over %s (SLO %s), pool of %d workers\n", nJobs, span, slo, workers)

	solo, soloDigests, err := runThroughputMode(ctx, jobs, workers, service.BatchConfig{}, span, slo)
	if err != nil {
		return fmt.Errorf("solo (FIFO) run: %w", err)
	}
	fmt.Printf("  solo (FIFO): %6.1f jobs/s, goodput %6.1f/s (%d/%d in SLO), p50 %.0fms p95 %.0fms\n",
		solo.JobsPerSec, solo.GoodputPerSec, solo.SLOMet, nJobs, solo.P50Ms, solo.P95Ms)

	batchCfg := service.BatchConfig{Enabled: true, MaxBatch: 8, MaxChars: 400, MaxJump: 16, Workers: workers}
	batched, batchedDigests, err := runThroughputMode(ctx, jobs, workers, batchCfg, span, slo)
	if err != nil {
		return fmt.Errorf("batched run: %w", err)
	}
	fmt.Printf("  batched:     %6.1f jobs/s, goodput %6.1f/s (%d/%d in SLO), p50 %.0fms p95 %.0fms, %d cohorts (max %d, %d jobs)\n",
		batched.JobsPerSec, batched.GoodputPerSec, batched.SLOMet, nJobs, batched.P50Ms, batched.P95Ms,
		batched.Cohorts, batched.MaxCohort, batched.BatchedJobs)

	for i := range soloDigests {
		if soloDigests[i] != batchedDigests[i] {
			return fmt.Errorf("batch-identity violation: job %d digest %s solo vs %s batched",
				i, soloDigests[i], batchedDigests[i])
		}
	}
	fmt.Printf("  batch identity: all %d result digests match across modes\n", nJobs)

	rec := throughputRecord{
		Jobs: nJobs, SpanMs: span.Milliseconds(), SLOMs: slo.Milliseconds(),
		Workers: workers, Seed: seed, Solo: solo, Batched: batched,
		SpeedupJobsPerSec: batched.JobsPerSec / solo.JobsPerSec,
		SpeedupGoodput:    batched.GoodputPerSec / solo.GoodputPerSec,
	}
	fmt.Printf("  speedup: %.2fx jobs/s, %.2fx goodput at the %s SLO\n",
		rec.SpeedupJobsPerSec, rec.SpeedupGoodput, slo)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("throughput record written to %s\n", jsonPath)
	}
	if assertSpeedup > 0 && rec.SpeedupGoodput < assertSpeedup {
		return fmt.Errorf("goodput speedup %.2fx below the asserted %.2fx floor", rec.SpeedupGoodput, assertSpeedup)
	}
	return nil
}
