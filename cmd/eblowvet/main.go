// Command eblowvet machine-checks the engine's determinism and
// concurrency contracts as a `go vet -vettool`:
//
//	go build -o bin/eblowvet ./cmd/eblowvet
//	go vet -vettool=$PWD/bin/eblowvet ./...
//
// or, equivalently, run it directly on package patterns and it re-executes
// itself through go vet:
//
//	bin/eblowvet ./...
//
// The suite (detrange, globalrand, ctxpath, clockleak, errfence,
// lockfield) and the //eblow:nondet-ok waiver syntax are documented in
// docs/INVARIANTS.md.
package main

import (
	"eblow/internal/analysis"
	"eblow/internal/analysis/suite"
)

func main() {
	analysis.Main(suite.All())
}
