// Command ospgen generates OSP benchmark instances as JSON files, either one
// of the named synthetic benchmarks from the paper's evaluation or a custom
// reduced-size instance.
//
// With -bands a 1DOSP MCC instance is written in per-column-cell-band mode:
// one stencil row band per wafer region (Instance.RowGroups), which the 1D
// planner picks up automatically and uses to decompose its LP relaxation
// into independent per-band blocks.
//
// Examples:
//
//	ospgen -list
//	ospgen -name 1M-5 -out 1m5.json
//	ospgen -name 1M-5 -bands -out 1m5-banded.json
//	ospgen -custom -kind 2d -chars 200 -regions 4 -seed 7 -out small.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"eblow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospgen: ")

	var (
		list    = flag.Bool("list", false, "list the named benchmarks and exit")
		name    = flag.String("name", "", "named benchmark to generate (e.g. 1D-2, 2M-7)")
		custom  = flag.Bool("custom", false, "generate a custom reduced-size instance instead of a named one")
		kind    = flag.String("kind", "1d", "custom instance kind: 1d or 2d")
		chars   = flag.Int("chars", 200, "custom instance character count")
		regions = flag.Int("regions", 4, "custom instance region (CP) count")
		seed    = flag.Int64("seed", 1, "custom instance seed")
		bands   = flag.Bool("bands", false, "attach per-column-cell row bands (one band per region) so the 1D planner runs in banded MCC mode")
		out     = flag.String("out", "", "output JSON path, or - for stdout (required unless -list)")
	)
	flag.Parse()

	if *list {
		for _, n := range eblow.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}

	var in *eblow.Instance
	var err error
	switch {
	case *custom:
		k := eblow.OneD
		if *kind == "2d" {
			k = eblow.TwoD
		}
		in = eblow.SmallInstance(k, *chars, *regions, *seed)
	case *name != "":
		in, err = eblow.Benchmark(*name)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -list, -name or -custom is required")
	}

	if *bands {
		if in.RowGroups = eblow.CellBands(in); in.RowGroups == nil {
			log.Fatalf("-bands needs a 1DOSP instance with at least 2 regions and one row per region; %s is %s with %d regions and %d rows",
				in.Name, in.Kind, in.NumRegions, in.NumRows())
		}
	}

	switch *out {
	case "":
		log.Fatal("-out is required")
	case "-":
		// Streams straight to stdout (handy for piping into curl against
		// cmd/eblowd) without a temp file round-trip.
		if err := eblow.EncodeInstance(os.Stdout, in); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := eblow.WriteInstance(*out, in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s, %d characters, %d regions, stencil %dx%d\n",
		*out, in.Kind, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)
}
