// Command eblow plans an e-beam stencil for one OSP instance. The instance
// either comes from a JSON file (see cmd/ospgen) or is one of the named
// synthetic benchmarks; the planner is any strategy of the unified solver
// registry — E-BLOW by default, with the prior-work baselines, the exact
// ILP and a parallel portfolio race of all of them available for
// comparison. For a long-running batched service over the same solvers see
// cmd/eblowd.
//
// A portfolio race can be learned: -learn conditions the race order, the
// pruning of never-winning heavy entrants and the worker split on the
// statistics accumulated in -learn-path (and records this race's outcome
// back); -learn-report prints the learned schedule for the instance's shape
// without solving anything.
//
// Examples:
//
//	eblow -solvers
//	eblow -benchmark 1M-2
//	eblow -instance design.json -algorithm greedy
//	eblow -benchmark 1T-3 -algorithm exact -timeout 30s
//	eblow -benchmark 2D-1 -algorithm portfolio -timeout 10s -workers 8
//	eblow -benchmark 2D-1 -algorithm portfolio -learn -learn-path stats.json
//	eblow -benchmark 2D-1 -learn-report -learn-path stats.json
//	eblow -benchmark 2D-1 -out plan.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"eblow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eblow: ")

	var (
		instancePath = flag.String("instance", "", "path to an instance JSON file")
		benchmark    = flag.String("benchmark", "", "name of a built-in benchmark (e.g. 1M-2); see cmd/ospgen -list")
		algorithm    = flag.String("algorithm", "eblow", "planner: any registered solver (see -solvers); heuristic24 maps to sa24 on 2D instances")
		listSolvers  = flag.Bool("solvers", false, "list the registered solvers and exit")
		timeout      = flag.Duration("timeout", 30*time.Second, "time limit for exact / annealing / portfolio planners")
		seed         = flag.Int64("seed", 1, "seed for randomized planners")
		workers      = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel solver stages (results are worker-count independent unless -timeout truncates an annealing run)")
		restarts     = flag.Int("restarts", 1, "independent annealing restarts for the SA-based planners (best-of wins)")
		outPath      = flag.String("out", "", "write the resulting stencil plan as JSON to this file")
		learnFlag    = flag.Bool("learn", false, "learned portfolio scheduling: order/prune the race by the win rates in -learn-path and record this race back (portfolio only)")
		learnPath    = flag.String("learn-path", eblow.DefaultLearnPath, "JSON statistics store for -learn / -learn-report")
		learnReport  = flag.Bool("learn-report", false, "print the learned race schedule for the instance's shape (static vs learned order, per-strategy stats) and exit")
	)
	flag.Parse()

	if *listSolvers {
		for _, info := range eblow.SolverInfos() {
			fmt.Printf("%-12s %-6s %s\n", info.Name, info.Kinds(), info.Doc)
		}
		return
	}

	in, err := loadInstance(*instancePath, *benchmark)
	if err != nil {
		log.Fatal(err)
	}

	if *learnReport {
		if err := reportLearned(in, *learnPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Ctrl-C cancels the planner instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sol, err := run(ctx, in, *algorithm, *seed, *workers, *restarts, *timeout, *learnFlag, *learnPath)
	if err != nil {
		log.Fatal(err)
	}

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("instance      : %s (%s, %d characters, %d regions, stencil %dx%d)\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)
	fmt.Printf("algorithm     : %s\n", sol.Algorithm)
	fmt.Printf("characters on stencil: %d\n", sol.NumSelected())
	fmt.Printf("writing time  : %d (pure VSB: %d, reduction %.1f%%)\n",
		sol.WritingTime, vsbOnly, 100*(1-float64(sol.WritingTime)/float64(vsbOnly)))
	fmt.Printf("region times  : %v\n", sol.RegionTimes)
	fmt.Printf("runtime       : %s\n", sol.Runtime)

	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *outPath)
	}
}

func loadInstance(path, benchmark string) (*eblow.Instance, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -instance or -benchmark, not both")
	case path != "":
		return eblow.ReadInstance(path)
	case benchmark != "":
		return eblow.Benchmark(benchmark)
	default:
		return nil, fmt.Errorf("one of -instance or -benchmark is required")
	}
}

// reportLearned prints the learned race schedule for the instance's shape:
// the static registry order next to the order the statistics in the store
// would race, the pruned entrants, and each strategy's per-shape record.
func reportLearned(in *eblow.Instance, path string) error {
	store, err := eblow.OpenLearn(path)
	if err != nil {
		return err
	}
	shape := eblow.Fingerprint(in)
	plan := eblow.PlanRace(store, in)
	fmt.Printf("instance      : %s (%s)\n", in.Name, in.Kind)
	fmt.Printf("shape         : %s\n", shape)
	fmt.Printf("store         : %s\n", path)
	fmt.Printf("static order  : %v\n", eblow.PortfolioStrategies(in.Kind))
	if plan.Learned {
		fmt.Printf("learned order : %v\n", plan.Order)
		if len(plan.Pruned) > 0 {
			fmt.Printf("pruned        : %v\n", plan.Pruned)
		} else {
			fmt.Printf("pruned        : none\n")
		}
	} else {
		fmt.Printf("learned order : (cold store for this shape; static order applies)\n")
	}
	if ss := store.Shape(shape); ss != nil {
		fmt.Printf("recorded races: %d\n", ss.Races)
		for _, name := range eblow.PortfolioStrategies(in.Kind) {
			s := ss.Strategies[name]
			if s == nil {
				continue
			}
			fmt.Printf("  %-12s %d/%d wins, best T=%d, avg %dms\n",
				name, s.Wins, s.Races, s.BestObjective, s.TotalElapsedMs/int64(s.Races))
		}
	} else {
		fmt.Printf("recorded races: 0\n")
	}
	return nil
}

// run dispatches through the unified solver API: every algorithm name is a
// registry strategy, configured by one Params struct.
func run(ctx context.Context, in *eblow.Instance, algorithm string, seed int64, workers, restarts int, timeout time.Duration, learn bool, learnPath string) (*eblow.Solution, error) {
	// Historical shorthand: -algorithm heuristic24 meant the prior-work
	// baseline of the instance kind, which for 2D is the SA floorplanner.
	if algorithm == "heuristic24" && in.Kind == eblow.TwoD {
		algorithm = "sa24"
	}
	if _, ok := eblow.Lookup(algorithm); !ok {
		return nil, fmt.Errorf("unknown algorithm %q (have %s)", algorithm, strings.Join(eblow.SolverNames(), ", "))
	}

	p := eblow.Params{
		Workers:    workers,
		Seed:       seed,
		Restarts:   restarts,
		Strategies: []string{algorithm},
	}
	if learn {
		if algorithm != "portfolio" {
			log.Printf("note: -learn only affects the portfolio strategy, not %q", algorithm)
		}
		p.Learn = true
		p.LearnPath = learnPath
	}
	switch algorithm {
	case "eblow":
		// The 1D planner runs to completion like it always has. For 2D the
		// deadline truncates the annealing schedule to its best plan so
		// far; only a deadline that expires before annealing even starts
		// (pre-filter/clustering overrun) surfaces an error.
		if in.Kind == eblow.TwoD {
			p.Deadline = timeout
		}
	case "exact", "portfolio", "sa24":
		p.Deadline = timeout
	}

	res, err := eblow.SolveWith(ctx, in, p)
	if err != nil {
		return nil, err
	}
	if len(res.Runs) > 0 {
		names := make([]string, len(res.Runs))
		for i, r := range res.Runs {
			names[i] = r.Name
		}
		fmt.Printf("portfolio     : %s won among %v (race took %s)\n",
			res.Strategy, names, res.Elapsed.Round(time.Millisecond))
	}
	if res.Plan != nil && res.Plan.Learned {
		fmt.Printf("learned plan  : order %v, pruned %v (shape %s)\n",
			res.Plan.Order, res.Plan.Pruned, res.Plan.Shape)
	}
	if res.Exact != nil && !res.Exact.Optimal {
		fmt.Printf("note: ILP hit its limit; solution is feasible but not proven optimal\n")
	}
	return res.Solution, nil
}
