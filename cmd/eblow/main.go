// Command eblow plans an e-beam stencil for one OSP instance. The instance
// either comes from a JSON file (see cmd/ospgen) or is one of the named
// synthetic benchmarks; the planner is E-BLOW by default, with the
// prior-work baselines, the exact ILP and a parallel portfolio race of all
// of them available for comparison.
//
// Examples:
//
//	eblow -benchmark 1M-2
//	eblow -instance design.json -algorithm greedy
//	eblow -benchmark 1T-3 -algorithm exact -timeout 30s
//	eblow -benchmark 2D-1 -algorithm portfolio -timeout 10s -workers 8
//	eblow -benchmark 2D-1 -out plan.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"eblow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eblow: ")

	var (
		instancePath = flag.String("instance", "", "path to an instance JSON file")
		benchmark    = flag.String("benchmark", "", "name of a built-in benchmark (e.g. 1M-2); see cmd/ospgen -list")
		algorithm    = flag.String("algorithm", "eblow", "planner: eblow, greedy, heuristic24, row25, exact, portfolio")
		timeout      = flag.Duration("timeout", 30*time.Second, "time limit for exact / annealing / portfolio planners")
		seed         = flag.Int64("seed", 1, "seed for randomized planners")
		workers      = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel solver stages (results are worker-count independent unless -timeout truncates an annealing run)")
		restarts     = flag.Int("restarts", 1, "independent annealing restarts for the SA-based planners (best-of wins)")
		outPath      = flag.String("out", "", "write the resulting stencil plan as JSON to this file")
	)
	flag.Parse()

	in, err := loadInstance(*instancePath, *benchmark)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the planner instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sol, err := run(ctx, in, *algorithm, *seed, *workers, *restarts, *timeout)
	if err != nil {
		log.Fatal(err)
	}

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("instance      : %s (%s, %d characters, %d regions, stencil %dx%d)\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)
	fmt.Printf("algorithm     : %s\n", sol.Algorithm)
	fmt.Printf("characters on stencil: %d\n", sol.NumSelected())
	fmt.Printf("writing time  : %d (pure VSB: %d, reduction %.1f%%)\n",
		sol.WritingTime, vsbOnly, 100*(1-float64(sol.WritingTime)/float64(vsbOnly)))
	fmt.Printf("region times  : %v\n", sol.RegionTimes)
	fmt.Printf("runtime       : %s\n", sol.Runtime)

	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *outPath)
	}
}

func loadInstance(path, benchmark string) (*eblow.Instance, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -instance or -benchmark, not both")
	case path != "":
		return eblow.ReadInstance(path)
	case benchmark != "":
		return eblow.Benchmark(benchmark)
	default:
		return nil, fmt.Errorf("one of -instance or -benchmark is required")
	}
}

func run(ctx context.Context, in *eblow.Instance, algorithm string, seed int64, workers, restarts int, timeout time.Duration) (*eblow.Solution, error) {
	switch algorithm {
	case "eblow":
		if in.Kind == eblow.OneD {
			opt := eblow.Defaults1D()
			opt.Workers = workers
			sol, _, err := eblow.Solve1D(ctx, in, opt)
			return sol, err
		}
		opt := eblow.Defaults2D()
		opt.Seed = seed
		opt.TimeLimit = timeout
		opt.Workers = workers
		opt.Restarts = restarts
		sol, _, err := eblow.Solve2D(ctx, in, opt)
		return sol, err
	case "portfolio":
		res, err := eblow.SolvePortfolio(ctx, in, eblow.PortfolioOptions{
			Workers:  workers,
			Timeout:  timeout,
			Seed:     seed,
			Restarts: restarts,
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("portfolio     : %s won among %s (race took %s)\n",
			res.Winner, eblow.PortfolioStrategies(in.Kind), res.Elapsed.Round(time.Millisecond))
		return res.Best, nil
	case "greedy":
		if in.Kind == eblow.OneD {
			return eblow.Greedy1D(in)
		}
		return eblow.Greedy2D(in)
	case "heuristic24":
		if in.Kind == eblow.OneD {
			return eblow.Heuristic1D(ctx, in, seed)
		}
		return eblow.AnnealedBaseline2D(ctx, in, seed, timeout)
	case "row25":
		if in.Kind != eblow.OneD {
			return nil, fmt.Errorf("row25 only applies to 1DOSP instances")
		}
		return eblow.RowHeuristic1D(in)
	case "exact":
		var res *eblow.ExactResult
		var err error
		if in.Kind == eblow.OneD {
			res, err = eblow.Exact1D(ctx, in, timeout)
		} else {
			res, err = eblow.Exact2D(ctx, in, timeout)
		}
		if err != nil {
			return nil, err
		}
		if res.Solution == nil {
			return nil, fmt.Errorf("exact ILP found no solution within %s (status %s)", timeout, res.Status)
		}
		if !res.Optimal {
			fmt.Printf("note: ILP hit its limit; solution is feasible but not proven optimal\n")
		}
		return res.Solution, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}
