// Command eblow plans an e-beam stencil for one OSP instance. The instance
// either comes from a JSON file (see cmd/ospgen) or is one of the named
// synthetic benchmarks; the planner is E-BLOW by default, with the
// prior-work baselines and the exact ILP available for comparison.
//
// Examples:
//
//	eblow -benchmark 1M-2
//	eblow -instance design.json -algorithm greedy
//	eblow -benchmark 1T-3 -algorithm exact -timeout 30s
//	eblow -benchmark 2D-1 -out plan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"eblow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eblow: ")

	var (
		instancePath = flag.String("instance", "", "path to an instance JSON file")
		benchmark    = flag.String("benchmark", "", "name of a built-in benchmark (e.g. 1M-2); see cmd/ospgen -list")
		algorithm    = flag.String("algorithm", "eblow", "planner: eblow, greedy, heuristic24, row25, exact")
		timeout      = flag.Duration("timeout", 30*time.Second, "time limit for exact / annealing planners")
		seed         = flag.Int64("seed", 1, "seed for randomized planners")
		outPath      = flag.String("out", "", "write the resulting stencil plan as JSON to this file")
	)
	flag.Parse()

	in, err := loadInstance(*instancePath, *benchmark)
	if err != nil {
		log.Fatal(err)
	}

	sol, err := run(in, *algorithm, *seed, *timeout)
	if err != nil {
		log.Fatal(err)
	}

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("instance      : %s (%s, %d characters, %d regions, stencil %dx%d)\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)
	fmt.Printf("algorithm     : %s\n", sol.Algorithm)
	fmt.Printf("characters on stencil: %d\n", sol.NumSelected())
	fmt.Printf("writing time  : %d (pure VSB: %d, reduction %.1f%%)\n",
		sol.WritingTime, vsbOnly, 100*(1-float64(sol.WritingTime)/float64(vsbOnly)))
	fmt.Printf("region times  : %v\n", sol.RegionTimes)
	fmt.Printf("runtime       : %s\n", sol.Runtime)

	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *outPath)
	}
}

func loadInstance(path, benchmark string) (*eblow.Instance, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -instance or -benchmark, not both")
	case path != "":
		return eblow.ReadInstance(path)
	case benchmark != "":
		return eblow.Benchmark(benchmark)
	default:
		return nil, fmt.Errorf("one of -instance or -benchmark is required")
	}
}

func run(in *eblow.Instance, algorithm string, seed int64, timeout time.Duration) (*eblow.Solution, error) {
	switch algorithm {
	case "eblow":
		if in.Kind == eblow.OneD {
			sol, _, err := eblow.Solve1D(in, eblow.Defaults1D())
			return sol, err
		}
		opt := eblow.Defaults2D()
		opt.Seed = seed
		opt.TimeLimit = timeout
		sol, _, err := eblow.Solve2D(in, opt)
		return sol, err
	case "greedy":
		if in.Kind == eblow.OneD {
			return eblow.Greedy1D(in)
		}
		return eblow.Greedy2D(in)
	case "heuristic24":
		if in.Kind == eblow.OneD {
			return eblow.Heuristic1D(in, seed)
		}
		return eblow.AnnealedBaseline2D(in, seed, timeout)
	case "row25":
		if in.Kind != eblow.OneD {
			return nil, fmt.Errorf("row25 only applies to 1DOSP instances")
		}
		return eblow.RowHeuristic1D(in)
	case "exact":
		var res *eblow.ExactResult
		var err error
		if in.Kind == eblow.OneD {
			res, err = eblow.Exact1D(in, timeout)
		} else {
			res, err = eblow.Exact2D(in, timeout)
		}
		if err != nil {
			return nil, err
		}
		if res.Solution == nil {
			return nil, fmt.Errorf("exact ILP found no solution within %s (status %s)", timeout, res.Status)
		}
		if !res.Optimal {
			fmt.Printf("note: ILP hit its limit; solution is feasible but not proven optimal\n")
		}
		return res.Solution, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}
