// Command eblow plans an e-beam stencil for one OSP instance. The instance
// either comes from a JSON file (see cmd/ospgen) or is one of the named
// synthetic benchmarks; the planner is any strategy of the unified solver
// registry — E-BLOW by default, with the prior-work baselines, the exact
// ILP and a parallel portfolio race of all of them available for
// comparison. For a long-running batched service over the same solvers see
// cmd/eblowd.
//
// Examples:
//
//	eblow -solvers
//	eblow -benchmark 1M-2
//	eblow -instance design.json -algorithm greedy
//	eblow -benchmark 1T-3 -algorithm exact -timeout 30s
//	eblow -benchmark 2D-1 -algorithm portfolio -timeout 10s -workers 8
//	eblow -benchmark 2D-1 -out plan.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"eblow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eblow: ")

	var (
		instancePath = flag.String("instance", "", "path to an instance JSON file")
		benchmark    = flag.String("benchmark", "", "name of a built-in benchmark (e.g. 1M-2); see cmd/ospgen -list")
		algorithm    = flag.String("algorithm", "eblow", "planner: any registered solver (see -solvers); heuristic24 maps to sa24 on 2D instances")
		listSolvers  = flag.Bool("solvers", false, "list the registered solvers and exit")
		timeout      = flag.Duration("timeout", 30*time.Second, "time limit for exact / annealing / portfolio planners")
		seed         = flag.Int64("seed", 1, "seed for randomized planners")
		workers      = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel solver stages (results are worker-count independent unless -timeout truncates an annealing run)")
		restarts     = flag.Int("restarts", 1, "independent annealing restarts for the SA-based planners (best-of wins)")
		outPath      = flag.String("out", "", "write the resulting stencil plan as JSON to this file")
	)
	flag.Parse()

	if *listSolvers {
		for _, info := range eblow.SolverInfos() {
			fmt.Printf("%-12s %-6s %s\n", info.Name, info.Kinds(), info.Doc)
		}
		return
	}

	in, err := loadInstance(*instancePath, *benchmark)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the planner instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sol, err := run(ctx, in, *algorithm, *seed, *workers, *restarts, *timeout)
	if err != nil {
		log.Fatal(err)
	}

	vsbOnly := in.WritingTime(make([]bool, in.NumCharacters()))
	fmt.Printf("instance      : %s (%s, %d characters, %d regions, stencil %dx%d)\n",
		in.Name, in.Kind, in.NumCharacters(), in.NumRegions, in.StencilWidth, in.StencilHeight)
	fmt.Printf("algorithm     : %s\n", sol.Algorithm)
	fmt.Printf("characters on stencil: %d\n", sol.NumSelected())
	fmt.Printf("writing time  : %d (pure VSB: %d, reduction %.1f%%)\n",
		sol.WritingTime, vsbOnly, 100*(1-float64(sol.WritingTime)/float64(vsbOnly)))
	fmt.Printf("region times  : %v\n", sol.RegionTimes)
	fmt.Printf("runtime       : %s\n", sol.Runtime)

	if *outPath != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *outPath)
	}
}

func loadInstance(path, benchmark string) (*eblow.Instance, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -instance or -benchmark, not both")
	case path != "":
		return eblow.ReadInstance(path)
	case benchmark != "":
		return eblow.Benchmark(benchmark)
	default:
		return nil, fmt.Errorf("one of -instance or -benchmark is required")
	}
}

// run dispatches through the unified solver API: every algorithm name is a
// registry strategy, configured by one Params struct.
func run(ctx context.Context, in *eblow.Instance, algorithm string, seed int64, workers, restarts int, timeout time.Duration) (*eblow.Solution, error) {
	// Historical shorthand: -algorithm heuristic24 meant the prior-work
	// baseline of the instance kind, which for 2D is the SA floorplanner.
	if algorithm == "heuristic24" && in.Kind == eblow.TwoD {
		algorithm = "sa24"
	}
	if _, ok := eblow.Lookup(algorithm); !ok {
		return nil, fmt.Errorf("unknown algorithm %q (have %s)", algorithm, strings.Join(eblow.SolverNames(), ", "))
	}

	p := eblow.Params{
		Workers:    workers,
		Seed:       seed,
		Restarts:   restarts,
		Strategies: []string{algorithm},
	}
	switch algorithm {
	case "eblow":
		// The 1D planner runs to completion like it always has. For 2D the
		// deadline truncates the annealing schedule to its best plan so
		// far; only a deadline that expires before annealing even starts
		// (pre-filter/clustering overrun) surfaces an error.
		if in.Kind == eblow.TwoD {
			p.Deadline = timeout
		}
	case "exact", "portfolio", "sa24":
		p.Deadline = timeout
	}

	res, err := eblow.SolveWith(ctx, in, p)
	if err != nil {
		return nil, err
	}
	if len(res.Runs) > 0 {
		names := make([]string, len(res.Runs))
		for i, r := range res.Runs {
			names[i] = r.Name
		}
		fmt.Printf("portfolio     : %s won among %v (race took %s)\n",
			res.Strategy, names, res.Elapsed.Round(time.Millisecond))
	}
	if res.Exact != nil && !res.Exact.Optimal {
		fmt.Printf("note: ILP hit its limit; solution is feasible but not proven optimal\n")
	}
	return res.Solution, nil
}
