package twod

import (
	"context"
	"testing"
	"testing/quick"

	"eblow/internal/core"
	"eblow/internal/gen"
)

func TestSolveSmall2D(t *testing.T) {
	in := gen.Small(core.TwoD, 60, 2, 5)
	sol, stats, err := Solve(context.Background(), in, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("nothing selected")
	}
	if stats.Candidates != 60 || stats.AfterFilter == 0 || stats.Clusters == 0 {
		t.Errorf("odd stats: %+v", stats)
	}
	empty := in.WritingTime(make([]bool, in.NumCharacters()))
	if sol.WritingTime >= empty {
		t.Errorf("no improvement over pure VSB: %d >= %d", sol.WritingTime, empty)
	}
	if sol.Algorithm != "E-BLOW-2D" {
		t.Errorf("algorithm %q", sol.Algorithm)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, _, err := Solve(context.Background(), &core.Instance{}, Defaults()); err == nil {
		t.Error("empty instance accepted")
	}
	in1d := gen.Small(core.OneD, 20, 1, 3)
	if _, _, err := Solve(context.Background(), in1d, Defaults()); err == nil {
		t.Error("1D instance accepted by 2D planner")
	}
}

func TestClusteringReducesBlockCount(t *testing.T) {
	in := gen.Small(core.TwoD, 120, 2, 9)
	_, with, err := Solve(context.Background(), in, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.DisableClustering = true
	_, without, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if with.Clusters >= without.Clusters {
		t.Errorf("clustering did not reduce block count: %d vs %d", with.Clusters, without.Clusters)
	}
	if with.ClusteredAway == 0 {
		t.Error("no characters were clustered")
	}
}

func TestPreFilterLimitsCandidates(t *testing.T) {
	in := gen.Small(core.TwoD, 200, 2, 13)
	opt := Defaults()
	opt.PreFilterFactor = 0.5
	_, stats, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AfterFilter >= stats.Candidates {
		t.Errorf("pre-filter kept everything: %+v", stats)
	}
	opt.DisablePreFilter = true
	_, stats2, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.AfterFilter != stats2.Candidates {
		t.Errorf("disabled pre-filter still filtered: %+v", stats2)
	}
}

func TestSimilarRespectsBound(t *testing.T) {
	in := &core.Instance{
		Kind: core.TwoD, StencilWidth: 500, StencilHeight: 500, NumRegions: 1,
		Characters: []core.Character{
			{ID: 0, Width: 40, Height: 40, BlankLeft: 5, BlankRight: 5, BlankTop: 5, BlankBottom: 5, VSBShots: 10, Repeats: []int64{10}},
			{ID: 1, Width: 42, Height: 41, BlankLeft: 5, BlankRight: 5, BlankTop: 4, BlankBottom: 5, VSBShots: 10, Repeats: []int64{11}},
			{ID: 2, Width: 80, Height: 40, BlankLeft: 5, BlankRight: 5, BlankTop: 5, BlankBottom: 5, VSBShots: 10, Repeats: []int64{10}},
			{ID: 3, Width: 40, Height: 40, BlankLeft: 5, BlankRight: 5, BlankTop: 5, BlankBottom: 5, VSBShots: 10, Repeats: []int64{100}},
		},
	}
	profits := in.StaticProfits()
	if !similar(in, profits, 0, 1, 0.2) {
		t.Error("near-identical characters should be similar")
	}
	if similar(in, profits, 0, 2, 0.2) {
		t.Error("characters with very different widths should not be similar")
	}
	if similar(in, profits, 0, 3, 0.2) {
		t.Error("characters with very different profits should not be similar")
	}
}

func TestAbsorbKeepsMemberGeometryLegal(t *testing.T) {
	in := &core.Instance{
		Kind: core.TwoD, StencilWidth: 1000, StencilHeight: 1000, NumRegions: 2,
	}
	for i := 0; i < 3; i++ {
		in.Characters = append(in.Characters, core.Character{
			ID: i, Width: 40, Height: 42, BlankLeft: 5, BlankRight: 6, BlankTop: 4, BlankBottom: 5,
			VSBShots: 9, Repeats: []int64{int64(3 + i), int64(2 * i)},
		})
	}
	profits := in.StaticProfits()
	reds := make([][]int64, in.NumCharacters())
	for id := range reds {
		r := make([]int64, in.NumRegions)
		for c := range r {
			r[c] = in.Reduction(id, c)
		}
		reds[id] = r
	}
	cl := singletonCluster(in, profits, reds, 0)
	if !absorb(in, profits, reds, &cl, 1) || !absorb(in, profits, reds, &cl, 2) {
		t.Fatal("merging identical characters must succeed")
	}
	if len(cl.members) != 3 || len(cl.offsets) != 3 {
		t.Fatalf("cluster bookkeeping wrong: %+v", cl)
	}
	// Members placed at their offsets (cluster at the origin) must form a
	// legal 2D placement.
	sol := &core.Solution{Selected: make([]bool, in.NumCharacters())}
	for mi, id := range cl.members {
		sol.Selected[id] = true
		sol.Placements = append(sol.Placements, core.Placement{Char: id, X: cl.offsets[mi][0], Y: cl.offsets[mi][1]})
	}
	if err := sol.Validate(in); err != nil {
		t.Errorf("cluster members overlap illegally: %v", err)
	}
	// Cluster reductions must be the sum of member reductions.
	for r := 0; r < in.NumRegions; r++ {
		var want int64
		for _, id := range cl.members {
			want += in.Reduction(id, r)
		}
		if cl.reds[r] != want {
			t.Errorf("cluster reductions wrong in region %d", r)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	d := o.withDefaults()
	if d.SimilarityBound != 0.2 || d.PreFilterFactor != 2.5 || d.MaxClusterMembers != 3 {
		t.Errorf("defaults: %+v", d)
	}
	custom := Options{SimilarityBound: 0.5}
	if custom.withDefaults().SimilarityBound != 0.5 {
		t.Error("explicit bound overridden")
	}
}

// Property: solutions are always valid and never worse than the empty
// stencil, across random small instances.
func TestSolveAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		in := gen.Small(core.TwoD, 40, 3, seed)
		opt := Defaults()
		opt.MoveBudget = 3000
		opt.Seed = seed
		sol, _, err := Solve(context.Background(), in, opt)
		if err != nil {
			return false
		}
		if err := sol.Validate(in); err != nil {
			return false
		}
		return sol.WritingTime <= in.WritingTime(make([]bool, in.NumCharacters()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
