// Package twod implements the E-BLOW planner for the 2DOSP problem (Fig. 9
// of the paper): a profit pre-filter, KD-tree based clustering of character
// candidates with similar geometry and profit (Algorithm 4), and a
// simulated-annealing fixed-outline floorplanner over the clustered blocks
// (sequence pair representation). After annealing, clusters are expanded
// back into their member characters and the placement is legalised with the
// exact pairwise blank-sharing rule.
package twod

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"eblow/internal/core"
	"eblow/internal/floorsa"
	"eblow/internal/kdtree"
	"eblow/internal/pack2d"
	"eblow/internal/par"
)

// Options configures the E-BLOW 2D planner. The zero value is completed with
// the paper's settings (similarity bound 0.2).
type Options struct {
	// SimilarityBound is the relative difference allowed by the clustering
	// similarity test of Eqn. (8); the paper uses 0.2.
	SimilarityBound float64
	// PreFilterFactor keeps PreFilterFactor * (stencil area / average
	// character area) candidates before clustering; 0 means 2.5.
	PreFilterFactor float64
	// MaxClusterMembers bounds how many characters one cluster may absorb.
	MaxClusterMembers int
	// MoveBudget is the annealing move budget (0 = automatic).
	MoveBudget int
	// Seed seeds the annealer.
	Seed int64
	// TimeLimit bounds the annealing run (0 = no limit).
	TimeLimit time.Duration
	// Restarts is the number of independent annealing restarts raced inside
	// the floorplanner (best-of wins); 0 means 1.
	Restarts int
	// Workers bounds the number of goroutines used by the parallel stages
	// (block preparation, annealing restarts, and the clustered-vs-fallback
	// race). 0 means one worker per CPU; 1 forces the sequential flow. As
	// long as no TimeLimit or context deadline truncates the annealing
	// schedule, the planner returns the same solution for every worker
	// count; a truncated schedule stops on wall clock, which no worker
	// count can make reproducible.
	Workers int

	// EnableClustering and EnablePreFilter exist for the ablation benches;
	// the E-BLOW flow keeps both enabled.
	DisableClustering bool
	DisablePreFilter  bool
}

// Defaults returns the paper's parameter settings.
func Defaults() Options {
	return Options{
		SimilarityBound:   0.2,
		PreFilterFactor:   2.5,
		MaxClusterMembers: 3,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.SimilarityBound <= 0 {
		o.SimilarityBound = d.SimilarityBound
	}
	if o.PreFilterFactor <= 0 {
		o.PreFilterFactor = d.PreFilterFactor
	}
	if o.MaxClusterMembers <= 0 {
		o.MaxClusterMembers = d.MaxClusterMembers
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// workerCount resolves Options.Workers: 0 means one worker per CPU.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// cluster is a group of characters packed side by side that the annealer
// treats as one block.
type cluster struct {
	block   pack2d.Block
	members []int // character ids
	offsets [][2]int
	profit  float64
	reds    []int64
}

// Stats reports what the clustering stage did; exposed for tests and the
// benchmark harness.
type Stats struct {
	Candidates    int
	AfterFilter   int
	Clusters      int
	ClusteredAway int
}

// Solve runs the E-BLOW 2D flow and returns the stencil plan plus clustering
// statistics. The context cancels the run: an already-done context returns
// ctx.Err() before any work happens and a context that expires before the
// annealing stage surfaces ctx.Err(); one that expires during annealing
// truncates the schedule like Options.TimeLimit and the best legalised
// floorplan found so far is still returned. The flow is deterministic for
// a given seed regardless of opt.Workers, provided no TimeLimit or
// deadline cuts the annealing schedule short (see Options.Workers).
func Solve(ctx context.Context, in *core.Instance, opt Options) (*core.Solution, *Stats, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if in.Kind != core.TwoD {
		return nil, nil, fmt.Errorf("twod: instance %q is not a 2DOSP instance", in.Name)
	}
	opt = opt.withDefaults()
	workers := opt.workerCount()
	stats := &Stats{Candidates: in.NumCharacters()}

	profits := in.StaticProfits()

	// Pre-filter: keep the most profitable candidates, bounded by a factor
	// of the estimated stencil capacity.
	ids := candidateIDs(in)
	if !opt.DisablePreFilter {
		ids = preFilter(in, ids, profits, opt.PreFilterFactor)
	}
	stats.AfterFilter = len(ids)

	// Per-candidate reduction vectors feed both the clustered blocks and the
	// fallback blocks; each slot is owned by one candidate, so the worker
	// pool fills them without coordination.
	reds := make([][]int64, in.NumCharacters())
	par.For(workers, len(ids), func(k int) {
		id := ids[k]
		r := make([]int64, in.NumRegions)
		for c := range r {
			r[c] = in.Reduction(id, c)
		}
		reds[id] = r
	})

	// Clustering (Algorithm 4).
	clusters := buildClusters(in, ids, profits, reds, opt, stats)
	stats.Clusters = len(clusters)
	stats.ClusteredAway = stats.AfterFilter - len(clusters)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Annealing over the clustered blocks with the MCC (max) objective, and
	// — because clustering occasionally costs more stencil area than it
	// saves in search effort — the plain per-character shelf floorplan as a
	// fallback. The two packings are independent, so they race on the
	// worker pool; whichever selection writes faster wins.
	blocks := make([]floorsa.Block, len(clusters))
	for k, cl := range clusters {
		blocks[k] = floorsa.Block{Block: cl.block, Reductions: cl.reds}
	}
	charBlocks := make([]floorsa.Block, len(ids))
	par.For(workers, len(ids), func(k int) {
		id := ids[k]
		c := in.Characters[id]
		charBlocks[k] = floorsa.Block{
			Block: pack2d.Block{
				W: c.Width, H: c.Height,
				BlankL: c.BlankLeft, BlankR: c.BlankRight,
				BlankT: c.BlankTop, BlankB: c.BlankBottom,
			},
			Reductions: reds[id],
		}
	})
	vsb := in.VSBTime()
	var res, fallback *floorsa.Result
	par.Do(workers,
		func() {
			res = floorsa.Pack(ctx, blocks, vsb, in.StencilWidth, in.StencilHeight, floorsa.Options{
				MoveBudget: opt.MoveBudget,
				Seed:       opt.Seed,
				TimeLimit:  opt.TimeLimit,
				Restarts:   opt.Restarts,
				Workers:    workers,
			})
		},
		func() {
			fallback = floorsa.Pack(ctx, charBlocks, vsb, in.StencilWidth, in.StencilHeight, floorsa.Options{
				Seed:       opt.Seed,
				SkipAnneal: true,
			})
		},
	)
	// No ctx check here on purpose: a deadline that expired during the
	// annealing truncated the schedule exactly like Options.TimeLimit, and
	// Pack already legalised the best floorplan found — returning it beats
	// discarding finished work (the portfolio relies on this to let a
	// truncated E-BLOW entrant still compete).

	sol := &core.Solution{Selected: make([]bool, in.NumCharacters())}
	if res.WritingTime <= fallback.WritingTime {
		// Expand clusters back into characters.
		for k, cl := range clusters {
			if !res.Inside[k] {
				continue
			}
			for mi, id := range cl.members {
				sol.Selected[id] = true
				sol.Placements = append(sol.Placements, core.Placement{
					Char: id,
					X:    res.X[k] + cl.offsets[mi][0],
					Y:    res.Y[k] + cl.offsets[mi][1],
				})
			}
		}
	} else {
		for k, id := range ids {
			if !fallback.Inside[k] {
				continue
			}
			sol.Selected[id] = true
			sol.Placements = append(sol.Placements, core.Placement{Char: id, X: fallback.X[k], Y: fallback.Y[k]})
		}
	}
	sol.Finalize(in, "E-BLOW-2D", time.Since(start))
	return sol, stats, nil
}

func candidateIDs(in *core.Instance) []int {
	var ids []int
	for i, c := range in.Characters {
		if c.Width <= in.StencilWidth && c.Height <= in.StencilHeight {
			ids = append(ids, i)
		}
	}
	return ids
}

// preFilter keeps the top candidates by profit per area.
func preFilter(in *core.Instance, ids []int, profits []float64, factor float64) []int {
	if len(ids) == 0 {
		return ids
	}
	var totalArea int64
	for _, i := range ids {
		totalArea += int64(in.Characters[i].Width) * int64(in.Characters[i].Height)
	}
	avgArea := float64(totalArea) / float64(len(ids))
	limit := int(factor * float64(in.StencilWidth) * float64(in.StencilHeight) / avgArea)
	if limit < 1 {
		limit = 1
	}
	if limit >= len(ids) {
		return ids
	}
	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		da := profits[sorted[a]] / float64(in.Characters[sorted[a]].Width*in.Characters[sorted[a]].Height)
		db := profits[sorted[b]] / float64(in.Characters[sorted[b]].Width*in.Characters[sorted[b]].Height)
		if da != db {
			return da > db
		}
		return sorted[a] < sorted[b]
	})
	return sorted[:limit]
}

// feature embeds a character into the 5-dimensional space used by the
// similarity test: width, height, horizontal blank, vertical blank, profit.
func feature(in *core.Instance, profits []float64, id int) kdtree.Point {
	c := in.Characters[id]
	return kdtree.Point{
		float64(c.Width),
		float64(c.Height),
		float64(c.BlankLeft+c.BlankRight) / 2,
		float64(c.BlankTop+c.BlankBottom) / 2,
		profits[id],
	}
}

// similar implements the similarity condition (8) of the paper: relative
// differences in size, blanks and profit are all within the bound.
func similar(in *core.Instance, profits []float64, i, j int, bound float64) bool {
	a, b := in.Characters[i], in.Characters[j]
	relOK := func(x, y float64) bool {
		if y == 0 {
			return x == 0
		}
		return math.Abs(x-y)/math.Abs(y) <= bound
	}
	if !relOK(float64(a.Width), float64(b.Width)) || !relOK(float64(a.Height), float64(b.Height)) {
		return false
	}
	sha := float64(a.BlankLeft+a.BlankRight) / 2
	shb := float64(b.BlankLeft+b.BlankRight) / 2
	sva := float64(a.BlankTop+a.BlankBottom) / 2
	svb := float64(b.BlankTop+b.BlankBottom) / 2
	if !relOK(sha, shb) || !relOK(sva, svb) {
		return false
	}
	return relOK(profits[i], profits[j])
}

// buildClusters runs Algorithm 4: candidates sorted by profit repeatedly
// absorb similar unclustered candidates found through KD-tree range queries.
func buildClusters(in *core.Instance, ids []int, profits []float64, reds [][]int64, opt Options, stats *Stats) []cluster {
	clusters := make([]cluster, 0, len(ids))
	if opt.DisableClustering {
		for _, id := range ids {
			clusters = append(clusters, singletonCluster(in, profits, reds, id))
		}
		return clusters
	}

	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		if profits[sorted[a]] != profits[sorted[b]] {
			return profits[sorted[a]] > profits[sorted[b]]
		}
		return sorted[a] < sorted[b]
	})

	// KD-tree over the feature vectors of all unclustered candidates.
	points := make([]kdtree.Point, len(sorted))
	for k, id := range sorted {
		points[k] = feature(in, profits, id)
	}
	tree := kdtree.Build(5, points, sorted)

	clustered := make(map[int]bool, len(sorted))

	for _, id := range sorted {
		if clustered[id] {
			continue
		}
		cl := singletonCluster(in, profits, reds, id)
		clustered[id] = true
		tree.Delete(id)
		// Grow the cluster while similar unclustered candidates exist.
		for len(cl.members) < opt.MaxClusterMembers {
			f := feature(in, profits, id)
			lo := make(kdtree.Point, len(f))
			hi := make(kdtree.Point, len(f))
			for d := range f {
				delta := math.Abs(f[d]) * opt.SimilarityBound
				lo[d], hi[d] = f[d]-delta, f[d]+delta
			}
			found := -1
			for _, cand := range tree.Range(lo, hi) {
				if !clustered[cand] && similar(in, profits, id, cand, opt.SimilarityBound) &&
					absorb(in, profits, reds, &cl, cand) {
					found = cand
					break
				}
			}
			if found < 0 {
				break
			}
			clustered[found] = true
			tree.Delete(found)
		}
		clusters = append(clusters, cl)
	}
	return clusters
}

func singletonCluster(in *core.Instance, profits []float64, reds [][]int64, id int) cluster {
	c := in.Characters[id]
	return cluster{
		block: pack2d.Block{
			W: c.Width, H: c.Height,
			BlankL: c.BlankLeft, BlankR: c.BlankRight,
			BlankT: c.BlankTop, BlankB: c.BlankBottom,
		},
		members: []int{id},
		offsets: [][2]int{{0, 0}},
		profit:  profits[id],
		reds:    append([]int64(nil), reds[id]...),
	}
}

// absorb merges character id into the cluster, choosing the orientation
// (horizontal or vertical stacking) that wastes less bounding-box area. It
// reports whether the merge happened: merges that would waste more than a
// few percent of the combined area are rejected, because a padded cluster
// block squanders stencil space the annealer can never recover.
//
// Blank margins of the merged block: the side along the merge direction
// keeps the outer member's exact blank (only that member touches the edge);
// the perpendicular sides take the minimum over both members, which keeps
// every later sharing decision with a neighbouring block conservative and
// therefore legal.
func absorb(in *core.Instance, profits []float64, reds [][]int64, cl *cluster, id int) bool {
	c := in.Characters[id]

	hShare := min(cl.block.BlankR, c.BlankLeft)
	hW := cl.block.W + c.Width - hShare
	hH := max(cl.block.H, c.Height)

	vShare := min(cl.block.BlankT, c.BlankBottom)
	vW := max(cl.block.W, c.Width)
	vH := cl.block.H + c.Height - vShare

	memberArea := cl.block.W*cl.block.H + c.Width*c.Height
	horizontal := hW*hH <= vW*vH
	mergedArea := vW * vH
	if horizontal {
		mergedArea = hW * hH
	}
	const maxWasteFraction = 0.06
	if float64(mergedArea-memberArea) > maxWasteFraction*float64(mergedArea) {
		return false
	}

	if horizontal {
		cl.offsets = append(cl.offsets, [2]int{cl.block.W - hShare, 0})
		cl.block.W, cl.block.H = hW, hH
		cl.block.BlankR = c.BlankRight
		cl.block.BlankT = min(cl.block.BlankT, c.BlankTop)
		cl.block.BlankB = min(cl.block.BlankB, c.BlankBottom)
	} else {
		cl.offsets = append(cl.offsets, [2]int{0, cl.block.H - vShare})
		cl.block.W, cl.block.H = vW, vH
		cl.block.BlankT = c.BlankTop
		cl.block.BlankL = min(cl.block.BlankL, c.BlankLeft)
		cl.block.BlankR = min(cl.block.BlankR, c.BlankRight)
	}
	cl.members = append(cl.members, id)
	cl.profit += profits[id]
	for r := range cl.reds {
		cl.reds[r] += reds[id][r]
	}
	return true
}
