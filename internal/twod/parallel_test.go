package twod

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
)

// Same seed, 1 worker vs several, with multi-start annealing: identical
// plan. Run with -race to exercise the parallel restarts and the
// clustered-vs-fallback race.
func TestSolveDeterministicAcrossWorkerCounts(t *testing.T) {
	in := gen.Small(core.TwoD, 80, 2, 31)
	var ref *core.Solution
	for _, workers := range []int{1, 2, 8} {
		opt := Defaults()
		opt.Seed = 3
		opt.MoveBudget = 4000
		opt.Restarts = 3
		opt.Workers = workers
		sol, _, err := Solve(context.Background(), in, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatalf("workers=%d produced invalid solution: %v", workers, err)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.WritingTime != ref.WritingTime {
			t.Errorf("workers=%d changed writing time: %d vs %d", workers, sol.WritingTime, ref.WritingTime)
		}
		if !reflect.DeepEqual(sol.Selected, ref.Selected) || !reflect.DeepEqual(sol.Placements, ref.Placements) {
			t.Errorf("workers=%d changed the plan", workers)
		}
	}
}

// More restarts can only improve the best-of selection on the exact
// evaluation, never regress it, because every restart is evaluated and the
// shelf fallback is always in the comparison.
func TestRestartsNeverRegress(t *testing.T) {
	in := gen.Small(core.TwoD, 60, 2, 7)
	base := Defaults()
	base.Seed = 1
	base.MoveBudget = 3000
	one, _, err := Solve(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Restarts = 4
	many, _, err := Solve(context.Background(), in, multi)
	if err != nil {
		t.Fatal(err)
	}
	if many.WritingTime > one.WritingTime {
		t.Errorf("4 restarts (T=%d) worse than 1 (T=%d)", many.WritingTime, one.WritingTime)
	}
}

// A deadline that expires during the annealing stage truncates the schedule
// like Options.TimeLimit: the solver returns the best legalised plan found
// so far rather than discarding finished work.
func TestDeadlineDuringAnnealReturnsBestSoFar(t *testing.T) {
	in := gen.Small(core.TwoD, 120, 2, 19)
	opt := Defaults()
	opt.Seed = 1
	opt.MoveBudget = 50_000_000 // would run for minutes uncut
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	sol, _, err := Solve(ctx, in, opt)
	if err != nil {
		// Only tolerable if the deadline fired before annealing began
		// (pathologically slow machine).
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected error: %v", err)
		}
		t.Skipf("deadline fired before the annealing stage: %v", err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("truncated solve returned an invalid plan: %v", err)
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := gen.Small(core.TwoD, 50, 2, 5)
	start := time.Now()
	_, _, err := Solve(ctx, in, Defaults())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled solve took %s", d)
	}
}
