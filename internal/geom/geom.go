// Package geom provides small geometric primitives (rectangles and
// intervals) shared by the 1D and 2D stencil planners.
package geom

import "fmt"

// Rect is an axis-aligned rectangle identified by its lower-left corner
// (X, Y) and its extent (W, H). All coordinates are in the same length unit
// used by the stencil description (micrometres in the shipped benchmarks).
type Rect struct {
	X, Y, W, H int
}

// Right returns the x coordinate of the right edge.
func (r Rect) Right() int { return r.X + r.W }

// Top returns the y coordinate of the top edge.
func (r Rect) Top() int { return r.Y + r.H }

// Area returns the area of the rectangle.
func (r Rect) Area() int64 { return int64(r.W) * int64(r.H) }

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return s.X >= r.X && s.Y >= r.Y && s.Right() <= r.Right() && s.Top() <= r.Top()
}

// Overlaps reports whether the interiors of r and s intersect. Touching
// edges do not count as an overlap.
func (r Rect) Overlaps(s Rect) bool {
	return r.X < s.Right() && s.X < r.Right() && r.Y < s.Top() && s.Y < r.Top()
}

// Intersection returns the intersection of r and s and whether it is
// non-empty (has positive area).
func (r Rect) Intersection(s Rect) (Rect, bool) {
	x1 := max(r.X, s.X)
	y1 := max(r.Y, s.Y)
	x2 := min(r.Right(), s.Right())
	y2 := min(r.Top(), s.Top())
	if x2 <= x1 || y2 <= y1 {
		return Rect{}, false
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}, true
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X, r.Y, r.W, r.H)
}

// Interval is a closed-open 1D interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Len returns the length of the interval (zero if degenerate or inverted).
func (iv Interval) Len() int {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Overlaps reports whether two intervals share interior points.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(o Interval) int {
	lo := max(iv.Lo, o.Lo)
	hi := min(iv.Hi, o.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
