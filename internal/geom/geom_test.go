package geom

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 10, H: 20}
	if r.Right() != 11 {
		t.Errorf("Right() = %d, want 11", r.Right())
	}
	if r.Top() != 22 {
		t.Errorf("Top() = %d, want 22", r.Top())
	}
	if r.Area() != 200 {
		t.Errorf("Area() = %d, want 200", r.Area())
	}
	if r.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestRectContains(t *testing.T) {
	outer := Rect{X: 0, Y: 0, W: 100, H: 100}
	cases := []struct {
		name string
		in   Rect
		want bool
	}{
		{"inside", Rect{10, 10, 20, 20}, true},
		{"equal", Rect{0, 0, 100, 100}, true},
		{"touching edge", Rect{80, 80, 20, 20}, true},
		{"spills right", Rect{90, 10, 20, 20}, false},
		{"spills top", Rect{10, 90, 20, 20}, false},
		{"negative origin", Rect{-1, 0, 10, 10}, false},
	}
	for _, c := range cases {
		if got := outer.Contains(c.in); got != c.want {
			t.Errorf("%s: Contains(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"identical", Rect{0, 0, 10, 10}, true},
		{"partial", Rect{5, 5, 10, 10}, true},
		{"touching edge", Rect{10, 0, 10, 10}, false},
		{"touching corner", Rect{10, 10, 10, 10}, false},
		{"disjoint", Rect{20, 20, 5, 5}, false},
		{"contained", Rect{2, 2, 3, 3}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%s: Overlaps(%v) = %v, want %v", c.name, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("%s: symmetric Overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected non-empty intersection")
	}
	want := Rect{5, 5, 5, 5}
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	if _, ok := a.Intersection(Rect{10, 10, 5, 5}); ok {
		t.Error("touching corner should have empty intersection")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{0, 10}
	cases := []struct {
		b       Interval
		overlap int
	}{
		{Interval{5, 15}, 5},
		{Interval{10, 20}, 0},
		{Interval{-5, 0}, 0},
		{Interval{-5, 3}, 3},
		{Interval{2, 8}, 6},
		{Interval{0, 10}, 10},
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); got != c.overlap {
			t.Errorf("Overlap(%v, %v) = %d, want %d", a, c.b, got, c.overlap)
		}
		wantOverlaps := c.overlap > 0
		if got := a.Overlaps(c.b); got != wantOverlaps {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, wantOverlaps)
		}
	}
}

func TestIntervalLen(t *testing.T) {
	if (Interval{3, 7}).Len() != 4 {
		t.Error("Len of [3,7) should be 4")
	}
	if (Interval{7, 3}).Len() != 0 {
		t.Error("inverted interval should have length 0")
	}
}

// Property: intersection is symmetric and contained in both rectangles.
func TestRectIntersectionProperties(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(aw) + 1, int(ah) + 1}
		b := Rect{int(bx), int(by), int(bw) + 1, int(bh) + 1}
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 {
			if !a.Contains(i1) || !b.Contains(i1) {
				return false
			}
			if !a.Overlaps(b) {
				return false
			}
		} else if a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interval overlap length is symmetric and bounded by both lengths.
func TestIntervalOverlapProperties(t *testing.T) {
	f := func(alo int8, alen uint8, blo int8, blen uint8) bool {
		a := Interval{int(alo), int(alo) + int(alen)}
		b := Interval{int(blo), int(blo) + int(blen)}
		ov := a.Overlap(b)
		if ov != b.Overlap(a) {
			return false
		}
		return ov <= a.Len() && ov <= b.Len() && ov >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
