// Fixture for globalrand: the service layer is not a solver package, so
// global-RNG use here is out of scope.
package service

import "math/rand"

func retryJitter() int {
	return rand.Intn(100)
}
