// Fixture for globalrand: eblow/internal/anneal is a solver package, so
// global-RNG use here is in scope.
package anneal

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `math/rand.Intn draws from the process-global RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle draws from the process-global RNG`
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // injected seed: allowed
}

func drawFromInjected(rng *rand.Rand) int {
	return rng.Intn(10) // method on an injected *rand.Rand: allowed
}

func wallClockSeed() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want `RNG seeded from the wall clock`
	return rand.New(src)
}

func waived() float64 {
	//eblow:nondet-ok perf-probe jitter only; the value never reaches a plan or objective
	return rand.Float64()
}
