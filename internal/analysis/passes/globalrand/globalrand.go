// Package globalrand flags use of the process-global math/rand state in
// solver packages. The global RNG is shared, racy under concurrency, and
// (since Go 1.20) randomly seeded — all three break reproducible solves.
// Kernels must draw randomness from an injected *rand.Rand constructed
// from Params.Seed, and RNG seeds must never come from the wall clock.
package globalrand

import (
	"go/ast"

	"eblow/internal/analysis"
)

// Analyzer flags global math/rand functions and wall-clock RNG seeds in
// solver packages.
var Analyzer = &analysis.Analyzer{
	Name:     "globalrand",
	Contract: "seeded-rng",
	Doc: "flag top-level math/rand functions and time-seeded sources in " +
		"solver packages; RNGs must be *rand.Rand values derived from Params.Seed",
	Run: run,
}

// constructors create RNG state rather than drawing from the global
// stream; they are fine as long as their seed is not the wall clock.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSolverPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.PkgFuncOf(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			name := fn.Name()
			if !constructors[name] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the process-global RNG (shared, racy, randomly seeded); inject a *rand.Rand derived from Params.Seed instead",
					fn.Pkg().Path(), name)
				return true
			}
			if seedArg := wallClockArg(pass, call); seedArg != nil {
				pass.Reportf(seedArg.Pos(),
					"RNG seeded from the wall clock; derive seeds from Params.Seed so runs are reproducible")
			}
			return true
		})
	}
	return nil
}

// wallClockArg returns the first argument of an RNG constructor call that
// references package time (e.g. time.Now().UnixNano()), or nil.
func wallClockArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		leaks := false
		ast.Inspect(arg, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				leaks = true
			}
			return !leaks
		})
		if leaks {
			return arg
		}
	}
	return nil
}
