package globalrand_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{globalrand.Analyzer},
		"eblow/internal/anneal", "eblow/internal/service")
}
