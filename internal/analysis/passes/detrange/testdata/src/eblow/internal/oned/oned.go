// Fixture for detrange: eblow/internal/oned is a deterministic kernel, so
// map ranges here are in scope.
package oned

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		total += v
	}
	return total
}

func sortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-and-sort idiom: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate in order: out of the analyzer's scope
		total += v
	}
	return total
}

func waived(m map[string]int) int {
	n := 0
	//eblow:nondet-ok pure counting; iteration order cannot reach the result
	for range m {
		n++
	}
	return n
}

// waiverOneSite shows a waiver suppressing exactly the next line: the
// second range is outside its reach and still flagged.
func waiverOneSite(a, b map[string]int) (int, int) {
	x, y := 0, 0
	//eblow:nondet-ok pure counting; covers only the range directly below
	for range a {
		x++
	}
	for range b { // want `range over map b has nondeterministic iteration order`
		y++
	}
	return x, y
}
