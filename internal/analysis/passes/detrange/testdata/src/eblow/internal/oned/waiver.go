// Waiver bookkeeping: a bare waiver and a waiver with nothing to suppress
// are themselves diagnostics.
package oned

//eblow:nondet-ok // want `waiver requires a reason`
func bareWaiver(m map[string]int) int {
	n := 0
	for range m { // want `range over map m has nondeterministic iteration order`
		n++
	}
	return n
}

//eblow:nondet-ok nothing on the next line needs this // want `unused waiver`
func noViolationHere() int { return 1 }
