// Fixture for detrange: eblow/internal/gen is an instance generator, not a
// deterministic kernel, so map ranges here are out of scope.
package gen

func anyOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
