package detrange_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{detrange.Analyzer},
		"eblow/internal/oned", "eblow/internal/gen")
}
