// Package detrange flags `range` over a map in the deterministic solver
// kernels. Map iteration order is randomized per run, so anything an
// unsorted map range feeds — merge order, candidate order, output order —
// breaks the bit-identical-results contract the engine holds at any
// worker count.
//
// The canonical fix is the collect-and-sort idiom, which the analyzer
// recognizes and allows:
//
//	var keys []string
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys { ... }
//
// A range whose order provably cannot be observed (pure counting, building
// another map) is waived in place with //eblow:nondet-ok <reason>.
package detrange

import (
	"go/ast"
	"go/types"

	"eblow/internal/analysis"
)

// Analyzer flags nondeterministic map iteration in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name:     "detrange",
	Contract: "determinism",
	Doc: "flag `range` over a map in the deterministic solver kernels " +
		"unless the loop only collects keys that are sorted immediately after",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return
			}
			if isSortedCollect(pass, rs, stack) {
				return
			}
			pass.Reportf(rs.X.Pos(),
				"range over map %s has nondeterministic iteration order; collect the keys and sort them first, or waive with //eblow:nondet-ok <reason>",
				types.ExprString(rs.X))
		})
	}
	return nil
}

// isSortedCollect reports whether rs is the collect half of the
// collect-and-sort idiom: every statement in its body appends to local
// slices, and every one of those slices is sorted by a sort/slices call
// later in the same enclosing statement list.
func isSortedCollect(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	// Every body statement must be `s = append(s, ...)`.
	if len(rs.Body.List) == 0 {
		return false
	}
	targets := make(map[types.Object]bool)
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}

	// Find the statement list holding rs and scan what follows it for a
	// sort of every collected slice.
	following := followingStmts(rs, stack)
	if following == nil {
		return false
	}
	for _, stmt := range following {
		for obj := range targets {
			if sortsObject(pass, stmt, obj) {
				delete(targets, obj)
			}
		}
	}
	return len(targets) == 0
}

// followingStmts returns the statements after rs in its directly enclosing
// statement list (block or case clause), or nil if there is none.
func followingStmts(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	var list []ast.Stmt
	switch parent := stack[len(stack)-1].(type) {
	case *ast.BlockStmt:
		list = parent.List
	case *ast.CaseClause:
		list = parent.Body
	case *ast.CommClause:
		list = parent.Body
	default:
		return nil
	}
	for i, s := range list {
		if s == ast.Stmt(rs) {
			return list[i+1:]
		}
	}
	return nil
}

// sortsObject reports whether stmt contains a call into package sort or
// slices whose arguments reference obj.
func sortsObject(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.PkgFuncOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					refs = true
				}
				return !refs
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
