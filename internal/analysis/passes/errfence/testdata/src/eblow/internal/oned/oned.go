// Fixture for errfence: only the facade package is in scope; internal
// packages build bare context for the facade to wrap.
package oned

import "fmt"

func Solve(n int) error {
	return fmt.Errorf("row %d does not fit", n)
}
