// Fixture for errfence: package path "eblow" is the facade, so exported
// error strings here must carry the "eblow: " prefix.
package eblow

import (
	"errors"
	"fmt"
)

// ErrInfeasible is exported and prefixed: allowed.
var ErrInfeasible = errors.New("eblow: no feasible plan")

// ErrNaked is exported but bare.
var ErrNaked = errors.New("no feasible plan") // want `lacks the "eblow: " prefix`

// errInternal is unexported; wrappers add the prefix when they surface it.
var errInternal = errors.New("internal bookkeeping")

func Solve(n int) error {
	if n < 0 {
		return fmt.Errorf("negative stencil count %d", n) // want `lacks the "eblow: " prefix`
	}
	return fmt.Errorf("eblow: solve failed for %d stencils", n)
}

func decode(n int) error {
	// Unexported helper: the sanctioned pattern builds bare context here
	// and lets the exported wrapper prefix it exactly once.
	return fmt.Errorf("decoding instance %d", n)
}

func Decode(n int) error {
	if err := decode(n); err != nil {
		return fmt.Errorf("eblow: %w", err)
	}
	return nil
}

func Waived() error {
	//eblow:nondet-ok transitional message kept verbatim for a golden-file test
	return errors.New("legacy message without prefix")
}
