// Package errfence enforces the facade error contract from the PR 2 API
// redesign: every error string the public eblow package hands to callers
// carries the "eblow: " prefix, so callers can attribute failures and the
// HTTP layer can rely on a stable shape.
//
// The analyzer checks errors.New and fmt.Errorf string literals inside
// exported functions and exported package-level error variables of the
// facade package. Unexported helpers are exempt on purpose — the
// sanctioned pattern builds unprefixed context in a helper and lets each
// exported wrapper add the prefix exactly once:
//
//	func decodeInstance(r io.Reader) (*Instance, error) {
//		... fmt.Errorf("decoding instance: %w", err) ...   // helper: bare
//	}
//	func DecodeInstance(r io.Reader) (*Instance, error) {
//		... fmt.Errorf("eblow: %w", err) ...               // facade: prefixed
//	}
package errfence

import (
	"go/ast"
	"strconv"
	"strings"

	"eblow/internal/analysis"
)

// Analyzer flags unprefixed error strings built in the facade's exported
// surface.
var Analyzer = &analysis.Analyzer{
	Name:     "errfence",
	Contract: "error-prefix",
	Doc: "flag errors.New/fmt.Errorf literals without the \"eblow: \" prefix " +
		"in exported functions and variables of the facade package",
	Run: run,
}

const prefix = "eblow: "

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != analysis.FacadePath {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && d.Name.IsExported() {
					checkErrorLiterals(pass, d.Body)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.IsExported() && i < len(vs.Values) {
							checkErrorLiterals(pass, vs.Values[i])
						}
					}
				}
			}
		}
	}
	return nil
}

// checkErrorLiterals flags error-constructor calls under root whose string
// literal lacks the facade prefix.
func checkErrorLiterals(pass *analysis.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !analysis.IsPkgFunc(pass.TypesInfo, call, "errors", "New") &&
			!analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !strings.HasPrefix(s, prefix) {
			pass.Reportf(lit.Pos(),
				"facade error %q lacks the %q prefix; callers attribute failures by it (build bare context only in unexported helpers)",
				s, prefix)
		}
		return true
	})
}
