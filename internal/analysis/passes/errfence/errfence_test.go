package errfence_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/errfence"
)

func TestErrfence(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{errfence.Analyzer},
		"eblow", "eblow/internal/oned")
}
