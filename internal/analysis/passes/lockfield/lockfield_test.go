package lockfield_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/lockfield"
)

func TestLockfield(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lockfield.Analyzer},
		"eblow/internal/service")
}
