// Package lockfield machine-checks the "guarded by" doc comments on
// struct fields. The service layer documents which mutex protects each
// piece of shared state:
//
//	type Manager struct {
//		mu sync.Mutex
//		// guarded by mu
//		jobs map[string]*job
//	}
//
// Once a field carries that annotation, every access outside a function
// that (somewhere in its body) locks the named mutex on the same receiver
// expression is a diagnostic. The check is deliberately flow-insensitive —
// it asks "does this function take the lock at all", not "is the lock held
// at this statement" — which is cheap, has no false negatives for the
// straight-line service code, and pushes the remaining judgment calls into
// three explicit, reviewable escapes:
//
//   - functions whose name ends in "Locked" assert that their callers hold
//     the lock (the package's existing convention);
//   - accesses to a value the function itself just built from a composite
//     literal are exempt (constructors own their value exclusively);
//   - anything else is waived in place with //eblow:nondet-ok <reason>.
//
// A second annotation, "// immutable after construction", marks fields
// that need no lock because they are never written after their
// constructor returns; for those only writes outside a constructing
// function are flagged. A function literal inherits the locks of the
// function it is written in — a deferred or immediately-invoked closure
// in a locked region runs while the lock is held — EXCEPT when it is
// launched with `go`: a goroutine outlives the critical section, so it
// starts from an empty lock set and must lock for itself.
package lockfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"eblow/internal/analysis"
)

// Analyzer enforces `// guarded by <mu>` and `// immutable after
// construction` field annotations.
var Analyzer = &analysis.Analyzer{
	Name:     "lockfield",
	Contract: "concurrency",
	Doc: "flag accesses to a field annotated `// guarded by <mu>` from " +
		"functions that never lock <mu>, and writes to `// immutable after " +
		"construction` fields outside constructors",
	Run: run,
}

var (
	guardedRe   = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)
	immutableRe = regexp.MustCompile(`immutable after construction`)
)

// A guard is one annotated field.
type guard struct {
	structName string
	field      string
	mu         string // empty for immutable-after-construction fields
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// The suffix is the package's documented assertion that
				// every caller already holds the lock.
				continue
			}
			checkScope(pass, guards, fd.Body, nil)
		}
	}
	return nil
}

// collectGuards parses the field annotations of every struct type in the
// package and validates that a guarded-by annotation names a sibling
// field.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				text := commentText(fld.Doc) + "\n" + commentText(fld.Comment)
				mu := ""
				if m := guardedRe.FindStringSubmatch(text); m != nil {
					// "guarded by mu" and "guarded by m.mu" both name the
					// mutex field mu.
					mu = m[1]
					if i := strings.LastIndexByte(mu, '.'); i >= 0 {
						mu = mu[i+1:]
					}
				}
				immutable := immutableRe.MatchString(text)
				if mu == "" && !immutable {
					continue
				}
				if mu != "" && !fieldNames[mu] {
					pass.Reportf(fld.Pos(),
						"'guarded by %s' names no mutex field of %s; fix the annotation so it can be enforced",
						mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					guards[obj] = guard{structName: ts.Name.Name, field: name.Name, mu: mu}
				}
			}
			return true
		})
	}
	return guards
}

func commentText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return cg.Text()
}

// checkScope checks one function scope (a FuncDecl body or a FuncLit
// body). Nested function literals are collected and checked as their own
// scopes: goroutine bodies start from an empty lock set, every other
// literal inherits the locks held by the scope that contains it.
func checkScope(pass *analysis.Pass, guards map[*types.Var]guard, scope *ast.BlockStmt, inherited map[string]bool) {
	locked := make(map[string]bool) // "<base expr>.<mu>" the scope locks
	for k := range inherited {
		locked[k] = true
	}
	fresh := make(map[types.Object]bool) // locals built from composite literals
	var nested []*ast.FuncLit
	viaGo := make(map[*ast.FuncLit]bool)

	ast.Inspect(scope, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				viaGo[lit] = true
			}
		case *ast.FuncLit:
			nested = append(nested, s)
			return false
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					recordFresh(pass, fresh, s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					recordFresh(pass, fresh, s.Names[i], s.Values[i])
				}
			}
		case *ast.CallExpr:
			if base, mu, ok := lockCall(s); ok {
				locked[types.ExprString(base)+"."+mu] = true
			}
		}
		return true
	})

	analysis.WalkStack(scope, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || insideNested(stack, scope) {
			return
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		fobj, ok := selection.Obj().(*types.Var)
		if !ok {
			return
		}
		g, ok := guards[fobj]
		if !ok {
			return
		}
		base := ast.Unparen(sel.X)
		if id, ok := base.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && fresh[obj] {
				return
			}
		}
		if g.mu == "" {
			// Immutable after construction: reads are free, writes are
			// only legal in the constructing scope (handled by fresh
			// above).
			if isWrite(sel, stack) {
				pass.Reportf(sel.Sel.Pos(),
					"field %s.%s is immutable after construction but written outside its constructor",
					g.structName, g.field)
			}
			return
		}
		if locked[types.ExprString(base)+"."+g.mu] {
			return
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s.%s is guarded by %s but this function never locks %s.%s; lock it, add a 'Locked' suffix if callers hold it, or waive with //eblow:nondet-ok <reason>",
			g.structName, g.field, g.mu, types.ExprString(base), g.mu)
	})

	for _, lit := range nested {
		if viaGo[lit] {
			checkScope(pass, guards, lit.Body, nil)
		} else {
			checkScope(pass, guards, lit.Body, locked)
		}
	}
}

// insideNested reports whether the walk has descended into a function
// literal; those are checked separately with their own lock sets. The
// walk is rooted at the scope's own body, so any literal on the stack is
// strictly nested.
func insideNested(stack []ast.Node, _ *ast.BlockStmt) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// recordFresh marks lhs as constructor-owned when rhs is a composite
// literal (possibly behind &).
func recordFresh(pass *analysis.Pass, fresh map[types.Object]bool, lhs, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	v := ast.Unparen(rhs)
	if u, ok := v.(*ast.UnaryExpr); ok {
		v = ast.Unparen(u.X)
	}
	if _, ok := v.(*ast.CompositeLit); !ok {
		return
	}
	if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
		fresh[obj] = true
	}
}

// lockCall decomposes `<base>.<mu>.Lock()` / `.RLock()` calls.
func lockCall(call *ast.CallExpr) (base ast.Expr, mu string, ok bool) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
		return nil, "", false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return ast.Unparen(inner.X), inner.Sel.Name, true
}

// isWrite reports whether sel is the target of an assignment, an
// inc/dec statement, or has its address taken.
func isWrite(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(parent.X) == ast.Expr(sel)
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	}
	return false
}
