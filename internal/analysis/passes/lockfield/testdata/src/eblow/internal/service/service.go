// Fixture for lockfield: `// guarded by <mu>` and `// immutable after
// construction` field annotations are enforced wherever they appear.
package service

import "sync"

type Manager struct {
	mu sync.Mutex
	// guarded by mu
	jobs map[string]int
	// immutable after construction
	name string
}

func NewManager(name string) *Manager {
	m := &Manager{name: name}
	m.jobs = make(map[string]int) // constructor owns the fresh value: allowed
	return m
}

func (m *Manager) Add(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[id] = 1 // function locks m.mu: allowed
}

func (m *Manager) Racy(id string) int {
	return m.jobs[id] // want `field Manager.jobs is guarded by mu but this function never locks m.mu`
}

// addLocked asserts via its name suffix that callers hold the lock.
func (m *Manager) addLocked(id string) {
	m.jobs[id] = 2
}

func (m *Manager) Rename(n string) {
	m.name = n // want `field Manager.name is immutable after construction but written outside its constructor`
}

func (m *Manager) Name() string {
	return m.name // reading an immutable field needs no lock: allowed
}

func (m *Manager) Deferred(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer func() {
		m.jobs[id] = 3 // deferred closure runs before the unlock: inherits the lock
	}()
}

func (m *Manager) Spawn(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.jobs[id] = 4 // want `field Manager.jobs is guarded by mu but this function never locks m.mu`
	}()
}

func (m *Manager) Waived() int {
	//eblow:nondet-ok approximate stats probe; a torn read is acceptable here
	return len(m.jobs)
}

// Broken demonstrates that an annotation naming a non-existent mutex is
// itself a diagnostic rather than silently unenforced.
type Broken struct {
	// guarded by missing
	data int // want `'guarded by missing' names no mutex field of Broken`
}
