// Fixture for ctxpath: eblow/internal/twod is a solver package, so its
// Solve/Pack/Plan/Run/Multi entry points must propagate their contexts.
package twod

import "context"

func SolveDropped(ctx context.Context, n int) int { // want `SolveDropped accepts ctx but never propagates it`
	return n * 2
}

func SolveUnderscore(_ context.Context, n int) int { // want `SolveUnderscore discards its context parameter`
	return n
}

func PackLost(ctx context.Context, n int) int {
	sub := context.Background() // want `context.Background creates a fresh context inside a function that already receives one`
	_ = sub
	_ = ctx
	return n
}

func SolveGood(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n
}

func SolveDelegating(ctx context.Context, n int) int {
	return solve(ctx, n) // passing ctx down: allowed
}

func solve(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// helper is not an exported entry point, so its unused ctx is tolerated
// (only the Background/TODO "lost context" check applies to it).
func helper(ctx context.Context) int {
	return 0
}

//eblow:nondet-ok the LP inner loop cannot thread a ctx; callers wire lp.Problem.Stop instead
func RunWaived(ctx context.Context, n int) int {
	return n
}
