// Fixture for ctxpath: the service layer is not a solver package, so its
// entry points are out of scope (the HTTP stack has its own ctx rules).
package service

import "context"

func RunJob(ctx context.Context, n int) int {
	return n
}
