package ctxpath_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/ctxpath"
)

func TestCtxpath(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{ctxpath.Analyzer},
		"eblow/internal/twod", "eblow/internal/service")
}
