// Package ctxpath enforces the cancellation contract in solver packages:
// a context handed to a solve/pack/plan entry point must actually reach
// the long-running work.
//
// Two patterns are flagged:
//
//   - a function that has a context.Context parameter but calls
//     context.Background() or context.TODO() in its body — the classic
//     "lost context": downstream work becomes uncancellable even though
//     the caller supplied a context;
//   - an exported entry point (Solve*/Pack*/Plan*/Run*/Multi*) whose
//     context parameter is never referenced at all, so cancellation and
//     deadlines silently do nothing.
//
// Kernels that cannot thread a ctx (e.g. tight LP loops) must instead be
// wired to lp.Problem.Stop by their caller; a site where neither applies
// is waived with //eblow:nondet-ok <reason>.
package ctxpath

import (
	"go/ast"
	"go/types"
	"strings"

	"eblow/internal/analysis"
)

// Analyzer flags lost or unused contexts in solver entry points.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxpath",
	Contract: "cancellation",
	Doc: "flag solver entry points that accept a context.Context but drop " +
		"it (never reference it, or replace it with context.Background/TODO)",
	Run: run,
}

// entryPrefixes are the exported entry-point name prefixes whose ctx
// parameter must be propagated.
var entryPrefixes = []string{"Solve", "Pack", "Plan", "Run", "Multi"}

func run(pass *analysis.Pass) error {
	if !analysis.IsSolverPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) == 0 {
				continue
			}
			checkFreshContext(pass, fd)
			if fd.Name.IsExported() && isEntryPoint(fd.Name.Name) {
				checkPropagated(pass, fd, ctxParams)
			}
		}
	}
	return nil
}

func isEntryPoint(name string) bool {
	for _, p := range entryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// contextParams returns the identifiers of fd's context.Context parameters.
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []*ast.Ident {
	var ids []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		ids = append(ids, field.Names...)
		if len(field.Names) == 0 {
			// Unnamed ctx parameter: unusable by definition; report on
			// entry points via checkPropagated's nil-name path.
			ids = append(ids, nil)
		}
	}
	return ids
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkFreshContext flags context.Background/TODO calls inside a function
// that already has a context parameter.
func checkFreshContext(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if analysis.IsPkgFunc(pass.TypesInfo, call, "context", name) {
				pass.Reportf(call.Pos(),
					"context.%s creates a fresh context inside a function that already receives one; propagate the ctx parameter (or wire lp.Problem.Stop) so cancellation reaches the kernel",
					name)
			}
		}
		return true
	})
}

// checkPropagated flags entry-point ctx parameters that are never
// referenced in the body.
func checkPropagated(pass *analysis.Pass, fd *ast.FuncDecl, ctxParams []*ast.Ident) {
	for _, id := range ctxParams {
		if id == nil || id.Name == "_" {
			pos := fd.Name.Pos()
			if id != nil {
				pos = id.Pos()
			}
			pass.Reportf(pos,
				"%s discards its context parameter; cancellation and deadlines silently do nothing",
				fd.Name.Name)
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if use, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[use] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(id.Pos(),
				"%s accepts ctx but never propagates it; long-running kernels must honor cancellation (pass ctx down, select on ctx.Done, or wire lp.Problem.Stop)",
				fd.Name.Name)
		}
	}
}
