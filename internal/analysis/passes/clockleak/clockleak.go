// Package clockleak keeps the wall clock out of the deterministic solver
// kernels. A previous regression let time.Now reach a WAL result digest
// through Result.Runtime; this analyzer makes the whole class impossible
// at vet time: in kernel packages, time.Now/Since/Until may appear only in
// the timing-trace idiom, where the value can feed an Elapsed field but
// never an objective, a merge key, or a digest.
//
// The allowed idiom is
//
//	start := time.Now()        // timer variable: start, t0, or *Start
//	...
//	res.Elapsed = time.Since(start)
//
// time.Now assigned to a timer-named variable and time.Since of a
// timer-named variable pass; every other wall-clock call is flagged.
// Sanctioned wall-clock behavior (a deadline cutoff that decides when to
// stop searching, never which answer wins) is waived in place with
// //eblow:nondet-ok <reason>.
package clockleak

import (
	"go/ast"
	"strings"

	"eblow/internal/analysis"
)

// Analyzer flags wall-clock reads outside the tracing idiom in
// deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name:     "clockleak",
	Contract: "determinism",
	Doc: "flag time.Now/Since/Until in deterministic solver kernels " +
		"outside the start/Elapsed timing-trace idiom",
	Run: run,
}

// timerName reports whether an identifier names a trace timer.
func timerName(name string) bool {
	return name == "start" || name == "t0" || strings.HasSuffix(name, "Start")
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := analysis.PkgFuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg().Path() != "time" {
				return
			}
			switch fn.Name() {
			case "Now":
				if isTimerAssign(call, stack) {
					return
				}
			case "Since":
				if len(call.Args) == 1 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && timerName(id.Name) {
						return
					}
				}
			case "Until":
				// always flagged
			default:
				// Conversions and constructors (time.Duration, time.Unix,
				// time.Date) are deterministic; only clock reads leak.
				return
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a deterministic kernel; only the tracing idiom (start := time.Now(); X.Elapsed = time.Since(start)) is allowed, so clock values can never reach an objective, a merge key, or a WAL digest",
				fn.Name())
		})
	}
	return nil
}

// isTimerAssign reports whether call is the sole RHS of an assignment or
// declaration to a timer-named variable: `start := time.Now()`.
func isTimerAssign(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		if len(parent.Lhs) != 1 || len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) {
			return false
		}
		id, ok := parent.Lhs[0].(*ast.Ident)
		return ok && timerName(id.Name)
	case *ast.ValueSpec:
		if len(parent.Names) != 1 || len(parent.Values) != 1 || parent.Values[0] != ast.Expr(call) {
			return false
		}
		return timerName(parent.Names[0].Name)
	}
	return false
}
