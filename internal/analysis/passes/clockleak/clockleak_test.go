package clockleak_test

import (
	"testing"

	"eblow/internal/analysis"
	"eblow/internal/analysis/analysistest"
	"eblow/internal/analysis/passes/clockleak"
)

func TestClockleak(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{clockleak.Analyzer},
		"eblow/internal/pack2d", "eblow/internal/service")
}
