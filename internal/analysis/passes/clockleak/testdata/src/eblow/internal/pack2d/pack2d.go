// Fixture for clockleak: eblow/internal/pack2d is a deterministic kernel,
// so wall-clock reads outside the timing-trace idiom are in scope.
package pack2d

import "time"

type Result struct {
	Elapsed time.Duration
}

func Traced() Result {
	start := time.Now() // timing-trace idiom: allowed
	var r Result
	r.Elapsed = time.Since(start)
	return r
}

func TracedT0() time.Duration {
	t0 := time.Now() // t0 is a recognized timer name: allowed
	return time.Since(t0)
}

func Leaky() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock in a deterministic kernel`
}

func SinceNonTimer(stamp time.Time) time.Duration {
	return time.Since(stamp) // want `time.Since reads the wall clock in a deterministic kernel`
}

func UntilDeadline(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock in a deterministic kernel`
}

func Window(n int64) time.Duration {
	return time.Duration(n) * time.Millisecond // conversion, not a clock read: allowed
}

func Waived(deadline time.Time) bool {
	//eblow:nondet-ok deadline cutoff decides when the search stops, never which answer wins
	return time.Now().After(deadline)
}
