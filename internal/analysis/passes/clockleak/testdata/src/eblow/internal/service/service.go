// Fixture for clockleak: the service layer timestamps events on purpose,
// so it is out of scope.
package service

import "time"

func stamp() time.Time {
	return time.Now()
}
