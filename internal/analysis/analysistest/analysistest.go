// Package analysistest runs eblowvet analyzers over small fixture
// packages and checks their diagnostics against expectations written in
// the fixtures themselves, in the style of golang.org/x/tools'
// analysistest (reimplemented here because the module vendors nothing):
//
//	x := m[k] // want `range over map`
//
// A `// want` comment holds one or more Go string literals, each a
// regular expression that must match one diagnostic reported on that
// line. Lines without a want comment must produce no diagnostics, and
// every expectation must be consumed — missing and surplus findings both
// fail the test.
//
// Fixtures live under testdata/src/<importpath>/ relative to the
// analyzer's package. The import path is meaningful: the package is
// type-checked under exactly that path, so scope rules keyed on
// pass.Pkg.Path() (deterministic kernels, the eblow facade) apply to
// fixtures the same way they apply to the real tree. Fixture files may
// import the standard library only.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"eblow/internal/analysis"
)

// expectation is one compiled `// want` pattern, keyed by file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<path> for each import path, type-checks it,
// applies the analyzers through the same waiver-filtering pipeline the
// vettool uses, and diffs the diagnostics against the `// want`
// expectations in the fixture sources.
func Run(t *testing.T, analyzers []*analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, ip := range importPaths {
		runOne(t, analyzers, ip)
	}
}

func runOne(t *testing.T, analyzers []*analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("analysistest: no .go files under %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
	}

	// The source importer type-checks stdlib dependencies from GOROOT
	// source, so the harness needs no compiled export data and no network.
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		// Collect every error so a broken fixture reports all of them at once.
		Error: func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	info := analysis.NewTypesInfo()
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("analysistest: fixture %s does not type-check:\n  %s",
			importPath, strings.Join(typeErrs, "\n  "))
	}

	expects, err := collectWants(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags := analysis.RunPackage(fset, files, pkg, info, analyzers)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if e := matchWant(expects, pos, d.Message); e == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched `// want %s`", e.file, e.line, e.raw)
		}
	}
}

// matchWant consumes the first unmatched expectation on the diagnostic's
// line whose pattern matches the message.
func matchWant(expects []*expectation, pos token.Position, msg string) *expectation {
	for _, e := range expects {
		if e.matched || e.file != pos.Filename || e.line != pos.Line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return e
		}
	}
	return nil
}

// collectWants parses every `// want "re" ...` comment. Patterns are Go
// string literals (quoted or backquoted) so fixtures can write regexps
// without double escaping.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[i+len("// want "):])
				for rest != "" {
					lit, tail, err := scanStringLit(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: rest[:len(rest)-len(tail)]})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return out, nil
}

// scanStringLit splits one leading Go string literal off s.
func scanStringLit(s string) (value, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				v, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return v, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("want pattern must be a quoted or backquoted Go string, got %q", s)
	}
}
