package analysis

// The `go vet -vettool` driver. cmd/go speaks a simple protocol to an
// external vet tool:
//
//   - `tool -V=full` must print an identifying line ending in a build ID;
//     cmd/go hashes it into its action cache key.
//   - `tool -flags` must print a JSON description of the tool's flags so
//     cmd/go can validate pass-through vet flags.
//   - `tool <dir>/vet.cfg` is invoked once per package with a JSON config
//     naming the source files, the import map, and the export-data file of
//     every dependency (compiled by cmd/go into the build cache). The tool
//     type-checks the package, runs its analyzers, prints findings to
//     stderr, writes its (empty — the suite is fact-free) facts file to
//     VetxOutput, and exits nonzero iff it found anything.
//
// x/tools implements this in go/analysis/unitchecker; this is the same
// protocol spoken with only the standard library: the gc export-data
// importer reads the build cache files cmd/go already made for us.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON written by cmd/go next to each package it
// asks the vet tool to check (the fields this driver consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	SucceedOnTypecheckFailure bool
	VetxOnly                  bool
	VetxOutput                string
}

// Main is the entry point of a vettool binary built on this suite. Called
// by cmd/go it speaks the protocol above; called by a human with package
// patterns (or nothing, meaning ./...) it re-executes itself through
// `go vet -vettool` so both spellings share one code path.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags: waivers are source comments, not
			// command-line state, so runs are reproducible from the tree
			// alone.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetCfg(args[0], analyzers))
	}
	os.Exit(execGoVet(args))
}

// printVersion implements -V=full. The build ID hashes the executable so
// cmd/go's vet result cache invalidates whenever the tool changes.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil)[:24])
}

// execGoVet re-invokes the suite through `go vet -vettool=<self>` on the
// given package patterns (default ./...).
func execGoVet(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eblowvet:", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "eblowvet:", err)
		return 1
	}
	return 0
}

// runVetCfg checks one package described by a cmd/go vet.cfg file and
// returns the process exit code: 0 clean, 1 operational failure, 2
// findings.
func runVetCfg(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eblowvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "eblowvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			// The suite exchanges no facts between packages, but cmd/go
			// requires the facts file to exist.
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The contracts bind production code; tests exercise
		// nondeterminism on purpose (and cmd/go hands us the test
		// variant of each requested package).
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx()
		return 0
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	diags := RunPackage(fset, files, pkg, info, analyzers)
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typeCheck type-checks the package from cfg using the export data cmd/go
// compiled for every dependency.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compilerImp := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})

	var typeErrs []error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, typeErrs[0]
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated. Shared with the analysistest harness.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
