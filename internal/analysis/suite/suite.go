// Package suite assembles the eblowvet analyzers. cmd/eblowvet and any
// test that wants the whole gate import this one list so the CI binary
// and local runs can never disagree about what is checked.
package suite

import (
	"eblow/internal/analysis"
	"eblow/internal/analysis/passes/clockleak"
	"eblow/internal/analysis/passes/ctxpath"
	"eblow/internal/analysis/passes/detrange"
	"eblow/internal/analysis/passes/errfence"
	"eblow/internal/analysis/passes/globalrand"
	"eblow/internal/analysis/passes/lockfield"
)

// All returns the full eblowvet suite in diagnostic-stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrange.Analyzer,
		globalrand.Analyzer,
		ctxpath.Analyzer,
		clockleak.Analyzer,
		errfence.Analyzer,
		lockfield.Analyzer,
	}
}
