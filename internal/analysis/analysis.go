// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus the pieces the eblowvet suite shares across its analyzers: the
// //eblow:nondet-ok waiver mechanism, the table of contract-bearing
// packages, and the `go vet -vettool` (unitchecker) protocol driver.
//
// The x/tools module is deliberately not imported: the engine's contracts
// are checked with nothing beyond the standard library, so `go build
// ./cmd/eblowvet` works on a bare toolchain. The API mirrors x/tools
// closely enough that an analyzer written here ports to the real framework
// by changing imports.
//
// Every diagnostic names the contract it enforces and the section of
// docs/INVARIANTS.md that defines it; Reportf appends that trailer
// automatically from the Analyzer's Contract field.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is the anchor of
	// its section in docs/INVARIANTS.md.
	Name string

	// Contract is the short name of the engine contract the analyzer
	// enforces, e.g. "determinism". It appears in every diagnostic.
	Contract string

	// Doc describes what the analyzer reports and how to fix or waive a
	// finding. The first line is a one-line summary.
	Doc string

	// Run applies the check to one package. Diagnostics go through
	// pass.Reportf; the returned error signals an internal analyzer
	// failure, not a finding.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding. The contract trailer ("[<contract> contract —
// docs/INVARIANTS.md#<name>]") is appended so every diagnostic names the
// rule it enforces and where that rule is defined.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if p.Analyzer.Contract != "" {
		msg = fmt.Sprintf("%s [%s contract — docs/INVARIANTS.md#%s]",
			msg, p.Analyzer.Contract, p.Analyzer.Name)
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// WalkStack walks the AST rooted at root, calling fn for every node with
// the stack of its ancestors (outermost first, not including n itself).
// It is the shared helper for analyzers that need a node's enclosing
// statement list or function.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// IsPkgFunc reports whether the call's function is the package-level
// function pkgPath.name, resolved through the type checker (so aliased
// imports and shadowed identifiers are handled correctly). Methods never
// match.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := PkgFuncOf(info, call)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// PkgFuncOf resolves a call to the package-level *types.Func it invokes,
// or nil if the callee is not a package-level function (methods, builtins,
// function-typed variables, conversions).
func PkgFuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
