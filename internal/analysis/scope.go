package analysis

// The contract-bearing package sets. Analyzers consult these by
// pass.Pkg.Path(), so analyzer testdata opts in by living under a
// testdata/src directory that mirrors the real import path.

// deterministicPkgs are the solver kernels whose results must be
// bit-identical for a given (instance, Params) at any worker count:
// no map-iteration order, no wall clock, no global RNG may reach them.
var deterministicPkgs = map[string]bool{
	"eblow/internal/oned":      true,
	"eblow/internal/twod":      true,
	"eblow/internal/ilp":       true,
	"eblow/internal/exact":     true,
	"eblow/internal/lp":        true,
	"eblow/internal/lp/mps":    true,
	"eblow/internal/pack2d":    true,
	"eblow/internal/floorsa":   true,
	"eblow/internal/batch":     true,
	"eblow/internal/seqpair":   true,
	"eblow/internal/anneal":    true,
	"eblow/internal/portfolio": true,
	"eblow/internal/learn":     true,
}

// solverExtraPkgs extend the deterministic set for the RNG and
// cancellation contracts: baselines and the instance generator also must
// draw randomness only from injected, seeded sources and honor ctx.
var solverExtraPkgs = map[string]bool{
	"eblow/internal/baseline": true,
	"eblow/internal/gen":      true,
}

// FacadePath is the public API package whose error strings carry the
// "eblow: " prefix contract.
const FacadePath = "eblow"

// IsDeterministicPkg reports whether path is a deterministic solver kernel.
func IsDeterministicPkg(path string) bool { return deterministicPkgs[path] }

// IsSolverPkg reports whether path is a solver package for the RNG and
// cancellation contracts (the deterministic kernels plus baselines and the
// generator).
func IsSolverPkg(path string) bool {
	return deterministicPkgs[path] || solverExtraPkgs[path]
}
