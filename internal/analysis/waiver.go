package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WaiverMarker is the single waiver mechanism shared by every analyzer in
// the suite. A comment of the form
//
//	//eblow:nondet-ok <reason>
//
// placed on the offending line, or on its own line directly above it,
// suppresses the eblowvet diagnostics for that site. The reason is
// mandatory — a bare waiver is itself a diagnostic — and a waiver that
// suppresses nothing is reported as unused, so stale waivers cannot
// accumulate. See docs/INVARIANTS.md#waivers.
const WaiverMarker = "eblow:nondet-ok"

// A Waiver is one parsed //eblow:nondet-ok comment.
type Waiver struct {
	Pos    token.Pos
	File   string
	Line   int
	Reason string
	used   bool
}

// A WaiverSet indexes a package's waivers by file for suppression lookups.
type WaiverSet struct {
	byFile map[string][]*Waiver
	all    []*Waiver
}

// CollectWaivers parses every //eblow:nondet-ok comment in files.
func CollectWaivers(fset *token.FileSet, files []*ast.File) *WaiverSet {
	ws := &WaiverSet{byFile: make(map[string][]*Waiver)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//"+WaiverMarker)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				reason := strings.TrimSpace(rest)
				// Expectation comments in analyzer testdata share the
				// line; they are not part of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				pos := fset.Position(c.Pos())
				w := &Waiver{Pos: c.Pos(), File: pos.Filename, Line: pos.Line, Reason: reason}
				ws.byFile[w.File] = append(ws.byFile[w.File], w)
				ws.all = append(ws.all, w)
			}
		}
	}
	return ws
}

// Suppress reports whether a diagnostic at p is covered by a waiver, and
// marks the waiver used. A waiver covers its own line (trailing-comment
// form) and the line below it (own-line form). Waivers without a reason
// never suppress — they only produce their own diagnostic.
func (ws *WaiverSet) Suppress(p token.Position) bool {
	for _, w := range ws.byFile[p.Filename] {
		if w.Reason == "" {
			continue
		}
		if p.Line == w.Line || p.Line == w.Line+1 {
			w.used = true
			return true
		}
	}
	return false
}

// Problems returns the waiver bookkeeping diagnostics: waivers missing a
// reason and waivers that suppressed nothing. They are attributed to the
// pseudo-analyzer "waiver".
func (ws *WaiverSet) Problems() []Diagnostic {
	var diags []Diagnostic
	for _, w := range ws.all {
		switch {
		case w.Reason == "":
			diags = append(diags, Diagnostic{
				Pos:      w.Pos,
				Analyzer: "waiver",
				Message:  "waiver requires a reason: //eblow:nondet-ok <why this site is safe> [waiver contract — docs/INVARIANTS.md#waivers]",
			})
		case !w.used:
			diags = append(diags, Diagnostic{
				Pos:      w.Pos,
				Analyzer: "waiver",
				Message:  "unused waiver: no diagnostic here needs waiving; delete it [waiver contract — docs/INVARIANTS.md#waivers]",
			})
		}
	}
	return diags
}

// RunPackage applies analyzers to one type-checked package, filters the
// findings through the package's waivers, appends the waiver bookkeeping
// diagnostics, and returns everything sorted by position. It is the one
// execution path shared by the vettool driver and the analysistest
// harness, so waiver semantics cannot drift between them.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	ws := CollectWaivers(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.report = func(d Diagnostic) {
			if ws.Suppress(fset.Position(d.Pos)) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Pos:      token.NoPos,
				Analyzer: a.Name,
				Message:  "internal error in " + a.Name + ": " + err.Error(),
			})
		}
	}
	diags = append(diags, ws.Problems()...)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}
