// Package kdtree implements a k-d tree over points with integer payload
// identifiers. The 2D planner of E-BLOW uses it to find "similar" character
// candidates during clustering (Algorithm 4 in the paper): each candidate is
// embedded as a feature vector (width, height, blanks, profit) and clustering
// repeatedly performs orthogonal range queries around the current candidate.
//
// Deletion is implemented lazily with tombstones; the tree rebuilds itself
// when more than half of its nodes are tombstones, which keeps both queries
// and amortised deletions cheap for the clustering workload (every candidate
// is deleted at most once).
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

// Point is a k-dimensional coordinate vector.
type Point []float64

type node struct {
	point   Point
	id      int
	axis    int
	deleted bool
	left    *node
	right   *node
}

// Tree is a k-d tree. The zero value is not usable; create trees with New or
// Build.
type Tree struct {
	k        int
	root     *node
	size     int // live (non-deleted) points
	total    int // live + tombstones
	byID     map[int]*node
	rebuilds int
}

// New creates an empty tree for k-dimensional points.
func New(k int) *Tree {
	if k <= 0 {
		panic("kdtree: dimension must be positive")
	}
	return &Tree{k: k, byID: make(map[int]*node)}
}

// Build creates a balanced tree from parallel slices of points and ids.
func Build(k int, points []Point, ids []int) *Tree {
	if len(points) != len(ids) {
		panic("kdtree: points and ids length mismatch")
	}
	t := New(k)
	nodes := make([]*node, len(points))
	for i := range points {
		t.checkDim(points[i])
		if _, dup := t.byID[ids[i]]; dup {
			panic(fmt.Sprintf("kdtree: duplicate id %d", ids[i]))
		}
		nodes[i] = &node{point: points[i], id: ids[i]}
		t.byID[ids[i]] = nodes[i]
	}
	t.root = buildRec(nodes, 0, k)
	t.size = len(points)
	t.total = len(points)
	return t
}

func buildRec(nodes []*node, depth, k int) *node {
	if len(nodes) == 0 {
		return nil
	}
	axis := depth % k
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].point[axis] < nodes[j].point[axis] })
	mid := len(nodes) / 2
	n := nodes[mid]
	n.axis = axis
	n.left = buildRec(append([]*node(nil), nodes[:mid]...), depth+1, k)
	n.right = buildRec(append([]*node(nil), nodes[mid+1:]...), depth+1, k)
	return n
}

func (t *Tree) checkDim(p Point) {
	if len(p) != t.k {
		panic(fmt.Sprintf("kdtree: point has %d dimensions, tree has %d", len(p), t.k))
	}
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.size }

// K returns the dimensionality of the tree.
func (t *Tree) K() int { return t.k }

// Rebuilds returns how many times the tree compacted itself; exposed for
// tests and instrumentation.
func (t *Tree) Rebuilds() int { return t.rebuilds }

// Insert adds a point with the given id. Inserting an id that is already
// present (and not deleted) panics: ids identify character candidates and
// must be unique.
func (t *Tree) Insert(p Point, id int) {
	t.checkDim(p)
	if n, ok := t.byID[id]; ok && !n.deleted {
		panic(fmt.Sprintf("kdtree: duplicate id %d", id))
	}
	nn := &node{point: append(Point(nil), p...), id: id}
	t.byID[id] = nn
	t.size++
	t.total++
	if t.root == nil {
		nn.axis = 0
		t.root = nn
		return
	}
	cur := t.root
	depth := 0
	for {
		axis := depth % t.k
		if p[axis] < cur.point[axis] {
			if cur.left == nil {
				nn.axis = (depth + 1) % t.k
				cur.left = nn
				return
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				nn.axis = (depth + 1) % t.k
				cur.right = nn
				return
			}
			cur = cur.right
		}
		depth++
	}
}

// Delete removes the point with the given id. It reports whether the id was
// present and live.
func (t *Tree) Delete(id int) bool {
	n, ok := t.byID[id]
	if !ok || n.deleted {
		return false
	}
	n.deleted = true
	delete(t.byID, id)
	t.size--
	if t.total > 8 && t.size < t.total/2 {
		t.compact()
	}
	return true
}

// compact rebuilds the tree from the live points only.
func (t *Tree) compact() {
	points := make([]Point, 0, t.size)
	ids := make([]int, 0, t.size)
	var collect func(n *node)
	collect = func(n *node) {
		if n == nil {
			return
		}
		if !n.deleted {
			points = append(points, n.point)
			ids = append(ids, n.id)
		}
		collect(n.left)
		collect(n.right)
	}
	collect(t.root)
	nodes := make([]*node, len(points))
	t.byID = make(map[int]*node, len(points))
	for i := range points {
		nodes[i] = &node{point: points[i], id: ids[i]}
		t.byID[ids[i]] = nodes[i]
	}
	t.root = buildRec(nodes, 0, t.k)
	t.size = len(points)
	t.total = len(points)
	t.rebuilds++
}

// Range returns the ids of all live points p with lo[d] <= p[d] <= hi[d] for
// every dimension d.
func (t *Tree) Range(lo, hi Point) []int {
	t.checkDim(lo)
	t.checkDim(hi)
	var out []int
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		axis := n.axis
		if !n.deleted {
			inside := true
			for d := 0; d < t.k; d++ {
				if n.point[d] < lo[d] || n.point[d] > hi[d] {
					inside = false
					break
				}
			}
			if inside {
				out = append(out, n.id)
			}
		}
		if n.left != nil && n.point[axis] >= lo[axis] {
			visit(n.left)
		}
		if n.right != nil && n.point[axis] <= hi[axis] {
			visit(n.right)
		}
	}
	visit(t.root)
	return out
}

// Nearest returns the id of the live point closest to q in Euclidean
// distance and the distance itself. ok is false when the tree is empty.
func (t *Tree) Nearest(q Point) (id int, dist float64, ok bool) {
	t.checkDim(q)
	bestID := -1
	best := math.Inf(1)
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if !n.deleted {
			d := sqDist(n.point, q)
			if d < best {
				best = d
				bestID = n.id
			}
		}
		axis := n.axis
		diff := q[axis] - n.point[axis]
		var near, far *node
		if diff < 0 {
			near, far = n.left, n.right
		} else {
			near, far = n.right, n.left
		}
		visit(near)
		if diff*diff < best {
			visit(far)
		}
	}
	visit(t.root)
	if bestID < 0 {
		return 0, 0, false
	}
	return bestID, math.Sqrt(best), true
}

func sqDist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
