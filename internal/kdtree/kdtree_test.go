package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 || tr.K() != 2 {
		t.Error("unexpected empty tree state")
	}
	if got := tr.Range(Point{0, 0}, Point{10, 10}); len(got) != 0 {
		t.Errorf("Range on empty tree = %v", got)
	}
	if _, _, ok := tr.Nearest(Point{1, 1}); ok {
		t.Error("Nearest on empty tree should report !ok")
	}
	if tr.Delete(3) {
		t.Error("Delete on empty tree should return false")
	}
}

func TestInsertRangeDelete(t *testing.T) {
	tr := New(2)
	pts := []Point{{1, 1}, {2, 5}, {5, 2}, {8, 8}, {3, 3}}
	for i, p := range pts {
		tr.Insert(p, i)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	got := tr.Range(Point{0, 0}, Point{4, 4})
	sort.Ints(got)
	want := []int{0, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Range = %v, want %v", got, want)
	}
	if !tr.Delete(0) {
		t.Error("Delete(0) should succeed")
	}
	if tr.Delete(0) {
		t.Error("second Delete(0) should fail")
	}
	got = tr.Range(Point{0, 0}, Point{4, 4})
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("Range after delete = %v, want [4]", got)
	}
	if tr.Len() != 4 {
		t.Errorf("Len after delete = %d, want 4", tr.Len())
	}
}

func TestBuildBalanced(t *testing.T) {
	var pts []Point
	var ids []int
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{float64(i), float64(100 - i)})
		ids = append(ids, i)
	}
	tr := Build(2, pts, ids)
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Range(Point{10, 0}, Point{20, 200})
	if len(got) != 11 {
		t.Errorf("Range size = %d, want 11", len(got))
	}
}

func TestNearest(t *testing.T) {
	tr := Build(2, []Point{{0, 0}, {10, 10}, {5, 5}, {-3, 4}}, []int{0, 1, 2, 3})
	id, dist, ok := tr.Nearest(Point{6, 6})
	if !ok || id != 2 {
		t.Errorf("Nearest = %d, want 2", id)
	}
	if math.Abs(dist-math.Sqrt(2)) > 1e-9 {
		t.Errorf("dist = %v, want sqrt(2)", dist)
	}
	tr.Delete(2)
	id, _, ok = tr.Nearest(Point{6, 6})
	if !ok || id != 1 {
		t.Errorf("Nearest after delete = %d, want 1", id)
	}
}

func TestCompaction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 64; i++ {
		tr.Insert(Point{float64(i), float64(i % 7), float64(i % 3)}, i)
	}
	for i := 0; i < 40; i++ {
		tr.Delete(i)
	}
	if tr.Rebuilds() == 0 {
		t.Error("expected at least one compaction after heavy deletion")
	}
	if tr.Len() != 24 {
		t.Errorf("Len = %d, want 24", tr.Len())
	}
	got := tr.Range(Point{0, 0, 0}, Point{100, 100, 100})
	if len(got) != 24 {
		t.Errorf("Range after compaction = %d ids, want 24", len(got))
	}
	// Re-inserting a previously deleted id must be allowed.
	tr.Insert(Point{1, 1, 1}, 5)
	if tr.Len() != 25 {
		t.Errorf("Len after re-insert = %d, want 25", tr.Len())
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero dimension", func() { New(0) })
	assertPanics("dim mismatch insert", func() { New(2).Insert(Point{1}, 0) })
	assertPanics("dim mismatch range", func() { New(2).Range(Point{1}, Point{1, 2}) })
	assertPanics("duplicate id", func() {
		tr := New(1)
		tr.Insert(Point{1}, 7)
		tr.Insert(Point{2}, 7)
	})
	assertPanics("build length mismatch", func() { Build(1, []Point{{1}}, nil) })
}

// linearRange is the reference implementation for the property tests.
func linearRange(pts map[int]Point, lo, hi Point) []int {
	var out []int
	for id, p := range pts {
		ok := true
		for d := range p {
			if p[d] < lo[d] || p[d] > hi[d] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Property: range queries on the tree match a linear scan under random
// interleavings of builds, inserts and deletes.
func TestRangeMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		tr := New(k)
		live := make(map[int]Point)
		nextID := 0
		for op := 0; op < 60; op++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.6:
				p := make(Point, k)
				for d := range p {
					p[d] = float64(rng.Intn(20))
				}
				tr.Insert(p, nextID)
				live[nextID] = p
				nextID++
			default:
				// delete a random live id
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				victim := ids[rng.Intn(len(ids))]
				if !tr.Delete(victim) {
					return false
				}
				delete(live, victim)
			}
		}
		for q := 0; q < 10; q++ {
			lo := make(Point, k)
			hi := make(Point, k)
			for d := range lo {
				a := float64(rng.Intn(20))
				b := float64(rng.Intn(20))
				lo[d], hi[d] = math.Min(a, b), math.Max(a, b)
			}
			got := tr.Range(lo, hi)
			sort.Ints(got)
			want := linearRange(live, lo, hi)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Nearest matches the linear-scan nearest neighbour.
func TestNearestMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		ids := make([]int, n)
		for i := range pts {
			p := make(Point, k)
			for d := range p {
				p[d] = rng.Float64() * 100
			}
			pts[i] = p
			ids[i] = i
		}
		tr := Build(k, pts, ids)
		q := make(Point, k)
		for d := range q {
			q[d] = rng.Float64() * 100
		}
		id, dist, ok := tr.Nearest(q)
		if !ok {
			return false
		}
		bestDist := math.Inf(1)
		for _, p := range pts {
			if d := math.Sqrt(sqDist(p, q)); d < bestDist {
				bestDist = d
			}
		}
		_ = id
		return math.Abs(dist-bestDist) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	pts := make([]Point, n)
	ids := make([]int, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 100, rng.Float64() * 100}
		ids[i] = i
	}
	tr := Build(4, pts, ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pts[i%n]
		lo := Point{c[0] - 50, c[1] - 50, c[2] - 10, c[3] - 10}
		hi := Point{c[0] + 50, c[1] + 50, c[2] + 10, c[3] + 10}
		tr.Range(lo, hi)
	}
}
