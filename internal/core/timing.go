package core

// This file implements the MCC writing-time model of Section 2.1 of the
// paper: region writing times, the max-over-regions objective (Eqn. 1), the
// per-character reduction R_ic, and the dynamic profit function (Eqn. 6)
// used by the successive-rounding and clustering heuristics.

// VSBTime returns T_VSB_c for every region: the writing time when no
// character at all is prepared on the stencil (pure VSB writing).
func (in *Instance) VSBTime() []int64 {
	t := make([]int64, in.NumRegions)
	for _, c := range in.Characters {
		for r, rep := range c.Repeats {
			t[r] += rep * int64(c.VSBShots)
		}
	}
	return t
}

// Reduction returns R_ic = t_ic * (n_i - 1): the writing-time reduction in
// region c obtained by preparing character i on the stencil.
func (in *Instance) Reduction(i, c int) int64 {
	ch := in.Characters[i]
	return ch.Repeats[c] * int64(ch.VSBShots-1)
}

// RegionTimes returns the per-region writing times T_c for a selection
// vector: T_c = T_VSB_c - sum_{i selected} R_ic.
func (in *Instance) RegionTimes(selected []bool) []int64 {
	t := in.VSBTime()
	for i, sel := range selected {
		if !sel {
			continue
		}
		ch := in.Characters[i]
		for r, rep := range ch.Repeats {
			t[r] -= rep * int64(ch.VSBShots-1)
		}
	}
	return t
}

// WritingTime evaluates the MCC objective (Eqn. 1): the maximum region
// writing time under the given selection.
func (in *Instance) WritingTime(selected []bool) int64 {
	return MaxInt64(in.RegionTimes(selected))
}

// Profits computes the dynamic profit value of Eqn. (6) for every character:
//
//	profit_i = sum_c (t_c / t_max) * (n_i - 1) * t_ic
//
// where t_c are the current region writing times. Regions that are currently
// slow therefore weigh more, steering the selection towards balancing the
// MCC system. The returned slice has one entry per character; characters
// already selected still get a profit (callers typically ignore them).
func (in *Instance) Profits(regionTimes []int64) []float64 {
	tmax := MaxInt64(regionTimes)
	profits := make([]float64, len(in.Characters))
	if tmax <= 0 {
		return profits
	}
	for i, c := range in.Characters {
		var p float64
		for r, rep := range c.Repeats {
			w := float64(regionTimes[r]) / float64(tmax)
			p += w * float64(c.VSBShots-1) * float64(rep)
		}
		profits[i] = p
	}
	return profits
}

// StaticProfits returns the selection-independent profit sum_c R_ic, i.e. the
// total writing-time reduction of a character across all regions. It is the
// profit used when region balancing is irrelevant (single-CP systems).
func (in *Instance) StaticProfits() []float64 {
	profits := make([]float64, len(in.Characters))
	for i, c := range in.Characters {
		var p int64
		for _, rep := range c.Repeats {
			p += rep * int64(c.VSBShots-1)
		}
		profits[i] = float64(p)
	}
	return profits
}

// MaxInt64 returns the maximum of a non-empty slice, or 0 for an empty one.
func MaxInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
