package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSolutionFinalizeAndCounts(t *testing.T) {
	in := tinyInstance()
	s := &Solution{Selected: []bool{true, false, true}}
	s.Finalize(in, "test", 3*time.Millisecond)
	if s.Algorithm != "test" || s.Runtime != 3*time.Millisecond {
		t.Error("Finalize did not record metadata")
	}
	if s.WritingTime != in.WritingTime(s.Selected) {
		t.Errorf("WritingTime = %d, want %d", s.WritingTime, in.WritingTime(s.Selected))
	}
	if s.NumSelected() != 2 {
		t.Errorf("NumSelected = %d, want 2", s.NumSelected())
	}
}

func TestValidate1DAcceptsLegalPacking(t *testing.T) {
	in := tinyInstance()
	// Characters 0 and 1: widths 40/40, overlap min(5,8)=5, so the pair packs
	// into 75 <= 100.
	s := &Solution{
		Selected: []bool{true, true, false},
		Rows: []Row{
			{Y: 0, Chars: []int{0, 1}, X: []int{0, 35}},
		},
	}
	if err := s.Validate(in); err != nil {
		t.Fatalf("legal packing rejected: %v", err)
	}
	s.PlacementsFromRows()
	if len(s.Placements) != 2 {
		t.Fatalf("PlacementsFromRows produced %d placements", len(s.Placements))
	}
	if s.Rows[0].Width(in) != 75 {
		t.Errorf("Row width = %d, want 75", s.Rows[0].Width(in))
	}
}

func TestValidate1DRejections(t *testing.T) {
	in := tinyInstance()
	cases := []struct {
		name string
		sol  Solution
		frag string
	}{
		{
			"selection length mismatch",
			Solution{Selected: []bool{true}},
			"selection vector",
		},
		{
			"too many rows",
			Solution{Selected: []bool{false, false, false}, Rows: []Row{{}, {}}},
			"rows exceed",
		},
		{
			"overlap beyond blanks",
			Solution{Selected: []bool{true, true, false}, Rows: []Row{{Chars: []int{0, 1}, X: []int{0, 30}}}},
			"overlap beyond",
		},
		{
			"outside stencil",
			Solution{Selected: []bool{true, false, false}, Rows: []Row{{Chars: []int{0}, X: []int{70}}}},
			"exceeds stencil width",
		},
		{
			"placed but not selected",
			Solution{Selected: []bool{false, false, false}, Rows: []Row{{Chars: []int{0}, X: []int{0}}}},
			"not selected",
		},
		{
			"selected but not placed",
			Solution{Selected: []bool{true, false, false}, Rows: []Row{{Chars: []int{}, X: []int{}}}},
			"not placed",
		},
		{
			"duplicate placement",
			Solution{Selected: []bool{true, false, false}, Rows: []Row{{Chars: []int{0, 0}, X: []int{0, 40}}}},
			"more than once",
		},
		{
			"unsorted row",
			Solution{Selected: []bool{true, true, false}, Rows: []Row{{Chars: []int{0, 1}, X: []int{50, 0}}}},
			"not ordered",
		},
	}
	for _, c := range cases {
		err := c.sol.Validate(in)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func twoDInstance() *Instance {
	return &Instance{
		Name:          "tiny2d",
		Kind:          TwoD,
		StencilWidth:  100,
		StencilHeight: 100,
		NumRegions:    1,
		Characters: []Character{
			{ID: 0, Width: 40, Height: 40, BlankLeft: 5, BlankRight: 5, BlankTop: 5, BlankBottom: 5, VSBShots: 10, Repeats: []int64{3}},
			{ID: 1, Width: 40, Height: 40, BlankLeft: 10, BlankRight: 10, BlankTop: 10, BlankBottom: 10, VSBShots: 5, Repeats: []int64{2}},
			{ID: 2, Width: 30, Height: 30, BlankLeft: 2, BlankRight: 2, BlankTop: 2, BlankBottom: 2, VSBShots: 8, Repeats: []int64{4}},
		},
	}
}

func TestValidate2DAcceptsBlankSharing(t *testing.T) {
	in := twoDInstance()
	// Characters 0 and 1 share blanks: bounding boxes overlap by
	// min(right blank of 0, left blank of 1) = 5 in x, and the gap between
	// the pattern areas equals max(5, 10) = 10, so neither pattern intrudes
	// into the other character's box.
	s := &Solution{
		Selected: []bool{true, true, false},
		Placements: []Placement{
			{Char: 0, X: 0, Y: 0},
			{Char: 1, X: 35, Y: 0},
		},
	}
	if err := s.Validate(in); err != nil {
		t.Fatalf("legal 2D placement rejected: %v", err)
	}
}

func TestValidate2DRejectsPatternIntoBlank(t *testing.T) {
	in := twoDInstance()
	// Bounding boxes overlap by 10 in x: pattern areas stay disjoint but
	// character 0's pattern (right edge at x=35) intrudes into character 1's
	// box (left edge at x=30), which the blank-clearance rule forbids.
	s := &Solution{
		Selected: []bool{true, true, false},
		Placements: []Placement{
			{Char: 0, X: 0, Y: 0},
			{Char: 1, X: 30, Y: 0},
		},
	}
	if err := s.Validate(in); err == nil {
		t.Fatal("pattern intruding into a neighbour's blank must be rejected")
	}
}

func TestValidate2DRejections(t *testing.T) {
	in := twoDInstance()
	cases := []struct {
		name string
		sol  Solution
		frag string
	}{
		{
			"pattern overlap",
			Solution{Selected: []bool{true, true, false}, Placements: []Placement{{Char: 0, X: 0, Y: 0}, {Char: 1, X: 10, Y: 0}}},
			"overlap",
		},
		{
			"outside outline",
			Solution{Selected: []bool{true, false, false}, Placements: []Placement{{Char: 0, X: 70, Y: 0}}},
			"outline",
		},
		{
			"negative position",
			Solution{Selected: []bool{true, false, false}, Placements: []Placement{{Char: 0, X: -1, Y: 0}}},
			"outline",
		},
		{
			"unknown character",
			Solution{Selected: []bool{false, false, false}, Placements: []Placement{{Char: 9, X: 0, Y: 0}}},
			"unknown",
		},
		{
			"selected but missing",
			Solution{Selected: []bool{false, false, true}, Placements: nil},
			"not placed",
		},
		{
			"duplicate",
			Solution{Selected: []bool{true, false, false}, Placements: []Placement{{Char: 0}, {Char: 0, X: 50}}},
			"more than once",
		},
	}
	for _, c := range cases {
		err := c.sol.Validate(in)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestMinRowLength(t *testing.T) {
	in := tinyInstance()
	if got := MinRowLength(in, nil); got != 0 {
		t.Errorf("empty order length = %d", got)
	}
	if got := MinRowLength(in, []int{0}); got != 40 {
		t.Errorf("single char length = %d, want 40", got)
	}
	// 0 then 1: 40 + 40 - min(5,8) = 75.
	if got := MinRowLength(in, []int{0, 1}); got != 75 {
		t.Errorf("pair length = %d, want 75", got)
	}
	// 1 then 0: 40 + 40 - min(8,5) = 75 (symmetric blanks here).
	if got := MinRowLength(in, []int{1, 0}); got != 75 {
		t.Errorf("reversed pair length = %d, want 75", got)
	}
	// All three, order 1,0,2: 40 + (40-5) + (40-2) = 113.
	if got := MinRowLength(in, []int{1, 0, 2}); got != 113 {
		t.Errorf("triple length = %d, want 113", got)
	}
}

// TestSymmetricRowLengthLemma1 checks the closed form of Lemma 1 against a
// direct simulation of the greedy packing for equal-width symmetric-blank
// characters.
func TestSymmetricRowLengthLemma1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		const M = 100
		widths := make([]int, n)
		blanks := make([]int, n)
		for i := range widths {
			widths[i] = M
			blanks[i] = rng.Intn(M / 2) // blanks < M/2 so left+right <= M
		}
		// Closed form: n*M - sum(s) + max(s).
		sum, maxB := 0, 0
		for _, s := range blanks {
			sum += s
			if s > maxB {
				maxB = s
			}
		}
		want := n*M - sum + maxB
		if got := SymmetricRowLength(widths, blanks); got != want {
			return false
		}
		// Direct simulation: sort decreasing by blank, insert left or right;
		// every consecutive pair shares min(s_i, s_j) = the smaller blank, so
		// sorted-adjacent packing achieves the bound.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return blanks[idx[a]] > blanks[idx[b]] })
		total := widths[idx[0]]
		for k := 1; k < n; k++ {
			share := min(blanks[idx[k-1]], blanks[idx[k]])
			total += widths[idx[k]] - share
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with symmetric blanks, MinRowLength is invariant under reversing
// the order (every adjacent pair then shares min(s_i, s_j) either way).
func TestMinRowLengthReversalSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		in := &Instance{
			Kind: OneD, StencilWidth: 1000, StencilHeight: 40,
			NumRegions: 1, RowHeight: 40,
		}
		for i := 0; i < n; i++ {
			s := rng.Intn(10)
			in.Characters = append(in.Characters, Character{
				ID: i, Width: 30 + rng.Intn(20), Height: 40,
				BlankLeft: s, BlankRight: s,
				VSBShots: 2, Repeats: []int64{1},
			})
		}
		order := rng.Perm(n)
		rev := make([]int, n)
		for i, v := range order {
			rev[n-1-i] = v
		}
		return MinRowLength(in, order) == MinRowLength(in, rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MinRowLength never exceeds the plain sum of widths and never
// drops below the sum of pattern widths.
func TestMinRowLengthBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 2+rng.Intn(6), 1)
		order := rng.Perm(len(in.Characters))
		got := MinRowLength(in, order)
		sumW, sumP := 0, 0
		for _, id := range order {
			sumW += in.Characters[id].Width
			sumP += in.Characters[id].PatternWidth()
		}
		return got <= sumW && got >= sumP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
