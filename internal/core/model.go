// Package core defines the data model for the overlapping-aware stencil
// planning (OSP) problem in multi-column-cell (MCC) e-beam lithography
// systems, together with the writing-time objective of the E-BLOW paper
// (Yu, Yuan, Gao, Pan; DAC 2013).
//
// The central objects are Character (a candidate pattern that may be put on
// the stencil), Instance (a set of candidates plus the stencil outline and
// per-region repeat counts) and Solution (a selection plus a physical
// placement). The package also evaluates the MCC writing-time objective
//
//	T_total = max_c ( T_VSB_c - sum_i R_ic * a_i )
//
// and validates that placements respect the stencil outline and only share
// blank space between adjacent characters.
package core

import (
	"errors"
	"fmt"

	"eblow/internal/geom"
)

// Character is a character candidate. Width and Height describe the full
// bounding box on the stencil including the surrounding blank margins; the
// enclosed circuit pattern occupies the box shrunk by the four blanks.
// VSBShots is the number of variable-shaped-beam shots needed to print one
// occurrence of the pattern without character projection (n_i in the paper).
// Repeats[c] is the number of occurrences of the pattern in wafer region c
// (t_ic in the paper).
type Character struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`

	Width  int `json:"width"`
	Height int `json:"height"`

	BlankLeft   int `json:"blankLeft"`
	BlankRight  int `json:"blankRight"`
	BlankTop    int `json:"blankTop"`
	BlankBottom int `json:"blankBottom"`

	VSBShots int     `json:"vsbShots"`
	Repeats  []int64 `json:"repeats"`
}

// PatternWidth returns the width of the enclosed circuit pattern
// (bounding box minus horizontal blanks).
func (c Character) PatternWidth() int { return c.Width - c.BlankLeft - c.BlankRight }

// PatternHeight returns the height of the enclosed circuit pattern
// (bounding box minus vertical blanks).
func (c Character) PatternHeight() int { return c.Height - c.BlankTop - c.BlankBottom }

// PatternRect returns the pattern rectangle assuming the character bounding
// box is placed with its lower-left corner at (x, y).
func (c Character) PatternRect(x, y int) geom.Rect {
	return geom.Rect{
		X: x + c.BlankLeft,
		Y: y + c.BlankBottom,
		W: c.PatternWidth(),
		H: c.PatternHeight(),
	}
}

// BoundingRect returns the full bounding box (pattern plus blanks) when the
// character is placed at (x, y).
func (c Character) BoundingRect(x, y int) geom.Rect {
	return geom.Rect{X: x, Y: y, W: c.Width, H: c.Height}
}

// SymmetricHBlank returns ceil((blankLeft+blankRight)/2), the symmetric-blank
// approximation s_i used by the simplified 1D formulation of E-BLOW.
func (c Character) SymmetricHBlank() int {
	return (c.BlankLeft + c.BlankRight + 1) / 2
}

// TotalRepeats returns the total number of occurrences across all regions.
func (c Character) TotalRepeats() int64 {
	var t int64
	for _, r := range c.Repeats {
		t += r
	}
	return t
}

// Validate performs basic sanity checks on the candidate geometry.
func (c Character) Validate(numRegions int) error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("character %d: non-positive size %dx%d", c.ID, c.Width, c.Height)
	case c.BlankLeft < 0 || c.BlankRight < 0 || c.BlankTop < 0 || c.BlankBottom < 0:
		return fmt.Errorf("character %d: negative blank", c.ID)
	case c.PatternWidth() < 0 || c.PatternHeight() < 0:
		return fmt.Errorf("character %d: blanks exceed bounding box", c.ID)
	case c.VSBShots < 1:
		return fmt.Errorf("character %d: VSB shot count %d < 1", c.ID, c.VSBShots)
	case len(c.Repeats) != numRegions:
		return fmt.Errorf("character %d: %d repeat counts for %d regions", c.ID, len(c.Repeats), numRegions)
	}
	for r, t := range c.Repeats {
		if t < 0 {
			return fmt.Errorf("character %d: negative repeat count in region %d", c.ID, r)
		}
	}
	return nil
}

// HOverlap returns the horizontal blank overlap o^h when character a is
// placed immediately to the left of character b: the adjacent blanks may be
// shared, so the packing saves min(a.BlankRight, b.BlankLeft).
func HOverlap(a, b Character) int {
	return min(a.BlankRight, b.BlankLeft)
}

// VOverlap returns the vertical blank overlap o^v when character a is placed
// immediately below character b.
func VOverlap(a, b Character) int {
	return min(a.BlankTop, b.BlankBottom)
}

// Kind distinguishes the two OSP flavours studied in the paper.
type Kind int

const (
	// OneD is 1DOSP: all characters share a common height (standard cells)
	// and are packed into stencil rows; only horizontal blanks overlap.
	OneD Kind = iota
	// TwoD is 2DOSP: blanks are non-uniform in both directions and the
	// placement is a fixed-outline packing problem.
	TwoD
)

func (k Kind) String() string {
	switch k {
	case OneD:
		return "1DOSP"
	case TwoD:
		return "2DOSP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MaxRowGroups bounds Instance.RowGroups so the 1D planner can keep each
// character's band candidacy in one uint64 bitmask. Validate enforces it,
// so a validated instance never fails banding-related checks at solve time.
const MaxRowGroups = 64

// RowGroup pins a band of stencil rows to a set of wafer regions — the
// stencil band of one MCC column cell. A character is a candidate for the
// band's rows only if it repeats in at least one of the band's regions; the
// 1D planner exploits the banding to decompose its LP relaxation into
// independent blocks solved in parallel.
type RowGroup struct {
	// Rows lists the stencil row indices of the band.
	Rows []int `json:"rows"`
	// Regions lists the wafer regions whose characters may use the band's
	// rows. An empty list leaves the rows open to every character.
	Regions []int `json:"regions,omitempty"`
}

// Instance is a complete OSP problem instance.
type Instance struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	// StencilWidth and StencilHeight bound the placement region.
	StencilWidth  int `json:"stencilWidth"`
	StencilHeight int `json:"stencilHeight"`

	// NumRegions is the number of wafer regions / character projections P.
	NumRegions int `json:"numRegions"`

	// RowHeight is the common character bounding-box height for 1DOSP
	// instances (including vertical blanks). Unused for 2DOSP.
	RowHeight int `json:"rowHeight,omitempty"`

	// RowGroups optionally bands the stencil rows per column cell (1DOSP
	// only): the planner treats the instance in per-column-cell-band mode
	// unless the caller overrides the bands through its options. Nil keeps
	// the paper's shared-stencil semantics.
	RowGroups []RowGroup `json:"rowGroups,omitempty"`

	Characters []Character `json:"characters"`
}

// ErrEmptyInstance is returned when an instance has no characters or regions.
var ErrEmptyInstance = errors.New("core: instance has no characters or no regions")

// Validate checks the instance for structural consistency.
func (in *Instance) Validate() error {
	if in.Kind != OneD && in.Kind != TwoD {
		return fmt.Errorf("core: unknown instance kind %v", in.Kind)
	}
	if len(in.Characters) == 0 || in.NumRegions <= 0 {
		return ErrEmptyInstance
	}
	if in.StencilWidth <= 0 || in.StencilHeight <= 0 {
		return fmt.Errorf("core: non-positive stencil %dx%d", in.StencilWidth, in.StencilHeight)
	}
	seen := make(map[int]bool, len(in.Characters))
	for i, c := range in.Characters {
		if c.ID != i {
			return fmt.Errorf("core: character at index %d has ID %d (IDs must be dense 0..n-1)", i, c.ID)
		}
		if seen[c.ID] {
			return fmt.Errorf("core: duplicate character ID %d", c.ID)
		}
		seen[c.ID] = true
		if err := c.Validate(in.NumRegions); err != nil {
			return err
		}
		if in.Kind == OneD {
			if in.RowHeight <= 0 {
				return errors.New("core: 1DOSP instance requires positive RowHeight")
			}
			if c.Height != in.RowHeight {
				return fmt.Errorf("core: 1DOSP character %d height %d != row height %d", c.ID, c.Height, in.RowHeight)
			}
		}
	}
	// Last: the row-index checks need RowHeight, validated above.
	return in.validateRowGroups()
}

// validateRowGroups checks the optional column-cell banding: 1DOSP only,
// row and region indices in range, and no row owned by two bands.
func (in *Instance) validateRowGroups() error {
	if len(in.RowGroups) == 0 {
		return nil
	}
	if in.Kind != OneD {
		return errors.New("core: row groups apply to 1DOSP instances only")
	}
	if len(in.RowGroups) > MaxRowGroups {
		return fmt.Errorf("core: %d row groups exceed the maximum of %d", len(in.RowGroups), MaxRowGroups)
	}
	owner := make(map[int]int)
	for g, grp := range in.RowGroups {
		for _, r := range grp.Regions {
			if r < 0 || r >= in.NumRegions {
				return fmt.Errorf("core: row group %d references region %d of %d", g, r, in.NumRegions)
			}
		}
		for _, j := range grp.Rows {
			if j < 0 || j >= in.NumRows() {
				return fmt.Errorf("core: row group %d references row %d of %d", g, j, in.NumRows())
			}
			if have, ok := owner[j]; ok {
				return fmt.Errorf("core: row %d belongs to row groups %d and %d", j, have, g)
			}
			owner[j] = g
		}
	}
	return nil
}

// NumRows returns the number of stencil rows available to a 1DOSP instance.
func (in *Instance) NumRows() int {
	if in.RowHeight <= 0 {
		return 0
	}
	return in.StencilHeight / in.RowHeight
}

// NumCharacters returns the number of character candidates.
func (in *Instance) NumCharacters() int { return len(in.Characters) }
