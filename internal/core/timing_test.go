package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVSBTimeAndRegionTimes(t *testing.T) {
	in := tinyInstance()
	vsb := in.VSBTime()
	// Region 0: 3*10 + 2*5 + 0*20 = 40; region 1: 1*10 + 4*5 + 5*20 = 130.
	if vsb[0] != 40 || vsb[1] != 130 {
		t.Fatalf("VSBTime = %v, want [40 130]", vsb)
	}

	none := make([]bool, 3)
	rt := in.RegionTimes(none)
	if rt[0] != 40 || rt[1] != 130 {
		t.Errorf("RegionTimes with empty selection = %v, want VSB times", rt)
	}
	if in.WritingTime(none) != 130 {
		t.Errorf("WritingTime empty = %d, want 130", in.WritingTime(none))
	}

	// Select character 2 (only appears in region 1, saving 5*(20-1)=95).
	sel := []bool{false, false, true}
	rt = in.RegionTimes(sel)
	if rt[0] != 40 || rt[1] != 35 {
		t.Errorf("RegionTimes = %v, want [40 35]", rt)
	}
	if in.WritingTime(sel) != 40 {
		t.Errorf("WritingTime = %d, want 40", in.WritingTime(sel))
	}

	all := []bool{true, true, true}
	rt = in.RegionTimes(all)
	// Region 0: 40 - 3*9 - 2*4 - 0 = 5; region 1: 130 - 1*9 - 4*4 - 5*19 = 10.
	if rt[0] != 5 || rt[1] != 10 {
		t.Errorf("RegionTimes all = %v, want [5 10]", rt)
	}
}

func TestReduction(t *testing.T) {
	in := tinyInstance()
	if got := in.Reduction(0, 0); got != 27 {
		t.Errorf("Reduction(0,0) = %d, want 3*(10-1)=27", got)
	}
	if got := in.Reduction(2, 0); got != 0 {
		t.Errorf("Reduction(2,0) = %d, want 0", got)
	}
	if got := in.Reduction(2, 1); got != 95 {
		t.Errorf("Reduction(2,1) = %d, want 95", got)
	}
}

func TestProfits(t *testing.T) {
	in := tinyInstance()
	rt := in.RegionTimes(make([]bool, 3))
	p := in.Profits(rt)
	// tmax = 130; weights: region0 40/130, region1 1.
	want0 := float64(40)/130*27 + 1*9
	want1 := float64(40)/130*8 + 1*16
	want2 := 0.0 + 1*95
	if !almostEqual(p[0], want0) || !almostEqual(p[1], want1) || !almostEqual(p[2], want2) {
		t.Errorf("Profits = %v, want [%v %v %v]", p, want0, want1, want2)
	}

	// Character 2 helps only the slow region, so it must have the largest
	// profit; that is the whole point of the dynamic weighting.
	if !(p[2] > p[0] && p[2] > p[1]) {
		t.Errorf("expected character 2 to dominate profits, got %v", p)
	}

	zero := in.Profits([]int64{0, 0})
	for i, v := range zero {
		if v != 0 {
			t.Errorf("Profits with zero times: entry %d = %v, want 0", i, v)
		}
	}
}

func TestStaticProfits(t *testing.T) {
	in := tinyInstance()
	p := in.StaticProfits()
	want := []float64{27 + 9, 8 + 16, 95}
	for i := range want {
		if !almostEqual(p[i], want[i]) {
			t.Errorf("StaticProfits[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestMaxInt64(t *testing.T) {
	if MaxInt64(nil) != 0 {
		t.Error("MaxInt64(nil) should be 0")
	}
	if MaxInt64([]int64{-5, -2, -9}) != -2 {
		t.Error("MaxInt64 of negatives")
	}
	if MaxInt64([]int64{1, 7, 3}) != 7 {
		t.Error("MaxInt64 of positives")
	}
}

// Property: selecting any additional character never increases any region
// time, hence never increases the writing time (monotonicity of Eqn. 1).
func TestWritingTimeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 8, 3)
		sel := make([]bool, len(in.Characters))
		for i := range sel {
			sel[i] = rng.Intn(2) == 0
		}
		base := in.WritingTime(sel)
		idx := rng.Intn(len(sel))
		if sel[idx] {
			return true
		}
		sel[idx] = true
		return in.WritingTime(sel) <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: writing time equals max of region times and region times are
// consistent with per-character reductions.
func TestRegionTimeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 6, 4)
		sel := make([]bool, len(in.Characters))
		for i := range sel {
			sel[i] = rng.Intn(2) == 0
		}
		rt := in.RegionTimes(sel)
		vsb := in.VSBTime()
		for c := 0; c < in.NumRegions; c++ {
			expect := vsb[c]
			for i, s := range sel {
				if s {
					expect -= in.Reduction(i, c)
				}
			}
			if expect != rt[c] {
				return false
			}
		}
		return in.WritingTime(sel) == MaxInt64(rt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomInstance builds a random but structurally valid 1D instance for
// property tests inside the core package.
func randomInstance(rng *rand.Rand, n, regions int) *Instance {
	in := &Instance{
		Name:          "rand",
		Kind:          OneD,
		StencilWidth:  200,
		StencilHeight: 80,
		NumRegions:    regions,
		RowHeight:     40,
	}
	for i := 0; i < n; i++ {
		c := Character{
			ID:         i,
			Width:      20 + rng.Intn(30),
			Height:     40,
			BlankLeft:  rng.Intn(8),
			BlankRight: rng.Intn(8),
			VSBShots:   1 + rng.Intn(30),
			Repeats:    make([]int64, regions),
		}
		for r := range c.Repeats {
			c.Repeats[r] = int64(rng.Intn(20))
		}
		in.Characters = append(in.Characters, c)
	}
	return in
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
