package core

import (
	"fmt"
	"sort"
	"time"

	"eblow/internal/geom"
)

// Placement is the position of one selected character on the stencil; X and
// Y locate the lower-left corner of the character bounding box (including
// blanks).
type Placement struct {
	Char int `json:"char"`
	X    int `json:"x"`
	Y    int `json:"y"`
}

// Row describes one stencil row of a 1DOSP solution. Chars lists character
// IDs from left to right; X holds the matching bounding-box left edges.
type Row struct {
	Y     int   `json:"y"`
	Chars []int `json:"chars"`
	X     []int `json:"x"`
}

// Width returns the occupied width of the row: the right edge of the last
// character bounding box (0 for an empty row).
func (r Row) Width(in *Instance) int {
	if len(r.Chars) == 0 {
		return 0
	}
	last := len(r.Chars) - 1
	return r.X[last] + in.Characters[r.Chars[last]].Width
}

// Solution is a stencil plan: a selection of characters plus their physical
// placement. For 1DOSP solutions Rows is populated; Placements always holds
// the flat per-character positions (derived from Rows for 1D solutions).
type Solution struct {
	Algorithm string `json:"algorithm"`

	Selected   []bool      `json:"selected"`
	Rows       []Row       `json:"rows,omitempty"`
	Placements []Placement `json:"placements,omitempty"`

	WritingTime int64         `json:"writingTime"`
	RegionTimes []int64       `json:"regionTimes"`
	Runtime     time.Duration `json:"runtime"`
}

// NumSelected returns the number of characters on the stencil.
func (s *Solution) NumSelected() int {
	n := 0
	for _, b := range s.Selected {
		if b {
			n++
		}
	}
	return n
}

// Finalize recomputes the cached writing-time fields from the selection and
// records the algorithm name and runtime.
func (s *Solution) Finalize(in *Instance, algorithm string, elapsed time.Duration) {
	s.Algorithm = algorithm
	s.Runtime = elapsed
	s.RegionTimes = in.RegionTimes(s.Selected)
	s.WritingTime = MaxInt64(s.RegionTimes)
}

// PlacementsFromRows flattens the 1D row structure into Placements.
func (s *Solution) PlacementsFromRows() {
	s.Placements = s.Placements[:0]
	for _, row := range s.Rows {
		for k, id := range row.Chars {
			s.Placements = append(s.Placements, Placement{Char: id, X: row.X[k], Y: row.Y})
		}
	}
}

// Validate1D checks a 1DOSP solution: every selected character is placed in
// exactly one row, bounding boxes stay inside the stencil, rows fit into the
// stencil height, and adjacent characters overlap only within their shared
// blank margins (pattern areas never overlap).
func (s *Solution) Validate1D(in *Instance) error {
	placed := make(map[int]bool)
	if len(s.Rows) > in.NumRows() {
		return fmt.Errorf("core: %d rows exceed stencil capacity of %d", len(s.Rows), in.NumRows())
	}
	for ri, row := range s.Rows {
		if len(row.Chars) != len(row.X) {
			return fmt.Errorf("core: row %d has %d chars but %d positions", ri, len(row.Chars), len(row.X))
		}
		for k, id := range row.Chars {
			if id < 0 || id >= len(in.Characters) {
				return fmt.Errorf("core: row %d references unknown character %d", ri, id)
			}
			if placed[id] {
				return fmt.Errorf("core: character %d placed more than once", id)
			}
			placed[id] = true
			if !s.Selected[id] {
				return fmt.Errorf("core: character %d placed but not selected", id)
			}
			ch := in.Characters[id]
			x := row.X[k]
			if x < 0 || x+ch.Width > in.StencilWidth {
				return fmt.Errorf("core: character %d at x=%d exceeds stencil width %d", id, x, in.StencilWidth)
			}
			if k > 0 {
				prevID := row.Chars[k-1]
				prev := in.Characters[prevID]
				prevX := row.X[k-1]
				if x < prevX {
					return fmt.Errorf("core: row %d characters not ordered by x", ri)
				}
				// The pattern areas must not overlap: the gap between
				// bounding boxes may shrink by at most the shared blank.
				minX := prevX + prev.Width - HOverlap(prev, ch)
				if x < minX {
					return fmt.Errorf("core: characters %d and %d overlap beyond their blanks (x=%d < %d)",
						prevID, id, x, minX)
				}
			}
		}
	}
	for id, sel := range s.Selected {
		if sel && !placed[id] {
			return fmt.Errorf("core: character %d selected but not placed", id)
		}
	}
	return nil
}

// Validate2D checks a 2DOSP solution: every selected character has exactly
// one placement, bounding boxes stay inside the stencil outline, and no
// character's pattern area intrudes into another character's bounding box.
// Bounding boxes (blank regions) may overlap each other, which is exactly
// the blank sharing the OSP problem exploits; the pattern-versus-box rule is
// the 2D generalisation of the 1D spacing rule x_j >= x_i + w_i - o^h_ij.
func (s *Solution) Validate2D(in *Instance) error {
	placed := make(map[int]Placement)
	for _, p := range s.Placements {
		if p.Char < 0 || p.Char >= len(in.Characters) {
			return fmt.Errorf("core: placement references unknown character %d", p.Char)
		}
		if _, dup := placed[p.Char]; dup {
			return fmt.Errorf("core: character %d placed more than once", p.Char)
		}
		if !s.Selected[p.Char] {
			return fmt.Errorf("core: character %d placed but not selected", p.Char)
		}
		ch := in.Characters[p.Char]
		if p.X < 0 || p.Y < 0 || p.X+ch.Width > in.StencilWidth || p.Y+ch.Height > in.StencilHeight {
			return fmt.Errorf("core: character %d at (%d,%d) exceeds stencil outline", p.Char, p.X, p.Y)
		}
		placed[p.Char] = p
	}
	for id, sel := range s.Selected {
		if sel {
			if _, ok := placed[id]; !ok {
				return fmt.Errorf("core: character %d selected but not placed", id)
			}
		}
	}
	// Sweep by bounding-box x to avoid the full quadratic pair check on
	// sparse stencils; only pairs whose bounding boxes overlap need the
	// pattern-versus-box test.
	type pb struct {
		id      int
		box     geom.Rect
		pattern geom.Rect
	}
	rects := make([]pb, 0, len(placed))
	for id, p := range placed {
		ch := in.Characters[id]
		rects = append(rects, pb{id: id, box: ch.BoundingRect(p.X, p.Y), pattern: ch.PatternRect(p.X, p.Y)})
	}
	sort.Slice(rects, func(i, j int) bool { return rects[i].box.X < rects[j].box.X })
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			if b.box.X >= a.box.Right() {
				break // sorted by box x: no later box can overlap a horizontally
			}
			if !a.box.Overlaps(b.box) {
				continue
			}
			if a.pattern.Overlaps(b.box) || b.pattern.Overlaps(a.box) {
				return fmt.Errorf("core: characters %d and %d overlap beyond their blanks", a.id, b.id)
			}
		}
	}
	return nil
}

// Validate dispatches to Validate1D or Validate2D based on the instance kind.
func (s *Solution) Validate(in *Instance) error {
	if len(s.Selected) != len(in.Characters) {
		return fmt.Errorf("core: selection vector has %d entries for %d characters", len(s.Selected), len(in.Characters))
	}
	if in.Kind == OneD {
		return s.Validate1D(in)
	}
	return s.Validate2D(in)
}

// MinRowLength returns the minimum packed length of the given characters on
// a single row when placed in the given order, sharing blanks between
// neighbours.
func MinRowLength(in *Instance, order []int) int {
	if len(order) == 0 {
		return 0
	}
	total := in.Characters[order[0]].Width
	for k := 1; k < len(order); k++ {
		prev := in.Characters[order[k-1]]
		cur := in.Characters[order[k]]
		total += cur.Width - HOverlap(prev, cur)
	}
	return total
}

// SymmetricRowLength evaluates the closed form of Lemma 1: under the
// symmetric-blank assumption the minimum packing length of a character set
// is n*M - sum(s_i) + max(s_i) where M is the (common) width; the general
// form used here is sum(w_i - s_i) + max(s_i), which reduces to the lemma
// when all widths are equal.
func SymmetricRowLength(widths, blanks []int) int {
	if len(widths) == 0 {
		return 0
	}
	total := 0
	maxBlank := 0
	for i, w := range widths {
		total += w - blanks[i]
		if blanks[i] > maxBlank {
			maxBlank = blanks[i]
		}
	}
	return total + maxBlank
}
