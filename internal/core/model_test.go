package core

import (
	"strings"
	"testing"
)

// tinyInstance builds a small 1DOSP instance used across the core tests:
// three characters, two regions, one row.
func tinyInstance() *Instance {
	return &Instance{
		Name:          "tiny",
		Kind:          OneD,
		StencilWidth:  100,
		StencilHeight: 40,
		NumRegions:    2,
		RowHeight:     40,
		Characters: []Character{
			{ID: 0, Width: 40, Height: 40, BlankLeft: 5, BlankRight: 5, VSBShots: 10, Repeats: []int64{3, 1}},
			{ID: 1, Width: 40, Height: 40, BlankLeft: 8, BlankRight: 8, VSBShots: 5, Repeats: []int64{2, 4}},
			{ID: 2, Width: 40, Height: 40, BlankLeft: 2, BlankRight: 2, VSBShots: 20, Repeats: []int64{0, 5}},
		},
	}
}

func TestCharacterGeometry(t *testing.T) {
	c := Character{ID: 0, Width: 50, Height: 30, BlankLeft: 4, BlankRight: 6, BlankTop: 2, BlankBottom: 3}
	if got := c.PatternWidth(); got != 40 {
		t.Errorf("PatternWidth = %d, want 40", got)
	}
	if got := c.PatternHeight(); got != 25 {
		t.Errorf("PatternHeight = %d, want 25", got)
	}
	pr := c.PatternRect(10, 20)
	if pr.X != 14 || pr.Y != 23 || pr.W != 40 || pr.H != 25 {
		t.Errorf("PatternRect = %v", pr)
	}
	br := c.BoundingRect(10, 20)
	if br.W != 50 || br.H != 30 {
		t.Errorf("BoundingRect = %v", br)
	}
	if got := c.SymmetricHBlank(); got != 5 {
		t.Errorf("SymmetricHBlank = %d, want 5 (ceil((4+6)/2))", got)
	}
	odd := Character{BlankLeft: 3, BlankRight: 4}
	if got := odd.SymmetricHBlank(); got != 4 {
		t.Errorf("SymmetricHBlank = %d, want 4 (ceil(3.5))", got)
	}
}

func TestCharacterValidate(t *testing.T) {
	good := Character{ID: 1, Width: 10, Height: 10, VSBShots: 2, Repeats: []int64{1, 2}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid character rejected: %v", err)
	}
	cases := []struct {
		name string
		c    Character
		frag string
	}{
		{"zero width", Character{Width: 0, Height: 10, VSBShots: 2, Repeats: []int64{1}}, "non-positive"},
		{"negative blank", Character{Width: 10, Height: 10, BlankLeft: -1, VSBShots: 2, Repeats: []int64{1}}, "negative blank"},
		{"blanks too big", Character{Width: 10, Height: 10, BlankLeft: 6, BlankRight: 6, VSBShots: 2, Repeats: []int64{1}}, "exceed"},
		{"zero shots", Character{Width: 10, Height: 10, VSBShots: 0, Repeats: []int64{1}}, "shot count"},
		{"wrong regions", Character{Width: 10, Height: 10, VSBShots: 2, Repeats: []int64{1, 2}}, "regions"},
		{"negative repeats", Character{Width: 10, Height: 10, VSBShots: 2, Repeats: []int64{-1}}, "negative repeat"},
	}
	for _, c := range cases {
		err := c.c.Validate(1)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestHVOverlap(t *testing.T) {
	a := Character{BlankLeft: 3, BlankRight: 7, BlankTop: 2, BlankBottom: 4}
	b := Character{BlankLeft: 5, BlankRight: 1, BlankTop: 6, BlankBottom: 8}
	if got := HOverlap(a, b); got != 5 {
		t.Errorf("HOverlap = %d, want 5 (min(right=7, left=5))", got)
	}
	if got := HOverlap(b, a); got != 1 {
		t.Errorf("HOverlap reversed = %d, want 1", got)
	}
	if got := VOverlap(a, b); got != 2 {
		t.Errorf("VOverlap = %d, want 2 (min(top=2, bottom=8))", got)
	}
}

func TestInstanceValidate(t *testing.T) {
	in := tinyInstance()
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if got := in.NumRows(); got != 1 {
		t.Errorf("NumRows = %d, want 1", got)
	}
	if got := in.NumCharacters(); got != 3 {
		t.Errorf("NumCharacters = %d, want 3", got)
	}

	empty := &Instance{NumRegions: 1, StencilWidth: 10, StencilHeight: 10}
	if err := empty.Validate(); err != ErrEmptyInstance {
		t.Errorf("empty instance: got %v, want ErrEmptyInstance", err)
	}

	bad := tinyInstance()
	bad.Characters[1].ID = 7
	if err := bad.Validate(); err == nil {
		t.Error("non-dense IDs should be rejected")
	}

	badHeight := tinyInstance()
	badHeight.Characters[2].Height = 30
	if err := badHeight.Validate(); err == nil {
		t.Error("1D character with mismatched height should be rejected")
	}

	badStencil := tinyInstance()
	badStencil.StencilWidth = 0
	if err := badStencil.Validate(); err == nil {
		t.Error("non-positive stencil should be rejected")
	}
}

func TestKindString(t *testing.T) {
	if OneD.String() != "1DOSP" || TwoD.String() != "2DOSP" {
		t.Errorf("unexpected Kind strings: %s %s", OneD, TwoD)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unexpected fallback: %s", Kind(9))
	}
}
