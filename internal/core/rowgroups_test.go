package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// banded1D builds a small valid 1D instance with two row bands.
func banded1D() *Instance {
	in := &Instance{
		Name: "banded", Kind: OneD,
		StencilWidth: 100, StencilHeight: 80, RowHeight: 40,
		NumRegions: 2,
		RowGroups: []RowGroup{
			{Rows: []int{0}, Regions: []int{0}},
			{Rows: []int{1}, Regions: []int{1}},
		},
	}
	for i := 0; i < 3; i++ {
		in.Characters = append(in.Characters, Character{
			ID: i, Width: 20, Height: 40, VSBShots: 5, Repeats: []int64{2, 1},
		})
	}
	return in
}

func TestRowGroupsValidate(t *testing.T) {
	if err := banded1D().Validate(); err != nil {
		t.Fatalf("valid banded instance rejected: %v", err)
	}

	bad := banded1D()
	bad.RowGroups[1].Rows = []int{0} // row 0 owned twice
	if err := bad.Validate(); err == nil {
		t.Error("duplicate row ownership accepted")
	}

	bad = banded1D()
	bad.RowGroups[0].Rows = []int{7} // only 2 rows exist
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range row accepted")
	}

	bad = banded1D()
	bad.RowGroups[0].Regions = []int{5}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range region accepted")
	}

	// More groups than the solver's uint64 candidacy mask can hold must be
	// rejected here, so a validated instance never fails at solve time.
	bad = banded1D()
	bad.RowGroups = make([]RowGroup, MaxRowGroups+1)
	if err := bad.Validate(); err == nil {
		t.Errorf("%d row groups accepted (max %d)", MaxRowGroups+1, MaxRowGroups)
	}

	bad = banded1D()
	bad.Kind = TwoD
	bad.RowHeight = 0
	for i := range bad.Characters {
		bad.Characters[i].Height = 40
	}
	if err := bad.Validate(); err == nil {
		t.Error("row groups on a 2DOSP instance accepted")
	}
}

func TestRowGroupsSurviveJSONRoundTrip(t *testing.T) {
	in := banded1D()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.RowGroups, in.RowGroups) {
		t.Fatalf("row groups after round trip: %v, want %v", back.RowGroups, in.RowGroups)
	}

	// Instances without bands must not grow a rowGroups key.
	in.RowGroups = nil
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "" && json.Valid(data) {
		var m map[string]any
		_ = json.Unmarshal(data, &m)
		if _, ok := m["rowGroups"]; ok {
			t.Fatal("band-less instance serialized a rowGroups key")
		}
	}
}
