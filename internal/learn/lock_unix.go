//go:build unix

package learn

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on a ".lock" sidecar of the
// store file, so the read-merge-rename sequence in Save is atomic across
// processes sharing one store, not just across goroutines sharing one
// Store. The returned function releases the lock. flock is per open file
// description, so two Stores in one process exclude each other too.
func lockFile(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("learn: locking store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("learn: locking store: %w", err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
