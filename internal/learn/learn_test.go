package learn

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"eblow/internal/gen"
)

// entrants2D mirrors the registry's 2D race: eblow and sa24 heavy+scalable,
// greedy cheap.
func entrants2D() []Entrant {
	return []Entrant{
		{Name: "eblow", Heavy: true, Scalable: true},
		{Name: "sa24", Heavy: true, Scalable: true},
		{Name: "greedy", Cheap: true},
	}
}

func record(st *Store, shape Shape, winner string, names ...string) {
	runs := make([]RunOutcome, len(names))
	for i, n := range names {
		runs[i] = RunOutcome{Name: n, Won: n == winner, Objective: 100 + int64(i), Elapsed: time.Millisecond}
	}
	st.Record(shape, runs)
}

func TestFingerprintBucketsAndDeterminism(t *testing.T) {
	in := gen.Small(0, 120, 10, 7)
	a, b := Fingerprint(in), Fingerprint(in)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %v vs %v", a, b)
	}
	if a.Kind != "1DOSP" {
		t.Errorf("kind = %q, want 1DOSP", a.Kind)
	}
	if a.Regions != "5-16" {
		t.Errorf("regions bucket = %q, want 5-16 for 10 regions", a.Regions)
	}
	if a.Chars != "small" {
		t.Errorf("chars bucket = %q, want small for 120 characters", a.Chars)
	}
	two := Fingerprint(gen.Small(1, 120, 1, 7))
	if two.Kind != "2DOSP" || two.Regions != "1" {
		t.Errorf("2D fingerprint = %v", two)
	}
	if a.Key() == two.Key() {
		t.Errorf("distinct shapes share key %q", a.Key())
	}
}

func TestColdPlanIsStaticOrder(t *testing.T) {
	st := NewStore()
	shape := Shape{Kind: "2DOSP", Regions: "1", Chars: "small", VSB: "medium", Blank: "tight"}
	entrants := entrants2D()

	plan := st.Plan(shape, entrants, PlanConfig{})
	if plan.Learned {
		t.Fatal("empty store produced a learned plan")
	}
	want := []string{"eblow", "sa24", "greedy"}
	if !reflect.DeepEqual(plan.Order, want) {
		t.Fatalf("cold order = %v, want static %v", plan.Order, want)
	}
	if len(plan.Pruned) != 0 {
		t.Fatalf("cold plan pruned %v", plan.Pruned)
	}
	for _, n := range []string{"eblow", "sa24"} {
		if plan.Weights[n] != 1 {
			t.Errorf("cold weight[%s] = %v, want 1", n, plan.Weights[n])
		}
	}

	// One or two races is still below MinRaces: stays cold.
	record(st, shape, "eblow", "eblow", "sa24", "greedy")
	record(st, shape, "eblow", "eblow", "sa24", "greedy")
	if p := st.Plan(shape, entrants, PlanConfig{}); p.Learned {
		t.Fatalf("plan learned after 2 races (MinRaces=%d)", DefaultMinRaces)
	}
}

func TestLearnedPlanReordersAndPrunes(t *testing.T) {
	st := NewStore()
	shape := Shape{Kind: "2DOSP", Regions: "1", Chars: "small", VSB: "medium", Blank: "tight"}
	entrants := entrants2D()

	// sa24 wins the shape consistently; eblow never does.
	for i := 0; i < 4; i++ {
		record(st, shape, "sa24", "eblow", "sa24", "greedy")
	}
	plan := st.Plan(shape, entrants, PlanConfig{})
	if !plan.Learned {
		t.Fatal("plan not learned after 4 races")
	}
	if len(plan.Order) == 0 || plan.Order[0] != "sa24" {
		t.Fatalf("order = %v, want sa24 first", plan.Order)
	}
	if !reflect.DeepEqual(plan.Pruned, []string{"eblow"}) {
		t.Fatalf("pruned = %v, want the never-winning heavy entrant [eblow]", plan.Pruned)
	}
	for _, n := range plan.Order {
		if n == "eblow" {
			t.Fatalf("pruned entrant still in order %v", plan.Order)
		}
	}
	if plan.Weights["sa24"] <= 0 {
		t.Fatalf("winner weight = %v, want > 0", plan.Weights["sa24"])
	}
	// greedy is cheap and winless, but must survive: it is the safety net.
	found := false
	for _, n := range plan.Order {
		found = found || n == "greedy"
	}
	if !found {
		t.Fatalf("cheap entrant pruned from %v", plan.Order)
	}

	// Determinism: the same store contents yield the same plan, repeatedly.
	for i := 0; i < 5; i++ {
		again := st.Plan(shape, entrants, PlanConfig{})
		if !reflect.DeepEqual(again, plan) {
			t.Fatalf("plan differs across calls:\n%+v\n%+v", again, plan)
		}
	}
}

func TestTopRankedEntrantSurvivesPruning(t *testing.T) {
	st := NewStore()
	shape := Shape{Kind: "2DOSP", Regions: "1", Chars: "tiny", VSB: "low", Blank: "loose"}
	heavyOnly := []Entrant{
		{Name: "eblow", Heavy: true, Scalable: true},
		{Name: "sa24", Heavy: true, Scalable: true},
	}
	// Both heavies lose every race (the recorded winner is not racing
	// here), so both sit below the pruning floor — but the top-ranked one
	// (the smoothed tie goes to the earlier static position) must survive:
	// a race can never prune its own best bet, let alone every entrant.
	for i := 0; i < 4; i++ {
		record(st, shape, "greedy", "eblow", "sa24", "greedy")
	}
	plan := st.Plan(shape, heavyOnly, PlanConfig{})
	if !reflect.DeepEqual(plan.Order, []string{"eblow"}) || !reflect.DeepEqual(plan.Pruned, []string{"sa24"}) {
		t.Fatalf("order %v pruned %v, want the top-ranked eblow kept and sa24 pruned", plan.Order, plan.Pruned)
	}

	// A winless heavy can still outrank everything kept: a cheap entrant
	// winless over 20 races smooths to 1/22 ~ 0.045, below the heavy's
	// 0/3 smoothed (0+1)/(3+2) = 0.2. Rank protection keeps the heavy.
	mixed := []Entrant{
		{Name: "heavy", Heavy: true, Scalable: true},
		{Name: "cheap", Cheap: true},
	}
	st2 := NewStore()
	for i := 0; i < 20; i++ {
		runs := []RunOutcome{{Name: "cheap", Objective: 100, Elapsed: time.Millisecond}}
		if i < 3 {
			runs = append(runs, RunOutcome{Name: "heavy", Objective: 120, Elapsed: time.Millisecond})
		}
		st2.Record(shape, runs)
	}
	plan = st2.Plan(shape, mixed, PlanConfig{})
	if len(plan.Pruned) != 0 {
		t.Fatalf("top-ranked winless heavy was pruned: order %v pruned %v", plan.Order, plan.Pruned)
	}
	if plan.Order[0] != "heavy" {
		t.Fatalf("order %v, want the higher-smoothed heavy first", plan.Order)
	}
}

func TestSplitWorkersWeightsAndFloor(t *testing.T) {
	plan := &Plan{Learned: true, Weights: map[string]float64{"a": 0.75, "b": 0.25}}
	shares := plan.SplitWorkers(8, []string{"a", "b"})
	if shares["a"]+shares["b"] != 8 {
		t.Fatalf("shares %v do not sum to the pool", shares)
	}
	if shares["a"] <= shares["b"] || shares["b"] < 1 {
		t.Fatalf("shares %v, want a > b >= 1", shares)
	}
	// More entrants than workers: everyone still gets one.
	shares = plan.SplitWorkers(1, []string{"a", "b"})
	if shares["a"] != 1 || shares["b"] != 1 {
		t.Fatalf("floor violated: %v", shares)
	}
}

func TestStoreRoundTripRecordPersistReloadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "learn.json")
	shape := Shape{Kind: "2DOSP", Regions: "1", Chars: "small", VSB: "medium", Blank: "tight"}

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dirty() {
		t.Fatal("fresh store is dirty")
	}
	for i := 0; i < 4; i++ {
		record(st, shape, "sa24", "eblow", "sa24", "greedy")
	}
	if !st.Dirty() {
		t.Fatal("recorded store is not dirty")
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if st.Dirty() {
		t.Fatal("saved store is still dirty")
	}

	reloaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Plan(shape, entrants2D(), PlanConfig{})
	got := reloaded.Plan(shape, entrants2D(), PlanConfig{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded plan differs:\n%+v\n%+v", got, want)
	}
	if !got.Learned || !reflect.DeepEqual(got.Pruned, []string{"eblow"}) {
		t.Fatalf("reloaded plan = %+v, want learned with eblow pruned", got)
	}
}

func TestSaveMergesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "learn.json")
	shape := Shape{Kind: "1DOSP", Regions: "1", Chars: "tiny", VSB: "low", Blank: "loose"}

	// Two stores share the file, as two processes would.
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	record(a, shape, "eblow", "eblow", "greedy")
	record(b, shape, "greedy", "eblow", "greedy")
	if err := a.Save(); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(); err != nil {
		t.Fatal(err)
	}

	final, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ss := final.Shape(shape)
	if ss == nil || ss.Races != 2 {
		t.Fatalf("merged races = %+v, want 2 (one per writer)", ss)
	}
	if s := ss.Strategies["eblow"]; s == nil || s.Races != 2 || s.Wins != 1 {
		t.Fatalf("eblow stats = %+v, want races 2 wins 1", s)
	}
}

// Concurrent saves from independent stores sharing one file must lose no
// counts: the flock around Save's read-merge-rename serializes them.
func TestConcurrentSavesLoseNoCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learn.json")
	shape := Shape{Kind: "1DOSP", Regions: "1", Chars: "tiny", VSB: "low", Blank: "loose"}
	const writers, rounds = 4, 10

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := Open(path)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				record(st, shape, "eblow", "eblow", "greedy")
				if err := st.Save(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	final, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Shape(shape).Races; got != writers*rounds {
		t.Fatalf("persisted races = %d, want %d (counts lost to a save race)", got, writers*rounds)
	}
}

func TestConcurrentRecordAndPlan(t *testing.T) {
	st := NewStore()
	shape := Shape{Kind: "1DOSP", Regions: "2-4", Chars: "small", VSB: "medium", Blank: "tight"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				record(st, shape, "eblow", "eblow", "row25", "greedy")
				_ = st.Plan(shape, []Entrant{{Name: "eblow", Heavy: true, Scalable: true}, {Name: "row25", Cheap: true}}, PlanConfig{})
				_ = st.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := st.Shape(shape).Races; got != 400 {
		t.Fatalf("races = %d, want 400", got)
	}
}

func TestOpenRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt store file opened without error")
	}
}
