package learn

import (
	"testing"
	"time"
)

func TestAvgElapsed(t *testing.T) {
	st := NewStore()
	shape := Shape{Kind: "2DOSP", Regions: "1", Chars: "small", VSB: "low", Blank: "loose"}

	if _, ok := st.AvgElapsed(shape, "sa24"); ok {
		t.Fatal("AvgElapsed reported data for an empty store")
	}

	st.Record(shape, []RunOutcome{
		{Name: "sa24", Won: true, Objective: 100, Elapsed: 30 * time.Millisecond},
		{Name: "greedy", Objective: 120, Elapsed: 2 * time.Millisecond},
	})
	st.Record(shape, []RunOutcome{
		{Name: "sa24", Won: true, Objective: 90, Elapsed: 50 * time.Millisecond},
	})

	got, ok := st.AvgElapsed(shape, "sa24")
	if !ok || got != 40*time.Millisecond {
		t.Fatalf("AvgElapsed(sa24) = %v, %v; want 40ms over two races", got, ok)
	}
	if got, ok := st.AvgElapsed(shape, "greedy"); !ok || got != 2*time.Millisecond {
		t.Fatalf("AvgElapsed(greedy) = %v, %v; want 2ms", got, ok)
	}

	// A strategy never seen for the shape has no average.
	if _, ok := st.AvgElapsed(shape, "row25"); ok {
		t.Fatal("AvgElapsed reported data for an unrecorded strategy")
	}
	// Neither does a different shape.
	other := shape
	other.Chars = "large"
	if _, ok := st.AvgElapsed(other, "sa24"); ok {
		t.Fatal("AvgElapsed leaked across shapes")
	}

	// Sub-millisecond races truncate to zero total; report no data rather
	// than an average of 0 that would make every job look free.
	fast := Shape{Kind: "1DOSP", Regions: "1", Chars: "small", VSB: "low", Blank: "loose"}
	st.Record(fast, []RunOutcome{{Name: "greedy", Won: true, Objective: 10, Elapsed: 100 * time.Microsecond}})
	if _, ok := st.AvgElapsed(fast, "greedy"); ok {
		t.Fatal("AvgElapsed reported a zero-total average")
	}
}
