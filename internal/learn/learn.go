// Package learn makes the portfolio race shape-aware: it fingerprints OSP
// instances into a small set of shape buckets, accumulates per-shape
// statistics about which strategy wins races of that shape, and turns the
// accumulated statistics into a race plan — entrants reordered by
// shape-conditional win rate, never-winning heavy entrants pruned, and the
// heavy-worker split rebalanced toward likely winners.
//
// The three pieces:
//
//   - Fingerprint buckets an instance into a Shape: problem kind (1D/2D),
//     region count, character count, VSB pressure (how expensive the
//     candidates are to write without character projection) and blank
//     pressure (how oversubscribed the stencil outline is). Instances of the
//     same Shape tend to have the same strategy win profile, which is what
//     makes the statistics transferable across instances.
//   - Store is the persistent outcome store: a JSON file on disk holding,
//     per shape and per strategy, how many races it entered, how many it
//     won, its best objective and its total wall-clock. Saving is an atomic
//     rewrite (temp file + rename) that first merges the deltas recorded in
//     memory into whatever is on disk, so concurrent writers sharing a store
//     file lose no counts.
//   - Store.Plan is the scheduler: given the shape and the static race
//     order it returns a Plan. With enough recorded races the plan reorders
//     entrants by smoothed win rate, prunes heavy entrants whose win
//     probability sits below a floor, and assigns heavy-pool weights; with a
//     cold store (or too few races for the shape) the plan is exactly the
//     static order with no pruning and uniform weights, bit-for-bit.
//
// Determinism: every method is a pure function of the store contents and
// its arguments — map iteration never leaks into an ordering, ties keep the
// static order — so a fixed store and a fixed seed yield a bit-identical
// race plan and therefore a bit-identical race.
package learn

import (
	"fmt"

	"eblow/internal/core"
)

// Shape is an instance fingerprint: the coarse bucket an instance falls
// into for the purpose of win-rate statistics. Every field is a small
// enumerated label, so the number of distinct shapes stays bounded no
// matter how many instances are recorded.
type Shape struct {
	// Kind is the problem kind label, "1DOSP" or "2DOSP".
	Kind string `json:"kind"`
	// Regions buckets the wafer-region (column-cell) count.
	Regions string `json:"regions"`
	// Chars buckets the character-candidate count.
	Chars string `json:"chars"`
	// VSB buckets the mean VSB shot count of the candidates — how much
	// writing time is at stake per character left off the stencil.
	VSB string `json:"vsb"`
	// Blank buckets the stencil pressure: total candidate footprint over
	// stencil capacity. Above 1 the stencil cannot hold every candidate and
	// selection quality dominates; well below 1 placement barely matters.
	Blank string `json:"blank"`
}

// Key renders the shape as the stable string used to key the store.
func (s Shape) Key() string {
	return fmt.Sprintf("%s/regions=%s/chars=%s/vsb=%s/blank=%s",
		s.Kind, s.Regions, s.Chars, s.VSB, s.Blank)
}

// String returns the same stable key Key does.
func (s Shape) String() string { return s.Key() }

// Fingerprint buckets the instance into its Shape. The bucketing is
// deliberately coarse — a handful of values per dimension — so that a few
// recorded races already cover the shapes a deployment actually sees.
func Fingerprint(in *core.Instance) Shape {
	return Shape{
		Kind:    in.Kind.String(),
		Regions: bucketRegions(in.NumRegions),
		Chars:   bucketChars(in.NumCharacters()),
		VSB:     bucketVSB(in),
		Blank:   bucketBlank(in),
	}
}

// bucketRegions buckets the column-cell count: single-CP instances behave
// unlike MCC ones, and very wide MCC systems unlike narrow ones.
func bucketRegions(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n <= 4:
		return "2-4"
	case n <= 16:
		return "5-16"
	default:
		return ">16"
	}
}

// bucketChars buckets the candidate count; the thresholds straddle the
// paper's benchmark sizes (tiny Table-5 cases, 1000, 4000).
func bucketChars(n int) string {
	switch {
	case n <= 50:
		return "tiny"
	case n <= 400:
		return "small"
	case n <= 1500:
		return "medium"
	default:
		return "large"
	}
}

// bucketVSB buckets the mean VSB shot count per candidate.
func bucketVSB(in *core.Instance) string {
	var total int64
	for _, c := range in.Characters {
		total += int64(c.VSBShots)
	}
	mean := float64(total) / float64(len(in.Characters))
	switch {
	case mean < 10:
		return "low"
	case mean < 30:
		return "medium"
	default:
		return "high"
	}
}

// bucketBlank buckets the stencil pressure: the summed candidate footprint
// (row width for 1D, bounding-box area for 2D) divided by the stencil
// capacity. The ratio tells the planners apart — under low pressure every
// candidate fits and the cheap heuristics are near-optimal, under high
// pressure the LP/annealing planners earn their keep.
func bucketBlank(in *core.Instance) string {
	var demand, capacity float64
	if in.Kind == core.OneD {
		for _, c := range in.Characters {
			demand += float64(c.Width - c.SymmetricHBlank())
		}
		capacity = float64(in.NumRows()) * float64(in.StencilWidth)
	} else {
		for _, c := range in.Characters {
			demand += float64(c.Width) * float64(c.Height)
		}
		capacity = float64(in.StencilWidth) * float64(in.StencilHeight)
	}
	if capacity <= 0 {
		return "over"
	}
	ratio := demand / capacity
	switch {
	case ratio <= 0.8:
		return "loose"
	case ratio <= 2:
		return "tight"
	default:
		return "over"
	}
}
