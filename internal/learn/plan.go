package learn

import "sort"

// Entrant describes one candidate strategy of a race, with the registry
// metadata the scheduler needs.
type Entrant struct {
	// Name is the strategy's registry name.
	Name string
	// Heavy marks strategies that saturate the worker pool (annealing/LP
	// planners); only heavy entrants are ever pruned or weighted.
	Heavy bool
	// Scalable marks heavy strategies whose throughput grows with workers;
	// only they receive a heavy-pool weight.
	Scalable bool
	// Cheap marks the fast deterministic heuristics that guarantee a
	// feasible incumbent; the scheduler never prunes them.
	Cheap bool
}

// PlanConfig tunes the scheduler. The zero value is completed with the
// defaults below.
type PlanConfig struct {
	// MinRaces is how many races must be recorded for a shape before the
	// plan deviates from the static order at all (default 3). Below it the
	// store is "cold" for the shape and the plan is the static order
	// bit-for-bit.
	MinRaces int
	// PruneBelow is the win-probability floor: a heavy entrant whose raw
	// win rate on the shape sits below it (after at least MinRaces races of
	// its own) is dropped from the race (default 0.05).
	PruneBelow float64
}

// DefaultMinRaces and DefaultPruneBelow complete a zero PlanConfig.
const (
	DefaultMinRaces   = 3
	DefaultPruneBelow = 0.05
)

func (c PlanConfig) withDefaults() PlanConfig {
	if c.MinRaces <= 0 {
		c.MinRaces = DefaultMinRaces
	}
	if c.PruneBelow <= 0 {
		c.PruneBelow = DefaultPruneBelow
	}
	return c
}

// Plan is a scheduled race: the entrants to run, in order, plus the pruned
// ones and the heavy-pool weights. It is a pure function of the store
// contents, the shape and the static entrant order — never of wall clock or
// map iteration — so a fixed store yields a bit-identical plan.
type Plan struct {
	// Shape is the instance fingerprint the plan was conditioned on.
	Shape Shape `json:"shape"`
	// Learned reports whether the statistics actually shaped the plan.
	// False means a cold start: Order is exactly the static order, Pruned
	// is empty and Weights are uniform.
	Learned bool `json:"learned"`
	// Order lists the entrants to race, best win rate first. Ties and
	// never-raced entrants keep their relative static order.
	Order []string `json:"order"`
	// Pruned lists the heavy entrants dropped for a win probability below
	// the floor, in static order.
	Pruned []string `json:"pruned,omitempty"`
	// Weights maps each heavy scalable entrant in Order to its share of the
	// heavy worker pool (positive, not normalised). A cold plan assigns
	// every such entrant weight 1.
	Weights map[string]float64 `json:"weights,omitempty"`
}

// Plan schedules a race of the given entrants (in static registry order)
// for the shape. With fewer than cfg.MinRaces recorded races for the shape
// the returned plan is cold: static order, no pruning, uniform weights.
// Otherwise entrants are reordered by Laplace-smoothed win rate, heavy
// entrants below the win-probability floor are pruned — except cheap
// entrants (the feasibility safety net) and the top-ranked entrant, which
// are never pruned, so the race always keeps at least one entrant — and
// heavy scalable entrants get weights proportional to their smoothed win
// rate.
func (st *Store) Plan(shape Shape, entrants []Entrant, cfg PlanConfig) *Plan {
	cfg = cfg.withDefaults()
	plan := &Plan{Shape: shape, Weights: make(map[string]float64, len(entrants))}

	ss := st.Shape(shape)
	if ss == nil || ss.Races < cfg.MinRaces {
		for _, e := range entrants {
			plan.Order = append(plan.Order, e.Name)
			if e.Heavy && e.Scalable {
				plan.Weights[e.Name] = 1
			}
		}
		return plan
	}
	plan.Learned = true

	// Laplace smoothing (+1 win, +2 races) keeps never-raced entrants at a
	// neutral 0.5-ish rate instead of zero, so a strategy the store has no
	// evidence about is neither promoted nor condemned.
	smoothed := func(name string) float64 {
		s := ss.Strategies[name]
		if s == nil {
			return 1.0 / 2.0
		}
		return (float64(s.Wins) + 1) / (float64(s.Races) + 2)
	}

	// Rank everyone first: the top-ranked entrant is protected from
	// pruning, so the plan can never drop its own best bet no matter how
	// the floor is tuned. Ties go to the earlier static position.
	top := 0
	for i := 1; i < len(entrants); i++ {
		if smoothed(entrants[i].Name) > smoothed(entrants[top].Name) {
			top = i
		}
	}

	type ranked struct {
		Entrant
		rate   float64
		static int
	}
	var keep []ranked
	for i, e := range entrants {
		s := ss.Strategies[e.Name]
		// The pruning floor uses the raw rate: after MinRaces races with
		// wins/races below the floor the entrant demonstrably does not win
		// this shape. Cheap entrants stay — they are the feasibility safety
		// net the portfolio's degradation guarantee rests on.
		if i != top && e.Heavy && s != nil && s.Races >= cfg.MinRaces && s.WinRate() < cfg.PruneBelow {
			plan.Pruned = append(plan.Pruned, e.Name)
			continue
		}
		keep = append(keep, ranked{Entrant: e, rate: smoothed(e.Name), static: i})
	}
	sort.SliceStable(keep, func(a, b int) bool {
		if keep[a].rate != keep[b].rate {
			return keep[a].rate > keep[b].rate
		}
		return keep[a].static < keep[b].static
	})
	for _, r := range keep {
		plan.Order = append(plan.Order, r.Name)
		if r.Heavy && r.Scalable {
			plan.Weights[r.Name] = r.rate
		}
	}
	return plan
}

// SplitWorkers divides a worker pool among the heavy scalable entrants of
// the plan in proportion to their weights, by largest remainder with every
// entrant guaranteed at least one worker. names must be the heavy scalable
// entrants actually racing, in race order; the return maps each to its
// share. A nil or cold plan splits evenly.
func (p *Plan) SplitWorkers(workers int, names []string) map[string]int {
	out := make(map[string]int, len(names))
	if len(names) == 0 {
		return out
	}
	if workers < len(names) {
		workers = len(names) // one worker each is the floor
	}
	var total float64
	weights := make([]float64, len(names))
	for i, n := range names {
		w := 1.0
		if p != nil && p.Learned {
			if pw, ok := p.Weights[n]; ok && pw > 0 {
				w = pw
			}
		}
		weights[i] = w
		total += w
	}
	// Integer shares by largest remainder, floored at 1 per entrant.
	type frac struct {
		i int
		f float64
	}
	assigned := 0
	shares := make([]int, len(names))
	fracs := make([]frac, len(names))
	avail := workers - len(names) // distribute beyond the 1-each floor
	for i := range names {
		exact := float64(avail) * weights[i] / total
		shares[i] = 1 + int(exact)
		assigned += shares[i]
		fracs[i] = frac{i, exact - float64(int(exact))}
	}
	sort.SliceStable(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; assigned < workers && k < len(fracs); k++ {
		shares[fracs[k].i]++
		assigned++
	}
	for i, n := range names {
		out[n] = shares[i]
	}
	return out
}
