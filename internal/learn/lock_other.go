//go:build !unix

package learn

// lockFile is a no-op where flock is unavailable: Save stays atomic within
// one process (Store.mu) and crash-safe (temp file + rename), but two
// processes saving the same store file concurrently may lose the smaller
// delta. The unix build carries the real advisory lock.
func lockFile(path string) (unlock func(), err error) {
	return func() {}, nil
}
