package learn

import "testing"

// TestMergeSnapshotsAggregatesFleet covers the exported merge the
// dispatcher uses for fleet-wide GET /v1/learn: counters add, best
// objectives take the minimum, unknown shapes and strategies appear, and
// dst shares no memory with src.
func TestMergeSnapshotsAggregatesFleet(t *testing.T) {
	nodeA := map[string]*ShapeStats{
		"1D/r:small/c:small/vsb:none/blank:low": {
			Races: 3,
			Strategies: map[string]*StrategyStats{
				"sa24":   {Races: 3, Wins: 2, TotalElapsedMs: 30, BestObjective: 120},
				"greedy": {Races: 3, Wins: 1, TotalElapsedMs: 3, BestObjective: 150},
			},
		},
	}
	nodeB := map[string]*ShapeStats{
		"1D/r:small/c:small/vsb:none/blank:low": {
			Races: 2,
			Strategies: map[string]*StrategyStats{
				"sa24":  {Races: 2, Wins: 2, TotalElapsedMs: 25, BestObjective: 100},
				"row25": {Races: 2, Failures: 1, TotalElapsedMs: 9, BestObjective: -1},
			},
		},
		"2D/r:small/c:big/vsb:none/blank:low": {
			Races:      1,
			Strategies: map[string]*StrategyStats{"sa24": {Races: 1, Wins: 1, TotalElapsedMs: 40, BestObjective: 900}},
		},
	}

	dst := make(map[string]*ShapeStats)
	MergeSnapshots(dst, nodeA)
	MergeSnapshots(dst, nodeB)
	MergeSnapshots(dst, nil) // nil fleet member is a no-op

	if len(dst) != 2 {
		t.Fatalf("merged %d shapes, want 2", len(dst))
	}
	shared := dst["1D/r:small/c:small/vsb:none/blank:low"]
	if shared.Races != 5 {
		t.Errorf("shared shape races = %d, want 5", shared.Races)
	}
	sa := shared.Strategies["sa24"]
	if sa.Races != 5 || sa.Wins != 4 || sa.TotalElapsedMs != 55 {
		t.Errorf("sa24 merged = %+v", sa)
	}
	if sa.BestObjective != 100 {
		t.Errorf("sa24 best objective = %d, want the fleet minimum 100", sa.BestObjective)
	}
	if row := shared.Strategies["row25"]; row.BestObjective != -1 || row.Failures != 1 {
		t.Errorf("row25 merged = %+v; a never-feasible strategy must stay at -1", row)
	}
	if dst["2D/r:small/c:big/vsb:none/blank:low"].Strategies["sa24"].BestObjective != 900 {
		t.Error("node-unique shape lost in merge")
	}

	// dst must be isolated from src: mutating the merge result cannot
	// corrupt a node's own snapshot.
	sa.Wins = 1000
	shared.Races = 1000
	if nodeA["1D/r:small/c:small/vsb:none/blank:low"].Races != 3 ||
		nodeB["1D/r:small/c:small/vsb:none/blank:low"].Strategies["sa24"].Wins != 2 {
		t.Error("MergeSnapshots aliased src maps into dst")
	}
}
