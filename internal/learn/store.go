package learn

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultPath is the store file used when a caller opts into learning
// without naming one.
const DefaultPath = "eblow.learn.json"

// StrategyStats accumulates one strategy's record on one shape.
type StrategyStats struct {
	// Races counts the recorded races the strategy entered.
	Races int `json:"races"`
	// Wins counts the races the strategy won.
	Wins int `json:"wins"`
	// Failures counts the races the strategy produced no feasible plan in
	// (error, infeasible, or cut off by the deadline).
	Failures int `json:"failures,omitempty"`
	// TotalElapsedMs sums the strategy's wall-clock across its races.
	TotalElapsedMs int64 `json:"totalElapsedMs"`
	// BestObjective is the best (lowest) writing time the strategy ever
	// produced on the shape; -1 until it produces one.
	BestObjective int64 `json:"bestObjective"`
}

// add merges o into s (counters add, best objective takes the minimum).
func (s *StrategyStats) add(o *StrategyStats) {
	s.Races += o.Races
	s.Wins += o.Wins
	s.Failures += o.Failures
	s.TotalElapsedMs += o.TotalElapsedMs
	if o.BestObjective >= 0 && (s.BestObjective < 0 || o.BestObjective < s.BestObjective) {
		s.BestObjective = o.BestObjective
	}
}

// WinRate returns the raw win frequency (0 when the strategy never raced).
func (s *StrategyStats) WinRate() float64 {
	if s.Races == 0 {
		return 0
	}
	return float64(s.Wins) / float64(s.Races)
}

// ShapeStats accumulates every strategy's record on one shape.
type ShapeStats struct {
	// Races counts the recorded races of the shape.
	Races int `json:"races"`
	// Strategies holds the per-strategy records, keyed by registry name.
	Strategies map[string]*StrategyStats `json:"strategies"`
}

// RunOutcome is one entrant's outcome in a race being recorded.
type RunOutcome struct {
	// Name is the strategy's registry name.
	Name string
	// Won marks the race winner (at most one per race).
	Won bool
	// Objective is the writing time of the plan the entrant produced, or -1
	// when it produced none.
	Objective int64
	// Elapsed is the entrant's wall-clock time.
	Elapsed time.Duration
	// Failed marks entrants that produced no feasible plan.
	Failed bool
}

// Store accumulates shape-conditioned race outcomes and persists them as
// one JSON file. The zero value is not usable; construct with NewStore (in
// memory only) or Open (backed by a file).
//
// Save performs an atomic rewrite with merge-on-load: it re-reads the file,
// merges the outcomes recorded in memory since the last sync into it, and
// renames a temp file over it — so several processes appending to the same
// store file lose no counts, and a crash never leaves a half-written file.
type Store struct {
	mu   sync.Mutex
	path string
	// total is the full picture (disk state at last sync plus local deltas);
	// Plan and Snapshot read it. delta holds only the outcomes recorded
	// since the last Save/Open, which is what Save merges into the file.
	total map[string]*ShapeStats
	delta map[string]*ShapeStats
}

// NewStore returns an empty in-memory store with no backing file; Save is a
// no-op for it. The job service uses one per process when learning is
// enabled without persistence.
func NewStore() *Store {
	return &Store{
		total: make(map[string]*ShapeStats),
		delta: make(map[string]*ShapeStats),
	}
}

// Open returns a store backed by the JSON file at path. A missing file is
// not an error — the store starts cold and Save creates the file.
func Open(path string) (*Store, error) {
	st := NewStore()
	st.path = path
	loaded, err := readFile(path)
	if err != nil {
		return nil, err
	}
	mergeInto(st.total, loaded)
	return st, nil
}

// Path returns the backing file path ("" for an in-memory store).
func (st *Store) Path() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.path
}

// Record adds one race outcome: the shape it ran on, and every entrant's
// result. It only mutates memory; call Save to persist.
func (st *Store) Record(shape Shape, runs []RunOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := shape.Key()
	for _, m := range []map[string]*ShapeStats{st.total, st.delta} {
		ss := m[key]
		if ss == nil {
			ss = &ShapeStats{Strategies: make(map[string]*StrategyStats)}
			m[key] = ss
		}
		ss.Races++
		for _, r := range runs {
			s := ss.Strategies[r.Name]
			if s == nil {
				s = &StrategyStats{BestObjective: -1}
				ss.Strategies[r.Name] = s
			}
			s.add(&StrategyStats{
				Races:          1,
				Wins:           boolToInt(r.Won),
				Failures:       boolToInt(r.Failed),
				TotalElapsedMs: r.Elapsed.Milliseconds(),
				BestObjective:  r.Objective,
			})
		}
	}
}

// Dirty reports whether outcomes have been recorded since the last Save.
func (st *Store) Dirty() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.delta) > 0
}

// Save persists the store: the file is re-read, the outcomes recorded since
// the last sync are merged in, and the result replaces the file atomically
// (temp file + rename in the same directory). The read-merge-rename runs
// under an exclusive flock of a ".lock" sidecar, so concurrent savers —
// other goroutines or other processes sharing the store file — serialize
// instead of overwriting each other's counts (on platforms without flock
// the cross-process guarantee degrades to last-writer-wins). A store with
// no backing file or no new outcomes returns nil without touching the
// filesystem.
func (st *Store) Save() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.path == "" || len(st.delta) == 0 {
		return nil
	}
	unlock, err := lockFile(st.path)
	if err != nil {
		return err
	}
	defer unlock()
	onDisk, err := readFile(st.path)
	if err != nil {
		return err
	}
	mergeInto(onDisk, st.delta)
	if err := writeFileAtomic(st.path, onDisk); err != nil {
		return err
	}
	st.total = onDisk
	st.delta = make(map[string]*ShapeStats)
	return nil
}

// Snapshot returns a deep copy of the per-shape statistics, keyed by
// Shape.Key(). Safe to serialize or mutate; the store is unaffected.
func (st *Store) Snapshot() map[string]*ShapeStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return copyStats(st.total)
}

// Shape returns a deep copy of one shape's statistics (nil when the shape
// was never recorded) plus the number of races recorded for it.
func (st *Store) Shape(shape Shape) *ShapeStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss := st.total[shape.Key()]
	if ss == nil {
		return nil
	}
	return copyShape(ss)
}

// AvgElapsed returns the strategy's mean recorded wall-clock per race on
// the shape, and whether the store holds any usable elapsed data for it.
// The batch scheduler's cost model calls it to replace the static
// chars-times-regions estimate with measured runtimes once a deployment has
// traffic history; sub-millisecond strategies (whose recorded total rounds
// to zero) report false so the caller keeps its static estimate.
func (st *Store) AvgElapsed(shape Shape, strategy string) (time.Duration, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss := st.total[shape.Key()]
	if ss == nil {
		return 0, false
	}
	s := ss.Strategies[strategy]
	if s == nil || s.Races == 0 || s.TotalElapsedMs <= 0 {
		return 0, false
	}
	return time.Duration(s.TotalElapsedMs/int64(s.Races)) * time.Millisecond, true
}

// ShapeKeys lists the recorded shape keys in sorted order.
func (st *Store) ShapeKeys() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := make([]string, 0, len(st.total))
	for k := range st.total {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fileFormat is the JSON shape of the store file.
type fileFormat struct {
	// Version guards future format migrations.
	Version int `json:"version"`
	// Shapes maps Shape.Key() to the accumulated statistics.
	Shapes map[string]*ShapeStats `json:"shapes"`
}

// readFile loads a store file into a fresh stats map; a missing file yields
// an empty map.
func readFile(path string) (map[string]*ShapeStats, error) {
	out := make(map[string]*ShapeStats)
	if path == "" {
		return out, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("learn: reading store: %w", err)
	}
	var f fileFormat
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("learn: store %s is not a valid stats file: %w", path, err)
	}
	if f.Shapes != nil {
		out = f.Shapes
	}
	//eblow:nondet-ok per-entry normalization of independent values; no cross-key state
	for _, ss := range out {
		if ss.Strategies == nil {
			ss.Strategies = make(map[string]*StrategyStats)
		}
	}
	return out, nil
}

// writeFileAtomic writes the stats as indented JSON via a temp file in the
// same directory and an atomic rename.
func writeFileAtomic(path string, stats map[string]*ShapeStats) error {
	data, err := json.MarshalIndent(fileFormat{Version: 1, Shapes: stats}, "", "  ")
	if err != nil {
		return fmt.Errorf("learn: encoding store: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".learn-*.json")
	if err != nil {
		return fmt.Errorf("learn: writing store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("learn: writing store: %w", werr)
		}
		return fmt.Errorf("learn: writing store: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("learn: writing store: %w", err)
	}
	return nil
}

// MergeSnapshots adds src's per-shape statistics into dst: race counts and
// per-strategy counters add field-wise, best objectives keep the minimum
// (StrategyStats.add). dst keeps no references into src, so merging live
// snapshots from several stores — the dispatcher aggregating GET /v1/learn
// across a fleet — is safe. A nil src is a no-op.
func MergeSnapshots(dst, src map[string]*ShapeStats) {
	mergeInto(dst, src)
}

// mergeInto adds src's counts into dst (dst takes ownership of nothing in
// src; every merged entry is copied or added field-wise).
func mergeInto(dst, src map[string]*ShapeStats) {
	//eblow:nondet-ok each key merges only into dst[key]; no cross-key accumulation, so order cannot reach any result
	for key, ss := range src {
		d := dst[key]
		if d == nil {
			d = &ShapeStats{Strategies: make(map[string]*StrategyStats)}
			dst[key] = d
		}
		d.Races += ss.Races
		//eblow:nondet-ok per-strategy field-wise merge into dst's matching entry; commutative across keys
		for name, s := range ss.Strategies {
			ds := d.Strategies[name]
			if ds == nil {
				ds = &StrategyStats{BestObjective: -1}
				d.Strategies[name] = ds
			}
			ds.add(s)
		}
	}
}

func copyStats(src map[string]*ShapeStats) map[string]*ShapeStats {
	out := make(map[string]*ShapeStats, len(src))
	//eblow:nondet-ok map-to-map copy; the result is a map, so order is unobservable
	for key, ss := range src {
		out[key] = copyShape(ss)
	}
	return out
}

func copyShape(ss *ShapeStats) *ShapeStats {
	cp := &ShapeStats{Races: ss.Races, Strategies: make(map[string]*StrategyStats, len(ss.Strategies))}
	//eblow:nondet-ok map-to-map copy; the result is a map, so order is unobservable
	for name, s := range ss.Strategies {
		sc := *s
		cp.Strategies[name] = &sc
	}
	return cp
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
