package baseline

import (
	"context"
	"testing"

	"eblow/internal/core"
	"eblow/internal/gen"
)

func TestGreedy1D(t *testing.T) {
	in := gen.Small(core.OneD, 80, 4, 17)
	sol, err := Greedy1D(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("greedy selected nothing")
	}
	if sol.Algorithm != "Greedy-1D" {
		t.Errorf("algorithm %q", sol.Algorithm)
	}
	empty := in.WritingTime(make([]bool, in.NumCharacters()))
	if sol.WritingTime >= empty {
		t.Errorf("greedy did not improve over VSB-only: %d >= %d", sol.WritingTime, empty)
	}
}

func TestRowHeuristic1D(t *testing.T) {
	in := gen.Small(core.OneD, 80, 4, 23)
	sol, err := RowHeuristic1D(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("row heuristic selected nothing")
	}
}

func TestHeuristic1D(t *testing.T) {
	in := gen.Small(core.OneD, 80, 4, 29)
	sol, err := Heuristic1D(context.Background(), in, Heuristic1DOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("heuristic selected nothing")
	}
	greedy, err := Greedy1D(in)
	if err != nil {
		t.Fatal(err)
	}
	// The two-step heuristic with improvement should not be worse than the
	// plain greedy by a large margin (it usually beats it).
	if float64(sol.WritingTime) > 1.3*float64(greedy.WritingTime) {
		t.Errorf("heuristic %d much worse than greedy %d", sol.WritingTime, greedy.WritingTime)
	}
}

func TestHeuristic1DDeterministicSeed(t *testing.T) {
	in := gen.Small(core.OneD, 60, 3, 31)
	a, err := Heuristic1D(context.Background(), in, Heuristic1DOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Heuristic1D(context.Background(), in, Heuristic1DOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.WritingTime != b.WritingTime || a.NumSelected() != b.NumSelected() {
		t.Error("same seed should give identical results")
	}
}

func Test1DBaselinesRejectBadInput(t *testing.T) {
	in2d := gen.Small(core.TwoD, 20, 1, 3)
	if _, err := Greedy1D(in2d); err == nil {
		t.Error("Greedy1D should reject 2D instances")
	}
	if _, err := RowHeuristic1D(in2d); err == nil {
		t.Error("RowHeuristic1D should reject 2D instances")
	}
	if _, err := Heuristic1D(context.Background(), in2d, Heuristic1DOptions{}); err == nil {
		t.Error("Heuristic1D should reject 2D instances")
	}
	if _, err := Greedy1D(&core.Instance{}); err == nil {
		t.Error("empty instance should be rejected")
	}
}

func TestGreedy2D(t *testing.T) {
	in := gen.Small(core.TwoD, 60, 2, 41)
	sol, err := Greedy2D(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("2D greedy selected nothing")
	}
}

func TestSA2D(t *testing.T) {
	in := gen.Small(core.TwoD, 40, 2, 43)
	sol, err := SA2D(context.Background(), in, SA2DOptions{Seed: 1, MoveBudget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.NumSelected() == 0 {
		t.Error("SA floorplanner selected nothing")
	}
	if sol.Algorithm != "SA-2D[24]" {
		t.Errorf("algorithm %q", sol.Algorithm)
	}
}

func Test2DBaselinesRejectBadInput(t *testing.T) {
	in1d := gen.Small(core.OneD, 20, 1, 3)
	if _, err := Greedy2D(in1d); err == nil {
		t.Error("Greedy2D should reject 1D instances")
	}
	if _, err := SA2D(context.Background(), in1d, SA2DOptions{}); err == nil {
		t.Error("SA2D should reject 1D instances")
	}
}

func TestOrderRowByBlank(t *testing.T) {
	in := &core.Instance{
		Kind: core.OneD, StencilWidth: 1000, StencilHeight: 40, NumRegions: 1, RowHeight: 40,
		Characters: []core.Character{
			{ID: 0, Width: 40, Height: 40, BlankLeft: 2, BlankRight: 2, VSBShots: 2, Repeats: []int64{1}},
			{ID: 1, Width: 40, Height: 40, BlankLeft: 9, BlankRight: 9, VSBShots: 2, Repeats: []int64{1}},
			{ID: 2, Width: 40, Height: 40, BlankLeft: 5, BlankRight: 5, VSBShots: 2, Repeats: []int64{1}},
		},
	}
	order := orderRowByBlank(in, []int{0, 1, 2})
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// With symmetric blanks the greedy two-choice ordering achieves the
	// Lemma 1 optimum.
	if got, want := core.MinRowLength(in, order), core.SymmetricRowLength([]int{40, 40, 40}, []int{2, 9, 5}); got != want {
		t.Errorf("ordered width = %d, want %d", got, want)
	}
	if orderRowByBlank(in, nil) != nil {
		t.Error("empty row should stay empty")
	}
}

func TestLegalizeRows(t *testing.T) {
	in := &core.Instance{
		Kind: core.OneD, StencilWidth: 100, StencilHeight: 40, NumRegions: 1, RowHeight: 40,
		Characters: []core.Character{
			{ID: 0, Width: 60, Height: 40, VSBShots: 10, Repeats: []int64{5}},
			{ID: 1, Width: 60, Height: 40, VSBShots: 2, Repeats: []int64{1}},
		},
	}
	rows := legalizeRows(in, [][]int{{0, 1}})
	if len(rows[0]) != 1 {
		t.Fatalf("legalized row = %v, want one character", rows[0])
	}
	// The lower-profit character (id 1) must be the one evicted.
	if rows[0][0] != 0 {
		t.Errorf("kept character %d, want 0", rows[0][0])
	}
}

func TestStaticOrder(t *testing.T) {
	in := gen.Small(core.OneD, 30, 2, 51)
	byProfit := staticOrder(in, false)
	profits := in.StaticProfits()
	for k := 1; k < len(byProfit); k++ {
		if profits[byProfit[k]] > profits[byProfit[k-1]] {
			t.Fatal("staticOrder(profit) not sorted")
		}
	}
	byDensity := staticOrder(in, true)
	if len(byDensity) != in.NumCharacters() {
		t.Fatal("density order wrong length")
	}
}

func TestSumInt64(t *testing.T) {
	if sumInt64([]int64{1, 2, 3}) != 6 || sumInt64(nil) != 0 {
		t.Error("sumInt64")
	}
}
