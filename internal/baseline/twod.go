package baseline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"eblow/internal/core"
	"eblow/internal/floorsa"
	"eblow/internal/pack2d"
)

// Greedy2D is the 2D greedy baseline: characters sorted by static profit are
// packed onto shelves (bottom-left, no blank sharing); characters that do
// not fit are skipped.
func Greedy2D(in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := check2D(in); err != nil {
		return nil, err
	}
	sol := &core.Solution{Selected: make([]bool, in.NumCharacters())}

	shelfY, shelfH, cursorX := 0, 0, 0
	for _, id := range staticOrder(in, false) {
		c := in.Characters[id]
		if c.Width > in.StencilWidth || c.Height > in.StencilHeight {
			continue
		}
		if cursorX+c.Width > in.StencilWidth {
			// Open a new shelf.
			if shelfH == 0 {
				continue
			}
			shelfY += shelfH
			shelfH = 0
			cursorX = 0
		}
		if shelfY+c.Height > in.StencilHeight {
			continue
		}
		sol.Selected[id] = true
		sol.Placements = append(sol.Placements, core.Placement{Char: id, X: cursorX, Y: shelfY})
		cursorX += c.Width
		if c.Height > shelfH {
			shelfH = c.Height
		}
	}
	sol.Finalize(in, "Greedy-2D", time.Since(start))
	return sol, nil
}

// SA2DOptions configures the prior-work simulated-annealing floorplanner.
type SA2DOptions struct {
	// MoveBudget is passed to the annealer (0 = automatic).
	MoveBudget int
	// Seed seeds the annealer.
	Seed int64
	// TimeLimit bounds the annealing run.
	TimeLimit time.Duration
	// Restarts is the number of independent annealing restarts (best-of
	// wins); 0 means 1.
	Restarts int
	// Workers bounds how many restarts anneal concurrently; 0 means one
	// goroutine per restart.
	Workers int
	// PreFilterFactor keeps PreFilterFactor * (stencil area / average
	// character area) candidates before annealing; 0 means 2.5.
	PreFilterFactor float64
}

// SA2DPlan is the deterministic setup of an SA2D run: the prefiltered
// candidate ids, their floorsa blocks, and the resolved annealer options.
// The solo flow (SA2D) and the batched cohort executor (internal/batch) both
// build one of these and anneal exactly the same input — which is what makes
// batched results bit-identical to solo runs by construction rather than by
// reimplementation.
type SA2DPlan struct {
	// IDs are the prefiltered candidate character ids, in annealing order.
	IDs []int
	// Blocks are the candidates as floorsa blocks (geometry plus per-region
	// writing-time reductions).
	Blocks []floorsa.Block
	// Opt is the resolved annealer configuration for floorsa.Pack.
	Opt floorsa.Options
}

// PlanSA2D validates the instance and builds the annealing input of an SA2D
// run without running it.
func PlanSA2D(in *core.Instance, opt SA2DOptions) (*SA2DPlan, error) {
	if err := check2D(in); err != nil {
		return nil, err
	}
	if opt.PreFilterFactor <= 0 {
		opt.PreFilterFactor = 2.5
	}
	ids := preFilter2D(in, opt.PreFilterFactor)
	blocks := make([]floorsa.Block, len(ids))
	for k, id := range ids {
		blocks[k] = charBlock(in, id)
	}
	return &SA2DPlan{
		IDs:    ids,
		Blocks: blocks,
		Opt: floorsa.Options{
			MoveBudget:   opt.MoveBudget,
			Seed:         opt.Seed,
			TimeLimit:    opt.TimeLimit,
			Restarts:     opt.Restarts,
			Workers:      opt.Workers,
			SumObjective: true,
		},
	}, nil
}

// Solution scatters a packing result back into a stencil plan over the full
// character set and finalizes it.
func (p *SA2DPlan) Solution(in *core.Instance, res *floorsa.Result, elapsed time.Duration) *core.Solution {
	sol := &core.Solution{Selected: make([]bool, in.NumCharacters())}
	for k, id := range p.IDs {
		if res.Inside[k] {
			sol.Selected[id] = true
			sol.Placements = append(sol.Placements, core.Placement{Char: id, X: res.X[k], Y: res.Y[k]})
		}
	}
	sol.Finalize(in, "SA-2D[24]", elapsed)
	return sol
}

// SA2D reimplements the fixed-outline floorplanning flow of [24]: a
// sequence-pair simulated annealer over individual characters (no
// clustering). Characters whose placement falls outside the outline are not
// selected. Following the paper's note on adapting [24] to MCC systems, the
// annealing objective is the total writing time over all regions. The
// context cancels the annealing run; an already-done context returns
// ctx.Err() immediately.
func SA2D(ctx context.Context, in *core.Instance, opt SA2DOptions) (*core.Solution, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := PlanSA2D(in, opt)
	if err != nil {
		return nil, err
	}
	res := floorsa.Pack(ctx, plan.Blocks, in.VSBTime(), in.StencilWidth, in.StencilHeight, plan.Opt)
	return plan.Solution(in, res, time.Since(start)), nil
}

// charBlock converts a character into a floorsa block.
func charBlock(in *core.Instance, id int) floorsa.Block {
	c := in.Characters[id]
	reds := make([]int64, in.NumRegions)
	for r := range reds {
		reds[r] = in.Reduction(id, r)
	}
	return floorsa.Block{
		Block: pack2d.Block{
			W: c.Width, H: c.Height,
			BlankL: c.BlankLeft, BlankR: c.BlankRight,
			BlankT: c.BlankTop, BlankB: c.BlankBottom,
		},
		Reductions: reds,
	}
}

// preFilter2D keeps the most profitable candidates (by profit per area),
// bounded by factor times the estimated stencil capacity.
func preFilter2D(in *core.Instance, factor float64) []int {
	profits := in.StaticProfits()
	ids := make([]int, 0, in.NumCharacters())
	var totalArea int64
	for i, c := range in.Characters {
		if c.Width > in.StencilWidth || c.Height > in.StencilHeight {
			continue
		}
		ids = append(ids, i)
		totalArea += int64(c.Width) * int64(c.Height)
	}
	if len(ids) == 0 {
		return ids
	}
	avgArea := float64(totalArea) / float64(len(ids))
	capEstimate := float64(in.StencilWidth) * float64(in.StencilHeight) / avgArea
	limit := int(factor * capEstimate)
	if limit < 1 {
		limit = 1
	}
	sort.Slice(ids, func(a, b int) bool {
		da := profits[ids[a]] / float64(in.Characters[ids[a]].Width*in.Characters[ids[a]].Height)
		db := profits[ids[b]] / float64(in.Characters[ids[b]].Width*in.Characters[ids[b]].Height)
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if len(ids) > limit {
		ids = ids[:limit]
	}
	return ids
}

func check2D(in *core.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Kind != core.TwoD {
		return fmt.Errorf("baseline: instance %q is not a 2DOSP instance", in.Name)
	}
	return nil
}
