package baseline

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"eblow/internal/core"
)

// Greedy1D is the "Greedy in [24]" baseline: characters are sorted by static
// profit and appended to the first row with enough remaining width, sharing
// blanks only with the character already at the row end.
func Greedy1D(in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := check1D(in); err != nil {
		return nil, err
	}
	m := in.NumRows()
	rows := make([][]int, m)
	widths := make([]int, m)

	for _, id := range staticOrder(in, false) {
		c := in.Characters[id]
		for j := 0; j < m; j++ {
			var newWidth int
			if len(rows[j]) == 0 {
				newWidth = c.Width
			} else {
				last := in.Characters[rows[j][len(rows[j])-1]]
				newWidth = widths[j] + c.Width - core.HOverlap(last, c)
			}
			if newWidth <= in.StencilWidth {
				rows[j] = append(rows[j], id)
				widths[j] = newWidth
				break
			}
		}
	}

	sol := buildRowSolution(in, rows)
	sol.Finalize(in, "Greedy-1D", time.Since(start))
	return sol, nil
}

// RowHeuristic1D is a deterministic row-structure heuristic in the spirit of
// [25]: characters are considered by decreasing profit density, assigned to
// the best-fitting row under the symmetric-blank capacity model and ordered
// inside each row by decreasing blank.
func RowHeuristic1D(in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := check1D(in); err != nil {
		return nil, err
	}
	m := in.NumRows()
	rows := make([][]int, m)
	usedEff := make([]int, m)
	maxBlank := make([]int, m)

	for _, id := range staticOrder(in, false) {
		c := in.Characters[id]
		s := c.SymmetricHBlank()
		eff := c.Width - s
		bestRow, bestSlack := -1, 0
		for j := 0; j < m; j++ {
			mb := maxBlank[j]
			if s > mb {
				mb = s
			}
			slack := in.StencilWidth - usedEff[j] - eff - mb
			if slack >= 0 && (bestRow < 0 || slack < bestSlack) {
				bestRow, bestSlack = j, slack
			}
		}
		if bestRow < 0 {
			continue
		}
		rows[bestRow] = append(rows[bestRow], id)
		usedEff[bestRow] += eff
		if s > maxBlank[bestRow] {
			maxBlank[bestRow] = s
		}
	}

	for j := range rows {
		rows[j] = orderRowByBlank(in, rows[j])
	}
	rows = legalizeRows(in, rows)
	rows = appendInsertion(in, rows)
	sol := buildRowSolution(in, rows)
	sol.Finalize(in, "RowHeuristic-1D", time.Since(start))
	return sol, nil
}

// Heuristic1DOptions configures the two-step heuristic of [24].
type Heuristic1DOptions struct {
	// ImprovementFactor scales the number of local-search attempts
	// (attempts = ImprovementFactor * n). Default 60.
	ImprovementFactor int
	// Seed seeds the local search.
	Seed int64
}

// Heuristic1D reimplements the heuristic framework of [24]: density-ordered
// character selection, first-fit row assignment, blank-sorted in-row
// ordering and a randomized swap-based improvement phase. For MCC instances
// the improvement accepts swaps that reduce the TOTAL writing time over all
// regions (the paper's noted adaptation of [24]), not the maximum, which is
// the key difference from E-BLOW. The context cancels the run: an
// already-done context returns ctx.Err() immediately and a context that
// expires during the improvement phase stops it at the next sweep.
func Heuristic1D(ctx context.Context, in *core.Instance, opt Heuristic1DOptions) (*core.Solution, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := check1D(in); err != nil {
		return nil, err
	}
	if opt.ImprovementFactor <= 0 {
		opt.ImprovementFactor = 60
	}
	m := in.NumRows()
	rows := make([][]int, m)
	usedEff := make([]int, m)
	maxBlank := make([]int, m)
	assignedRow := make([]int, in.NumCharacters())
	for i := range assignedRow {
		assignedRow[i] = -1
	}

	// Step 1: character selection + row assignment (first fit by density).
	for _, id := range staticOrder(in, true) {
		c := in.Characters[id]
		s := c.SymmetricHBlank()
		eff := c.Width - s
		for j := 0; j < m; j++ {
			mb := maxBlank[j]
			if s > mb {
				mb = s
			}
			if usedEff[j]+eff+mb <= in.StencilWidth {
				rows[j] = append(rows[j], id)
				usedEff[j] += eff
				if s > maxBlank[j] {
					maxBlank[j] = s
				}
				assignedRow[id] = j
				break
			}
		}
	}

	// Step 2: randomized swap improvement on the *sum* of region times.
	rng := rand.New(rand.NewSource(opt.Seed))
	selected := make([]bool, in.NumCharacters())
	var unselected []int
	for i := range selected {
		if assignedRow[i] >= 0 {
			selected[i] = true
		} else if in.Characters[i].Width <= in.StencilWidth {
			unselected = append(unselected, i)
		}
	}
	times := in.RegionTimes(selected)
	attempts := opt.ImprovementFactor * in.NumCharacters()
	done := ctx.Done()
	for a := 0; a < attempts && len(unselected) > 0; a++ {
		if a%1024 == 0 {
			select {
			case <-done:
				a = attempts // stop improving; the current rows are feasible
				continue
			default:
			}
		}
		u := unselected[rng.Intn(len(unselected))]
		j := rng.Intn(m)
		if len(rows[j]) == 0 {
			continue
		}
		k := rng.Intn(len(rows[j]))
		v := rows[j][k]
		// Total (sum) objective delta: removing v adds back its reductions,
		// adding u subtracts its reductions.
		var delta int64
		for c := 0; c < in.NumRegions; c++ {
			delta += in.Reduction(v, c) - in.Reduction(u, c)
		}
		if delta >= 0 {
			continue // no improvement of the total writing time
		}
		// Geometric feasibility under the symmetric-blank model.
		cu := in.Characters[u]
		cv := in.Characters[v]
		su, sv := cu.SymmetricHBlank(), cv.SymmetricHBlank()
		newEff := usedEff[j] - (cv.Width - sv) + (cu.Width - su)
		newMax := su
		for _, id := range rows[j] {
			if id == v {
				continue
			}
			if s := in.Characters[id].SymmetricHBlank(); s > newMax {
				newMax = s
			}
		}
		if newEff+newMax > in.StencilWidth {
			continue
		}
		// Apply the swap.
		rows[j][k] = u
		usedEff[j] = newEff
		maxBlank[j] = newMax
		assignedRow[u], assignedRow[v] = j, -1
		selected[u], selected[v] = true, false
		for c := 0; c < in.NumRegions; c++ {
			times[c] += in.Reduction(v, c) - in.Reduction(u, c)
		}
		// Keep the unselected pool up to date.
		unselected[indexOf(unselected, u)] = v
	}

	// Step 3: in-row ordering and legalisation.
	ordered := make([][]int, m)
	for j := range rows {
		ordered[j] = orderRowByBlank(in, rows[j])
	}
	ordered = legalizeRows(in, ordered)
	ordered = appendInsertion(in, ordered)
	sol := buildRowSolution(in, ordered)
	sol.Finalize(in, "Heuristic-1D[24]", time.Since(start))
	return sol, nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func check1D(in *core.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Kind != core.OneD {
		return fmt.Errorf("baseline: instance %q is not a 1DOSP instance", in.Name)
	}
	if in.NumRows() == 0 {
		return fmt.Errorf("baseline: stencil of %q has no rows", in.Name)
	}
	return nil
}
