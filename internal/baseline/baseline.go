// Package baseline reimplements the prior-work planners that the E-BLOW
// paper compares against in Tables 3 and 4:
//
//   - Greedy1D / Greedy2D: the "Greedy in [24]" columns — profit-sorted
//     greedy insertion without any global view.
//   - Heuristic1D: the two-step framework of [24] (character selection,
//     per-row ordering, local-search improvement). Following the paper's
//     note, for MCC instances it optimizes the *total* writing time of all
//     regions rather than the maximum, which is exactly why it loses to
//     E-BLOW on MCC benchmarks.
//   - RowHeuristic1D: a deterministic row-structure heuristic in the spirit
//     of [25] (profit-density ordering, best-fit rows, blank-sorted
//     in-row order) — very fast, no LP.
//   - SA2D: the fixed-outline simulated-annealing floorplanner of [24]
//     (sequence pair, no clustering, total-writing-time objective for MCC).
//
// All planners return core.Solution values that pass the package core
// validators, so the comparison with E-BLOW is apples to apples.
package baseline

import (
	"sort"

	"eblow/internal/core"
)

// staticOrder returns character ids sorted by decreasing static profit
// (optionally divided by the effective width to get a density).
func staticOrder(in *core.Instance, byDensity bool) []int {
	profits := in.StaticProfits()
	ids := make([]int, in.NumCharacters())
	for i := range ids {
		ids[i] = i
	}
	key := func(i int) float64 {
		if !byDensity {
			return profits[i]
		}
		w := float64(in.Characters[i].Width - in.Characters[i].SymmetricHBlank())
		if w <= 0 {
			w = 1
		}
		return profits[i] / w
	}
	sort.Slice(ids, func(a, b int) bool {
		ka, kb := key(ids[a]), key(ids[b])
		if ka != kb {
			return ka > kb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// orderRowByBlank orders a row's characters by decreasing symmetric blank and
// greedily appends each at the end (left or right) that minimizes the packed
// width: the classic two-choice ordering the refinement stage of E-BLOW
// generalises.
func orderRowByBlank(in *core.Instance, chars []int) []int {
	if len(chars) == 0 {
		return nil
	}
	sorted := append([]int(nil), chars...)
	sort.Slice(sorted, func(a, b int) bool {
		sa := in.Characters[sorted[a]].SymmetricHBlank()
		sb := in.Characters[sorted[b]].SymmetricHBlank()
		if sa != sb {
			return sa > sb
		}
		return sorted[a] < sorted[b]
	})
	order := []int{sorted[0]}
	for _, id := range sorted[1:] {
		c := in.Characters[id]
		left := in.Characters[order[0]]
		right := in.Characters[order[len(order)-1]]
		costLeft := c.Width - core.HOverlap(c, left)
		costRight := c.Width - core.HOverlap(right, c)
		if costLeft < costRight {
			order = append([]int{id}, order...)
		} else {
			order = append(order, id)
		}
	}
	return order
}

// rowXs computes the flush-left x positions of an ordered row.
func rowXs(in *core.Instance, order []int) []int {
	xs := make([]int, len(order))
	for k := 1; k < len(order); k++ {
		prev := in.Characters[order[k-1]]
		cur := in.Characters[order[k]]
		xs[k] = xs[k-1] + prev.Width - core.HOverlap(prev, cur)
	}
	return xs
}

// buildRowSolution assembles a 1D solution from per-row character orders.
func buildRowSolution(in *core.Instance, rows [][]int) *core.Solution {
	sol := &core.Solution{Selected: make([]bool, in.NumCharacters())}
	for j, order := range rows {
		if len(order) == 0 {
			continue
		}
		for _, id := range order {
			sol.Selected[id] = true
		}
		sol.Rows = append(sol.Rows, core.Row{
			Y:     j * in.RowHeight,
			Chars: append([]int(nil), order...),
			X:     rowXs(in, order),
		})
	}
	sol.PlacementsFromRows()
	return sol
}

// legalizeRows drops the lowest-profit characters from rows that exceed the
// stencil width until every row fits.
func legalizeRows(in *core.Instance, rows [][]int) [][]int {
	profits := in.StaticProfits()
	for j, order := range rows {
		for len(order) > 0 && core.MinRowLength(in, order) > in.StencilWidth {
			worst := 0
			for k := 1; k < len(order); k++ {
				if profits[order[k]] < profits[order[worst]] {
					worst = k
				}
			}
			order = append(order[:worst], order[worst+1:]...)
		}
		rows[j] = order
	}
	return rows
}

// appendInsertion greedily appends still-unselected characters at the right
// end of the first row with enough slack (the right-end-only insertion of
// [24] that the paper's post-insertion stage generalises). rows must already
// be ordered; the function returns the updated orders.
func appendInsertion(in *core.Instance, rows [][]int) [][]int {
	selected := make([]bool, in.NumCharacters())
	for _, order := range rows {
		for _, id := range order {
			selected[id] = true
		}
	}
	widths := make([]int, len(rows))
	for j, order := range rows {
		widths[j] = core.MinRowLength(in, order)
	}
	for _, id := range staticOrder(in, false) {
		if selected[id] {
			continue
		}
		c := in.Characters[id]
		if c.Width > in.StencilWidth {
			continue
		}
		for j, order := range rows {
			var newWidth int
			if len(order) == 0 {
				newWidth = c.Width
			} else {
				last := in.Characters[order[len(order)-1]]
				newWidth = widths[j] + c.Width - core.HOverlap(last, c)
			}
			if newWidth <= in.StencilWidth {
				rows[j] = append(rows[j], id)
				widths[j] = newWidth
				selected[id] = true
				break
			}
		}
	}
	return rows
}

// sumInt64 is a small helper for the total-writing-time objective of [24].
func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
