package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"eblow/internal/core"
	"eblow/internal/gen"
	"eblow/internal/solver"
)

// normalize renders the digest-relevant part of a result: strategy,
// objective, feasibility and the full stencil plan with the wall-clock
// Runtime zeroed (timing is trace-only and legitimately differs between
// solo and batched execution).
func normalize(t *testing.T, r *solver.Result) string {
	t.Helper()
	if r == nil {
		return "<nil>"
	}
	head := fmt.Sprintf("%s|%d|%v|", r.Strategy, r.Objective, r.Feasible)
	if r.Solution == nil {
		return head + "<no solution>"
	}
	sol := *r.Solution
	sol.Runtime = 0
	b, err := json.Marshal(&sol)
	if err != nil {
		t.Fatalf("marshal solution: %v", err)
	}
	return head + string(b)
}

func equivUnits(t *testing.T) []Unit {
	t.Helper()
	var units []Unit
	add := func(kind core.Kind, chars, regions int, seed int64, strategy string, p solver.Params) {
		in := gen.Small(kind, chars, regions, seed)
		units = append(units, Unit{Ctx: context.Background(), Instance: in, Strategy: strategy, Params: p})
	}
	// A mixed cohort: several sa24 2D jobs (the arena-backed lockstep
	// kernel), plus 1D jobs on every other batchable strategy.
	add(core.TwoD, 24, 3, 11, "sa24", solver.Params{Seed: 1, Workers: 1})
	add(core.TwoD, 18, 2, 12, "sa24", solver.Params{Seed: 2, Workers: 1, Restarts: 2})
	add(core.TwoD, 30, 4, 13, "sa24", solver.Params{Seed: 3, Workers: 2})
	add(core.OneD, 40, 3, 14, "greedy", solver.Params{Seed: 4, Workers: 1})
	add(core.OneD, 36, 2, 15, "row25", solver.Params{Seed: 5, Workers: 1})
	add(core.OneD, 32, 3, 16, "heuristic24", solver.Params{Seed: 6, Workers: 1})
	add(core.OneD, 28, 2, 17, "greedy", solver.Params{Seed: 7, Workers: 1})
	return units
}

// TestExecuteMatchesSolo is the executor-level half of the batch-identity
// contract: for every unit of a mixed-strategy cohort, Execute must return a
// result digest-identical to a solo solver.Solve call, at every sweep width.
func TestExecuteMatchesSolo(t *testing.T) {
	units := equivUnits(t)
	solo := make([]string, len(units))
	for i, u := range units {
		r, err := solver.Solve(u.Ctx, u.Strategy, u.Instance, u.Params)
		if err != nil {
			t.Fatalf("solo solve %d (%s): %v", i, u.Strategy, err)
		}
		solo[i] = normalize(t, r)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := Execute(units, workers)
			if len(got) != len(units) {
				t.Fatalf("Execute returned %d results for %d units", len(got), len(units))
			}
			for i, ur := range got {
				if ur.Err != nil {
					t.Errorf("unit %d (%s): batched error %v", i, units[i].Strategy, ur.Err)
					continue
				}
				if b := normalize(t, ur.Result); b != solo[i] {
					t.Errorf("unit %d (%s): batched result diverged from solo\nbatched: %s\nsolo:    %s",
						i, units[i].Strategy, b, solo[i])
				}
			}
		})
	}
}

// TestExecuteSA24Singleton checks the n=1 degenerate cohort: a lone sa24
// unit through the batched path still matches its solo solve.
func TestExecuteSA24Singleton(t *testing.T) {
	in := gen.Small(core.TwoD, 20, 2, 99)
	u := Unit{Ctx: context.Background(), Instance: in, Strategy: "sa24", Params: solver.Params{Seed: 42, Workers: 1}}
	r, err := solver.Solve(u.Ctx, u.Strategy, u.Instance, u.Params)
	if err != nil {
		t.Fatalf("solo solve: %v", err)
	}
	got := Execute([]Unit{u}, 4)
	if got[0].Err != nil {
		t.Fatalf("batched error: %v", got[0].Err)
	}
	if b, s := normalize(t, got[0].Result), normalize(t, r); b != s {
		t.Fatalf("singleton cohort diverged from solo\nbatched: %s\nsolo:    %s", b, s)
	}
}

// TestExecutePropagatesErrors checks that a unit doomed to fail (a 1D-only
// strategy on a 2D instance) reports its error without disturbing its
// cohort-mates.
func TestExecutePropagatesErrors(t *testing.T) {
	good := Unit{
		Ctx:      context.Background(),
		Instance: gen.Small(core.OneD, 30, 2, 5),
		Strategy: "greedy",
		Params:   solver.Params{Seed: 1},
	}
	bad := Unit{
		Ctx:      context.Background(),
		Instance: gen.Small(core.TwoD, 20, 2, 6),
		Strategy: "row25", // 1D-only
		Params:   solver.Params{Seed: 1},
	}
	got := Execute([]Unit{good, bad, good}, 2)
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("good units errored: %v / %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Fatal("row25 on a 2D instance succeeded in a cohort; want an error")
	}
}

// TestExecuteCanceledContext checks that an already-canceled unit context
// surfaces context.Canceled for that unit only.
func TestExecuteCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	live := Unit{
		Ctx:      context.Background(),
		Instance: gen.Small(core.TwoD, 16, 2, 7),
		Strategy: "sa24",
		Params:   solver.Params{Seed: 9},
	}
	dead := live
	dead.Ctx = ctx
	got := Execute([]Unit{live, dead}, 2)
	if got[0].Err != nil {
		t.Fatalf("live unit errored: %v", got[0].Err)
	}
	if got[1].Err == nil {
		t.Fatal("canceled unit returned no error")
	}
}

func TestBatchable(t *testing.T) {
	cases := []struct {
		strategy string
		kind     core.Kind
		want     bool
	}{
		{"sa24", core.TwoD, true},
		{"sa24", core.OneD, false}, // sa24 is 2D-only
		{"greedy", core.OneD, true},
		{"row25", core.OneD, true},
		{"heuristic24", core.OneD, true},
		{"eblow", core.OneD, false},
		{"portfolio", core.OneD, false},
		{"no-such-strategy", core.OneD, false},
	}
	for _, c := range cases {
		if got := Batchable(c.strategy, c.kind); got != c.want {
			t.Errorf("Batchable(%q, %s) = %v, want %v", c.strategy, c.kind, got, c.want)
		}
	}
}
