// Package batch is the batched many-instance execution layer: it turns a
// set of concurrently queued compatible jobs into one cohort that runs wide
// data-parallel kernels in lockstep instead of draining job-by-job.
//
// The package has two halves:
//
//   - Queue is the cost-model scheduler. The service pushes every queued
//     job with a cost estimate (Estimate: chars x regions x strategy,
//     replaced by measured runtimes from internal/learn once a store has
//     traffic history) and Pop returns the next unit of work — the
//     cheapest eligible job plus every compatible small job it can take
//     along, up to the policy's cohort size. Fairness is bounded, not
//     best-effort: a job can be overtaken by at most Policy.MaxJump
//     later-submitted jobs before the scheduler pins it to the front, so
//     starvation is impossible by construction.
//   - Execute runs a popped cohort. Units sharing a strategy and kind are
//     executed by one par.For sweep; the "sa24" 2D annealer additionally
//     gets the full struct-of-arrays treatment (floorsa.PackBatch carves
//     every instance's hot arrays from one shared arena, so the cohort's
//     kernels run as contiguous lockstep sweeps instead of per-instance
//     pointer chasing).
//
// The batch-identity contract (docs/INVARIANTS.md): for every unit, the
// Result of a batched run is bit-identical to the solo solver.Solve call
// the service would have made — same objective, same plan, same digest.
// Cohort execution changes only memory layout and start order, never the
// arithmetic; each unit keeps its own context, seed stream, and deadline.
package batch

import (
	"context"

	"eblow/internal/core"
	"eblow/internal/par"
	"eblow/internal/solver"
)

// Unit is one job's solve inside a cohort.
type Unit struct {
	// Ctx cancels this unit alone; it must be non-nil.
	Ctx context.Context
	// Instance is the problem to solve.
	Instance *core.Instance
	// Strategy is the resolved registry name; it must be batchable
	// (Batchable reports true) for cohort formation, though Execute runs
	// any registered strategy.
	Strategy string
	// Params are the solve parameters, exactly as the solo path would pass
	// them to solver.Solve.
	Params solver.Params
}

// UnitResult pairs one unit's outcome with its error, mirroring the
// (Result, error) return of solver.Solve.
type UnitResult struct {
	Result *solver.Result
	Err    error
}

// Batchable reports whether the named strategy is registered, supports the
// kind, and is marked safe for cohort execution.
func Batchable(name string, kind core.Kind) bool {
	e, ok := solver.LookupEntry(name)
	return ok && e.Batchable && e.Supports(kind)
}

// Execute runs the units as one cohort and returns one UnitResult per unit,
// index-aligned. Units are grouped by (strategy, kind) in first-appearance
// order; each group runs as one lockstep par.For sweep bounded by workers
// goroutines. Results are bit-identical to calling solver.Solve per unit.
func Execute(units []Unit, workers int) []UnitResult {
	out := make([]UnitResult, len(units))
	if len(units) == 0 {
		return out
	}
	type group struct {
		strategy string
		kind     core.Kind
		idx      []int
	}
	var groups []group
	for i, u := range units {
		placed := false
		for g := range groups {
			if groups[g].strategy == u.Strategy && groups[g].kind == u.Instance.Kind {
				groups[g].idx = append(groups[g].idx, i)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, group{u.Strategy, u.Instance.Kind, []int{i}})
		}
	}
	for _, g := range groups {
		sub := make([]Unit, len(g.idx))
		for k, i := range g.idx {
			sub[k] = units[i]
		}
		var res []UnitResult
		if g.strategy == "sa24" && g.kind == core.TwoD {
			res = runSA2D(sub, workers)
		} else {
			res = runGrouped(sub, workers)
		}
		for k, i := range g.idx {
			out[i] = res[k]
		}
	}
	return out
}

// runGrouped executes the units through the registry solver, one unit per
// par.For index. This is the trivially-lockstep case: every instance runs
// the same strategy's kernel in one sweep, and bit-identity to solo
// execution holds because the code path IS the solo path.
func runGrouped(units []Unit, workers int) []UnitResult {
	out := make([]UnitResult, len(units))
	par.For(workers, len(units), func(i int) {
		u := units[i]
		r, err := solver.Solve(u.Ctx, u.Strategy, u.Instance, u.Params)
		out[i] = UnitResult{Result: r, Err: err}
	})
	return out
}
