package batch

import (
	"fmt"
	"math/rand"
	"testing"

	"eblow/internal/core"
)

func pushN(q *Queue, items ...Item) {
	for _, it := range items {
		q.Push(it)
	}
}

// drainAll pops until empty and returns the job IDs in pop order (flattened
// across cohorts).
func drainAll(q *Queue, pol Policy) []string {
	var order []string
	for q.Len() > 0 {
		for _, it := range q.Pop(pol) {
			order = append(order, it.ID)
		}
	}
	return order
}

func TestQueuePopsByCost(t *testing.T) {
	q := NewQueue()
	pushN(q,
		Item{ID: "big", Cost: 1000},
		Item{ID: "mid", Cost: 100},
		Item{ID: "tiny", Cost: 1},
	)
	got := drainAll(q, Policy{MaxBatch: 1, MaxJump: 100})
	want := []string{"tiny", "mid", "big"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueCostTiesGoToSubmissionOrder(t *testing.T) {
	q := NewQueue()
	pushN(q, Item{ID: "a", Cost: 5}, Item{ID: "b", Cost: 5}, Item{ID: "c", Cost: 5})
	got := drainAll(q, Policy{MaxBatch: 1, MaxJump: 100})
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie order %v, want submission order", got)
	}
}

// TestQueueAgingBound is the fairness guarantee under the adversarial mix:
// one expensive job followed by a stream of cheap ones. The expensive job
// must be overtaken by exactly MaxJump cheap jobs, then pinned to the front.
func TestQueueAgingBound(t *testing.T) {
	const maxJump = 3
	q := NewQueue()
	q.Push(Item{ID: "whale", Cost: 1e9})
	for i := 0; i < 10; i++ {
		q.Push(Item{ID: fmt.Sprintf("minnow%d", i), Cost: 1})
	}
	got := drainAll(q, Policy{MaxBatch: 1, MaxJump: maxJump})
	// The whale waits through exactly maxJump cheap pops.
	for pos, id := range got {
		if id == "whale" {
			if pos != maxJump {
				t.Fatalf("whale popped at position %d, want %d (aging bound)", pos, maxJump)
			}
			break
		}
	}
	st := q.Stats()
	if st.AgedPops != 1 {
		t.Fatalf("AgedPops = %d, want 1", st.AgedPops)
	}
	if st.Overtakes != maxJump {
		t.Fatalf("Overtakes = %d, want %d", st.Overtakes, maxJump)
	}
}

func TestQueueMaxJumpZeroIsFIFO(t *testing.T) {
	q := NewQueue()
	pushN(q, Item{ID: "slow", Cost: 100}, Item{ID: "fast", Cost: 1})
	got := drainAll(q, Policy{MaxBatch: 1, MaxJump: 0})
	if got[0] != "slow" || got[1] != "fast" {
		t.Fatalf("MaxJump=0 order %v, want strict FIFO", got)
	}
}

func TestQueueCohortCompatibility(t *testing.T) {
	q := NewQueue()
	pushN(q,
		Item{ID: "a", Strategy: "sa24", Kind: core.TwoD, Chars: 30, Cost: 10, Batchable: true},
		Item{ID: "b", Strategy: "greedy", Kind: core.OneD, Chars: 30, Cost: 11, Batchable: true},
		Item{ID: "c", Strategy: "sa24", Kind: core.TwoD, Chars: 30, Cost: 12, Batchable: true},
		Item{ID: "d", Strategy: "sa24", Kind: core.TwoD, Chars: 900, Cost: 13, Batchable: true}, // too big
		Item{ID: "e", Strategy: "eblow", Kind: core.TwoD, Chars: 30, Cost: 14},                  // not batchable
		Item{ID: "f", Strategy: "sa24", Kind: core.OneD, Chars: 30, Cost: 15, Batchable: true},  // kind mismatch
	)
	pol := Policy{MaxBatch: 8, MaxChars: 400, MaxJump: 100}
	first := q.Pop(pol)
	if len(first) != 2 || first[0].ID != "a" || first[1].ID != "c" {
		t.Fatalf("first cohort %+v, want [a c]", first)
	}
	st := q.Stats()
	if st.Cohorts != 1 || st.BatchedJobs != 2 || st.MaxCohort != 2 {
		t.Fatalf("stats after cohort: %+v", st)
	}
}

func TestQueueMaxBatchCapsCohort(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(Item{ID: fmt.Sprintf("j%d", i), Strategy: "greedy", Kind: core.OneD, Chars: 10, Cost: 1, Batchable: true})
	}
	got := q.Pop(Policy{MaxBatch: 4, MaxChars: 100, MaxJump: 100})
	if len(got) != 4 {
		t.Fatalf("cohort size %d, want 4", len(got))
	}
	if q.Stats().MaxCohort != 4 {
		t.Fatalf("MaxCohort = %d, want 4", q.Stats().MaxCohort)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue()
	pushN(q, Item{ID: "a", Cost: 1}, Item{ID: "b", Cost: 2})
	if !q.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if q.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	got := drainAll(q, Policy{MaxBatch: 1, MaxJump: 10})
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("after Remove, drain = %v, want [b]", got)
	}
}

// TestQueueFairnessProperty drives random adversarial cost mixes through
// the scheduler with cohorts enabled and checks the invariant directly: in
// the realized pop order, no job is preceded by more than MaxJump jobs that
// were submitted after it.
func TestQueueFairnessProperty(t *testing.T) {
	strategies := []string{"greedy", "row25", "sa24"}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue()
		n := 30 + rng.Intn(40)
		submitted := make(map[string]int, n)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("j%d", i)
			submitted[id] = i
			cost := 1.0
			if rng.Intn(3) == 0 {
				cost = float64(1 + rng.Intn(1_000_000))
			}
			q.Push(Item{
				ID:        id,
				Strategy:  strategies[rng.Intn(len(strategies))],
				Kind:      core.Kind(rng.Intn(2)),
				Chars:     10 + rng.Intn(600),
				Cost:      cost,
				Batchable: rng.Intn(4) != 0,
			})
		}
		maxJump := rng.Intn(6)
		pol := Policy{MaxBatch: 1 + rng.Intn(6), MaxChars: 400, MaxJump: maxJump}
		order := drainAll(q, pol)
		if len(order) != n {
			t.Fatalf("seed %d: drained %d of %d jobs", seed, len(order), n)
		}
		for pos, id := range order {
			overtakes := 0
			for _, earlier := range order[:pos] {
				if submitted[earlier] > submitted[id] {
					overtakes++
				}
			}
			if overtakes > maxJump {
				t.Fatalf("seed %d: job %s overtaken %d times, aging bound is %d (order %v)",
					seed, id, overtakes, maxJump, order)
			}
		}
	}
}

func TestQueueStatsPending(t *testing.T) {
	q := NewQueue()
	pushN(q, Item{ID: "a"}, Item{ID: "b"})
	if got := q.Stats().Pending; got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	q.Pop(Policy{MaxBatch: 1})
	if got := q.Stats().Pending; got != 1 {
		t.Fatalf("Pending after pop = %d, want 1", got)
	}
	if q.Stats().SoloJobs != 1 {
		t.Fatalf("SoloJobs = %d, want 1", q.Stats().SoloJobs)
	}
}
