package batch

import (
	"eblow/internal/core"
	"eblow/internal/learn"
)

// Estimate returns the scheduler's cost estimate for running the strategy
// on the instance. Costs are in rough microseconds of expected solve time —
// the absolute scale only matters so static estimates stay comparable with
// measured ones; the scheduler consumes relative order.
//
// With a learn store loaded, a shape that has recorded traffic history for
// the strategy reports its measured mean runtime instead of the static
// model, so the queue ordering sharpens as the deployment runs. Without
// history the static model is chars x regions x a per-strategy factor:
// coarse, but it only has to rank a tiny greedy job below a medium
// annealing job, which it does by orders of magnitude.
func Estimate(in *core.Instance, strategy string, store *learn.Store) float64 {
	if store != nil {
		if d, ok := store.AvgElapsed(learn.Fingerprint(in), strategy); ok {
			us := float64(d.Microseconds())
			if us < 1 {
				us = 1
			}
			return us
		}
	}
	chars := float64(in.NumCharacters())
	regions := float64(in.NumRegions)
	if regions < 1 {
		regions = 1
	}
	switch strategy {
	case "greedy", "row25":
		// Sort-and-pack passes: near-linear, no annealing.
		return 5 * chars
	case "heuristic24":
		// Two-step heuristic with a swap-improvement loop.
		return 40 * chars
	case "sa24":
		// Annealing cost follows the move budget (floorsa.defaultBudget
		// scales 40n clamped to [2000, 60000]) plus a quadratic legalize.
		moves := 40 * chars
		if moves < 2000 {
			moves = 2000
		}
		if moves > 60000 {
			moves = 60000
		}
		return 0.5*moves + 0.01*chars*chars
	case "eblow":
		if in.Kind == core.OneD {
			// Successive rounding over an LP relaxation: the matrix grows
			// with both candidates and regions.
			return 50 * chars * regions
		}
		// Clustering plus annealing: roughly the sa24 shape, doubled.
		moves := 40 * chars
		if moves < 2000 {
			moves = 2000
		}
		if moves > 60000 {
			moves = 60000
		}
		return 2 * (0.5*moves + 0.01*chars*chars)
	case "exact":
		// Branch and bound: super-quadratic even on tiny instances.
		return 1000 * chars * chars
	default:
		// Unknown or meta-strategy ("portfolio"): assume the full race.
		return 100 * chars * regions
	}
}
