package batch

import (
	"sort"
	"sync"

	"eblow/internal/core"
)

// Item is one queued job as the scheduler sees it.
type Item struct {
	// ID is the job's service identifier, echoed back by Pop.
	ID string
	// Strategy is the job's resolved registry strategy; cohorts only form
	// across identical strategies.
	Strategy string
	// Kind is the instance kind; cohorts never mix kinds.
	Kind core.Kind
	// Chars is the instance's character count, gating cohort membership
	// (Policy.MaxChars).
	Chars int
	// Cost is the job's cost estimate (Estimate); lower pops first.
	Cost float64
	// Batchable marks jobs whose strategy may run in a cohort; others
	// always pop solo.
	Batchable bool

	// seq is the submission sequence number, assigned by Push.
	seq int
	// overtakes counts how many later-submitted jobs have been popped past
	// this one; at Policy.MaxJump the scheduler pins it to the front.
	overtakes int
}

// Policy bounds what Pop may select.
type Policy struct {
	// MaxBatch caps the jobs per cohort; <= 1 disables cohort formation.
	MaxBatch int
	// MaxChars is the largest instance (by character count) that may join
	// a cohort; bigger jobs always run solo.
	MaxChars int
	// MaxJump is the aging bound: the maximum number of later-submitted
	// jobs that may be popped past a waiting job. 0 degenerates to strict
	// FIFO order (cohorts may still form, but only from jobs adjacent in
	// submission order).
	MaxJump int
}

// Stats counts scheduler activity since the queue was created.
type Stats struct {
	// Pending is the current queue depth.
	Pending int
	// Cohorts counts Pops that returned more than one job.
	Cohorts int
	// BatchedJobs counts jobs returned as part of a multi-job cohort.
	BatchedJobs int
	// SoloJobs counts jobs returned alone.
	SoloJobs int
	// MaxCohort is the largest cohort returned so far.
	MaxCohort int
	// Overtakes counts job-over-job queue jumps (each popped job counts
	// once per earlier-submitted job left waiting).
	Overtakes int
	// AgedPops counts Pops whose head was forced by the aging bound rather
	// than chosen by cost.
	AgedPops int
}

// Queue is the cost-model scheduler: a pending set ordered by submission,
// popped by cost estimate under a hard aging bound. It is deterministic —
// no clock, no goroutines — and safe for concurrent use: every method
// takes the queue's own mutex, so readers that bypass the job service's
// lock (the GET /v1/stats snapshot under load) still see consistent
// counters.
type Queue struct {
	mu sync.Mutex
	// guarded by mu — pending jobs in submission (seq) order
	items []*Item
	// guarded by mu
	nextSeq int
	// guarded by mu
	stats Stats
}

// NewQueue returns an empty scheduler queue.
func NewQueue() *Queue { return &Queue{} }

// Push appends a job to the pending set.
func (q *Queue) Push(it Item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	it.seq = q.nextSeq
	q.nextSeq++
	q.items = append(q.items, &it)
}

// Len returns the pending job count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Remove deletes the job with the given id from the pending set (a cancel
// while queued). It reports whether the job was present.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Stats returns the activity counters with Pending filled in. The snapshot
// is internally consistent even against a concurrent Push or Pop.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Pending = len(q.items)
	return s
}

// Pop selects the next unit of work: the head job plus, if the head is
// batchable and small enough, every compatible mate the policy admits —
// returned in submission order. The head is the cheapest pending job by
// cost estimate (ties to the earliest submitted), unless some job has
// already been overtaken Policy.MaxJump times, in which case that job is
// the head regardless of cost (the aging bound).
//
// The invariant Pop maintains: no job is ever overtaken by more than
// MaxJump later-submitted jobs. Cost-chosen heads cannot violate it (any
// job at the bound would have been pinned first), and cohort mates are
// admitted only if every job left waiting stays within the bound.
func (q *Queue) Pop(pol Policy) []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	if pol.MaxJump < 0 {
		pol.MaxJump = 0
	}

	// Head: the earliest job at the aging bound wins; otherwise cost.
	head := -1
	aged := false
	for idx, it := range q.items {
		if it.overtakes >= pol.MaxJump {
			head, aged = idx, true
			break
		}
	}
	if head < 0 {
		for idx, it := range q.items {
			if head < 0 || it.Cost < q.items[head].Cost {
				head = idx
			}
		}
	}

	// Cohort formation: admit compatible mates in (cost, seq) order while
	// every unselected job stays within the aging bound.
	sel := []int{head}
	h := q.items[head]
	if pol.MaxBatch > 1 && h.Batchable && h.Chars <= pol.MaxChars {
		var cand []int
		for idx, it := range q.items {
			if idx == head {
				continue
			}
			if it.Batchable && it.Strategy == h.Strategy && it.Kind == h.Kind && it.Chars <= pol.MaxChars {
				cand = append(cand, idx)
			}
		}
		sort.SliceStable(cand, func(a, b int) bool {
			ia, ib := q.items[cand[a]], q.items[cand[b]]
			if ia.Cost != ib.Cost {
				return ia.Cost < ib.Cost
			}
			return ia.seq < ib.seq
		})
		for _, idx := range cand {
			if len(sel) >= pol.MaxBatch {
				break
			}
			if q.fitsLocked(sel, idx, pol.MaxJump) {
				sel = append(sel, idx)
			}
		}
	}

	// Indices ascend in seq order, so sorting positions returns the batch
	// in submission order.
	sort.Ints(sel)
	selected := make([]bool, len(q.items))
	for _, idx := range sel {
		selected[idx] = true
	}
	batch := make([]Item, 0, len(sel))
	kept := make([]*Item, 0, len(q.items)-len(sel))
	for idx, it := range q.items {
		if selected[idx] {
			batch = append(batch, *it)
			continue
		}
		for _, s := range sel {
			if q.items[s].seq > it.seq {
				it.overtakes++
				q.stats.Overtakes++
			}
		}
		kept = append(kept, it)
	}
	q.items = kept

	if len(batch) > 1 {
		q.stats.Cohorts++
		q.stats.BatchedJobs += len(batch)
		if len(batch) > q.stats.MaxCohort {
			q.stats.MaxCohort = len(batch)
		}
	} else {
		q.stats.SoloJobs++
	}
	if aged {
		q.stats.AgedPops++
	}
	return batch
}

// fitsLocked reports whether adding candidate idx to the selection keeps
// every job left waiting within the aging bound. Callers hold q.mu.
func (q *Queue) fitsLocked(sel []int, idx, maxJump int) bool {
	c := q.items[idx]
	for j, it := range q.items {
		if j == idx {
			continue
		}
		inSel := false
		for _, s := range sel {
			if s == j {
				inSel = true
				break
			}
		}
		if inSel || it.seq > c.seq {
			continue
		}
		// it would be overtaken by c and by every already-selected job
		// submitted after it.
		n := it.overtakes + 1
		for _, s := range sel {
			if q.items[s].seq > it.seq {
				n++
			}
		}
		if n > maxJump {
			return false
		}
	}
	return true
}
