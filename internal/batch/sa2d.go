package batch

import (
	"context"
	"time"

	"eblow/internal/baseline"
	"eblow/internal/floorsa"
	"eblow/internal/solver"
)

// runSA2D is the struct-of-arrays cohort kernel for the "sa24" strategy:
// every unit's annealing input is planned up front (baseline.PlanSA2D, the
// exact setup the solo path runs), then floorsa.PackBatch anneals the whole
// cohort out of one shared arena in a single lockstep par.For sweep, and
// finally each result is scattered back into a per-unit Solution with the
// same stamping the registry wrapper applies.
//
// The pre-kernel checks replicate the registry wrapper's contract in the
// same order — ctx, Validate, per-unit deadline — so a unit that would have
// failed solo fails identically here. Elapsed spans the cohort's phases
// (plan + pack + scatter); it is trace-only and excluded from result
// digests, so sharing the clock across the cohort cannot break the
// batch-identity contract.
func runSA2D(units []Unit, workers int) []UnitResult {
	out := make([]UnitResult, len(units))
	start := time.Now()

	type prep struct {
		plan   *baseline.SA2DPlan
		cancel context.CancelFunc
	}
	preps := make([]prep, len(units))
	items := make([]floorsa.BatchItem, 0, len(units))
	itemUnit := make([]int, 0, len(units))
	for i, u := range units {
		if err := u.Ctx.Err(); err != nil {
			out[i] = UnitResult{Err: err}
			continue
		}
		p := u.Params
		ctx := u.Ctx
		var cancel context.CancelFunc
		if p.Deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		}
		plan, err := baseline.PlanSA2D(u.Instance, baseline.SA2DOptions{
			Seed:      p.Seed,
			Restarts:  p.Restarts,
			Workers:   p.Workers,
			TimeLimit: p.Deadline,
		})
		if err != nil {
			if cancel != nil {
				cancel()
			}
			out[i] = UnitResult{Err: err}
			continue
		}
		preps[i] = prep{plan: plan, cancel: cancel}
		items = append(items, floorsa.BatchItem{
			Ctx:    ctx,
			Blocks: plan.Blocks,
			VSB:    u.Instance.VSBTime(),
			W:      u.Instance.StencilWidth,
			H:      u.Instance.StencilHeight,
			Opt:    plan.Opt,
		})
		itemUnit = append(itemUnit, i)
	}

	results := floorsa.PackBatch(items, workers)

	for k, i := range itemUnit {
		u := units[i]
		sol := preps[i].plan.Solution(u.Instance, results[k], time.Since(start))
		r := &solver.Result{Solution: sol}
		solver.Finish(r, u.Instance, u.Strategy, time.Since(start))
		out[i] = UnitResult{Result: r}
		if preps[i].cancel != nil {
			preps[i].cancel()
		}
	}
	return out
}
