package batch

import (
	"fmt"
	"sync"
	"testing"

	"eblow/internal/core"
)

// TestQueueConcurrentAccess drives Push, Pop, Remove, Len and Stats from
// competing goroutines. The queue used to rely entirely on the service's
// mutex; now that GET /v1/stats (and the dispatcher's fleet aggregation)
// can read counters concurrently, the queue carries its own lock — this
// test is the -race witness for it.
func TestQueueConcurrentAccess(t *testing.T) {
	q := NewQueue()
	pol := Policy{MaxBatch: 4, MaxChars: 100, MaxJump: 8}
	const producers = 4
	const perProducer = 200

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(Item{
					ID:        fmt.Sprintf("p%d-%d", p, i),
					Strategy:  "sa24",
					Kind:      core.OneD,
					Chars:     20 + i%10,
					Cost:      float64(i % 7),
					Batchable: i%3 != 0,
				})
			}
		}(p)
	}
	var popped int
	var popWg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < 2; c++ {
		popWg.Add(1)
		go func() {
			defer popWg.Done()
			for {
				batch := q.Pop(pol)
				if batch == nil {
					mu.Lock()
					done := popped >= producers*perProducer
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				mu.Lock()
				popped += len(batch)
				mu.Unlock()
			}
		}()
	}
	stop := make(chan struct{})
	var statsWg sync.WaitGroup
	statsWg.Add(1)
	go func() {
		defer statsWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := q.Stats()
			if s.BatchedJobs < 2*s.Cohorts {
				t.Errorf("inconsistent stats snapshot: %+v", s)
				return
			}
			_ = q.Len()
		}
	}()

	wg.Wait()
	popWg.Wait()
	close(stop)
	statsWg.Wait()

	if popped != producers*perProducer {
		t.Fatalf("popped %d jobs, pushed %d", popped, producers*perProducer)
	}
	s := q.Stats()
	if s.Pending != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	if s.SoloJobs+s.BatchedJobs != popped {
		t.Fatalf("counters disagree with pops: %+v vs %d", s, popped)
	}
}
