package floorsa

import (
	"context"
	"math/rand"
	"testing"

	"eblow/internal/anneal"
	"eblow/internal/pack2d"
	"eblow/internal/seqpair"
)

// benchState builds a representative annealing state: 300 blocks over 10 MCC
// regions on a stencil that fits roughly half of them, so moves keep
// flipping blocks across the outline the way a real run does.
func benchState(useSum bool) *state {
	rng := rand.New(rand.NewSource(42))
	blocks, reds, vsb := randomInstance(rng, 300, 10)
	sp := seqpair.Random(300, rng)
	return newState(sp, blocks, reds, vsb, 500, 500, useSum, nil)
}

// legacyState replicates the pre-incremental annealing state exactly: every
// move re-packs the whole floorplan (PackApprox + InsideOutline + a fresh
// region-times recompute), Perturb allocates an undo closure per move and
// routes block exchanges through the O(n) map-based SeqPair.SwapBoth, and
// Snapshot/Restore clone the full sequence pair. It is the full-repack
// baseline the benchmarks compare against.
type legacyState struct {
	sp     *seqpair.SeqPair
	blocks []pack2d.Block
	reds   [][]int64
	vsb    []int64
	w, h   int
	useSum bool
}

func (s *legacyState) Cost() float64 {
	pl := pack2d.PackApprox(s.sp, s.blocks)
	inside := pack2d.InsideOutline(pl, s.blocks, s.w, s.h)
	if s.useSum {
		return float64(totalTime(s.vsb, s.reds, inside))
	}
	return float64(writingTime(s.vsb, s.reds, inside))
}

func (s *legacyState) Perturb(rng *rand.Rand) func() {
	n := s.sp.Len()
	if n < 2 {
		return func() {}
	}
	i, j := rng.Intn(n), rng.Intn(n)
	for j == i {
		j = rng.Intn(n)
	}
	switch rng.Intn(3) {
	case 0:
		s.sp.SwapPos(i, j)
		return func() { s.sp.SwapPos(i, j) }
	case 1:
		s.sp.SwapNeg(i, j)
		return func() { s.sp.SwapNeg(i, j) }
	default:
		a, b := s.sp.Pos[i], s.sp.Pos[j]
		s.sp.SwapBoth(a, b)
		return func() { s.sp.SwapBoth(a, b) }
	}
}

func (s *legacyState) Snapshot() interface{} { return s.sp.Clone() }

func (s *legacyState) Restore(v interface{}) { s.sp = v.(*seqpair.SeqPair).Clone() }

func benchLegacyState(useSum bool) *legacyState {
	rng := rand.New(rand.NewSource(42))
	blocks, reds, vsb := randomInstance(rng, 300, 10)
	sp := seqpair.Random(300, rng)
	return &legacyState{sp: sp, blocks: blocks, reds: reds, vsb: vsb, w: 500, h: 500, useSum: useSum}
}

// benchSink keeps the compiler from eliding the benchmarked evaluations.
var benchSink float64

// BenchmarkMoveIncremental measures the annealing hot path as the engine
// drives it: one fused PerturbCost per iteration, evaluated incrementally.
// Moves per second is 1e9 / (ns/op).
func BenchmarkMoveIncremental(b *testing.B) {
	s := benchState(false)
	rng := rand.New(rand.NewSource(1))
	s.Cost()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost, undo := s.PerturbCost(rng)
		sink += cost
		if i%2 == 0 {
			undo() // half the moves are rejected, like a real schedule
		}
	}
	benchSink = sink
}

// BenchmarkMoveFullRepack is the pre-incremental baseline: every move pays
// the legacy Perturb (closure allocation, map-based SwapBoth) plus a full
// floorplan repack.
func BenchmarkMoveFullRepack(b *testing.B) {
	s := benchLegacyState(false)
	rng := rand.New(rand.NewSource(1))
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		undo := s.Perturb(rng)
		sink += s.Cost()
		if i%2 == 0 {
			undo()
		}
	}
	benchSink = sink
}

// annealOpts is a short real schedule for the end-to-end engine benchmarks.
var annealOpts = anneal.Options{Seed: 3, InitialTemp: 50, FinalTemp: 5, MovesPerTemp: 400, Cooling: 0.85}

// BenchmarkAnnealIncremental runs the real engine loop (acceptance,
// snapshots, restores) on the incremental state; b.N counts moves.
func BenchmarkAnnealIncremental(b *testing.B) {
	b.ReportAllocs()
	moves := 0
	for moves < b.N {
		res := anneal.Minimize(context.Background(), benchState(false), annealOpts)
		moves += res.Moves
	}
}

// BenchmarkAnnealFullRepack runs the same engine schedule on the legacy
// full-repack state.
func BenchmarkAnnealFullRepack(b *testing.B) {
	b.ReportAllocs()
	moves := 0
	for moves < b.N {
		res := anneal.Minimize(context.Background(), benchLegacyState(false), annealOpts)
		moves += res.Moves
	}
}

// BenchmarkSnapshotRestore measures the snapshot round trip, which the old
// implementation paid two sequence-pair clones for on every improvement.
func BenchmarkSnapshotRestore(b *testing.B) {
	s := benchState(false)
	s.Cost()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Restore(s.Snapshot())
	}
}
