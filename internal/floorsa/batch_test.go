package floorsa

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestPackBatchMatchesPack is the kernel-level half of the batch-identity
// contract: running many instances as one arena-backed cohort must produce
// bit-identical Results to solo Pack calls, for any sweep worker count and
// with multi-start restarts in play.
func TestPackBatchMatchesPack(t *testing.T) {
	var items []BatchItem
	for i, n := range []int{3, 9, 17, 25, 1} {
		rng := rand.New(rand.NewSource(int64(i)*911 + 7))
		blocks, reds, vsb := randomInstance(rng, n, 3)
		fb := make([]Block, n)
		for b := range fb {
			fb[b] = Block{Block: blocks[b], Reductions: reds[b]}
		}
		items = append(items, BatchItem{
			Ctx:    context.Background(),
			Blocks: fb,
			VSB:    vsb,
			W:      120 + 10*i,
			H:      120,
			Opt: Options{
				Seed:       int64(i) + 1,
				MoveBudget: 400,
				Restarts:   1 + i%3,
				Workers:    1 + i%2,
			},
		})
	}

	solo := make([]*Result, len(items))
	for i, it := range items {
		solo[i] = Pack(it.Ctx, it.Blocks, it.VSB, it.W, it.H, it.Opt)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := PackBatch(items, workers)
			for i := range items {
				if !reflect.DeepEqual(got[i], solo[i]) {
					t.Errorf("item %d: batched result diverged from solo Pack\nbatched: %+v\nsolo:    %+v", i, got[i], solo[i])
				}
			}
		})
	}
}

// TestPackBatchEmpty covers the degenerate shapes: no items, and an item
// with no blocks.
func TestPackBatchEmpty(t *testing.T) {
	if got := PackBatch(nil, 4); len(got) != 0 {
		t.Fatalf("PackBatch(nil) returned %d results", len(got))
	}
	res := PackBatch([]BatchItem{{Ctx: context.Background(), VSB: []int64{42}, W: 10, H: 10}}, 2)
	if len(res) != 1 || res[0].WritingTime != 42 {
		t.Fatalf("empty-blocks item: got %+v, want writing time 42", res[0])
	}
}
