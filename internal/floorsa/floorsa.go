// Package floorsa implements fixed-outline floorplanning of OSP blocks with
// simulated annealing over the sequence-pair representation. A block is
// either a single character (the prior-work flow of the paper, used as the
// 2D baseline) or a cluster of characters (the E-BLOW flow, which runs the
// same engine on the clustered instance). The cost of a floorplan is the MCC
// writing time computed from the blocks that land inside the stencil
// outline, so selection and placement are optimized together exactly as in
// the fixed-outline formulation of the prior work.
//
// Pack is cancellable through its context and supports multi-start
// annealing: Restarts independent seeded runs execute on a worker pool and
// the best legalised floorplan wins. The winner is picked by scanning the
// restarts in index order, so the result is identical for a fixed seed no
// matter how many workers ran them.
package floorsa

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"eblow/internal/anneal"
	"eblow/internal/core"
	"eblow/internal/pack2d"
	"eblow/internal/seqpair"
)

// Block is one unit to place: geometry with blanks plus the per-region
// writing-time reduction obtained when the block is on the stencil.
type Block struct {
	pack2d.Block
	Reductions []int64
}

// Options configures the annealing run.
type Options struct {
	// MoveBudget is the total number of proposed moves per restart. If zero
	// a budget of 40*n (bounded to [2000, 60000]) is used.
	MoveBudget int
	// Seed seeds the annealer and the initial sequence pair.
	Seed int64
	// TimeLimit bounds the wall-clock time of the whole annealing run,
	// across all restarts (restarts cut off mid-schedule still contribute
	// their best-so-far floorplans).
	TimeLimit time.Duration
	// Restarts is the number of independent annealing restarts (best-of
	// wins); 0 or 1 means a single run. Restart 0 starts from the shelf
	// floorplan, later restarts from seeded random sequence pairs.
	Restarts int
	// Workers bounds how many restarts anneal concurrently; <= 0 means one
	// goroutine per restart.
	Workers int
	// SumObjective switches the annealing cost from the MCC objective
	// (maximum region writing time) to the total writing time over all
	// regions. The prior-work baseline of the paper uses the sum; E-BLOW
	// uses the maximum.
	SumObjective bool
	// RandomInitial starts the annealer from a random sequence pair instead
	// of the default shelf-packed initial floorplan built from the block
	// order (most profitable blocks first).
	RandomInitial bool
	// SkipAnneal evaluates only the shelf initial floorplan (no annealing).
	// Used by the planner as a fast fallback evaluation.
	SkipAnneal bool
}

// Result is the outcome of a packing run.
type Result struct {
	// Inside reports, per block, whether it ended up fully inside the
	// outline in the final exact (legalised) packing.
	Inside []bool
	// X, Y are the exact legal positions of the blocks (meaningful for
	// blocks with Inside=true).
	X, Y []int
	// WritingTime is the MCC writing time of the final selection.
	WritingTime int64
	// Moves and Accepted report annealer statistics summed over restarts.
	Moves, Accepted int
	// Restarts is the number of annealing restarts that ran.
	Restarts int
}

// state is the annealing state: a sequence pair over the blocks, evaluated
// incrementally. The packing positions are cached in a pack2d.Incremental
// (a swap replays only the stale Gamma- suffix of the two longest-path
// passes), and the per-region writing times are running sums updated only
// for blocks whose inside-outline status flipped. Cost therefore does
// O(changed) work per move instead of re-packing the whole floorplan, while
// returning bit-identical values to the full recompute (fullCost).
type state struct {
	sp     *seqpair.SeqPair
	blocks []pack2d.Block
	reds   [][]int64
	vsb    []int64
	w, h   int
	useSum bool

	inc   *pack2d.Incremental
	times []int64 // per-region writing times, consistent with inc's inside flags
	sum   int64   // sum over times, maintained for the SumObjective flow
	flips []int   // scratch for Reevaluate

	// last records the most recent move so the shared undo closure can
	// revert it without allocating per move.
	last struct{ kind, i, j int }
	undo func()

	// snaps are two reusable snapshot buffers. The annealing engine holds at
	// most one live snapshot at a time (each improvement replaces the
	// previous one), so ping-ponging between two buffers never clobbers the
	// snapshot the engine still references.
	snaps   [2]*seqpair.SeqPair
	snapIdx int
}

func newState(sp *seqpair.SeqPair, blocks []pack2d.Block, reds [][]int64, vsb []int64, w, h int, useSum bool, ar *pack2d.Arena) *state {
	s := &state{
		sp: sp, blocks: blocks, reds: reds, vsb: vsb, w: w, h: h, useSum: useSum,
		inc:   pack2d.NewIncrementalArena(sp, blocks, w, h, ar),
		times: ar.Int64s(len(vsb)),
	}
	copy(s.times, vsb)
	for _, t := range vsb {
		s.sum += t
	}
	s.undo = s.revertLast
	return s
}

func (s *state) Cost() float64 {
	s.flips = s.inc.Reevaluate(s.flips[:0])
	for _, i := range s.flips {
		var d int64
		if s.inc.Inside(i) {
			for c, r := range s.reds[i] {
				s.times[c] -= r
				d += r
			}
			s.sum -= d
		} else {
			for c, r := range s.reds[i] {
				s.times[c] += r
				d += r
			}
			s.sum += d
		}
	}
	if s.useSum {
		return float64(s.sum)
	}
	return float64(core.MaxInt64(s.times))
}

// fullCost evaluates the state from scratch with the non-incremental packing
// pipeline. It is the reference the incremental path must match exactly;
// the equivalence tests and the moves/sec benchmark use it as the
// full-repack baseline.
func (s *state) fullCost() float64 {
	pl := pack2d.PackApprox(s.sp, s.blocks)
	inside := pack2d.InsideOutline(pl, s.blocks, s.w, s.h)
	if s.useSum {
		return float64(totalTime(s.vsb, s.reds, inside))
	}
	return float64(writingTime(s.vsb, s.reds, inside))
}

func (s *state) applyMove(kind, i, j int) {
	switch kind {
	case 0:
		s.inc.SwapPos(i, j)
	case 1:
		s.inc.SwapNeg(i, j)
	default:
		a, b := s.sp.Pos[i], s.sp.Pos[j]
		s.inc.SwapBoth(a, b)
	}
	s.last.kind, s.last.i, s.last.j = kind, i, j
}

// revertLast reapplies the last move, which undoes it (every move kind is an
// involution: re-swapping the same positions restores the sequence pair).
func (s *state) revertLast() { s.applyMove(s.last.kind, s.last.i, s.last.j) }

func (s *state) Perturb(rng *rand.Rand) func() {
	n := s.sp.Len()
	if n < 2 {
		return func() {}
	}
	i, j := rng.Intn(n), rng.Intn(n)
	for j == i {
		j = rng.Intn(n)
	}
	s.applyMove(rng.Intn(3), i, j)
	return s.undo
}

// PerturbCost fuses Perturb and Cost (anneal.DeltaState): the move is
// evaluated incrementally right after it is applied. It consumes the same
// random draws and returns the same cost as the two separate calls would.
func (s *state) PerturbCost(rng *rand.Rand) (float64, func()) {
	undo := s.Perturb(rng)
	return s.Cost(), undo
}

func (s *state) Snapshot() interface{} {
	buf := s.snaps[s.snapIdx]
	if buf == nil {
		buf = s.sp.Clone()
		s.snaps[s.snapIdx] = buf
	} else {
		buf.CopyFrom(s.sp)
	}
	s.snapIdx = 1 - s.snapIdx
	return buf
}

func (s *state) Restore(v interface{}) {
	s.sp.CopyFrom(v.(*seqpair.SeqPair))
	// The sequence pair changed wholesale: rebuild the index mirrors and
	// replay the full packing on the next Cost. The running region times
	// stay consistent because Reevaluate reports flips against the cached
	// inside flags.
	s.inc.Reset()
}

func regionTimes(vsb []int64, reds [][]int64, inside []bool) []int64 {
	return regionTimesInto(make([]int64, len(vsb)), vsb, reds, inside)
}

// regionTimesInto computes the per-region writing times into dst (len(vsb)),
// so per-evaluation callers can reuse one scratch buffer instead of
// allocating a fresh slice each time.
func regionTimesInto(dst []int64, vsb []int64, reds [][]int64, inside []bool) []int64 {
	copy(dst, vsb)
	for i, in := range inside {
		if !in {
			continue
		}
		for c, r := range reds[i] {
			dst[c] -= r
		}
	}
	return dst
}

func writingTime(vsb []int64, reds [][]int64, inside []bool) int64 {
	return core.MaxInt64(regionTimes(vsb, reds, inside))
}

func totalTime(vsb []int64, reds [][]int64, inside []bool) int64 {
	var s int64
	for _, t := range regionTimes(vsb, reds, inside) {
		s += t
	}
	return s
}

// Pack places the blocks on a W x H stencil minimizing the MCC writing time
// computed against the per-region pure-VSB times vsb. A done context stops
// the annealing early; the best floorplan found so far is still legalised
// and returned.
func Pack(ctx context.Context, blocks []Block, vsb []int64, w, h int, opt Options) *Result {
	return packRun(ctx, blocks, vsb, w, h, opt, nil)
}

// packRun is Pack with the annealing state's hot arrays optionally carved
// from a shared arena (PackBatch's struct-of-arrays cohort layout). The
// arena only changes where the arrays live, never their contents, so
// packRun(..., ar) is bit-identical to Pack for any arena including nil.
func packRun(ctx context.Context, blocks []Block, vsb []int64, w, h int, opt Options, ar *pack2d.Arena) *Result {
	n := len(blocks)
	res := &Result{
		Inside: make([]bool, n),
		X:      make([]int, n),
		Y:      make([]int, n),
	}
	if n == 0 {
		res.WritingTime = core.MaxInt64(vsb)
		return res
	}

	raw := make([]pack2d.Block, n)
	reds := make([][]int64, n)
	for i, b := range blocks {
		raw[i] = b.Block
		reds[i] = b.Reductions
	}

	// Shelf-pack the blocks in decreasing order of writing-time reduction
	// per unit area for the initial floorplan, so the annealer starts from a
	// selection at least as good as a profit-density greedy packing. Density
	// rather than absolute reduction keeps multi-character cluster blocks
	// from outranking individually better characters just because they are
	// bigger.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		var t int64
		for _, r := range reds[i] {
			t += r
		}
		area := raw[i].W * raw[i].H
		if area <= 0 {
			area = 1
		}
		return float64(t) / float64(area)
	}
	sort.Slice(order, func(a, b int) bool { return density(order[a]) > density(order[b]) })
	shelf := shelfInitial(raw, order, w)

	mkState := func(sp *seqpair.SeqPair) *state {
		return newState(sp, raw, reds, vsb, w, h, opt.SumObjective, ar)
	}

	budget := opt.MoveBudget
	if budget <= 0 {
		budget = defaultBudget(n)
	}
	movesPerTemp := budget / 80
	if movesPerTemp < 10 {
		movesPerTemp = 10
	}

	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	if opt.SkipAnneal {
		restarts = 1
	}

	// pick legalises a floorplan with the exact pairwise blank sharing and
	// recomputes the selection from it.
	timesScratch := make([]int64, len(vsb))
	pick := func(sp *seqpair.SeqPair) ([]bool, *pack2d.Placement, int64) {
		exact := pack2d.PackExact(sp, raw)
		inside := pack2d.InsideOutline(exact, raw, w, h)
		return inside, exact, core.MaxInt64(regionTimesInto(timesScratch, vsb, reds, inside))
	}

	var inside []bool
	var exact *pack2d.Placement
	var wt int64
	if opt.SkipAnneal {
		inside, exact, wt = pick(shelf)
	} else {
		// The time limit bounds the whole run, not each restart, so it is
		// enforced as a context deadline shared by every restart rather
		// than per-restart inside anneal.Minimize.
		if opt.TimeLimit > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
			defer cancel()
		}
		// Temperatures are scaled to typical per-move cost deltas (a small
		// fraction of the total writing time), not to the absolute cost.
		// The state built for the estimate is handed to restart 0 with its
		// evaluation cache already warm, so seeding the temperature no
		// longer costs a second full pack before the loop starts.
		st0 := mkState(shelf.Clone())
		initialTemp := st0.Cost() * 0.01
		if initialTemp < 50 {
			initialTemp = 50
		}
		runs := anneal.MultiStart(ctx, func(r int) anneal.State {
			if r == 0 && !opt.RandomInitial {
				return st0
			}
			sp := shelf.Clone()
			if opt.RandomInitial || r > 0 {
				// Later restarts diversify from seeded random sequence pairs;
				// the initial depends only on the seed and restart index, so
				// the run set is reproducible.
				sp = seqpair.Random(n, rand.New(rand.NewSource(opt.Seed+int64(r)*104729)))
			}
			return mkState(sp)
		}, restarts, opt.Workers, anneal.Options{
			Seed:         opt.Seed + 1,
			InitialTemp:  initialTemp,
			FinalTemp:    initialTemp * 2e-3,
			MovesPerTemp: movesPerTemp,
			Cooling:      0.93,
		})
		res.Restarts = len(runs)
		// Merge in restart order: the exact (legalised) evaluation decides,
		// ties go to the lowest restart index. Completion order never matters.
		for _, run := range runs {
			res.Moves += run.Result.Moves
			res.Accepted += run.Result.Accepted
			if ins, ex, w := pick(run.State.(*state).sp); exact == nil || w < wt {
				inside, exact, wt = ins, ex, w
			}
		}
	}
	if !opt.RandomInitial && !opt.SkipAnneal {
		// The annealing cost uses the approximate packing; if every annealed
		// floorplan turns out worse than the initial shelf floorplan under
		// the exact evaluation, keep the initial.
		if insideInit, exactInit, wtInit := pick(shelf); wtInit < wt {
			inside, exact, wt = insideInit, exactInit, wtInit
		}
	}
	copy(res.Inside, inside)
	copy(res.X, exact.X)
	copy(res.Y, exact.Y)
	res.WritingTime = wt
	return res
}

// shelfInitial builds a sequence pair that realises a shelf (row-by-row)
// layout of the blocks in their given order: blocks fill a shelf left to
// right until the stencil width is exceeded, then a new shelf starts above.
// Starting the annealer from this floorplan rather than a random permutation
// means it never does worse than a profit-ordered shelf packing.
func shelfInitial(blocks []pack2d.Block, order []int, stencilW int) *seqpair.SeqPair {
	n := len(blocks)
	var shelves [][]int
	var cur []int
	width := 0
	for _, i := range order {
		w := blocks[i].W
		if width > 0 && width+w > stencilW {
			shelves = append(shelves, cur)
			cur, width = nil, 0
		}
		cur = append(cur, i)
		width += w
	}
	if len(cur) > 0 {
		shelves = append(shelves, cur)
	}
	sp := &seqpair.SeqPair{Pos: make([]int, 0, n), Neg: make([]int, 0, n)}
	// Gamma+: shelves from top to bottom; Gamma-: shelves from bottom to
	// top; both left to right inside a shelf. A block on a lower shelf then
	// follows in Gamma+ and precedes in Gamma-, i.e. it is "below".
	for s := len(shelves) - 1; s >= 0; s-- {
		sp.Pos = append(sp.Pos, shelves[s]...)
	}
	for s := 0; s < len(shelves); s++ {
		sp.Neg = append(sp.Neg, shelves[s]...)
	}
	return sp
}

// defaultBudget scales the move budget sub-linearly with the block count so
// large MCC instances stay tractable.
func defaultBudget(n int) int {
	b := 40 * n
	if b < 2000 {
		b = 2000
	}
	if b > 60000 {
		b = 60000
	}
	return b
}
