package floorsa

import (
	"math/rand"
	"testing"

	"eblow/internal/pack2d"
	"eblow/internal/seqpair"
)

// randomInstance builds n blocks with random geometry and per-region
// reductions over m regions, plus the matching VSB times.
func randomInstance(rng *rand.Rand, n, m int) ([]pack2d.Block, [][]int64, []int64) {
	blocks := make([]pack2d.Block, n)
	reds := make([][]int64, n)
	for i := range blocks {
		w := 15 + rng.Intn(35)
		h := 15 + rng.Intn(35)
		blocks[i] = pack2d.Block{
			W: w, H: h,
			BlankL: rng.Intn(8), BlankR: rng.Intn(8),
			BlankT: rng.Intn(8), BlankB: rng.Intn(8),
		}
		reds[i] = make([]int64, m)
		for c := range reds[i] {
			reds[i][c] = int64(rng.Intn(30))
		}
	}
	vsb := make([]int64, m)
	for c := range vsb {
		vsb[c] = 2000 + int64(rng.Intn(500))
	}
	return blocks, reds, vsb
}

// TestIncrementalCostMatchesFullRepack runs random move sequences through the
// annealing state — including rejected (undone) moves and Snapshot/Restore
// round trips — and asserts that the incremental Cost equals the full
// recompute after every step, for both objectives.
func TestIncrementalCostMatchesFullRepack(t *testing.T) {
	for _, useSum := range []bool{false, true} {
		for _, n := range []int{2, 5, 25, 60} {
			rng := rand.New(rand.NewSource(int64(n)*17 + 3))
			blocks, reds, vsb := randomInstance(rng, n, 4)
			sp := seqpair.Random(n, rng)
			s := newState(sp, blocks, reds, vsb, 140, 140, useSum, nil)

			if got, want := s.Cost(), s.fullCost(); got != want {
				t.Fatalf("initial cost %v != full recompute %v", got, want)
			}
			var best interface{}
			for move := 0; move < 400; move++ {
				switch {
				case rng.Intn(20) == 0:
					best = s.Snapshot()
				case best != nil && rng.Intn(25) == 0:
					s.Restore(best)
				default:
					cost, undo := s.PerturbCost(rng)
					if want := s.fullCost(); cost != want {
						t.Fatalf("move %d: incremental cost %v != full recompute %v (useSum=%v)",
							move, cost, want, useSum)
					}
					if rng.Intn(2) == 0 {
						undo() // rejected move
					}
				}
				if got, want := s.Cost(), s.fullCost(); got != want {
					t.Fatalf("move %d: post-step cost %v != full recompute %v (useSum=%v)",
						move, got, want, useSum)
				}
			}
		}
	}
}

// TestPerturbCostMatchesSeparateCalls verifies the DeltaState contract: the
// fused PerturbCost consumes the same random draws and returns the same cost
// as Perturb followed by Cost.
func TestPerturbCostMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	blocks, reds, vsb := randomInstance(rng, 30, 3)
	spA := seqpair.Random(30, rng)
	spB := spA.Clone()
	a := newState(spA, blocks, reds, vsb, 150, 150, false, nil)
	b := newState(spB, blocks, reds, vsb, 150, 150, false, nil)

	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	for move := 0; move < 200; move++ {
		costA, undoA := a.PerturbCost(rngA)
		undoB := b.Perturb(rngB)
		costB := b.Cost()
		if costA != costB {
			t.Fatalf("move %d: fused cost %v != separate cost %v", move, costA, costB)
		}
		if move%3 == 0 {
			undoA()
			undoB()
		}
	}
	for i := range spA.Pos {
		if spA.Pos[i] != spB.Pos[i] || spA.Neg[i] != spB.Neg[i] {
			t.Fatal("fused and separate move application diverged")
		}
	}
}

// TestSnapshotPingPong exercises the two-buffer snapshot reuse under the
// engine's access pattern: each new snapshot replaces the previous live one,
// and the live snapshot must survive further moves (including one newer
// snapshot, since the buffers alternate) until it is restored.
func TestSnapshotPingPong(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocks, reds, vsb := randomInstance(rng, 12, 2)
	s := newState(seqpair.Random(12, rng), blocks, reds, vsb, 100, 100, false, nil)

	for round := 0; round < 50; round++ {
		snap := s.Snapshot()
		want := snap.(*seqpair.SeqPair).Clone()
		for k := 0; k < 5; k++ {
			s.PerturbCost(rng)
		}
		got := snap.(*seqpair.SeqPair)
		for i := range want.Pos {
			if got.Pos[i] != want.Pos[i] || got.Neg[i] != want.Neg[i] {
				t.Fatalf("round %d: live snapshot was clobbered", round)
			}
		}
		s.Restore(snap)
		if got, wantC := s.Cost(), s.fullCost(); got != wantC {
			t.Fatalf("round %d: cost after restore %v != full recompute %v", round, got, wantC)
		}
	}
}
