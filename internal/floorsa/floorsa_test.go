package floorsa

import (
	"context"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/pack2d"
)

func mkBlock(w, h, blank int, red ...int64) Block {
	return Block{
		Block:      pack2d.Block{W: w, H: h, BlankL: blank, BlankR: blank, BlankT: blank, BlankB: blank},
		Reductions: red,
	}
}

func TestPackEmpty(t *testing.T) {
	res := Pack(context.Background(), nil, []int64{100}, 50, 50, Options{Seed: 1})
	if res.WritingTime != 100 {
		t.Errorf("writing time = %d, want 100 (nothing to place)", res.WritingTime)
	}
}

func TestPackAllFit(t *testing.T) {
	blocks := []Block{
		mkBlock(30, 30, 3, 40),
		mkBlock(30, 30, 3, 30),
		mkBlock(30, 30, 3, 20),
	}
	res := Pack(context.Background(), blocks, []int64{200}, 100, 100, Options{Seed: 2})
	for i, in := range res.Inside {
		if !in {
			t.Errorf("block %d should fit on a roomy stencil", i)
		}
	}
	if res.WritingTime != 200-90 {
		t.Errorf("writing time = %d, want 110", res.WritingTime)
	}
}

func TestPackSelectsHighProfit(t *testing.T) {
	// Only one 40x40 block fits on a 45x45 stencil; the annealer must keep
	// the one with the larger reduction inside.
	blocks := []Block{
		mkBlock(40, 40, 2, 10),
		mkBlock(40, 40, 2, 90),
	}
	res := Pack(context.Background(), blocks, []int64{200}, 45, 45, Options{Seed: 3})
	if res.Inside[0] && res.Inside[1] {
		t.Fatal("both blocks cannot fit")
	}
	if !res.Inside[1] {
		t.Error("the high-profit block should be selected")
	}
	if res.WritingTime != 110 {
		t.Errorf("writing time = %d, want 110", res.WritingTime)
	}
}

func TestPackLegality(t *testing.T) {
	blocks := []Block{
		mkBlock(40, 40, 5, 10, 5),
		mkBlock(35, 30, 8, 20, 0),
		mkBlock(30, 45, 2, 5, 15),
		mkBlock(25, 25, 4, 8, 8),
		mkBlock(50, 20, 6, 12, 3),
	}
	w, h := 90, 90
	res := Pack(context.Background(), blocks, []int64{300, 250}, w, h, Options{Seed: 4})

	// Translate the result into a core instance/solution and run the strict
	// validator over the selected blocks.
	in := &core.Instance{Name: "floorsa-test", Kind: core.TwoD, StencilWidth: w, StencilHeight: h, NumRegions: 2}
	for i, b := range blocks {
		in.Characters = append(in.Characters, core.Character{
			ID: i, Width: b.W, Height: b.H,
			BlankLeft: b.BlankL, BlankRight: b.BlankR, BlankTop: b.BlankT, BlankBottom: b.BlankB,
			VSBShots: 2, Repeats: []int64{1, 1},
		})
	}
	sol := &core.Solution{Selected: make([]bool, len(blocks))}
	for i := range blocks {
		if res.Inside[i] {
			sol.Selected[i] = true
			sol.Placements = append(sol.Placements, core.Placement{Char: i, X: res.X[i], Y: res.Y[i]})
		}
	}
	if err := sol.Validate(in); err != nil {
		t.Errorf("floorsa produced an illegal placement: %v", err)
	}
	if res.Moves == 0 {
		t.Error("annealer did not move")
	}
}

func TestPackTimeLimit(t *testing.T) {
	blocks := make([]Block, 60)
	for i := range blocks {
		blocks[i] = mkBlock(20+i%10, 20+(i*3)%15, 2, int64(i))
	}
	start := time.Now()
	Pack(context.Background(), blocks, []int64{10000}, 200, 200, Options{Seed: 5, TimeLimit: 50 * time.Millisecond, MoveBudget: 10_000_000})
	if time.Since(start) > 5*time.Second {
		t.Errorf("time limit not respected: %v", time.Since(start))
	}
}

func TestDefaultBudgetBounds(t *testing.T) {
	if defaultBudget(1) < 2000 {
		t.Error("lower bound")
	}
	if defaultBudget(100000) > 60000 {
		t.Error("upper bound")
	}
}
