package floorsa

import (
	"context"

	"eblow/internal/pack2d"
	"eblow/internal/par"
)

// BatchItem is one instance's packing task inside a batched cohort run. Ctx
// must be non-nil: it cancels this item alone, so one job's deadline or
// cancellation never bleeds into its cohort mates.
type BatchItem struct {
	Ctx    context.Context
	Blocks []Block
	VSB    []int64
	W, H   int
	Opt    Options
}

// PackBatch runs many independent Pack calls as one cohort. The per-instance
// annealing state — shrunk dimensions, cached positions, the two Fenwick
// trees, per-region writing times — is carved from one shared struct-of-
// arrays arena sized for the whole cohort, so every instance's hot arrays
// sit contiguously instead of allocator-scattered, and one par.For sweep
// advances the same annealing kernel across all instances in lockstep.
// workers bounds the sweep's concurrency (<= 1 runs the sweep inline).
//
// Results are bit-identical to calling Pack per item with the same context
// and options — the batch-identity contract (docs/INVARIANTS.md): the arena
// changes only where the arrays live, and each item consumes only its own
// seeded randomness.
func PackBatch(items []BatchItem, workers int) []*Result {
	out := make([]*Result, len(items))
	if len(items) == 0 {
		return out
	}
	// Size the arena for every annealing state the cohort can build: one
	// state per restart, plus the temperature-seeding state that restart 0
	// reuses unless RandomInitial forces a fresh one. Overestimating only
	// wastes capacity; underestimating only costs locality (the arena falls
	// back to make when exhausted).
	var i32s, ints, i64s, bools int
	for _, it := range items {
		n := len(it.Blocks)
		states := it.Opt.Restarts
		if states <= 0 || it.Opt.SkipAnneal {
			states = 1
		}
		states++
		i32s += states * pack2d.IncrementalInt32s(n)
		ints += states * pack2d.IncrementalInts(n)
		bools += states * pack2d.IncrementalBools(n)
		i64s += states * len(it.VSB)
	}
	ar := pack2d.NewArena(i32s, ints, i64s, bools)
	par.For(workers, len(items), func(i int) {
		it := items[i]
		out[i] = packRun(it.Ctx, it.Blocks, it.VSB, it.W, it.H, it.Opt, ar)
	})
	return out
}
