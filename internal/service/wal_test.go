package service

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"eblow"
)

// openTestWAL opens a WAL in a per-test temp dir and fails the test on error.
func openTestWAL(t *testing.T, path string) *WAL {
	t.Helper()
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// Jobs interrupted by a shutdown — one mid-solve, the rest still queued —
// must re-enqueue from the WAL in their original submission order and solve
// to completion on the next boot.
func TestWALReplayResumesUnfinishedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	orig := solveSpec
	defer func() { solveSpec = orig }()
	started := make(chan struct{}, 1)
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		if spec.Label == "blocker" {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, spec)
	}

	m := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	specs := []JobSpec{
		{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 1), Solver: "greedy", Label: "blocker"},
		{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 2), Solver: "greedy"},
		{Instance: eblow.SmallInstance(eblow.TwoD, 25, 2, 3), Solver: "greedy"},
	}
	var ids []string
	for _, spec := range specs {
		s, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	<-started // the blocker holds the single worker; the others stay queued
	m.Close()

	// The replayed run solves for real.
	solveSpec = orig
	w2 := openTestWAL(t, path)
	m2 := New(Config{Workers: 1, WAL: w2})
	defer m2.Close()
	if s := w2.Stats(); s.Resumed != len(ids) || s.Terminal != 0 {
		t.Fatalf("replay stats %+v, want %d resumed", s, len(ids))
	}
	for _, id := range ids {
		if s := waitTerminal(t, m2, id, 30*time.Second); s.State != StateDone {
			t.Fatalf("replayed job %s finished %s (%v)", id, s.State, s.Err)
		}
	}
	list := m2.List()
	if len(list) != len(ids) {
		t.Fatalf("replayed manager lists %d jobs, want %d", len(list), len(ids))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Errorf("replayed order[%d] = %s, want %s (submission order)", i, s.ID, ids[i])
		}
	}
	// A fresh submission must not collide with a replayed ID.
	fresh, err := m2.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 20, 2, 4), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh.ID == id {
			t.Fatalf("fresh job reused replayed ID %s", id)
		}
	}
}

// A finished job must stay readable after a restart as a digest-only record:
// same state and digest, result summary present, but no stencil plan.
func TestWALReplayTerminalRecordReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 5), Solver: "greedy", Label: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, s.ID, 30*time.Second)
	if done.State != StateDone || done.Digest == "" {
		t.Fatalf("job finished %s with digest %q", done.State, done.Digest)
	}
	m.Close()

	w2 := openTestWAL(t, path)
	m2 := New(Config{Workers: 1, WAL: w2})
	defer m2.Close()
	if st := w2.Stats(); st.Terminal != 1 || st.Resumed != 0 {
		t.Fatalf("replay stats %+v, want 1 terminal", st)
	}
	got, err := m2.Status(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || !got.Replayed {
		t.Fatalf("replayed record: state %s, replayed %v", got.State, got.Replayed)
	}
	if got.Digest != done.Digest {
		t.Errorf("replayed digest %q, original %q", got.Digest, done.Digest)
	}
	if got.Label != "keep" || got.Instance != done.Instance {
		t.Errorf("replayed identity lost: label %q, instance %q", got.Label, got.Instance)
	}
	if got.Result == nil || got.Result.Solution != nil {
		t.Errorf("replayed result should be a summary without the plan, got %+v", got.Result)
	}
	if got.Result != nil && got.Result.Objective != done.Result.Objective {
		t.Errorf("replayed objective %d, original %d", got.Result.Objective, done.Result.Objective)
	}
}

// A torn tail line — the footprint of kill -9 mid-append — must be skipped,
// not fail the open, and the intact records before it must replay.
func TestWALTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 6), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)
	m.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"terminal","job":"j9","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2 := openTestWAL(t, path)
	m2 := New(Config{Workers: 1, WAL: w2})
	defer m2.Close()
	st := w2.Stats()
	if st.SkippedLines != 1 {
		t.Errorf("skipped lines %d, want 1", st.SkippedLines)
	}
	if got, err := m2.Status(s.ID); err != nil || !got.State.Terminal() {
		t.Errorf("record before the torn tail unreadable: %+v, %v", got, err)
	}
	if _, err := m2.Status("j9"); err == nil {
		t.Error("torn record materialized a job")
	}
}

// Once the log outgrows its threshold it must compact to a snapshot — fewer
// records on the next open, with every job still readable.
func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := OpenWAL(path, 2048) // tiny threshold: a few accepted records exceed it
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 1, WAL: w})
	const n = 6
	var ids []string
	for i := 0; i < n; i++ {
		s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, int64(i+10)), Solver: "greedy"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		waitTerminal(t, m, id, 30*time.Second)
	}
	m.Close()

	w2 := openTestWAL(t, path)
	m2 := New(Config{Workers: 1, WAL: w2})
	defer m2.Close()
	// Without compaction every job leaves accepted+started+terminal records.
	if st := w2.Stats(); st.Records >= 3*n {
		t.Errorf("log never compacted: %d records for %d jobs", st.Records, n)
	}
	for _, id := range ids {
		got, err := m2.Status(id)
		if err != nil {
			t.Fatalf("job %s lost in compaction: %v", id, err)
		}
		if got.State != StateDone || got.Digest == "" {
			t.Errorf("job %s replayed as %s with digest %q", id, got.State, got.Digest)
		}
	}
}

// The crash-consistency core: a run interrupted mid-queue and replayed must
// produce the same result digests as an uninterrupted run of the same specs,
// and the queue order must survive the replay.
func TestWALReplayDeterministicDigests(t *testing.T) {
	mkSpecs := func() []JobSpec {
		return []JobSpec{
			{Instance: eblow.SmallInstance(eblow.OneD, 40, 2, 21), Params: eblow.Params{Seed: 7}},
			{Instance: eblow.SmallInstance(eblow.TwoD, 30, 2, 22), Params: eblow.Params{Seed: 7}},
			{Instance: eblow.SmallInstance(eblow.OneD, 50, 2, 23), Solver: "greedy"},
		}
	}

	// Reference: uninterrupted run.
	ref := New(Config{Workers: 1})
	want := make(map[string]string) // instance name -> digest
	for _, spec := range mkSpecs() {
		s, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		done := waitTerminal(t, ref, s.ID, time.Minute)
		if done.State != StateDone {
			t.Fatalf("reference job %s finished %s (%v)", s.ID, done.State, done.Err)
		}
		want[done.Instance] = done.Digest
	}
	ref.Close()

	// Interrupted run: a blocker pins the worker so the real jobs are still
	// queued when the manager shuts down.
	path := filepath.Join(t.TempDir(), "jobs.wal")
	orig := solveSpec
	defer func() { solveSpec = orig }()
	started := make(chan struct{}, 1)
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		if spec.Label == "blocker" {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, spec)
	}
	m := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 20, 2, 20), Solver: "greedy", Label: "blocker"}); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range mkSpecs() {
		s, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	<-started
	m.Close()

	solveSpec = orig
	m2 := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	defer m2.Close()
	for _, id := range ids {
		done := waitTerminal(t, m2, id, time.Minute)
		if done.State != StateDone {
			t.Fatalf("replayed job %s finished %s (%v)", id, done.State, done.Err)
		}
		if want[done.Instance] == "" {
			t.Fatalf("no reference digest for instance %q", done.Instance)
		}
		if done.Digest != want[done.Instance] {
			t.Errorf("instance %q: replayed digest %s, uninterrupted run %s",
				done.Instance, done.Digest, want[done.Instance])
		}
	}
}

// Submit must not acknowledge before the accepted record is on disk: the
// record must be parseable from the file the moment Submit returns.
func TestWALSubmitAckIsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := New(Config{Workers: 1, WAL: openTestWAL(t, path)})
	defer m.Close()
	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 30), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	// Read the file directly, before the job finishes or the WAL closes.
	probe := &WAL{path: path}
	if err := probe.load(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range probe.replay {
		if rec.Op == walOpAccepted && rec.Job == s.ID {
			found = true
			if len(rec.Instance) == 0 {
				t.Error("accepted record has no instance payload")
			}
		}
	}
	if !found {
		t.Fatalf("accepted record for %s not on disk when Submit returned", s.ID)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)
}

// WAL operations after Close must fail cleanly, and Close must be idempotent.
func TestWALClosed(t *testing.T) {
	w := openTestWAL(t, filepath.Join(t.TempDir(), "jobs.wal"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := w.append(walRecord{Op: walOpStarted, Job: "j1"}); err != ErrWALClosed {
		t.Errorf("append after Close: %v", err)
	}
	if err := w.Flush(); err != ErrWALClosed {
		t.Errorf("Flush after Close: %v", err)
	}
}

// Concurrent Close calls must not race on the stop channel (close of a
// closed channel panics); every caller returns without error.
func TestWALCloseConcurrent(t *testing.T) {
	w := openTestWAL(t, filepath.Join(t.TempDir(), "jobs.wal"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}
