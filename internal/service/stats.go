package service

// StateCounts breaks the manager's job records down by lifecycle state.
// Counts cover the records currently retained (RecordTTL evicts old
// terminal records, so Done/Failed/Canceled are windows, not lifetime
// totals).
type StateCounts struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	Total    int `json:"total"`
}

// BatchStats reports the cost-model scheduler's activity counters.
type BatchStats struct {
	// Enabled mirrors Config.Batch.Enabled.
	Enabled bool `json:"enabled"`
	// Cohorts counts multi-job cohorts formed since boot.
	Cohorts int `json:"cohorts"`
	// BatchedJobs counts jobs executed as part of a cohort.
	BatchedJobs int `json:"batchedJobs"`
	// SoloJobs counts jobs the scheduler dispatched alone.
	SoloJobs int `json:"soloJobs"`
	// MaxCohort is the largest cohort formed so far.
	MaxCohort int `json:"maxCohort"`
	// Overtakes counts job-over-job queue jumps by the cost model.
	Overtakes int `json:"overtakes"`
	// AgedPops counts dispatches forced by the aging bound rather than
	// chosen by cost — each one is a job the fairness guarantee rescued.
	AgedPops int `json:"agedPops"`
}

// Stats is a point-in-time operational snapshot of the service, exposed as
// GET /v1/stats.
type Stats struct {
	// Workers is the shared pool size.
	Workers int `json:"workers"`
	// QueueDepth is the number of jobs waiting to start.
	QueueDepth int `json:"queueDepth"`
	// InFlight is the number of jobs currently solving.
	InFlight int `json:"inFlight"`
	// Jobs breaks the retained records down by state.
	Jobs StateCounts `json:"jobs"`
	// Batch reports the scheduler's counters (zero-valued with Enabled
	// false when the FIFO drain is active).
	Batch BatchStats `json:"batch"`
}

// Stats snapshots the service's operational counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Workers: m.pool.Workers(), QueueDepth: m.pending}
	for _, id := range m.order {
		switch m.jobs[id].state {
		case StateQueued:
			s.Jobs.Queued++
		case StateRunning:
			s.Jobs.Running++
		case StateDone:
			s.Jobs.Done++
		case StateFailed:
			s.Jobs.Failed++
		case StateCanceled:
			s.Jobs.Canceled++
		}
		s.Jobs.Total++
	}
	s.InFlight = s.Jobs.Running
	if m.queue != nil {
		qs := m.queue.Stats()
		s.Batch = BatchStats{
			Enabled:     true,
			Cohorts:     qs.Cohorts,
			BatchedJobs: qs.BatchedJobs,
			SoloJobs:    qs.SoloJobs,
			MaxCohort:   qs.MaxCohort,
			Overtakes:   qs.Overtakes,
			AgedPops:    qs.AgedPops,
		}
	}
	return s
}
