package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"eblow"
)

// mixJob is one entry of the deterministic mixed workload used by the
// batch-identity tests.
type mixJob struct {
	kind   eblow.Kind
	chars  int
	seed   int64
	solver string
}

func digestMix() []mixJob {
	return []mixJob{
		{eblow.TwoD, 20, 101, "sa24"},
		{eblow.OneD, 35, 102, "greedy"},
		{eblow.TwoD, 16, 103, "sa24"},
		{eblow.OneD, 30, 104, "row25"},
		{eblow.OneD, 28, 105, "heuristic24"},
		{eblow.TwoD, 24, 106, "sa24"},
		{eblow.OneD, 30, 107, "eblow"}, // not batchable: always runs solo
		{eblow.OneD, 32, 108, "greedy"},
		{eblow.TwoD, 18, 109, "sa24"},
		{eblow.OneD, 26, 110, "row25"},
	}
}

// runMix submits the workload, waits for every job, and returns the result
// digest per workload index.
func runMix(t *testing.T, m *Manager) []string {
	t.Helper()
	jobs := digestMix()
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		in := eblow.SmallInstance(j.kind, j.chars, 2, j.seed)
		s, err := m.Submit(JobSpec{Instance: in, Solver: j.solver, Params: eblow.Params{Seed: 1, Workers: 1}, Label: fmt.Sprintf("mix-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID
	}
	digests := make([]string, len(jobs))
	for i, id := range ids {
		s := waitTerminal(t, m, id, 60*time.Second)
		if s.State != StateDone {
			t.Fatalf("job %s (%s) finished %s: %v", id, jobs[i].solver, s.State, s.Err)
		}
		if s.Digest == "" {
			t.Fatalf("job %s has no result digest", id)
		}
		digests[i] = s.Digest
	}
	return digests
}

// TestBatchMatchesFIFODigests is the service-level batch-identity contract:
// the same workload drained by the cost-model batch scheduler must produce
// result digests identical to the plain FIFO drain, for narrow and wide
// pools.
func TestBatchMatchesFIFODigests(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			fifo := New(Config{Workers: workers})
			want := runMix(t, fifo)
			fifo.Close()

			batched := New(Config{Workers: workers, Batch: BatchConfig{Enabled: true, MaxBatch: 4, MaxChars: 400, MaxJump: 8, Workers: 2}})
			got := runMix(t, batched)
			batched.Close()

			for i := range want {
				if got[i] != want[i] {
					t.Errorf("job %d: batched digest %s, FIFO digest %s", i, got[i], want[i])
				}
			}
		})
	}
}

// gateSolve replaces the solo-solve seam so that jobs labeled "gate" block
// until release is closed; everything else solves normally. Cohorts bypass
// this seam (they run batch.Execute directly), so the gate only ever holds
// non-batchable jobs.
func gateSolve(t *testing.T, release <-chan struct{}) {
	t.Helper()
	orig := solveSpec
	t.Cleanup(func() { solveSpec = orig })
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		if spec.Label == "gate" {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return orig(ctx, spec)
	}
}

// While a non-batchable job holds the only worker, queued compatible small
// jobs must be formed into one cohort and the scheduler counters must say
// so.
func TestBatchCohortStats(t *testing.T) {
	release := make(chan struct{})
	gateSolve(t, release)

	m := New(Config{Workers: 1, Batch: BatchConfig{Enabled: true, MaxBatch: 8, MaxChars: 400, MaxJump: 16, Workers: 2}})
	defer m.Close()

	blocker, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 1), Solver: "eblow", Label: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning, 30*time.Second)

	var ids []string
	for i := 0; i < 4; i++ {
		in := eblow.SmallInstance(eblow.TwoD, 16, 2, int64(200+i))
		s, err := m.Submit(JobSpec{Instance: in, Solver: "sa24", Params: eblow.Params{Seed: 1, Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	if st := m.Stats(); st.QueueDepth != 4 {
		t.Fatalf("QueueDepth = %d with the worker gated, want 4", st.QueueDepth)
	}
	close(release)

	waitTerminal(t, m, blocker.ID, 30*time.Second)
	for _, id := range ids {
		if s := waitTerminal(t, m, id, 30*time.Second); s.State != StateDone {
			t.Fatalf("cohort job %s finished %s: %v", id, s.State, s.Err)
		}
	}
	st := m.Stats()
	if !st.Batch.Enabled {
		t.Fatal("Batch.Enabled = false on a batch-configured manager")
	}
	if st.Batch.Cohorts != 1 || st.Batch.BatchedJobs != 4 || st.Batch.MaxCohort != 4 {
		t.Errorf("cohort counters: %+v, want 1 cohort of 4", st.Batch)
	}
	if st.Batch.SoloJobs != 1 {
		t.Errorf("SoloJobs = %d, want 1 (the gate job)", st.Batch.SoloJobs)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
}

// Cancelling a queued job under batch scheduling must remove it from the
// scheduler queue as well as the job table, and must not disturb its
// would-be cohort-mates.
func TestBatchCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	gateSolve(t, release)

	m := New(Config{Workers: 1, Batch: BatchConfig{Enabled: true, MaxBatch: 8, MaxChars: 400, MaxJump: 16}})
	defer m.Close()

	blocker, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 1), Solver: "eblow", Label: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning, 30*time.Second)

	var ids []string
	for i := 0; i < 3; i++ {
		in := eblow.SmallInstance(eblow.TwoD, 16, 2, int64(300+i))
		s, err := m.Submit(JobSpec{Instance: in, Solver: "sa24", Params: eblow.Params{Seed: 1, Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	victim := ids[1]
	if s, err := m.Cancel(victim); err != nil || s.State != StateCanceled {
		t.Fatalf("Cancel(%s) = %v, %v; want immediate StateCanceled", victim, s.State, err)
	}
	close(release)

	for _, id := range []string{ids[0], ids[2]} {
		if s := waitTerminal(t, m, id, 30*time.Second); s.State != StateDone {
			t.Fatalf("survivor %s finished %s: %v", id, s.State, s.Err)
		}
	}
	if s, err := m.Status(victim); err != nil || s.State != StateCanceled {
		t.Fatalf("victim %s is %v, %v; want it to stay Canceled", victim, s.State, err)
	}
	if st := m.Stats(); st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
}

// A manager without batch config reports zeroed, disabled batch stats.
func TestStatsBatchDisabled(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	st := m.Stats()
	if st.Batch.Enabled {
		t.Fatal("Batch.Enabled = true on a FIFO manager")
	}
	if st.Workers != 1 {
		t.Fatalf("Workers = %d, want 1", st.Workers)
	}
}

// GET /v1/stats serves the operational snapshot.
func TestHTTPStats(t *testing.T) {
	m := New(Config{Workers: 2, Batch: BatchConfig{Enabled: true}})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 9), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", resp.StatusCode)
	}
	var got struct {
		Workers    int `json:"workers"`
		QueueDepth int `json:"queueDepth"`
		Jobs       struct {
			Done  int `json:"done"`
			Total int `json:"total"`
		} `json:"jobs"`
		Batch struct {
			Enabled  bool `json:"enabled"`
			SoloJobs int  `json:"soloJobs"`
		} `json:"batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Workers != 2 {
		t.Errorf("workers = %d, want 2", got.Workers)
	}
	if got.Jobs.Done != 1 || got.Jobs.Total != 1 {
		t.Errorf("jobs = %+v, want 1 done of 1", got.Jobs)
	}
	if !got.Batch.Enabled {
		t.Error("batch.enabled = false, want true")
	}
	if got.Batch.SoloJobs != 1 {
		t.Errorf("batch.soloJobs = %d, want 1", got.Batch.SoloJobs)
	}
}
