package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eblow"
)

func newTestServer(t *testing.T, workers int) (*Manager, *httptest.Server) {
	t.Helper()
	m := New(Config{Workers: workers})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func pollDone(t *testing.T, srv *httptest.Server, id string, within time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		code, job := getJSON(t, srv.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s returned %d", id, code)
		}
		state := job["state"].(string)
		if State(state).Terminal() {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, state, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The acceptance path: concurrent 1D and 2D submissions over HTTP share one
// pool and both complete feasibly.
func TestHTTPSubmitPollBenchmark(t *testing.T) {
	_, srv := newTestServer(t, 2)

	job1 := postJob(t, srv, `{"benchmark": "1T-1", "params": {"seed": 1}}`)
	job2 := postJob(t, srv, `{"benchmark": "2T-1", "params": {"seed": 1}}`)

	for _, job := range []map[string]any{job1, job2} {
		id := job["id"].(string)
		final := pollDone(t, srv, id, 2*time.Minute)
		if final["state"] != "done" {
			t.Fatalf("job %s: %v", id, final)
		}
		result := final["result"].(map[string]any)
		if result["feasible"] != true {
			t.Errorf("job %s result not feasible: %v", id, result)
		}
		if result["objective"].(float64) <= 0 {
			t.Errorf("job %s objective missing: %v", id, result)
		}
	}

	// The full result carries the stencil plan.
	id := job1["id"].(string)
	code, full := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result endpoint returned %d", code)
	}
	sol := full["result"].(map[string]any)["solution"].(map[string]any)
	if sol["writingTime"].(float64) <= 0 {
		t.Errorf("solution missing from full result: %v", sol)
	}
}

func TestHTTPInlineInstanceAndList(t *testing.T) {
	_, srv := newTestServer(t, 2)

	var buf bytes.Buffer
	if err := eblow.EncodeInstance(&buf, eblow.SmallInstance(eblow.TwoD, 25, 2, 3)); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"instance": %s, "solver": "greedy"}`, buf.String())
	job := postJob(t, srv, body)
	id := job["id"].(string)
	if final := pollDone(t, srv, id, time.Minute); final["state"] != "done" {
		t.Fatalf("inline instance job: %v", final)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0]["id"] != id {
		t.Errorf("job list %v, want the one submitted job", list)
	}
}

func TestHTTPEventsStream(t *testing.T) {
	_, srv := newTestServer(t, 1)

	job := postJob(t, srv, `{"benchmark": "1T-1", "solver": "greedy"}`)
	id := job["id"].(string)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var states []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var e Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		states = append(states, string(e.State))
	}
	if len(states) < 3 || states[0] != "queued" || states[len(states)-1] != "done" {
		t.Errorf("event states %v, want queued ... done", states)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, srv := newTestServer(t, 1)

	var buf bytes.Buffer
	if err := eblow.EncodeInstance(&buf, eblow.SmallInstance(eblow.OneD, 60, 3, 7)); err != nil {
		t.Fatal(err)
	}
	job := postJob(t, srv, fmt.Sprintf(`{"instance": %s, "solver": "exact"}`, buf.String()))
	id := job["id"].(string)

	// The result endpoint refuses before the job is terminal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, job := getJSON(t, srv.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job returned %d", code)
		}
		if job["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result"); code != http.StatusConflict {
		t.Errorf("result of a running job returned %d, want 409", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %d", resp.StatusCode)
	}
	final := pollDone(t, srv, id, time.Minute)
	if final["state"] != "canceled" {
		t.Errorf("cancelled job state %v", final["state"])
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, 1)

	for _, body := range []string{
		`{}`,
		`{"benchmark": "bogus-1"}`,
		`{"benchmark": "1T-1", "instance": {"name": "x"}}`,
		`{"benchmark": "1T-1", "solver": "nope"}`,
		`{"benchmark": "1T-1", "params": {"deadline": "not-a-duration"}}`,
		`{"benchmark": "1T-1", "unknown_field": 1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s returned %d, want 400", body, resp.StatusCode)
		}
	}
	if code, _ := getJSON(t, srv.URL+"/v1/jobs/none"); code != http.StatusNotFound {
		t.Errorf("unknown job returned %d", code)
	}
}

// Nonsense solver parameters must fail at decode time with a 400 that names
// the offending field, not queue a doomed job.
func TestHTTPParamValidation(t *testing.T) {
	_, srv := newTestServer(t, 1)

	cases := []struct {
		body  string
		field string
	}{
		{`{"benchmark": "1T-1", "params": {"workers": -1}}`, "params.workers"},
		{`{"benchmark": "1T-1", "params": {"restarts": -3}}`, "params.restarts"},
		{`{"benchmark": "1T-1", "params": {"seed": -7}}`, "params.seed"},
		{`{"benchmark": "1T-1", "params": {"seed": 9223372036854775807}}`, "params.seed"},
		{`{"benchmark": "1T-1", "params": {"deadline": "-5s"}}`, "params.deadline"},
		{`{"benchmark": "1T-1", "params": {"deadline": "0s"}}`, "params.deadline"},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s returned %d, want 400", tc.body, resp.StatusCode)
			continue
		}
		if msg, _ := out["error"].(string); !strings.Contains(msg, tc.field) {
			t.Errorf("body %s: error %q does not name %s", tc.body, msg, tc.field)
		}
	}
}

// Regression: rendering a terminal job whose Result carries a nil Solution
// (a strategy that returns a bare summary when cancelled) must not panic the
// handler — it used to dereference Result.Solution unconditionally.
func TestHTTPNilSolutionResult(t *testing.T) {
	orig := solveSpec
	defer func() { solveSpec = orig }()
	started := make(chan struct{}, 1)
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		// Best-so-far bookkeeping without a plan: Solution stays nil.
		return &eblow.Result{Strategy: "stub", Objective: 0, Feasible: false}, nil
	}
	_, srv := newTestServer(t, 1)

	job := postJob(t, srv, `{"benchmark": "1T-1", "solver": "greedy"}`)
	id := job["id"].(string)
	<-started
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := pollDone(t, srv, id, 30*time.Second)
	if final["state"] != "canceled" {
		t.Fatalf("stubbed job state %v", final["state"])
	}
	result, ok := final["result"].(map[string]any)
	if !ok {
		t.Fatalf("cancelled job dropped its partial result: %v", final)
	}
	if _, has := result["selected"]; has {
		t.Errorf("nil-Solution result reports a selection count: %v", result)
	}
	// The full-result endpoint renders the same record without panicking.
	if code, _ := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result"); code != http.StatusOK {
		t.Errorf("full result of a nil-Solution job returned %d", code)
	}
}

func TestHTTPSolversList(t *testing.T) {
	_, srv := newTestServer(t, 1)
	resp, err := http.Get(srv.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, info := range infos {
		names[info["name"].(string)] = true
	}
	for _, want := range []string{"eblow", "greedy", "exact", "portfolio"} {
		if !names[want] {
			t.Errorf("solver %q missing from listing %v", want, infos)
		}
	}
}

// A full pending queue must surface as 429 Too Many Requests on the wire.
func TestHTTPQueueFull429(t *testing.T) {
	m := New(Config{Workers: 1, MaxPending: 1})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})

	// Occupy the single worker with an exact solve that runs far longer
	// than the test; only once it is running (and out of the pending queue)
	// fill the one pending slot.
	runningID := postJob(t, srv, `{"benchmark": "1T-5", "solver": "exact", "params": {"deadline": "5m"}}`)["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, job := getJSON(t, srv.URL+"/v1/jobs/"+runningID)
		if code != http.StatusOK {
			t.Fatalf("GET job %s returned %d", runningID, code)
		}
		if job["state"].(string) == string(StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", runningID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fillID := postJob(t, srv, `{"benchmark": "1D-1", "solver": "greedy"}`)["id"].(string)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "1D-1", "solver": "greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d (%v), want 429", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "full") {
		t.Errorf("429 body does not explain the full queue: %v", out)
	}

	// Draining the queue re-opens the door.
	reqDel, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+fillID, nil)
	if delResp, err := http.DefaultClient.Do(reqDel); err != nil {
		t.Fatal(err)
	} else {
		delResp.Body.Close()
	}
	postJob(t, srv, `{"benchmark": "1D-1", "solver": "greedy"}`)
}
