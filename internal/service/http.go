// HTTP/JSON surface of the job service, mounted by cmd/eblowd:
//
//	GET    /v1/solvers            registered strategies
//	GET    /v1/stats              queue depth, per-state job counts, batch counters
//	GET    /v1/learn              learned-scheduling statistics snapshot
//	POST   /v1/jobs               submit a job (benchmark name or inline instance)
//	GET    /v1/jobs               list jobs in submission order
//	GET    /v1/jobs/{id}          job status (compact result summary)
//	GET    /v1/jobs/{id}/result   full result including the stencil plan
//	GET    /v1/jobs/{id}/events   NDJSON progress stream until terminal
//	DELETE /v1/jobs/{id}          cancel
//
// The handler itself is unauthenticated; cmd/eblowd wraps it with
// Keyring.Wrap when started with -auth-keys, which adds the 401/403/429
// auth semantics documented in auth.go.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"eblow"
)

// NewHandler mounts the service API for the manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		type info struct {
			Name   string `json:"name"`
			Doc    string `json:"doc"`
			OneD   bool   `json:"oneD"`
			TwoD   bool   `json:"twoD"`
			Racing bool   `json:"racing"`
		}
		var out []info
		for _, e := range eblow.SolverInfos() {
			out = append(out, info{Name: e.Name, Doc: e.Doc, OneD: e.OneD, TwoD: e.TwoD, Racing: e.Racing})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
	mux.HandleFunc("GET /v1/learn", func(w http.ResponseWriter, r *http.Request) {
		store := m.Learn()
		if store == nil {
			writeError(w, http.StatusNotFound, errors.New("service: learned scheduling is disabled (start the server with -learn-path)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"path":   store.Path(),
			"shapes": store.Snapshot(),
		})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, err := decodeSubmit(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if key := KeyFromContext(r.Context()); key != nil {
			spec.Key = key.Name
			spec.KeyPending = key.MaxPending
		}
		status, err := m.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrClosed):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrKeyQuota):
				// Backpressure, not failure: the client should retry later.
				code = http.StatusTooManyRequests
			case errors.Is(err, ErrNotDurable):
				// The job is queued but its WAL record could not be synced;
				// the ack must not promise durability it cannot keep.
				code = http.StatusInternalServerError
			}
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, jobJSON(status, false))
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		statuses := m.List()
		out := make([]map[string]any, len(statuses))
		for i, s := range statuses {
			out[i] = jobJSON(s, false)
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := m.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(status, false))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		status, err := m.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if !status.State.Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("service: job %s is %s, result not ready", status.ID, status.State))
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(status, true))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(status, false))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		events, err := m.Events(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	return mux
}

// submitRequest is the POST /v1/jobs body: exactly one of Benchmark or
// Instance names the problem; Solver and Params pick the strategy.
type submitRequest struct {
	Benchmark string          `json:"benchmark,omitempty"`
	Instance  json.RawMessage `json:"instance,omitempty"`
	Solver    string          `json:"solver,omitempty"`
	Label     string          `json:"label,omitempty"`
	Params    wireParams      `json:"params"`
}

// wireParams is the JSON shape of eblow.Params (deadline as a Go duration
// string such as "30s").
type wireParams struct {
	Workers    int      `json:"workers,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Deadline   string   `json:"deadline,omitempty"`
	Restarts   int      `json:"restarts,omitempty"`
	Strategies []string `json:"strategies,omitempty"`
}

func decodeSubmit(r *http.Request) (JobSpec, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return JobSpec{}, fmt.Errorf("service: reading request: %w", err)
	}
	return ParseSubmit(body)
}

// ParseSubmit validates one POST /v1/jobs body and resolves it to a job
// spec, exactly as the HTTP handler would. The dispatcher front-end uses it
// to validate submissions before routing, so a fleet rejects a bad request
// identically to a single node — and never burns a WAL record or a backend
// round-trip on one.
func ParseSubmit(body []byte) (JobSpec, error) {
	var req submitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return JobSpec{}, fmt.Errorf("service: decoding request: %w", err)
	}
	var in *eblow.Instance
	var err error
	switch {
	case req.Benchmark != "" && len(req.Instance) > 0:
		return JobSpec{}, errors.New("service: use either benchmark or instance, not both")
	case req.Benchmark != "":
		if in, err = eblow.Benchmark(req.Benchmark); err != nil {
			return JobSpec{}, err
		}
	case len(req.Instance) > 0:
		// DecodeInstance validates, so the service never round-trips
		// through temp files to sanity-check a submitted instance.
		if in, err = eblow.DecodeInstance(bytes.NewReader(req.Instance)); err != nil {
			return JobSpec{}, err
		}
	default:
		return JobSpec{}, errors.New("service: one of benchmark or instance is required")
	}
	p, err := req.Params.params()
	if err != nil {
		return JobSpec{}, err
	}
	return JobSpec{Instance: in, Solver: req.Solver, Params: p, Label: req.Label}, nil
}

// maxWireSeed caps submitted seeds: racing entrants add per-strategy
// offsets to the seed, and the cap leaves headroom so the sub-seed
// derivation can never overflow int64.
const maxWireSeed = int64(1) << 62

// params validates the wire fields and converts them to solver parameters.
// Negative or overflow-prone values are rejected here, at decode time, with
// a field-naming error — they would otherwise queue a doomed (negative
// deadline: instant expiry) or nonsensical (negative workers/restarts/seed)
// job that only fails once a worker picks it up.
func (wp wireParams) params() (eblow.Params, error) {
	if wp.Workers < 0 {
		return eblow.Params{}, fmt.Errorf("service: params.workers must be >= 0, got %d", wp.Workers)
	}
	if wp.Restarts < 0 {
		return eblow.Params{}, fmt.Errorf("service: params.restarts must be >= 0, got %d", wp.Restarts)
	}
	if wp.Seed < 0 || wp.Seed >= maxWireSeed {
		return eblow.Params{}, fmt.Errorf("service: params.seed must be in [0, 2^62), got %d", wp.Seed)
	}
	p := eblow.Params{
		Workers:    wp.Workers,
		Seed:       wp.Seed,
		Restarts:   wp.Restarts,
		Strategies: wp.Strategies,
	}
	if wp.Deadline != "" {
		d, err := time.ParseDuration(wp.Deadline)
		if err != nil {
			return eblow.Params{}, fmt.Errorf("service: bad params.deadline: %w", err)
		}
		if d <= 0 {
			return eblow.Params{}, fmt.Errorf("service: params.deadline must be positive, got %s", wp.Deadline)
		}
		p.Deadline = d
	}
	return p, nil
}

// jobJSON renders a status for the wire; full additionally inlines the
// stencil plan (solutions are big, so the compact form carries a summary
// only).
func jobJSON(s JobStatus, full bool) map[string]any {
	out := map[string]any{
		"id":        s.ID,
		"solver":    s.Solver,
		"instance":  s.Instance,
		"kind":      s.Kind.String(),
		"state":     string(s.State),
		"submitted": s.Submitted,
	}
	if s.Label != "" {
		out["label"] = s.Label
	}
	if s.Key != "" {
		out["key"] = s.Key
	}
	if s.Replayed {
		out["replayed"] = true
	}
	if !s.Started.IsZero() {
		out["started"] = s.Started
	}
	if !s.Finished.IsZero() {
		out["finished"] = s.Finished
	}
	if s.Err != nil {
		out["error"] = s.Err.Error()
	}
	if s.Result != nil {
		res := map[string]any{
			"strategy":  s.Result.Strategy,
			"objective": s.Result.Objective,
			"feasible":  s.Result.Feasible,
			"elapsedMs": s.Result.Elapsed.Milliseconds(),
		}
		if s.Result.Solution != nil {
			// Guarded: a cancelled or deadline-expired job can carry a
			// partial Result whose Solution is nil, and a terminal record
			// replayed from the WAL never has the plan — only the digest.
			res["selected"] = s.Result.Solution.NumSelected()
		}
		if s.Digest != "" {
			res["digest"] = s.Digest
		}
		if len(s.Result.Runs) > 0 {
			runs := make([]map[string]any, len(s.Result.Runs))
			for i, r := range s.Result.Runs {
				rj := map[string]any{"name": r.Name, "elapsedMs": r.Elapsed.Milliseconds(), "ok": r.Err == nil}
				if r.Err != nil {
					rj["error"] = r.Err.Error()
				} else if r.Solution != nil {
					rj["objective"] = r.Solution.WritingTime
				}
				runs[i] = rj
			}
			res["runs"] = runs
		}
		if full {
			res["solution"] = s.Result.Solution
		}
		out["result"] = res
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
