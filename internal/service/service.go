// Package service is the batched OSP job service: a long-running manager
// that queues many stencil-planning instances, drains them through one
// bounded worker pool shared across all jobs (reusing par.Pool), and
// reports progress as a per-job event stream. It is the step from "one CLI
// solve" to a server handling heavy traffic: submit returns immediately
// with a job ID, status/result/cancel are keyed by that ID, and cmd/eblowd
// exposes the whole thing over HTTP/JSON (see http.go). Two knobs keep a
// long-running deployment bounded: Config.RecordTTL evicts finished job
// records, and Config.MaxPending rejects submissions (ErrQueueFull → HTTP
// 429) once too many jobs are waiting.
//
// Two optional layers harden the service for real multi-user deployments:
// Config.WAL (see wal.go) is a durable write-ahead job log — an
// acknowledged submission survives kill -9, unfinished jobs are re-enqueued
// on the next boot and re-solve to bit-identical results for fixed seeds —
// and a Keyring (see auth.go) authenticates every HTTP request with static
// API keys carrying per-key pending-job quotas and token-bucket rate
// limits.
//
// The service schedules strategies through the unified solver API
// (eblow.SolveWith), so every registered strategy — "eblow", the baselines,
// "exact", "portfolio" — is available by name. Results are deterministic
// for a fixed seed regardless of the worker count or the order in which
// queued jobs drain: each job's solve is worker-count independent, and jobs
// never share random streams.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"eblow"
	"eblow/internal/batch"
	"eblow/internal/par"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: Queued -> Running -> one of Done / Failed / Canceled.
// A queued job that is cancelled goes straight to Canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config configures a Manager.
type Config struct {
	// Workers is the size of the worker pool shared by every job (0 = one
	// worker per CPU). At most Workers jobs solve concurrently; the rest
	// wait in FIFO order.
	Workers int
	// RecordTTL bounds how long terminal job records (and their event
	// streams) stay readable after the job finished; expired records are
	// evicted and subsequent lookups return ErrNotFound. 0 keeps every
	// record forever — fine for tests and short-lived CLIs, a memory leak
	// for a long-running server, so cmd/eblowd always sets a TTL.
	RecordTTL time.Duration
	// MaxPending bounds the number of jobs waiting in the queue (queued,
	// not yet running). Submit returns ErrQueueFull once the bound is hit,
	// which the HTTP layer maps to 429 Too Many Requests — backpressure
	// instead of an unbounded queue under overload. 0 means no bound.
	MaxPending int
	// Learn is the optional learned-scheduling store shared by every job:
	// portfolio jobs consult it for their race plan and record their
	// outcome back, so the server's race scheduling improves as traffic
	// accumulates. The manager saves the store after each job that recorded
	// into it; GET /v1/learn exposes a statistics snapshot. Nil disables
	// learning (cmd/eblowd enables it with -learn-path).
	Learn *eblow.LearnStore
	// WAL is the durable job log (see OpenWAL); nil disables durability.
	// The manager owns it from here on: New replays it (re-enqueueing every
	// job that was accepted but not terminal), each job transition appends
	// a record, Submit does not acknowledge a job before its accepted
	// record is fsynced, and Close flushes and closes the log.
	WAL *WAL
	// Batch configures the cost-model scheduler and batched cohort
	// execution (internal/batch). The zero value keeps the original FIFO
	// drain byte-for-byte.
	Batch BatchConfig
}

// BatchConfig configures the cost-model scheduler and cohort execution.
// Per-job results are bit-identical either way (the batch-identity
// contract, docs/INVARIANTS.md); the scheduler changes only which job
// starts next and which jobs share one cohort's struct-of-arrays kernels.
type BatchConfig struct {
	// Enabled switches the drain from FIFO order to cost-model scheduling
	// with cohort formation.
	Enabled bool
	// MaxBatch caps the jobs per execution cohort (0 = 8; 1 disables
	// cohort formation but keeps cost-model ordering).
	MaxBatch int
	// MaxChars is the largest instance (character count) that may join a
	// cohort (0 = 400); bigger jobs always run solo.
	MaxChars int
	// MaxJump is the aging bound: a waiting job may be overtaken by at
	// most MaxJump later-submitted jobs before the scheduler pins it to
	// the front of the queue (0 = 16, negative = strict submission order).
	// It is a hard no-starvation guarantee, not a heuristic.
	MaxJump int
	// Workers bounds the goroutines one cohort's lockstep kernels use
	// (0 = 1). This is per pool slot: a cohort occupies one pool worker
	// and fans out internally, so Workers > 1 oversubscribes the pool.
	Workers int
}

// withDefaults resolves the zero knobs to their documented defaults.
func (b BatchConfig) withDefaults() BatchConfig {
	if b.MaxBatch == 0 {
		b.MaxBatch = 8
	}
	if b.MaxChars == 0 {
		b.MaxChars = 400
	}
	switch {
	case b.MaxJump == 0:
		b.MaxJump = 16
	case b.MaxJump < 0:
		b.MaxJump = 0
	}
	if b.Workers <= 0 {
		b.Workers = 1
	}
	return b
}

// JobSpec describes one solve to enqueue.
type JobSpec struct {
	// Instance is the problem to solve (required, validated at submit).
	Instance *eblow.Instance
	// Solver names the strategy to run ("" means the default E-BLOW
	// planner for the instance kind; "portfolio" races the registered
	// strategies, optionally restricted by Params.Strategies).
	Solver string
	// Params is the unified solver configuration. Workers 0 is normalised
	// to 1 so the shared pool stays the real concurrency bound; submitters
	// that want a multi-threaded solve ask for it explicitly.
	Params eblow.Params
	// Label is an optional caller tag echoed in statuses and events.
	Label string
	// Key is the authenticated API identity that submitted the job (""
	// when auth is disabled); it is stamped into statuses, events and WAL
	// records. The HTTP layer fills it from the request's key.
	Key string
	// KeyPending bounds how many of this key's jobs may wait in the queue
	// at once (0 = no per-key bound): Submit returns ErrKeyQuota once the
	// bound is hit, mapped to 429 on the wire like the global MaxPending.
	KeyPending int
}

// Event is one entry of a job's progress stream.
type Event struct {
	// Seq numbers the job's events from 1.
	Seq int `json:"seq"`
	// JobID identifies the job.
	JobID string `json:"job"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// State is the job state after the event.
	State State `json:"state"`
	// Message is a human-readable progress note.
	Message string `json:"message,omitempty"`
	// Key is the API identity that owns the job (omitted when auth is
	// disabled).
	Key string `json:"key,omitempty"`
}

// JobStatus is an immutable snapshot of one job.
type JobStatus struct {
	ID        string
	Label     string
	Solver    string
	Instance  string
	Kind      eblow.Kind
	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Result is set once the job is done (and may carry a partial
	// incumbent for a cancelled or deadline-expired solve whose strategy
	// returns best-so-far). For a terminal record replayed from the WAL the
	// Result summary is present but Result.Solution is nil — the log keeps
	// the digest, not the plan.
	Result *eblow.Result
	// Err reports why a failed or cancelled job carries no (full) result.
	Err error
	// Key is the API identity that submitted the job ("" without auth).
	Key string
	// Digest fingerprints a completed result (see resultDigest): identical
	// across a WAL replay and an uninterrupted run for a fixed seed.
	Digest string
	// Replayed marks a terminal record restored from the WAL, whose
	// Result carries the summary and digest but no stencil plan.
	Replayed bool
}

// job is the mutable record behind a JobStatus, guarded by Manager.mu.
type job struct {
	id     string
	spec   JobSpec
	state  State
	result *eblow.Result
	err    error

	// instName and instKind duplicate the instance identity so a terminal
	// record replayed from the WAL (whose full instance was dropped at
	// compaction) still renders a complete status.
	instName string
	instKind eblow.Kind
	// digest fingerprints a completed result (see resultDigest).
	digest string
	// replayed marks a digest-only terminal record restored from the WAL.
	replayed bool

	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx             context.Context
	cancel          context.CancelFunc
	cancelRequested bool
	// interrupted marks a running job cut off by Close: the in-memory
	// record reads cancelled, but no terminal WAL record is written, so
	// the accepted record replays the job on the next boot.
	interrupted bool

	events  []Event
	changed chan struct{} // closed and replaced on every event append
}

// ErrNotFound is returned for an unknown (or TTL-evicted) job ID.
var ErrNotFound = errors.New("service: no such job")

// ErrClosed is returned when submitting to a closed manager.
var ErrClosed = errors.New("service: manager is closed")

// ErrQueueFull is returned by Submit when Config.MaxPending jobs are already
// waiting; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: pending job queue is full")

// ErrNotDurable is returned (wrapped, alongside a valid JobStatus) by
// Submit when the job was queued but its accepted WAL record could not be
// fsynced: the job will run, but would not survive a crash. The HTTP layer
// maps it to 500.
var ErrNotDurable = errors.New("service: accepted job is not durable")

// ErrKeyQuota is returned by Submit when the submitting key already has
// JobSpec.KeyPending jobs waiting; the HTTP layer maps it to 429 like
// ErrQueueFull — per-key backpressure instead of one tenant filling the
// shared queue.
var ErrKeyQuota = errors.New("service: key's pending-job quota is full")

// Manager queues jobs and drains them through one shared worker pool.
type Manager struct {
	pool *par.Pool
	cfg  Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu sync.Mutex
	// guarded by mu
	jobs map[string]*job
	// guarded by mu — submission order of the keys of jobs; every
	// snapshot/replay iteration walks this, never the map
	order []string
	// guarded by mu — jobs in StateQueued
	pending int
	// guarded by mu — StateQueued jobs per API key
	keyPending map[string]int
	// guarded by mu
	nextID int
	// guarded by mu
	closed bool

	// queue is the cost-model scheduler, nil unless cfg.Batch.Enabled; it
	// holds exactly the StateQueued jobs. guarded by mu
	queue *batch.Queue
}

// New starts a manager with cfg.Workers pool workers. A positive
// cfg.RecordTTL also starts a janitor goroutine that owns the periodic
// eviction sweep; the request paths never pay for a full sweep — Status and
// friends only check the TTL of the one record they touch, so an expired
// record reads as gone the moment its TTL lapses even if the janitor has
// not collected it yet.
func New(cfg Config) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	if cfg.Batch.Enabled {
		cfg.Batch = cfg.Batch.withDefaults()
	}
	m := &Manager{
		pool:       par.NewPool(cfg.Workers),
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		keyPending: make(map[string]int),
	}
	if cfg.Batch.Enabled {
		m.queue = batch.NewQueue()
	}
	if cfg.WAL != nil {
		m.mu.Lock()
		m.replayWALLocked()
		m.mu.Unlock()
	}
	if cfg.RecordTTL > 0 {
		go m.janitor()
	}
	return m
}

// keyPendingAddLocked adjusts the key's queued-job count. Callers hold m.mu.
func (m *Manager) keyPendingAddLocked(j *job, delta int) {
	if j.spec.Key == "" {
		return
	}
	m.keyPending[j.spec.Key] += delta
	if m.keyPending[j.spec.Key] <= 0 {
		delete(m.keyPending, j.spec.Key)
	}
}

// janitor periodically evicts expired terminal job records until Close.
func (m *Manager) janitor() {
	period := m.cfg.RecordTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-tick.C:
			m.mu.Lock()
			m.evictLocked(time.Now())
			m.mu.Unlock()
		}
	}
}

// expiredLocked reports whether the record's TTL has lapsed. Running and
// queued jobs never expire, no matter how old. Callers hold m.mu.
func (m *Manager) expiredLocked(j *job, now time.Time) bool {
	return m.cfg.RecordTTL > 0 && j.state.Terminal() && !j.finished.IsZero() &&
		now.Sub(j.finished) > m.cfg.RecordTTL
}

// evictLocked drops terminal job records whose TTL expired. It is an O(all
// records) sweep, so only the janitor and the already-O(n) List call it —
// the per-job request paths use expiredLocked instead. Callers hold m.mu.
func (m *Manager) evictLocked(now time.Time) {
	if m.cfg.RecordTTL <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if m.expiredLocked(m.jobs[id], now) {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	for i := len(kept); i < len(m.order); i++ {
		m.order[i] = "" // release the evicted tail for the GC
	}
	m.order = kept
}

// Workers returns the size of the shared worker pool.
func (m *Manager) Workers() int { return m.pool.Workers() }

// Submit validates the spec, enqueues the job and returns its initial
// status. The call never blocks on the queue: the job solves once a pool
// worker is free, in FIFO order. With a WAL configured, Submit waits for
// the job's accepted record to be fsynced before returning (concurrent
// submits share one fsync), so an acknowledged job survives any crash.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Instance == nil {
		return JobStatus{}, errors.New("service: job needs an instance")
	}
	if err := spec.Instance.Validate(); err != nil {
		return JobStatus{}, fmt.Errorf("service: invalid instance: %w", err)
	}
	if err := checkStrategies(spec); err != nil {
		return JobStatus{}, err
	}
	if spec.Params.Workers <= 0 {
		spec.Params.Workers = 1
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if m.cfg.MaxPending > 0 && m.pending >= m.cfg.MaxPending {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, m.cfg.MaxPending)
	}
	if spec.Key != "" && spec.KeyPending > 0 && m.keyPending[spec.Key] >= spec.KeyPending {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (key %q, %d jobs waiting)", ErrKeyQuota, spec.Key, spec.KeyPending)
	}
	m.nextID++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%d", m.nextID),
		spec:      spec,
		instName:  spec.Instance.Name,
		instKind:  spec.Instance.Kind,
		state:     StateQueued,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		changed:   make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pending++
	m.keyPendingAddLocked(j, 1)
	m.appendEventLocked(j, "queued for "+solverLabel(spec))
	// The accepted record is buffered under mu so the WAL's record order
	// matches the queue order; the fsync wait happens after unlock.
	var walErr error
	if m.cfg.WAL != nil {
		rec, err := m.walAccepted(j)
		if err == nil {
			err = m.cfg.WAL.append(rec)
		}
		walErr = err
	}
	status := m.statusLocked(j)
	// Enqueue while still holding mu: Close sets closed under the same
	// lock before closing the pool, so a submit that saw closed == false
	// always reaches the pool before Close can shut it.
	m.enqueueLocked(j)
	m.mu.Unlock()
	if walErr == nil && m.cfg.WAL != nil {
		walErr = m.cfg.WAL.Flush()
	}
	if walErr != nil {
		// The job is already queued and will run; what failed is only the
		// durability guarantee, and the submitter must know its ack is
		// best-effort now.
		return status, fmt.Errorf("%w: job %s: %v", ErrNotDurable, j.id, walErr)
	}
	return status, nil
}

// checkStrategies rejects unknown strategies and kind mismatches at submit
// time, so a bad request fails fast instead of queueing a doomed job.
func checkStrategies(spec JobSpec) error {
	names := spec.Params.Strategies
	for _, name := range names {
		// The race cannot contain itself; entrants() would reject the job
		// only after it queued, so fail the submit instead.
		if name == "portfolio" && (spec.Solver != "" || len(names) > 1) {
			return fmt.Errorf("service: %q cannot appear inside a strategy set; name it as the solver instead", name)
		}
	}
	if spec.Solver != "" {
		if len(names) > 0 && spec.Solver != "portfolio" {
			return fmt.Errorf("service: solver %q conflicts with an explicit strategy set %v (use solver \"portfolio\" to race them)", spec.Solver, names)
		}
		names = append([]string{spec.Solver}, names...)
	}
	for _, name := range names {
		info, ok := eblow.LookupInfo(name)
		if !ok {
			return fmt.Errorf("service: unknown solver %q (have %v)", name, eblow.SolverNames())
		}
		if !info.Supports(spec.Instance.Kind) {
			return fmt.Errorf("service: solver %q does not support %s instances", name, spec.Instance.Kind)
		}
	}
	return nil
}

func solverLabel(spec JobSpec) string {
	switch {
	case spec.Solver != "":
		return spec.Solver
	case len(spec.Params.Strategies) == 1:
		return spec.Params.Strategies[0] // SolveWith runs it solo, not as a race
	case len(spec.Params.Strategies) > 1:
		return fmt.Sprintf("portfolio of %v", spec.Params.Strategies)
	default:
		return "eblow"
	}
}

// solveSpec runs the spec's strategy under the unified contract. An
// explicit solver name runs that exact strategy — "portfolio" with a
// restricted Params.Strategies stays a race (per-entrant seed offsets,
// populated Runs) rather than collapsing to a bare single-strategy solve.
// Without a name, SolveWith's strategy-set dispatch applies. A package
// variable so tests can inject stub strategies that exercise result/error
// combinations the registered solvers never produce (partial incumbents
// alongside an error, nil Solutions).
var solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
	if s, ok := eblow.Lookup(spec.Solver); spec.Solver != "" && ok {
		return s.Solve(ctx, spec.Instance, spec.Params)
	}
	return eblow.SolveWith(ctx, spec.Instance, spec.Params)
}

// effectiveStrategy resolves which registry strategy the spec will run,
// mirroring solveSpec/eblow.SolveWith's dispatch: an explicit solver name
// wins, a single non-portfolio strategy runs solo, anything else is the
// default planner or a race.
func effectiveStrategy(spec JobSpec) string {
	if spec.Solver != "" {
		return spec.Solver
	}
	switch {
	case len(spec.Params.Strategies) == 0:
		return "eblow"
	case len(spec.Params.Strategies) == 1 && spec.Params.Strategies[0] != "portfolio":
		return spec.Params.Strategies[0]
	default:
		return "portfolio"
	}
}

// enqueueLocked hands a freshly queued job to the drain: the FIFO pool
// ticket when batching is off, or a scheduler push plus a drain ticket when
// it is on. Callers hold m.mu.
func (m *Manager) enqueueLocked(j *job) {
	if m.queue == nil {
		m.pool.Submit(func() { m.run(j) })
		return
	}
	strategy := effectiveStrategy(j.spec)
	m.queue.Push(batch.Item{
		ID:        j.id,
		Strategy:  strategy,
		Kind:      j.spec.Instance.Kind,
		Chars:     j.spec.Instance.NumCharacters(),
		Cost:      batch.Estimate(j.spec.Instance, strategy, m.cfg.Learn),
		Batchable: batch.Batchable(strategy, j.spec.Instance.Kind),
	})
	// One ticket per submitted job: a ticket whose jobs were already pulled
	// into an earlier cohort finds the queue drained and returns.
	m.pool.Submit(m.drainOne)
}

// run executes one job on a pool worker (the FIFO drain).
func (m *Manager) run(j *job) {
	m.mu.Lock()
	if !m.startLocked(j) {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	res, err := solveSpec(j.ctx, m.solveParams(j))
	saveErr := m.saveLearn()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishLocked(j, res, err, saveErr)
}

// drainOne is one scheduler pool ticket: it pops the next unit of work — a
// single job or a formed cohort — and executes it. Solo picks run the exact
// solveSpec path the FIFO drain uses; cohorts run through batch.Execute,
// whose results are bit-identical to solo execution per job.
func (m *Manager) drainOne() {
	m.mu.Lock()
	if m.closed || m.queue == nil {
		m.mu.Unlock()
		return
	}
	picked := m.queue.Pop(batch.Policy{
		MaxBatch: m.cfg.Batch.MaxBatch,
		MaxChars: m.cfg.Batch.MaxChars,
		MaxJump:  m.cfg.Batch.MaxJump,
	})
	jobs := make([]*job, 0, len(picked))
	for _, it := range picked {
		// The queue and the job states move in lockstep under mu (Cancel
		// removes queued jobs from both), so a popped job is StateQueued;
		// the check is a belt against future drift.
		if j := m.jobs[it.ID]; j != nil && m.startLocked(j) {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()

	switch len(jobs) {
	case 0:
		return
	case 1:
		j := jobs[0]
		res, err := solveSpec(j.ctx, m.solveParams(j))
		saveErr := m.saveLearn()
		m.mu.Lock()
		defer m.mu.Unlock()
		m.finishLocked(j, res, err, saveErr)
	default:
		units := make([]batch.Unit, len(jobs))
		for i, j := range jobs {
			spec := m.solveParams(j)
			units[i] = batch.Unit{
				Ctx:      j.ctx,
				Instance: spec.Instance,
				Strategy: effectiveStrategy(spec),
				Params:   spec.Params,
			}
		}
		results := batch.Execute(units, m.cfg.Batch.Workers)
		saveErr := m.saveLearn()
		m.mu.Lock()
		defer m.mu.Unlock()
		// Finish in submission order so events, WAL records and learn saves
		// land in a deterministic sequence for the cohort.
		for i, j := range jobs {
			m.finishLocked(j, results[i].Result, results[i].Err, saveErr)
		}
	}
}

// solveParams returns the job's spec with the shared learning store riding
// along; only the portfolio strategy consults it, and the manager owns
// persistence (the race records in memory, saveLearn writes the file).
func (m *Manager) solveParams(j *job) JobSpec {
	spec := j.spec
	if m.cfg.Learn != nil {
		spec.Params.LearnStore = m.cfg.Learn
	}
	return spec
}

// startLocked transitions a job Queued -> Running and writes the started
// WAL record. It reports false when the job was cancelled while queued
// (Cancel already wrote the terminal record) or the manager is shutting
// down — on shutdown the queued job's accepted WAL record stays the last
// word, so the next boot re-enqueues it instead of recording a spurious
// cancellation. Callers hold m.mu.
func (m *Manager) startLocked(j *job) bool {
	if j.state != StateQueued || m.closed {
		return false
	}
	j.state = StateRunning
	m.pending--
	m.keyPendingAddLocked(j, -1)
	j.started = time.Now()
	m.appendEventLocked(j, fmt.Sprintf("solving %s (%s, %d characters)", j.spec.Instance.Name, j.spec.Instance.Kind, j.spec.Instance.NumCharacters()))
	m.walAppendLocked(j, walRecord{Op: walOpStarted, Job: j.id, Time: j.started, Key: j.spec.Key})
	return true
}

// finishLocked applies a finished solve's terminal transition: state,
// result, digest, events, terminal WAL record. Callers hold m.mu.
func (m *Manager) finishLocked(j *job, res *eblow.Result, err error, saveErr error) {
	if saveErr != nil {
		m.appendEventLocked(j, "warning: saving learn store: "+saveErr.Error())
	}
	j.finished = time.Now()
	j.cancel() // release the job's context resources
	switch {
	case j.cancelRequested || (err != nil && errors.Is(err, context.Canceled) && !j.interrupted):
		// Strategies that return their best-so-far plan on cancellation
		// (annealing, branch and bound) still hand us a result; keep it as
		// a partial incumbent but report the job as cancelled.
		j.state = StateCanceled
		j.result = res
		j.err = err
		if j.err == nil {
			j.err = context.Canceled
		}
		m.appendEventLocked(j, "cancelled")
	case j.interrupted:
		// Cut off by Close, not by the user: the in-memory record reads
		// cancelled for the dying process, but no terminal WAL record is
		// written — the accepted record replays the job on the next boot as
		// if it had never started. A best-so-far incumbent returned with a
		// nil error must not masquerade as a completed result either.
		j.state = StateCanceled
		j.result = res
		j.err = context.Canceled
		m.appendEventLocked(j, "interrupted by shutdown; the WAL replays the job on the next boot")
		return
	case err != nil:
		// A deadline-expired strategy hands back its best-so-far incumbent
		// just like a cancelled one; keep the partial plan instead of
		// discarding it with the error, and report the cause in Err.
		j.state = StateFailed
		j.err = err
		j.result = res
		if errors.Is(err, context.DeadlineExceeded) && res != nil && res.Solution != nil {
			m.appendEventLocked(j, "deadline expired: kept the best-so-far incumbent")
		} else {
			m.appendEventLocked(j, "failed: "+err.Error())
		}
	default:
		j.state = StateDone
		j.result = res
		j.digest = resultDigest(j.instName, res)
		m.appendEventLocked(j, fmt.Sprintf("done: strategy %s, writing time %d, feasible %v, %s",
			res.Strategy, res.Objective, res.Feasible, res.Elapsed.Round(time.Millisecond)))
	}
	m.walAppendLocked(j, m.walTerminal(j))
	m.maybeCompactWALLocked()
}

// saveLearn persists the shared learning store if the finished job recorded
// a race outcome into it. Never called under m.mu — the save does file IO.
func (m *Manager) saveLearn() error {
	if m.cfg.Learn == nil || !m.cfg.Learn.Dirty() {
		return nil
	}
	return m.cfg.Learn.Save()
}

// Learn returns the shared learned-scheduling store (nil when disabled).
func (m *Manager) Learn() *eblow.LearnStore { return m.cfg.Learn }

// Status returns a snapshot of the job.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || m.expiredLocked(j, time.Now()) {
		return JobStatus{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns a snapshot of every job in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked(time.Now())
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Cancel cancels the job: a queued job is marked cancelled immediately and
// its queue slot becomes a no-op, a running job's context is cancelled so
// its solver returns at the next checkpoint and the worker frees up for the
// next queued job. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || m.expiredLocked(j, time.Now()) {
		return JobStatus{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		if m.queue != nil {
			m.queue.Remove(j.id)
		}
		j.state = StateCanceled
		m.pending--
		m.keyPendingAddLocked(j, -1)
		j.err = context.Canceled
		j.finished = time.Now()
		j.cancel()
		m.appendEventLocked(j, "cancelled while queued")
		m.walAppendLocked(j, m.walTerminal(j))
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
			m.appendEventLocked(j, "cancellation requested")
		}
	}
	return m.statusLocked(j), nil
}

// Events streams the job's progress: every event recorded so far is
// replayed in order, then live events follow until the job reaches a
// terminal state or ctx is done, at which point the channel closes.
func (m *Manager) Events(ctx context.Context, id string) (<-chan Event, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok && m.expiredLocked(j, time.Now()) {
		ok = false
	}
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	ch := make(chan Event)
	go func() {
		defer close(ch)
		next := 0
		for {
			m.mu.Lock()
			pending := append([]Event(nil), j.events[next:]...)
			changed := j.changed
			terminal := j.state.Terminal()
			m.mu.Unlock()
			for _, e := range pending {
				select {
				case ch <- e:
				case <-ctx.Done():
					return
				}
			}
			next += len(pending)
			if terminal {
				return
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// Close stops accepting jobs, cancels everything queued or running, waits
// for the pool workers to finish, flushes and closes the WAL, and returns.
// Job records stay readable. Idempotent: a second Close is a no-op. With a
// WAL, interrupted work is not lost — queued jobs and running jobs cut off
// mid-solve keep their accepted records as the log's last word, so a new
// manager opened on the same WAL re-enqueues them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	// Walk in submission order (m.order), not map order, so shutdown
	// touches jobs in the same sequence on every run.
	for _, id := range m.order {
		if j := m.jobs[id]; j.state == StateRunning {
			j.interrupted = true
		}
	}
	m.mu.Unlock()
	m.baseCancel() // cancels every job context, queued slots drain as no-ops
	m.pool.Close()
	// Final best-effort flush of the learning store: the per-job saves
	// already persisted every completed race, so at worst the outcome of a
	// race that finished mid-shutdown is lost.
	_ = m.saveLearn()
	if m.cfg.WAL != nil {
		_ = m.cfg.WAL.Close()
	}
}

// appendEventLocked records an event on the job and wakes subscribers.
// Callers hold m.mu.
func (m *Manager) appendEventLocked(j *job, message string) {
	j.events = append(j.events, Event{
		Seq:     len(j.events) + 1,
		JobID:   j.id,
		Time:    time.Now(),
		State:   j.state,
		Message: message,
		Key:     j.spec.Key,
	})
	close(j.changed)
	j.changed = make(chan struct{})
}

// statusLocked snapshots the job. Callers hold m.mu.
func (m *Manager) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID:        j.id,
		Label:     j.spec.Label,
		Solver:    solverLabel(j.spec),
		Instance:  j.instName,
		Kind:      j.instKind,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Result:    j.result,
		Err:       j.err,
		Key:       j.spec.Key,
		Digest:    j.digest,
		Replayed:  j.replayed,
	}
}
