package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"eblow"
)

// waitTerminal polls until the job leaves the queue/run states.
func waitTerminal(t *testing.T, m *Manager, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		s, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State.Terminal() {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, s.State, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, m *Manager, id string, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		s, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == want {
			return
		}
		if s.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, wanted %s", id, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// A single-worker pool must drain queued jobs strictly in submission order,
// one at a time.
func TestQueueFairnessSingleWorkerFIFO(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		in := eblow.SmallInstance(eblow.OneD, 30, 2, int64(i+1))
		s, err := m.Submit(JobSpec{Instance: in, Solver: "greedy", Label: fmt.Sprintf("job-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	var statuses []JobStatus
	for _, id := range ids {
		statuses = append(statuses, waitTerminal(t, m, id, 30*time.Second))
	}
	for i, s := range statuses {
		if s.State != StateDone {
			t.Fatalf("job %s finished %s (%v)", s.ID, s.State, s.Err)
		}
		if i == 0 {
			continue
		}
		prev := statuses[i-1]
		if s.Started.Before(prev.Started) {
			t.Errorf("job %s started before earlier job %s on a 1-worker pool", s.ID, prev.ID)
		}
		if s.Started.Before(prev.Finished) {
			t.Errorf("jobs %s and %s overlapped on a 1-worker pool", prev.ID, s.ID)
		}
	}
}

// More jobs than workers: everything still completes, sharing the pool.
func TestQueueDrainsWithFewWorkers(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Close()

	var ids []string
	for i := 0; i < 8; i++ {
		kind := eblow.OneD
		if i%2 == 1 {
			kind = eblow.TwoD
		}
		in := eblow.SmallInstance(kind, 25, 2, int64(i+1))
		s, err := m.Submit(JobSpec{Instance: in, Solver: "greedy"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		if s := waitTerminal(t, m, id, 30*time.Second); s.State != StateDone || !s.Result.Feasible {
			t.Fatalf("job %s: state %s, err %v", id, s.State, s.Err)
		}
	}
}

// Cancelling a running job must return its worker to the pool so queued
// jobs still get solved.
func TestCancelMidSolveFreesWorker(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	// Exact branch and bound on 60 characters runs far longer than this
	// test and checks the context at every node, so it cancels promptly.
	slow, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 60, 3, 7), Solver: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 8), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}

	waitState(t, m, slow.ID, StateRunning, 30*time.Second)
	if s, err := m.Status(fast.ID); err != nil || s.State != StateQueued {
		t.Fatalf("fast job should be queued behind the slow one, got %v (%v)", s.State, err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	// Cancellation itself lands within milliseconds; the wide budget only
	// absorbs CPU contention from test packages running in parallel.
	if s := waitTerminal(t, m, slow.ID, time.Minute); s.State != StateCanceled {
		t.Fatalf("cancelled job finished %s (%v)", s.State, s.Err)
	}
	if s := waitTerminal(t, m, fast.ID, 30*time.Second); s.State != StateDone {
		t.Fatalf("queued job behind the cancelled one finished %s (%v)", s.State, s.Err)
	}
}

// Cancelling a queued job must skip it entirely.
func TestCancelQueuedJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	slow, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 60, 3, 9), Solver: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 10), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if s, err := m.Cancel(queued.ID); err != nil || s.State != StateCanceled {
		t.Fatalf("queued cancel: state %v, err %v", s.State, err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, queued.ID, 5*time.Second); s.State != StateCanceled {
		t.Fatalf("queued job ran anyway: %s", s.State)
	}
}

// For a fixed seed the batched results must match solving each instance
// serially, regardless of worker count and submission order.
func TestDeterministicAcrossQueueOrder(t *testing.T) {
	type tc struct {
		kind eblow.Kind
		n    int
		seed int64
	}
	cases := []tc{{eblow.OneD, 40, 1}, {eblow.TwoD, 30, 2}, {eblow.OneD, 50, 3}, {eblow.TwoD, 25, 4}}
	instances := make([]*eblow.Instance, len(cases))
	reference := make([]*eblow.Result, len(cases))
	for i, c := range cases {
		instances[i] = eblow.SmallInstance(c.kind, c.n, 2, c.seed)
		r, err := eblow.SolveWith(context.Background(), instances[i], eblow.Params{Workers: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		reference[i] = r
	}

	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		m := New(Config{Workers: 3})
		ids := make(map[int]string)
		for _, idx := range order {
			s, err := m.Submit(JobSpec{Instance: instances[idx], Params: eblow.Params{Seed: 5}})
			if err != nil {
				t.Fatal(err)
			}
			ids[idx] = s.ID
		}
		for idx, id := range ids {
			s := waitTerminal(t, m, id, 2*time.Minute)
			if s.State != StateDone {
				t.Fatalf("order %v: job %s finished %s (%v)", order, id, s.State, s.Err)
			}
			want := reference[idx]
			if s.Result.Objective != want.Objective {
				t.Errorf("order %v instance %d: objective %d, serial reference %d",
					order, idx, s.Result.Objective, want.Objective)
			}
			if !reflect.DeepEqual(s.Result.Solution.Selected, want.Solution.Selected) {
				t.Errorf("order %v instance %d: selection differs from serial reference", order, idx)
			}
		}
		m.Close()
	}
}

func TestEventsReplayAndStream(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	in := eblow.SmallInstance(eblow.OneD, 30, 2, 11)
	s, err := m.Submit(JobSpec{Instance: in, Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Events(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for e := range ch {
		events = append(events, e)
	}
	if len(events) < 3 {
		t.Fatalf("expected at least queued/running/done events, got %v", events)
	}
	if events[0].State != StateQueued {
		t.Errorf("first event %s, want queued", events[0].State)
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Errorf("last event %s, want done", last.State)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	if _, err := m.Submit(JobSpec{}); err == nil {
		t.Error("nil instance accepted")
	}
	in := eblow.SmallInstance(eblow.TwoD, 20, 2, 12)
	if _, err := m.Submit(JobSpec{Instance: in, Solver: "nope"}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := m.Submit(JobSpec{Instance: in, Solver: "row25"}); err == nil {
		t.Error("1D-only solver accepted for a 2D instance")
	}
	if _, err := m.Submit(JobSpec{Instance: in, Solver: "greedy", Params: eblow.Params{Strategies: []string{"eblow"}}}); err == nil {
		t.Error("conflicting solver + strategy set accepted")
	}
	if _, err := m.Submit(JobSpec{Instance: in, Params: eblow.Params{Strategies: []string{"greedy", "portfolio"}}}); err == nil {
		t.Error("portfolio inside a strategy set accepted")
	}
	if _, err := m.Events(context.Background(), "none"); err != ErrNotFound {
		t.Errorf("Events on unknown job: %v", err)
	}
	if _, err := m.Status("none"); err != ErrNotFound {
		t.Errorf("Status on unknown job: %v", err)
	}
}

func TestCloseRejectsNewJobs(t *testing.T) {
	m := New(Config{Workers: 1})
	m.Close()
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 20, 2, 13), Solver: "greedy"}); err != ErrClosed {
		t.Errorf("submit after close: %v", err)
	}
}

// Terminal job records must disappear once their TTL expires, while queued
// and running jobs survive any TTL.
func TestRecordTTLEviction(t *testing.T) {
	m := New(Config{Workers: 1, RecordTTL: 50 * time.Millisecond})
	defer m.Close()

	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 1), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)

	// The janitor (or the next API touch) must evict the record after the
	// TTL; poll rather than sleep a fixed amount.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Status(s.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job record never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("List still returns %d evicted jobs", got)
	}

	// A job that never finishes is never evicted, no matter the TTL.
	slow, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 60, 3, 2), Solver: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, StateRunning, 30*time.Second)
	time.Sleep(120 * time.Millisecond) // two TTLs
	if _, err := m.Status(slow.ID); err != nil {
		t.Fatalf("running job evicted by TTL: %v", err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
}

// Close must be safe to call twice: the second call is a pure no-op, not a
// double-close panic on the pool, contexts or WAL.
func TestCloseIdempotent(t *testing.T) {
	m := New(Config{Workers: 1})
	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 1), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)
	m.Close()
	m.Close()
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 20, 2, 2), Solver: "greedy"}); err != ErrClosed {
		t.Errorf("submit after double close: %v", err)
	}

	// And with a WAL attached: the second Close must not re-close the log.
	m2 := New(Config{Workers: 1, WAL: openTestWAL(t, t.TempDir()+"/jobs.wal")})
	m2.Close()
	m2.Close()
}

// An event subscriber attached while the janitor TTL-evicts the record must
// still receive the full stream and a clean channel close — not a hang or a
// send on a freed record.
func TestEventSubscriberSurvivesTTLEviction(t *testing.T) {
	m := New(Config{Workers: 1, RecordTTL: 50 * time.Millisecond})
	defer m.Close()

	s, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 3), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe but do not read yet: the subscriber goroutine blocks on the
	// unbuffered channel while the job finishes and the janitor evicts it.
	ch, err := m.Events(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s.ID, 30*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Status(s.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain after eviction: every event must still arrive, ending terminal.
	var events []Event
	timeout := time.After(10 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				if len(events) < 3 || !events[len(events)-1].State.Terminal() {
					t.Fatalf("evicted job's stream incomplete: %v", events)
				}
				return
			}
			events = append(events, e)
		case <-timeout:
			t.Fatalf("stream never closed after eviction; got %v", events)
		}
	}
}

// A deadline-expired solve that hands back its best-so-far incumbent must
// keep the partial result on the failed record instead of discarding it,
// with the cause in Err.
func TestDeadlineExpiryKeepsIncumbent(t *testing.T) {
	in := eblow.SmallInstance(eblow.OneD, 30, 2, 4)
	partial, err := eblow.SolveWith(context.Background(), in, eblow.Params{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := solveSpec
	defer func() { solveSpec = orig }()
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		return partial, context.DeadlineExceeded
	}

	m := New(Config{Workers: 1})
	defer m.Close()
	s, err := m.Submit(JobSpec{Instance: in, Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, s.ID, 30*time.Second)
	if done.State != StateFailed {
		t.Fatalf("deadline-expired job finished %s", done.State)
	}
	if !errors.Is(done.Err, context.DeadlineExceeded) {
		t.Errorf("Err = %v, want the deadline cause", done.Err)
	}
	if done.Result == nil || done.Result.Solution == nil {
		t.Fatalf("best-so-far incumbent dropped: %+v", done.Result)
	}
	if done.Result.Objective != partial.Objective {
		t.Errorf("incumbent objective %d, want %d", done.Result.Objective, partial.Objective)
	}
}

// Once MaxPending jobs wait in the queue, Submit must reject with
// ErrQueueFull; a freed slot accepts submissions again.
func TestMaxPendingBound(t *testing.T) {
	m := New(Config{Workers: 1, MaxPending: 1})
	defer m.Close()

	running, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 60, 3, 3), Solver: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning, 30*time.Second)

	queued, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 4), Solver: "greedy"})
	if err != nil {
		t.Fatalf("first queued job rejected: %v", err)
	}
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 5), Solver: "greedy"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}

	// Cancelling the queued job frees its slot immediately.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 30, 2, 6), Solver: "greedy"}); err != nil {
		t.Fatalf("slot not freed after cancelling a queued job: %v", err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
}
