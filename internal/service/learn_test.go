package service

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"eblow"
)

// A manager with a learning store shares it across jobs: portfolio jobs
// record their race outcomes and the manager persists the store after each
// job, so a fresh Open sees the accumulated statistics.
func TestManagerSharesAndPersistsLearnStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learn.json")
	store, err := eblow.OpenLearn(path)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Learn: store})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	in := eblow.SmallInstance(eblow.OneD, 40, 2, 5)
	for i := 0; i < 2; i++ {
		status, err := m.Submit(JobSpec{Instance: in, Solver: "portfolio", Params: eblow.Params{Seed: int64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if s := waitTerminal(t, m, status.ID, 30*time.Second); s.State != StateDone {
			t.Fatalf("portfolio job ended %s: %v", s.State, s.Err)
		}
	}

	reloaded, err := eblow.OpenLearn(path)
	if err != nil {
		t.Fatal(err)
	}
	shape := eblow.Fingerprint(in)
	ss := reloaded.Shape(shape)
	if ss == nil || ss.Races != 2 {
		t.Fatalf("persisted stats for %s = %+v, want 2 recorded races", shape, ss)
	}

	// The stats endpoint mirrors the store.
	code, body := getJSON(t, srv.URL+"/v1/learn")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/learn = %d: %v", code, body)
	}
	shapes, ok := body["shapes"].(map[string]any)
	if !ok || shapes[shape.Key()] == nil {
		t.Fatalf("stats snapshot misses shape %s: %v", shape.Key(), body)
	}
	if body["path"] != path {
		t.Fatalf("stats path = %v, want %s", body["path"], path)
	}

	// Non-portfolio jobs must leave the store untouched.
	before := reloaded.Shape(shape).Races
	status, err := m.Submit(JobSpec{Instance: in, Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, status.ID, 30*time.Second); s.State != StateDone {
		t.Fatalf("greedy job ended %s: %v", s.State, s.Err)
	}
	again, err := eblow.OpenLearn(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Shape(shape).Races; got != before {
		t.Fatalf("greedy job changed recorded races: %d -> %d", before, got)
	}
}

// Without a store the stats endpoint reports 404, not an empty snapshot.
func TestLearnEndpointDisabled(t *testing.T) {
	_, srv := newTestServer(t, 1)
	code, body := getJSON(t, srv.URL+"/v1/learn")
	if code != http.StatusNotFound {
		t.Fatalf("GET /v1/learn without a store = %d: %v", code, body)
	}
}
