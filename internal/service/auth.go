// API-key auth for the service's HTTP surface: static keys loaded from a
// file, a per-key token-bucket rate limit enforced in the middleware, and a
// per-key pending-job quota enforced by Manager.Submit. The middleware maps
// the outcomes onto the HTTP layer's error contract:
//
//	401 Unauthorized       missing or unknown key
//	403 Forbidden          read-only key on a mutating method
//	429 Too Many Requests  rate limit exceeded, or (from Submit) the key's
//	                       pending-job quota is full
//
// The authenticated identity travels with the request context; the HTTP
// layer stamps it into the job spec, so it appears in statuses, progress
// events and WAL records.
package service

import (
	"bufio"
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Per-key defaults; a key file line overrides them with pending=N, rate=R
// and burst=B fields (0 means unlimited).
const (
	// DefaultKeyPending is a key's pending-job quota: how many of its jobs
	// may wait in the queue at once.
	DefaultKeyPending = 64
	// DefaultKeyRate is a key's sustained request rate in requests/second.
	DefaultKeyRate = 50
	// DefaultKeyBurst is a key's token-bucket capacity.
	DefaultKeyBurst = 100
)

// minSecretLen rejects trivially guessable secrets at load time.
const minSecretLen = 8

// AuthKey is one authenticated API identity.
type AuthKey struct {
	// Name identifies the key in job records, events and WAL records. The
	// secret itself never appears in any of them.
	Name string
	// Secret is the bearer token presented by the client.
	Secret string
	// ReadOnly keys may only use GET/HEAD; mutating methods get 403.
	ReadOnly bool
	// MaxPending bounds the key's jobs waiting in the queue (0 = no bound).
	MaxPending int
	// Rate and Burst parameterize the key's token bucket (Rate 0 disables
	// rate limiting for the key).
	Rate, Burst float64

	mu sync.Mutex
	// guarded by mu — current token-bucket fill
	tokens float64
	// guarded by mu — last refill instant
	last time.Time
}

// allow takes one token from the key's bucket, refilling by elapsed time.
// Rate <= 0 or Burst <= 0 means the key is not rate limited.
func (k *AuthKey) allow(now time.Time) bool {
	if k.Rate <= 0 || k.Burst <= 0 {
		return true
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.last.IsZero() {
		k.tokens += now.Sub(k.last).Seconds() * k.Rate
	} else {
		k.tokens = k.Burst
	}
	if k.tokens > k.Burst {
		k.tokens = k.Burst
	}
	k.last = now
	if k.tokens < 1 {
		return false
	}
	k.tokens--
	return true
}

// Keyring holds the static API keys the middleware authenticates against.
type Keyring struct {
	// immutable after construction — sorted by key name at parse time so
	// iteration order is canonical regardless of key-file line order;
	// lookup iterates the whole slice: constant-time compare per secret
	keys []*AuthKey
}

// Len returns the number of loaded keys.
func (kr *Keyring) Len() int { return len(kr.keys) }

// LoadKeyring reads a key file. Format: one key per line,
//
//	# comment
//	<name> <secret> [readonly] [pending=N] [rate=R] [burst=B]
//
// Names and secrets must be unique, secrets at least 8 characters. The
// optional fields override the per-key defaults; an explicit 0 means
// unlimited.
func LoadKeyring(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("service: opening key file: %w", err)
	}
	defer f.Close()
	kr, err := ParseKeyring(f)
	if err != nil {
		return nil, fmt.Errorf("service: key file %s: %w", path, err)
	}
	return kr, nil
}

// ParseKeyring parses key file content (see LoadKeyring for the format).
func ParseKeyring(r io.Reader) (*Keyring, error) {
	kr := &Keyring{}
	names := make(map[string]bool)
	secrets := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: need \"<name> <secret> [options]\"", lineNo)
		}
		k := &AuthKey{
			Name:       fields[0],
			Secret:     fields[1],
			MaxPending: DefaultKeyPending,
			Rate:       DefaultKeyRate,
			Burst:      DefaultKeyBurst,
		}
		if len(k.Secret) < minSecretLen {
			return nil, fmt.Errorf("line %d: secret for %q is shorter than %d characters", lineNo, k.Name, minSecretLen)
		}
		if names[k.Name] {
			return nil, fmt.Errorf("line %d: duplicate key name %q", lineNo, k.Name)
		}
		if secrets[k.Secret] {
			return nil, fmt.Errorf("line %d: duplicate secret (key %q)", lineNo, k.Name)
		}
		for _, opt := range fields[2:] {
			if err := parseKeyOption(k, opt); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		names[k.Name], secrets[k.Secret] = true, true
		kr.keys = append(kr.keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(kr.keys) == 0 {
		return nil, errors.New("no keys defined")
	}
	// Canonical order: lookup latency and any future iteration over the
	// keyring must not depend on the line order of the key file.
	sort.Slice(kr.keys, func(i, j int) bool { return kr.keys[i].Name < kr.keys[j].Name })
	return kr, nil
}

func parseKeyOption(k *AuthKey, opt string) error {
	if opt == "readonly" {
		k.ReadOnly = true
		return nil
	}
	name, value, ok := strings.Cut(opt, "=")
	if !ok {
		return fmt.Errorf("unknown key option %q", opt)
	}
	switch name {
	case "pending":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("bad pending=%q (want an integer >= 0)", value)
		}
		k.MaxPending = n
	case "rate", "burst":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad %s=%q (want a number >= 0)", name, value)
		}
		if name == "rate" {
			k.Rate = f
		} else {
			k.Burst = f
		}
	default:
		return fmt.Errorf("unknown key option %q", opt)
	}
	return nil
}

// lookup resolves a presented secret, comparing every key in constant time
// so the response latency leaks nothing about near-matches.
func (kr *Keyring) lookup(secret string) *AuthKey {
	if secret == "" {
		return nil
	}
	var found *AuthKey
	for _, k := range kr.keys {
		if subtle.ConstantTimeCompare([]byte(k.Secret), []byte(secret)) == 1 {
			found = k
		}
	}
	return found
}

// authKeyCtx keys the authenticated identity in a request context.
type authKeyCtx struct{}

// KeyFromContext returns the authenticated key of the request, or nil when
// the server runs without auth.
func KeyFromContext(ctx context.Context) *AuthKey {
	k, _ := ctx.Value(authKeyCtx{}).(*AuthKey)
	return k
}

// requestSecret extracts the presented key: "Authorization: Bearer <secret>"
// or the "X-API-Key" header.
func requestSecret(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if secret, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(secret)
		}
		return ""
	}
	return r.Header.Get("X-API-Key")
}

// Wrap guards a handler with the keyring: every request must authenticate,
// read-only keys cannot mutate, and each key is rate limited by its token
// bucket. The authenticated identity is attached to the request context for
// the handler to stamp into job records.
func (kr *Keyring) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := kr.lookup(requestSecret(r))
		if key == nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="eblowd"`)
			writeError(w, http.StatusUnauthorized, errors.New("service: missing or unknown API key"))
			return
		}
		if key.ReadOnly && r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusForbidden, fmt.Errorf("service: key %q is read-only", key.Name))
			return
		}
		if !key.allow(time.Now()) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("service: key %q exceeded its request rate", key.Name))
			return
		}
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), authKeyCtx{}, key)))
	})
}
