// Durable write-ahead job log for the service: one NDJSON record per job
// transition (accepted spec, started, terminal outcome), so a crashed or
// killed server loses no accepted work. The manager appends records as jobs
// move through their lifecycle and fsyncs them in batches (group commit: a
// submit blocks until its accepted record is on disk, but concurrent
// submits share one fsync). On boot the manager replays the log: jobs that
// were accepted but never reached a terminal state are re-enqueued in their
// original submission order — re-solving is deterministic for a fixed seed,
// so a replayed job reproduces the result the uninterrupted run would have
// produced — while terminal records become readable digest-only job records
// (state, objective, result digest; the stencil plan itself is not logged).
// Once the log outgrows its size threshold it is compacted to one snapshot
// record per live job via an atomic temp-file + rename rewrite.
package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"eblow"
)

// WAL record ops, in lifecycle order.
const (
	walOpAccepted = "accepted"
	walOpStarted  = "started"
	walOpTerminal = "terminal"
)

// walFlushInterval bounds how long an appended record may sit in the buffer
// before the background flusher fsyncs it; it is also the worst-case extra
// latency a Submit pays for its durability guarantee.
const walFlushInterval = 5 * time.Millisecond

// DefaultWALMaxBytes is the compaction threshold used when OpenWAL is given
// a non-positive one.
const DefaultWALMaxBytes = 8 << 20

// walParams is the persisted subset of eblow.Params: exactly the fields a
// wire submission can carry. In-process extras (Options1D/2D overrides, an
// injected LearnStore) are not serializable and do not survive a replay —
// the manager re-attaches its own shared store when the job re-runs.
type walParams struct {
	Workers    int      `json:"workers,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	DeadlineNs int64    `json:"deadlineNs,omitempty"`
	Restarts   int      `json:"restarts,omitempty"`
	Strategies []string `json:"strategies,omitempty"`
}

func toWalParams(p eblow.Params) *walParams {
	return &walParams{
		Workers:    p.Workers,
		Seed:       p.Seed,
		DeadlineNs: int64(p.Deadline),
		Restarts:   p.Restarts,
		Strategies: p.Strategies,
	}
}

func (p *walParams) params() eblow.Params {
	if p == nil {
		return eblow.Params{}
	}
	return eblow.Params{
		Workers:    p.Workers,
		Seed:       p.Seed,
		Deadline:   time.Duration(p.DeadlineNs),
		Restarts:   p.Restarts,
		Strategies: p.Strategies,
	}
}

// walRecord is one NDJSON line of the job log. Accepted records carry the
// full spec (instance JSON included) so the job can re-run after a crash;
// terminal records carry the identity fields plus the outcome so a
// compacted log still renders a complete status without the accepted
// record.
type walRecord struct {
	Op   string    `json:"op"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// Submission identity.
	Key        string          `json:"key,omitempty"`
	KeyPending int             `json:"keyPending,omitempty"`
	Label      string          `json:"label,omitempty"`
	Solver     string          `json:"solver,omitempty"`
	Name       string          `json:"name,omitempty"`
	Kind       string          `json:"kind,omitempty"`
	Params     *walParams      `json:"params,omitempty"`
	Instance   json.RawMessage `json:"instance,omitempty"`
	Submitted  time.Time       `json:"submitted,omitempty"`

	// Terminal outcome.
	State     string `json:"state,omitempty"`
	Error     string `json:"error,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Objective int64  `json:"objective,omitempty"`
	Feasible  bool   `json:"feasible,omitempty"`
	ElapsedMs int64  `json:"elapsedMs,omitempty"`
	Digest    string `json:"digest,omitempty"`
}

// WALStats summarizes what a boot-time replay found in the log.
type WALStats struct {
	// Records is the number of well-formed records read at open.
	Records int
	// SkippedLines counts unparseable lines (typically one torn tail line
	// after a hard kill mid-append); they are ignored, never fatal.
	SkippedLines int
	// Resumed is the number of non-terminal jobs the manager re-enqueued.
	Resumed int
	// Terminal is the number of digest-only terminal records restored.
	Terminal int
}

// WAL is the durable job log. Open it with OpenWAL and hand it to
// Config.WAL; the manager owns it from then on (replays it in New, appends
// per-transition records, compacts it, and flushes + closes it in Close).
type WAL struct {
	path     string
	maxBytes int64

	mu sync.Mutex
	// guarded by mu
	f *os.File
	// guarded by mu
	w *bufio.Writer
	// guarded by mu
	size int64
	// guarded by mu
	dirty bool
	// guarded by mu
	waiters []chan error
	// guarded by mu
	closed bool
	// guarded by mu
	compactFloor int64 // minimum size before the next compaction attempt

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// guarded by mu — parsed at open, consumed once by Manager.New
	replay []walRecord
	// guarded by mu
	stats WALStats
}

// ErrWALClosed is returned by WAL operations after Close.
var ErrWALClosed = errors.New("service: WAL is closed")

// OpenWAL opens (creating if needed) the job log at path and parses its
// existing records for replay. maxBytes is the compaction threshold
// (<= 0 uses DefaultWALMaxBytes). Unparseable lines — e.g. a torn tail
// after kill -9 mid-append — are counted in Stats and skipped.
func OpenWAL(path string, maxBytes int64) (*WAL, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultWALMaxBytes
	}
	w := &WAL{
		path:     path,
		maxBytes: maxBytes,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("service: opening WAL: %w", err)
	}
	w.f = f
	w.size = st.Size()
	w.w = bufio.NewWriter(f)
	go w.flusher()
	return w, nil
}

// load parses the existing log into w.replay, tolerating a torn tail.
func (w *WAL) load() error {
	f, err := os.Open(w.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: reading WAL: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var recs []walRecord
	var skipped int
	for {
		line, err := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var rec walRecord
			if json.Unmarshal(line, &rec) != nil || rec.Op == "" || rec.Job == "" {
				skipped++
			} else {
				recs = append(recs, rec)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("service: reading WAL: %w", err)
		}
	}
	//eblow:nondet-ok open-time load: the flusher goroutine does not exist yet, so nothing can race this publication
	w.replay, w.stats = recs, WALStats{Records: len(recs), SkippedLines: skipped}
	return nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Stats reports what the boot-time replay found; the Resumed/Terminal
// counts are filled in once a Manager consumed the log.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// replayRecords hands the parsed records to the manager, once.
func (w *WAL) replayRecords() []walRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs := w.replay
	w.replay = nil
	return recs
}

func (w *WAL) setReplayStats(resumed, terminal int) {
	w.mu.Lock()
	w.stats.Resumed, w.stats.Terminal = resumed, terminal
	w.mu.Unlock()
}

// append buffers one record. It does not wait for durability — pair it
// with Flush for the group-commit guarantee, or let the background flusher
// sync it within walFlushInterval.
func (w *WAL) append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding WAL record: %w", err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("service: appending WAL record: %w", err)
	}
	w.size += int64(len(b))
	w.dirty = true
	w.kickLocked()
	return nil
}

// Flush blocks until every record appended so far is fsynced. Concurrent
// callers coalesce into one fsync (group commit).
func (w *WAL) Flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if !w.dirty {
		w.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	w.waiters = append(w.waiters, ch)
	w.kickLocked()
	w.mu.Unlock()
	return <-ch
}

func (w *WAL) kickLocked() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// flusher is the single goroutine that performs fsyncs: appenders and Flush
// callers only kick it, so any number of concurrent transitions share one
// disk sync per cycle.
func (w *WAL) flusher() {
	defer close(w.done)
	tick := time.NewTicker(walFlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
		case <-tick.C:
		}
		w.mu.Lock()
		w.flushLocked()
		w.mu.Unlock()
	}
}

// flushLocked flushes the buffer, fsyncs, and releases waiters. Callers
// hold w.mu.
func (w *WAL) flushLocked() {
	waiters := w.waiters
	w.waiters = nil
	var err error
	if w.dirty {
		if err = w.w.Flush(); err == nil {
			err = w.f.Sync()
		}
		w.dirty = false
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// needsCompact reports whether the log outgrew its threshold. After a
// compaction attempt (successful or not) the log must grow another 25%
// before the next one, so a snapshot that is itself above the threshold —
// or a failing rewrite — cannot trigger a compaction storm.
func (w *WAL) needsCompact() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.closed && w.size > w.maxBytes && w.size >= w.compactFloor
}

// compactTo atomically replaces the log with the given snapshot records:
// they are written to a temp file, fsynced, and renamed over the old log.
// Any failure leaves the old log intact.
func (w *WAL) compactTo(recs []walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	// Whatever happens below, require real growth before trying again.
	defer func() { w.compactFloor = w.size + w.size/4 }()
	// Flush the tail first: a record buffered but unwritten must not be
	// lost if the rewrite fails midway.
	w.flushLocked()

	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("service: compacting WAL: %w", err)
	}
	bw := bufio.NewWriter(f)
	var size int64
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			_, err = bw.Write(b)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("service: compacting WAL: %w", err)
		}
		size += int64(len(b))
	}
	err = bw.Flush()
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: compacting WAL: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting WAL: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting WAL: %w", err)
	}
	// Best effort: make the rename itself durable.
	if dir, err := os.Open(filepath.Dir(w.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted log is on disk but we lost our handle; keep
		// appending to the old (now unlinked) file so no records vanish,
		// and surface the error.
		return fmt.Errorf("service: reopening compacted WAL: %w", err)
	}
	old := w.f
	w.f = nf
	w.w = bufio.NewWriter(nf)
	w.size = size
	w.dirty = false
	old.Close()
	return nil
}

// Size returns the log's current byte size (buffered bytes included).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close flushes and fsyncs any buffered records and closes the log.
// Idempotent and safe for concurrent callers: the first caller performs the
// shutdown, later callers wait for the flusher to stop and return nil.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	return w.f.Close()
}

// resultDigest fingerprints a finished result: a hex SHA-256 over the
// instance name, winning strategy, objective, feasibility and the full plan
// geometry — exactly the fields that are deterministic for a fixed seed
// (the wall-clock Runtime is zeroed out). Bit-identical replayed solves
// therefore produce bit-identical digests, which is what the chaos test
// compares across a kill -9 and an uninterrupted run.
func resultDigest(instance string, res *eblow.Result) string {
	if res == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%v\n", instance, res.Strategy, res.Objective, res.Feasible)
	if res.Solution != nil {
		s := *res.Solution
		s.Runtime = 0
		if b, err := json.Marshal(&s); err == nil {
			h.Write(b)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// walIdentity stamps the record fields shared by accepted and terminal
// records. Callers hold m.mu.
func (m *Manager) walIdentity(j *job, rec *walRecord) {
	rec.Job = j.id
	rec.Key = j.spec.Key
	rec.KeyPending = j.spec.KeyPending
	rec.Label = j.spec.Label
	rec.Solver = j.spec.Solver
	rec.Name = j.instName
	rec.Kind = j.instKind.String()
	rec.Params = toWalParams(j.spec.Params)
	rec.Submitted = j.submitted
}

// walAccepted builds the job's accepted record, instance JSON included.
func (m *Manager) walAccepted(j *job) (walRecord, error) {
	var buf bytes.Buffer
	if err := eblow.EncodeInstance(&buf, j.spec.Instance); err != nil {
		return walRecord{}, fmt.Errorf("service: encoding instance for WAL: %w", err)
	}
	rec := walRecord{Op: walOpAccepted, Time: j.submitted, Instance: buf.Bytes()}
	m.walIdentity(j, &rec)
	return rec, nil
}

// walTerminal builds the job's terminal record: identity plus outcome, so
// it stands alone after compaction drops the accepted record.
func (m *Manager) walTerminal(j *job) walRecord {
	rec := walRecord{Op: walOpTerminal, Time: j.finished, State: string(j.state), Digest: j.digest}
	m.walIdentity(j, &rec)
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	if r := j.result; r != nil {
		rec.Strategy = r.Strategy
		rec.Objective = r.Objective
		rec.Feasible = r.Feasible
		rec.ElapsedMs = r.Elapsed.Milliseconds()
	}
	return rec
}

// walAppendLocked appends a lifecycle record; failures degrade to a warning
// event on the job rather than failing the transition (the solve result is
// already in memory — losing a started/terminal record only means the job
// re-runs after a crash). Callers hold m.mu.
func (m *Manager) walAppendLocked(j *job, rec walRecord) {
	if m.cfg.WAL == nil {
		return
	}
	if err := m.cfg.WAL.append(rec); err != nil && !errors.Is(err, ErrWALClosed) {
		m.appendEventLocked(j, "warning: WAL append failed: "+err.Error())
	}
}

// maybeCompactWALLocked snapshots the live jobs over the log once it
// outgrows its threshold: one terminal record per finished job, one
// accepted record per queued or running job (a running job re-runs on
// replay exactly as if the crash had happened mid-solve). A failed rewrite
// keeps the old log and is retried once the log grows again. Callers hold
// m.mu.
func (m *Manager) maybeCompactWALLocked() {
	w := m.cfg.WAL
	if w == nil || !w.needsCompact() {
		return
	}
	m.evictLocked(time.Now()) // expired records need no snapshot
	recs := make([]walRecord, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state.Terminal() {
			recs = append(recs, m.walTerminal(j))
			continue
		}
		rec, err := m.walAccepted(j)
		if err != nil {
			return // cannot snapshot this job; keep the full log
		}
		recs = append(recs, rec)
	}
	_ = w.compactTo(recs)
}

// replayWALLocked rebuilds the manager's job table from the log read at
// OpenWAL: terminal records become readable digest-only job records (the
// plan itself was never logged), and every job accepted but not terminal is
// re-enqueued in its original submission order — including jobs that were
// mid-solve when the process died. Called from New before any other
// goroutine can touch the manager; m.mu is held for the pool handoff.
func (m *Manager) replayWALLocked() {
	recs := m.cfg.WAL.replayRecords()
	type slot struct {
		accepted *walRecord
		terminal *walRecord
	}
	slots := make(map[string]*slot)
	var order []string
	maxID := 0
	for i := range recs {
		rec := &recs[i]
		s := slots[rec.Job]
		if s == nil {
			s = &slot{}
			slots[rec.Job] = s
			order = append(order, rec.Job)
		}
		switch rec.Op {
		case walOpAccepted:
			if s.accepted == nil {
				s.accepted = rec
			}
		case walOpTerminal:
			s.terminal = rec
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "j")); err == nil && n > maxID {
			maxID = n
		}
	}
	resumed, terminal := 0, 0
	for _, id := range order {
		s := slots[id]
		switch {
		case s.terminal != nil:
			m.replayTerminalLocked(id, s.terminal)
			terminal++
		case s.accepted != nil:
			if m.replayAcceptedLocked(id, s.accepted) {
				resumed++
			} else {
				terminal++
			}
		}
	}
	if maxID > m.nextID {
		m.nextID = maxID
	}
	m.cfg.WAL.setReplayStats(resumed, terminal)
}

// replayTerminalLocked restores a finished job as a digest-only record:
// readable (and TTL-evictable) like any terminal job, but with a nil
// Solution — the WAL logs the result digest, not the plan.
func (m *Manager) replayTerminalLocked(id string, rec *walRecord) {
	j := &job{
		id:        id,
		spec:      JobSpec{Solver: rec.Solver, Label: rec.Label, Key: rec.Key, KeyPending: rec.KeyPending, Params: rec.Params.params()},
		instName:  rec.Name,
		instKind:  kindFromString(rec.Kind),
		state:     State(rec.State),
		digest:    rec.Digest,
		replayed:  true,
		submitted: rec.Submitted,
		finished:  rec.Time,
		changed:   make(chan struct{}),
	}
	if !j.state.Terminal() {
		j.state = StateFailed
	}
	if rec.Error != "" {
		j.err = errors.New(rec.Error)
	}
	if rec.Strategy != "" || rec.Digest != "" {
		j.result = &eblow.Result{
			Strategy:  rec.Strategy,
			Objective: rec.Objective,
			Feasible:  rec.Feasible,
			Elapsed:   time.Duration(rec.ElapsedMs) * time.Millisecond,
		}
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.appendEventLocked(j, fmt.Sprintf("replayed terminal record from WAL: %s", j.state))
}

// replayAcceptedLocked re-enqueues a job that never reached a terminal
// state. A spec that no longer decodes (corrupt record) becomes a failed
// record instead, so the ID stays visible rather than silently vanishing.
// Reports whether the job was actually re-enqueued.
func (m *Manager) replayAcceptedLocked(id string, rec *walRecord) bool {
	j := &job{
		id:        id,
		spec:      JobSpec{Solver: rec.Solver, Label: rec.Label, Key: rec.Key, KeyPending: rec.KeyPending, Params: rec.Params.params()},
		instName:  rec.Name,
		instKind:  kindFromString(rec.Kind),
		submitted: rec.Submitted,
		changed:   make(chan struct{}),
	}
	if j.submitted.IsZero() {
		j.submitted = rec.Time
	}
	in, err := eblow.DecodeInstance(bytes.NewReader(rec.Instance))
	if err != nil {
		j.state = StateFailed
		j.err = fmt.Errorf("service: replaying job spec from WAL: %w", err)
		j.finished = time.Now()
		m.jobs[id] = j
		m.order = append(m.order, id)
		m.appendEventLocked(j, "failed: "+j.err.Error())
		m.walAppendLocked(j, m.walTerminal(j))
		return false
	}
	j.spec.Instance = in
	j.instName = in.Name
	j.instKind = in.Kind
	j.state = StateQueued
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.ctx, j.cancel = ctx, cancel
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pending++
	m.keyPendingAddLocked(j, 1)
	m.appendEventLocked(j, "queued for "+solverLabel(j.spec)+" (replayed from WAL)")
	m.enqueueLocked(j)
	return true
}

// kindFromString parses the Kind string a WAL record stores.
func kindFromString(s string) eblow.Kind {
	if s == eblow.TwoD.String() {
		return eblow.TwoD
	}
	return eblow.OneD
}
