package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eblow"
)

func TestParseKeyring(t *testing.T) {
	kr, err := ParseKeyring(strings.NewReader(`
# ops team
alice alice-secret-1
bob   bob-secret-22 readonly
carol carol-secret-3 pending=2 rate=1 burst=1
dave  dave-secret-44 pending=0 rate=0
`))
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 4 {
		t.Fatalf("parsed %d keys, want 4", kr.Len())
	}
	alice := kr.lookup("alice-secret-1")
	if alice == nil || alice.Name != "alice" {
		t.Fatalf("lookup alice: %+v", alice)
	}
	if alice.ReadOnly || alice.MaxPending != DefaultKeyPending || alice.Rate != DefaultKeyRate {
		t.Errorf("alice should have the defaults: %+v", alice)
	}
	if bob := kr.lookup("bob-secret-22"); bob == nil || !bob.ReadOnly {
		t.Errorf("bob should be read-only: %+v", bob)
	}
	if carol := kr.lookup("carol-secret-3"); carol == nil || carol.MaxPending != 2 || carol.Rate != 1 || carol.Burst != 1 {
		t.Errorf("carol's overrides lost: %+v", carol)
	}
	// Explicit 0 means unlimited.
	if dave := kr.lookup("dave-secret-44"); dave == nil || dave.MaxPending != 0 || dave.Rate != 0 {
		t.Errorf("dave's explicit zeros lost: %+v", dave)
	}
	if kr.lookup("no-such-secret") != nil || kr.lookup("") != nil {
		t.Error("unknown or empty secret resolved to a key")
	}
}

func TestParseKeyringRejects(t *testing.T) {
	for name, content := range map[string]string{
		"empty file":       "# only a comment\n",
		"missing secret":   "alice\n",
		"short secret":     "alice short\n",
		"duplicate name":   "alice alice-secret-1\nalice other-secret-2\n",
		"duplicate secret": "alice same-secret-1\nbob same-secret-1\n",
		"unknown option":   "alice alice-secret-1 admin\n",
		"bad pending":      "alice alice-secret-1 pending=-1\n",
		"bad rate":         "alice alice-secret-1 rate=fast\n",
	} {
		if _, err := ParseKeyring(strings.NewReader(content)); err == nil {
			t.Errorf("%s: accepted %q", name, content)
		}
	}
}

// newAuthServer wires a keyring-wrapped handler around a fresh manager.
func newAuthServer(t *testing.T, keyfile string) (*Manager, *httptest.Server) {
	t.Helper()
	kr, err := ParseKeyring(strings.NewReader(keyfile))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 1})
	srv := httptest.NewServer(kr.Wrap(NewHandler(m)))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func authedReq(t *testing.T, method, url, secret, body string) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if secret != "" {
		req.Header.Set("Authorization", "Bearer "+secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAuthMiddleware(t *testing.T) {
	_, srv := newAuthServer(t, `
writer writer-secret-1
viewer viewer-secret-2 readonly
`)

	// No key and a wrong key are both 401, with a challenge header.
	for _, secret := range []string{"", "wrong-secret-9"} {
		resp := authedReq(t, http.MethodGet, srv.URL+"/v1/jobs", secret, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("secret %q: %d, want 401", secret, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Error("401 without a WWW-Authenticate challenge")
		}
	}

	// The X-API-Key header authenticates too.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set("X-API-Key", "viewer-secret-2")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("X-API-Key auth: %d, want 200", resp.StatusCode)
		}
	}

	// A read-only key can read but not mutate.
	resp := authedReq(t, http.MethodPost, srv.URL+"/v1/jobs", "viewer-secret-2", `{"benchmark": "1T-1", "solver": "greedy"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("read-only POST: %d, want 403", resp.StatusCode)
	}

	// A writer key submits, and the job carries its identity.
	resp = authedReq(t, http.MethodPost, srv.URL+"/v1/jobs", "writer-secret-1", `{"benchmark": "1T-1", "solver": "greedy"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("writer POST: %d, want 202", resp.StatusCode)
	}
	var job map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job["key"] != "writer" {
		t.Errorf("job not stamped with the key name: %v", job)
	}
}

// A key's token bucket must 429 once drained and refill over time.
func TestAuthRateLimit(t *testing.T) {
	_, srv := newAuthServer(t, "burst burst-secret-1 rate=5 burst=2\n")

	codes := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		resp := authedReq(t, http.MethodGet, srv.URL+"/v1/jobs", "burst-secret-1", "")
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK || codes[2] != http.StatusTooManyRequests {
		t.Fatalf("burst of 3 returned %v, want [200 200 429]", codes)
	}
	// At 5 tokens/s a token is back within a second.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := authedReq(t, http.MethodGet, srv.URL+"/v1/jobs", "burst-secret-1", "")
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// burst=0 is documented as unlimited: a positive rate with a zero-capacity
// bucket must not lock the key out.
func TestAuthBurstZeroUnlimited(t *testing.T) {
	kr, err := ParseKeyring(strings.NewReader("nolimit secret-nolimit rate=5 burst=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	k := kr.lookup("secret-nolimit")
	if k == nil {
		t.Fatal("key not found")
	}
	now := time.Now()
	for i := 0; i < 1000; i++ {
		if !k.allow(now) {
			t.Fatalf("request %d rejected with burst=0 (documented unlimited)", i)
		}
	}
}

// The per-key pending-job quota bounds one tenant without touching others.
func TestKeyPendingQuota(t *testing.T) {
	orig := solveSpec
	defer func() { solveSpec = orig }()
	started := make(chan struct{}, 1)
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		if spec.Label == "blocker" {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, spec)
	}
	m := New(Config{Workers: 1})
	defer m.Close()

	// Pin the worker so later submissions stay queued.
	if _, err := m.Submit(JobSpec{Instance: eblow.SmallInstance(eblow.OneD, 20, 2, 1), Solver: "greedy", Label: "blocker"}); err != nil {
		t.Fatal(err)
	}
	<-started

	spec := func(key string, seed int64) JobSpec {
		return JobSpec{
			Instance: eblow.SmallInstance(eblow.OneD, 20, 2, seed), Solver: "greedy",
			Key: key, KeyPending: 1,
		}
	}
	first, err := m.Submit(spec("tenant-a", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec("tenant-a", 3)); !errors.Is(err, ErrKeyQuota) {
		t.Fatalf("over-quota submit: %v, want ErrKeyQuota", err)
	}
	// Another key has its own quota.
	if _, err := m.Submit(spec("tenant-b", 4)); err != nil {
		t.Fatalf("tenant-b blocked by tenant-a's quota: %v", err)
	}
	// Cancelling the queued job frees the quota slot.
	if _, err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec("tenant-a", 5)); err != nil {
		t.Fatalf("quota slot not freed by cancel: %v", err)
	}
}

// The quota surfaces as 429 on the wire, like the global queue bound.
func TestHTTPKeyQuota429(t *testing.T) {
	orig := solveSpec
	defer func() { solveSpec = orig }()
	started := make(chan struct{}, 1)
	solveSpec = func(ctx context.Context, spec JobSpec) (*eblow.Result, error) {
		if spec.Label == "blocker" {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, spec)
	}
	_, srv := newAuthServer(t, "tenant tenant-secret-1 pending=1\n")

	post := func(body string) int {
		resp := authedReq(t, http.MethodPost, srv.URL+"/v1/jobs", "tenant-secret-1", body)
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"benchmark": "1T-1", "solver": "greedy", "label": "blocker"}`); code != http.StatusAccepted {
		t.Fatalf("blocker submit: %d", code)
	}
	<-started
	if code := post(`{"benchmark": "1T-1", "solver": "greedy"}`); code != http.StatusAccepted {
		t.Fatalf("first queued submit: %d", code)
	}
	if code := post(`{"benchmark": "1T-1", "solver": "greedy"}`); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", code)
	}
}
