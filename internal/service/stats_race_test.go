package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eblow"
)

// TestStatsUnderLoad hammers GET /v1/stats while jobs are being submitted,
// batched, popped and finished. Run under -race it is the synchronization
// audit for the BatchStats counters (INVARIANTS.md documents the
// contract): every snapshot must be well-formed and internally consistent
// no matter when it lands relative to the scheduler's own mutations.
func TestStatsUnderLoad(t *testing.T) {
	m := New(Config{Workers: 2, Batch: BatchConfig{Enabled: true, MaxBatch: 4, MaxChars: 400, MaxJump: 8, Workers: 2}})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/v1/stats")
				if err != nil {
					t.Error(err)
					return
				}
				var s Stats
				if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
					t.Errorf("stats decode: %v", err)
				}
				resp.Body.Close()
				if !s.Batch.Enabled {
					t.Error("batch scheduler reads disabled under load")
					return
				}
				// Counters only grow; a torn read would show nonsense like
				// more batched jobs than two per cohort minimum implies.
				if s.Batch.BatchedJobs < 2*s.Batch.Cohorts {
					t.Errorf("inconsistent snapshot: %d batched jobs across %d cohorts", s.Batch.BatchedJobs, s.Batch.Cohorts)
				}
				if s.Jobs.Total < 0 || s.QueueDepth < 0 {
					t.Errorf("negative counters: %+v", s)
				}
			}
		}()
	}

	ids := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		in := eblow.SmallInstance(eblow.OneD, 24+i%4, 2, int64(500+i))
		s, err := m.Submit(JobSpec{Instance: in, Solver: "greedy", Params: eblow.Params{Seed: 1, Workers: 1}, Label: fmt.Sprintf("load-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		if s := waitTerminal(t, m, id, 60*time.Second); s.State != StateDone {
			t.Fatalf("job %s finished %s: %v", id, s.State, s.Err)
		}
	}
	close(stop)
	wg.Wait()
}
