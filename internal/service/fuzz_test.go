package service

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL parser as a pre-existing
// log file. Invariants: OpenWAL never panics no matter how torn the file
// is, every record that survives parsing is well-formed, replay is stable
// across reopen, and a manager booted from the log never enqueues the
// same job twice.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"op\":\"accepted\",\"job\":\"j1\",\"solver\":\"auto\",\"instance\":\"bad\"}\n"))
	f.Add([]byte("{\"op\":\"accepted\",\"job\":\"j1\"}\n{\"op\":\"terminal\",\"job\":\"j1\",\"state\":\"done\",\"digest\":\"d\"}\n"))
	f.Add([]byte("{\"op\":\"accepted\",\"job\":\"j2\"}\n{\"op\":\"accep")) // torn tail
	f.Add([]byte("\x00\xff garbage\n{\"op\":\"\",\"job\":\"\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "jobs.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path, 1<<20)
		if err != nil {
			return // refusing the file is fine; panicking is not
		}
		recs := w.replayRecords()
		for _, rec := range recs {
			if rec.Op == "" || rec.Job == "" {
				t.Fatalf("malformed record survived replay parsing: %+v", rec)
			}
		}
		w2, err := OpenWAL(path, 1<<20)
		if err != nil {
			t.Fatalf("file parsed once but not twice: %v", err)
		}
		if n2 := len(w2.replayRecords()); n2 != len(recs) {
			t.Fatalf("replay is unstable across reopen: %d then %d records", len(recs), n2)
		}
		_ = w2.Close()

		// Boot a manager from the log: every job ID must appear exactly
		// once, and the order walk must cover exactly the job table. The
		// manager takes ownership of w and closes it.
		m := New(Config{Workers: 1, WAL: w})
		m.mu.Lock()
		seen := make(map[string]bool, len(m.order))
		for _, id := range m.order {
			if seen[id] {
				m.mu.Unlock()
				t.Fatalf("job %s enqueued twice by WAL replay", id)
			}
			seen[id] = true
			if m.jobs[id] == nil {
				m.mu.Unlock()
				t.Fatalf("job %s is in the replay order but not in the job table", id)
			}
		}
		bad := len(m.jobs) != len(m.order)
		m.mu.Unlock()
		if bad {
			t.Fatalf("job table and replay order diverge")
		}
		m.Close()
	})
}
