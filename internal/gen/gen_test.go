package gen

import (
	"strings"
	"testing"
	"testing/quick"

	"eblow/internal/core"
)

func TestAllNamedBenchmarksValidate(t *testing.T) {
	for _, name := range AllNames() {
		in, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: invalid instance: %v", name, err)
		}
		if in.Name != name {
			t.Errorf("%s: instance name %q", name, in.Name)
		}
	}
}

func TestFamilyParameters(t *testing.T) {
	cases := []struct {
		name    string
		chars   int
		regions int
		stencil int
		kind    core.Kind
	}{
		{"1D-1", 1000, 1, 1000, core.OneD},
		{"1D-4", 1000, 1, 1000, core.OneD},
		{"1M-1", 1000, 10, 1000, core.OneD},
		{"1M-5", 4000, 10, 2000, core.OneD},
		{"1M-8", 4000, 10, 2000, core.OneD},
		{"2D-2", 1000, 1, 1000, core.TwoD},
		{"2M-3", 1000, 1, 1000, core.TwoD},
		{"2M-7", 4000, 10, 2000, core.TwoD},
		{"1T-1", 8, 1, 200, core.OneD},
		{"1T-5", 14, 1, 200, core.OneD},
		{"2T-1", 6, 1, 110, core.TwoD},
		{"2T-4", 12, 1, 110, core.TwoD},
	}
	for _, c := range cases {
		in, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if in.NumCharacters() != c.chars {
			t.Errorf("%s: %d characters, want %d", c.name, in.NumCharacters(), c.chars)
		}
		if in.NumRegions != c.regions {
			t.Errorf("%s: %d regions, want %d", c.name, in.NumRegions, c.regions)
		}
		if in.StencilWidth != c.stencil {
			t.Errorf("%s: stencil width %d, want %d", c.name, in.StencilWidth, c.stencil)
		}
		if in.Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", c.name, in.Kind, c.kind)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := Family1M(3)
	b := Family1M(3)
	if len(a.Characters) != len(b.Characters) {
		t.Fatal("different character counts")
	}
	for i := range a.Characters {
		ca, cb := a.Characters[i], b.Characters[i]
		if ca.Width != cb.Width || ca.VSBShots != cb.VSBShots || ca.BlankLeft != cb.BlankLeft {
			t.Fatalf("character %d differs between runs", i)
		}
		for r := range ca.Repeats {
			if ca.Repeats[r] != cb.Repeats[r] {
				t.Fatalf("character %d repeats differ", i)
			}
		}
	}
}

func TestFamiliesDiffer(t *testing.T) {
	a := Family1D(1)
	b := Family1D(4)
	// Later cases use wider characters, so the average width must grow.
	avg := func(in *core.Instance) float64 {
		s := 0
		for _, c := range in.Characters {
			s += c.Width
		}
		return float64(s) / float64(len(in.Characters))
	}
	if avg(b) <= avg(a) {
		t.Errorf("1D-4 avg width %.1f should exceed 1D-1 avg width %.1f", avg(b), avg(a))
	}
}

func TestMCCRegionImbalance(t *testing.T) {
	in := Family1M(1)
	vsb := in.VSBTime()
	var minT, maxT int64 = vsb[0], vsb[0]
	for _, v := range vsb {
		if v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if minT <= 0 {
		t.Fatalf("region with non-positive VSB time: %v", vsb)
	}
	if float64(maxT)/float64(minT) < 1.05 {
		t.Errorf("regions too balanced (max/min = %.3f); MCC benchmarks need imbalance", float64(maxT)/float64(minT))
	}
}

func TestByNameErrors(t *testing.T) {
	bad := []string{"", "1D", "1D-0", "1D-9", "3D-1", "1M-99", "2T-9", "xx-yy", "1T-abc"}
	for _, name := range bad {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) should fail", name)
		}
	}
}

func TestSmallInstances(t *testing.T) {
	for _, kind := range []core.Kind{core.OneD, core.TwoD} {
		in := Small(kind, 60, 4, 99)
		if err := in.Validate(); err != nil {
			t.Errorf("Small(%v): %v", kind, err)
		}
		if in.NumCharacters() != 60 || in.NumRegions != 4 {
			t.Errorf("Small(%v): unexpected shape", kind)
		}
		if !strings.HasPrefix(in.Name, "small-") {
			t.Errorf("Small(%v): name %q", kind, in.Name)
		}
	}
}

// Property: generated characters always respect the parameter ranges and
// have valid geometry (blanks fit in the bounding box).
func TestGeneratedRangesProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := Generate(Params{
			Name: "prop", Kind: core.TwoD,
			NumChars: 40, NumRegions: 3,
			StencilW: 500, StencilH: 500,
			MinWidth: 20, MaxWidth: 50,
			MinHeight: 20, MaxHeight: 50,
			MinBlank: 1, MaxBlank: 9,
			MinShots: 2, MaxShots: 15,
			MaxRepeat: 20, RegionSkew: 0.5,
			Seed: seed,
		})
		if err := in.Validate(); err != nil {
			return false
		}
		for _, c := range in.Characters {
			if c.Width < 20 || c.Width > 50 || c.Height < 20 || c.Height > 50 {
				return false
			}
			if c.VSBShots < 2 || c.VSBShots > 15 {
				return false
			}
			if c.PatternWidth() <= 0 || c.PatternHeight() <= 0 {
				return false
			}
			for _, r := range c.Repeats {
				if r < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
