// Package gen generates synthetic OSP benchmark instances. The published
// E-BLOW benchmark suite (1D-x, 2D-x from the prior work plus the MCC
// families 1M-x and 2M-x) is not publicly available, so this package
// reproduces its published parameters: candidate counts of 1000 and 4000,
// stencil outlines of 1000x1000 um and 2000x2000 um, character projection
// (region) counts of 1 and 10, character dimensions around 40 um with blank
// margins of a few micrometres, and skewed per-region repeat counts.
// Instances are generated deterministically from their name, so every run of
// the benchmark harness sees the same workload.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"eblow/internal/core"
)

// Params controls instance generation.
type Params struct {
	Name       string
	Kind       core.Kind
	NumChars   int
	NumRegions int

	StencilW, StencilH int
	RowHeight          int // 1D only; ignored for 2D

	// Character bounding-box widths are drawn uniformly from
	// [MinWidth, MaxWidth]; heights likewise for 2D instances.
	MinWidth, MaxWidth   int
	MinHeight, MaxHeight int

	// Blank margins are drawn uniformly from [MinBlank, MaxBlank] per side.
	MinBlank, MaxBlank int

	// VSB shot counts are drawn uniformly from [MinShots, MaxShots] when
	// ShotAreaUnit is zero. When ShotAreaUnit is positive, the shot count of
	// a character is proportional to its pattern area (one shot per
	// ShotAreaUnit square units, +-30% noise, clamped to [MinShots,
	// MaxShots]): complex characters are both larger and more expensive to
	// write with VSB, which is the physically realistic coupling.
	MinShots, MaxShots int
	ShotAreaUnit       int

	// MaxRepeat bounds the per-region repeat count. Repeat counts follow a
	// skewed distribution: a small set of characters repeats often, the
	// long tail rarely, mirroring cell usage statistics in real designs.
	MaxRepeat int

	// RegionSkew in [0,1] controls how unevenly a character's repeats are
	// distributed over regions; 0 spreads them evenly, 1 concentrates them
	// in a few regions (creating the load imbalance MCC planning must fix).
	RegionSkew float64

	// ColumnCellBands attaches per-column-cell stencil bands to a 1DOSP
	// instance (see CellBands): one row band per wafer region, rows dealt
	// round-robin. The 1D planner then runs in banded mode end to end —
	// candidacy restricted to each region's band and the LP relaxation
	// decomposed into independent blocks. Ignored for 2DOSP instances and
	// when the instance has fewer rows than regions.
	ColumnCellBands bool

	Seed int64
}

// Generate builds an instance from the parameters.
func Generate(p Params) *core.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := &core.Instance{
		Name:          p.Name,
		Kind:          p.Kind,
		StencilWidth:  p.StencilW,
		StencilHeight: p.StencilH,
		NumRegions:    p.NumRegions,
		RowHeight:     p.RowHeight,
	}
	for i := 0; i < p.NumChars; i++ {
		var c core.Character
		c.ID = i
		c.Name = fmt.Sprintf("%s-c%d", p.Name, i)
		c.Width = randBetween(rng, p.MinWidth, p.MaxWidth)
		if p.Kind == core.OneD {
			c.Height = p.RowHeight
		} else {
			c.Height = randBetween(rng, p.MinHeight, p.MaxHeight)
		}

		// Blank margins are drawn per character and are nearly symmetric
		// (left and right differ by at most 2 um): stencil characters reserve
		// the same clearance on both sides of the pattern, with only small
		// asymmetries from the enclosed geometry. This also matches the
		// regime in which the paper's symmetric-blank simplification is a
		// good approximation.
		maxHB := min(p.MaxBlank, (c.Width-1)/2)
		minHB := min(p.MinBlank, maxHB)
		hb := randBetween(rng, minHB, maxHB)
		c.BlankLeft = hb
		c.BlankRight = clampBlank(hb+rng.Intn(5)-2, minHB, maxHB)
		if p.Kind == core.TwoD {
			maxVB := min(p.MaxBlank, (c.Height-1)/2)
			minVB := min(p.MinBlank, maxVB)
			vb := randBetween(rng, minVB, maxVB)
			c.BlankBottom = vb
			c.BlankTop = clampBlank(vb+rng.Intn(5)-2, minVB, maxVB)
		}

		if p.ShotAreaUnit > 0 {
			area := c.PatternWidth() * c.PatternHeight()
			noise := 0.7 + 0.6*rng.Float64()
			shots := int(float64(area) / float64(p.ShotAreaUnit) * noise)
			if shots < p.MinShots {
				shots = p.MinShots
			}
			if p.MaxShots > 0 && shots > p.MaxShots {
				shots = p.MaxShots
			}
			c.VSBShots = shots
		} else {
			c.VSBShots = randBetween(rng, p.MinShots, p.MaxShots)
		}
		c.Repeats = repeats(rng, p)
		in.Characters = append(in.Characters, c)
	}
	if p.ColumnCellBands {
		in.RowGroups = CellBands(in)
	}
	return in
}

// CellBands derives the per-column-cell stencil banding of a 1DOSP
// instance: one row band per wafer region, stencil rows dealt round-robin,
// the layout under which each column cell of an MCC system owns its own
// band and the 1D relaxation becomes block-diagonal. It returns nil when
// banding is impossible — a 2DOSP instance, fewer than two regions, fewer
// rows than regions, or more regions than core.MaxRowGroups allows.
func CellBands(in *core.Instance) []core.RowGroup {
	m, regions := in.NumRows(), in.NumRegions
	if in.Kind != core.OneD || regions < 2 || m < regions || regions > core.MaxRowGroups {
		return nil
	}
	groups := make([]core.RowGroup, regions)
	for g := range groups {
		groups[g].Regions = []int{g}
	}
	for j := 0; j < m; j++ {
		g := j % regions
		groups[g].Rows = append(groups[g].Rows, j)
	}
	return groups
}

func randBetween(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func clampBlank(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// repeats draws a skewed total repeat count and distributes it over regions.
func repeats(rng *rand.Rand, p Params) []int64 {
	out := make([]int64, p.NumRegions)
	// Skewed total: squaring a uniform variable biases towards small counts
	// while keeping a heavy-usage head, similar to standard-cell usage.
	u := rng.Float64()
	total := int64(float64(p.MaxRepeat) * u * u * float64(p.NumRegions))
	if total <= 0 {
		total = int64(rng.Intn(3)) // a few characters barely repeat at all
	}
	if p.NumRegions == 1 {
		out[0] = total
		return out
	}
	// With a high RegionSkew a character appears in only a few regions (its
	// cell is used by a few dies), which is what makes per-region balancing
	// matter in MCC planning; with zero skew the repeats spread evenly over
	// all regions.
	active := p.NumRegions
	if p.RegionSkew > 0 {
		maxActive := int(float64(p.NumRegions)*(1-p.RegionSkew)) + 1
		if maxActive < 1 {
			maxActive = 1
		}
		if maxActive > p.NumRegions {
			maxActive = p.NumRegions
		}
		active = 1 + rng.Intn(maxActive+1)
		if active > p.NumRegions {
			active = p.NumRegions
		}
	}
	regions := rng.Perm(p.NumRegions)[:active]
	weights := make([]float64, active)
	sum := 0.0
	for r := range weights {
		w := 0.2 + rng.ExpFloat64()
		weights[r] = w
		sum += w
	}
	var assigned int64
	for k, r := range regions {
		out[r] = int64(float64(total) * weights[k] / sum)
		assigned += out[r]
	}
	// Give the remainder to one of the active regions.
	out[regions[rng.Intn(active)]] += total - assigned
	return out
}

// family index tables. The case index (1-based) controls how much stencil
// pressure the instance has: later cases use wider characters, so fewer of
// them fit, matching the trend of the published tables where 1D-1 places
// ~940 of 1000 characters and 1D-4 only ~700.

func widthRange(index int) (int, int) {
	base := 24 + 3*index // index 1 -> [28,44], index 4 -> [37,53]
	return base + 1, base + 17
}

// Family1D returns benchmark 1D-i (i in 1..4): 1000 candidates, single CP,
// 1000x1000 stencil, row height 40.
func Family1D(i int) *core.Instance {
	lo, hi := widthRange(i)
	return Generate(Params{
		Name: fmt.Sprintf("1D-%d", i), Kind: core.OneD,
		NumChars: 1000, NumRegions: 1,
		StencilW: 1000, StencilH: 1000, RowHeight: 40,
		MinWidth: lo, MaxWidth: hi,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
		MaxRepeat: 60, RegionSkew: 0,
		Seed: int64(1000 + i),
	})
}

// Family1M returns MCC benchmark 1M-i (i in 1..8): 10 CPs; cases 1-4 have
// 1000 candidates on a 1000x1000 stencil, cases 5-8 have 4000 candidates on
// a 2000x2000 stencil.
func Family1M(i int) *core.Instance {
	small := i <= 4
	idx := i
	if !small {
		idx = i - 4
	}
	lo, hi := widthRange(idx)
	p := Params{
		Name: fmt.Sprintf("1M-%d", i), Kind: core.OneD,
		NumRegions: 10,
		MinWidth:   lo, MaxWidth: hi,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
		MaxRepeat: 25, RegionSkew: 0.85,
		Seed: int64(2000 + i),
	}
	if small {
		p.NumChars, p.StencilW, p.StencilH, p.RowHeight = 1000, 1000, 1000, 40
	} else {
		p.NumChars, p.StencilW, p.StencilH, p.RowHeight = 4000, 2000, 2000, 40
	}
	return Generate(p)
}

// Family2D returns benchmark 2D-i (i in 1..4): 1000 candidates, single CP,
// 1000x1000 stencil, non-uniform blanks in both directions.
func Family2D(i int) *core.Instance {
	lo, hi := widthRange(i)
	return Generate(Params{
		Name: fmt.Sprintf("2D-%d", i), Kind: core.TwoD,
		NumChars: 1000, NumRegions: 1,
		StencilW: 1000, StencilH: 1000,
		MinWidth: lo, MaxWidth: hi,
		MinHeight: lo, MaxHeight: hi,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
		MaxRepeat: 60, RegionSkew: 0,
		Seed: int64(3000 + i),
	})
}

// Family2M returns MCC benchmark 2M-i (i in 1..8). Following Table 4 of the
// paper, cases 1-4 have 1000 candidates and a single CP on a 1000x1000
// stencil while cases 5-8 have 4000 candidates, 10 CPs and a 2000x2000
// stencil.
func Family2M(i int) *core.Instance {
	small := i <= 4
	idx := i
	if !small {
		idx = i - 4
	}
	lo, hi := widthRange(idx)
	p := Params{
		Name: fmt.Sprintf("2M-%d", i), Kind: core.TwoD,
		MinWidth: lo, MaxWidth: hi,
		MinHeight: lo, MaxHeight: hi,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
		MaxRepeat: 25, RegionSkew: 0.85,
		Seed: int64(4000 + i),
	}
	if small {
		p.NumChars, p.NumRegions, p.StencilW, p.StencilH = 1000, 1, 1000, 1000
	} else {
		p.NumChars, p.NumRegions, p.StencilW, p.StencilH = 4000, 10, 2000, 2000
	}
	return Generate(p)
}

// tiny1TSizes holds the candidate counts of the 1T-x family (Table 5).
var tiny1TSizes = []int{8, 10, 11, 12, 14}

// tiny2TSizes holds the candidate counts of the 2T-x family (Table 5).
var tiny2TSizes = []int{6, 8, 10, 12}

// Tiny1T returns benchmark 1T-i (i in 1..5): a single-row instance with
// 40x40 um characters and row length 200 um, as used for the exact-ILP
// comparison of Table 5.
func Tiny1T(i int) *core.Instance {
	n := tiny1TSizes[i-1]
	return Generate(Params{
		Name: fmt.Sprintf("1T-%d", i), Kind: core.OneD,
		NumChars: n, NumRegions: 1,
		StencilW: 200, StencilH: 40, RowHeight: 40,
		MinWidth: 40, MaxWidth: 40,
		MinBlank: 3, MaxBlank: 15,
		MinShots: 2, MaxShots: 40, ShotAreaUnit: 45,
		MaxRepeat: 10, RegionSkew: 0,
		Seed: int64(5000 + i),
	})
}

// Tiny2T returns benchmark 2T-i (i in 1..4): tiny 2D instances with 40x40 um
// characters for the exact-ILP comparison of Table 5.
func Tiny2T(i int) *core.Instance {
	n := tiny2TSizes[i-1]
	return Generate(Params{
		Name: fmt.Sprintf("2T-%d", i), Kind: core.TwoD,
		NumChars: n, NumRegions: 1,
		StencilW: 110, StencilH: 110,
		MinWidth: 40, MaxWidth: 40,
		MinHeight: 40, MaxHeight: 40,
		MinBlank: 3, MaxBlank: 15,
		MinShots: 2, MaxShots: 40, ShotAreaUnit: 45,
		MaxRepeat: 10, RegionSkew: 0,
		Seed: int64(6000 + i),
	})
}

// Small returns a reduced-size variant of the named family, used by
// integration tests and the quickstart example so they finish quickly while
// exercising exactly the same code paths as the full benchmarks.
func Small(kind core.Kind, numChars, numRegions int, seed int64) *core.Instance {
	p := Params{
		Name: fmt.Sprintf("small-%s-%d", kind, numChars), Kind: kind,
		NumChars: numChars, NumRegions: numRegions,
		StencilW: 400, StencilH: 400, RowHeight: 40,
		MinWidth: 30, MaxWidth: 60,
		MinHeight: 30, MaxHeight: 60,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
		MaxRepeat: 30, RegionSkew: 0.6,
		Seed: seed,
	}
	if kind == core.TwoD {
		p.RowHeight = 0
	}
	return Generate(p)
}

// SmallFamily returns a reduced-size instance with the structure of the
// named benchmark family ("1D", "1M", "2D", "2M", "1T", "2T"): same kind,
// region count and skew as the family, but few enough characters that a
// full E-BLOW solve finishes in well under a second. The instances are
// deterministic, which makes them suitable as golden-regression anchors.
func SmallFamily(family string) (*core.Instance, error) {
	base := Params{
		StencilW: 400, StencilH: 400,
		MinWidth: 28, MaxWidth: 45,
		MinHeight: 28, MaxHeight: 45,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60, ShotAreaUnit: 45,
	}
	switch strings.ToUpper(family) {
	case "1D":
		base.Name, base.Kind = "small-1D", core.OneD
		base.NumChars, base.NumRegions, base.RowHeight = 120, 1, 40
		base.MaxRepeat, base.RegionSkew, base.Seed = 60, 0, 71001
	case "1M":
		base.Name, base.Kind = "small-1M", core.OneD
		base.NumChars, base.NumRegions, base.RowHeight = 120, 10, 40
		base.MaxRepeat, base.RegionSkew, base.Seed = 25, 0.85, 72001
	case "2D":
		base.Name, base.Kind = "small-2D", core.TwoD
		base.NumChars, base.NumRegions = 120, 1
		base.MaxRepeat, base.RegionSkew, base.Seed = 60, 0, 73001
	case "2M":
		base.Name, base.Kind = "small-2M", core.TwoD
		base.NumChars, base.NumRegions = 120, 10
		base.MaxRepeat, base.RegionSkew, base.Seed = 25, 0.85, 74001
	case "1T":
		return Tiny1T(1), nil
	case "2T":
		return Tiny2T(1), nil
	default:
		return nil, fmt.Errorf("gen: unknown benchmark family %q", family)
	}
	return Generate(base), nil
}

// ByName returns the named benchmark instance ("1D-3", "1M-7", "2D-1",
// "2M-5", "1T-2", "2T-4", ...).
func ByName(name string) (*core.Instance, error) {
	parts := strings.SplitN(name, "-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("gen: malformed benchmark name %q", name)
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil || idx < 1 {
		return nil, fmt.Errorf("gen: malformed benchmark index in %q", name)
	}
	switch strings.ToUpper(parts[0]) {
	case "1D":
		if idx > 4 {
			return nil, fmt.Errorf("gen: 1D family has cases 1..4, got %d", idx)
		}
		return Family1D(idx), nil
	case "1M":
		if idx > 8 {
			return nil, fmt.Errorf("gen: 1M family has cases 1..8, got %d", idx)
		}
		return Family1M(idx), nil
	case "2D":
		if idx > 4 {
			return nil, fmt.Errorf("gen: 2D family has cases 1..4, got %d", idx)
		}
		return Family2D(idx), nil
	case "2M":
		if idx > 8 {
			return nil, fmt.Errorf("gen: 2M family has cases 1..8, got %d", idx)
		}
		return Family2M(idx), nil
	case "1T":
		if idx > len(tiny1TSizes) {
			return nil, fmt.Errorf("gen: 1T family has cases 1..%d, got %d", len(tiny1TSizes), idx)
		}
		return Tiny1T(idx), nil
	case "2T":
		if idx > len(tiny2TSizes) {
			return nil, fmt.Errorf("gen: 2T family has cases 1..%d, got %d", len(tiny2TSizes), idx)
		}
		return Tiny2T(idx), nil
	default:
		return nil, fmt.Errorf("gen: unknown benchmark family %q", parts[0])
	}
}

// AllNames lists every named benchmark in the order the paper reports them.
func AllNames() []string {
	var names []string
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("1D-%d", i))
	}
	for i := 1; i <= 8; i++ {
		names = append(names, fmt.Sprintf("1M-%d", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("2D-%d", i))
	}
	for i := 1; i <= 8; i++ {
		names = append(names, fmt.Sprintf("2M-%d", i))
	}
	for i := 1; i <= len(tiny1TSizes); i++ {
		names = append(names, fmt.Sprintf("1T-%d", i))
	}
	for i := 1; i <= len(tiny2TSizes); i++ {
		names = append(names, fmt.Sprintf("2T-%d", i))
	}
	return names
}
