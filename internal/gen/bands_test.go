package gen

import (
	"reflect"
	"testing"

	"eblow/internal/core"
)

func TestCellBandsStructure(t *testing.T) {
	in := Small(core.OneD, 60, 4, 3)
	bands := CellBands(in)
	if len(bands) != in.NumRegions {
		t.Fatalf("got %d bands for %d regions", len(bands), in.NumRegions)
	}
	seen := make(map[int]bool)
	rows := 0
	for g, b := range bands {
		if !reflect.DeepEqual(b.Regions, []int{g}) {
			t.Errorf("band %d regions = %v, want [%d]", g, b.Regions, g)
		}
		for _, j := range b.Rows {
			if j < 0 || j >= in.NumRows() || seen[j] {
				t.Fatalf("band %d row %d out of range or duplicated", g, j)
			}
			seen[j] = true
			rows++
		}
	}
	if rows != in.NumRows() {
		t.Fatalf("bands cover %d of %d rows", rows, in.NumRows())
	}
}

func TestCellBandsDegenerateCases(t *testing.T) {
	if b := CellBands(Small(core.TwoD, 40, 4, 1)); b != nil {
		t.Errorf("2D instance banded: %v", b)
	}
	if b := CellBands(Small(core.OneD, 40, 1, 1)); b != nil {
		t.Errorf("single-region instance banded: %v", b)
	}
}

func TestColumnCellBandsParamAttachesValidBanding(t *testing.T) {
	p := Params{
		Name: "banded", Kind: core.OneD,
		NumChars: 50, NumRegions: 4,
		StencilW: 400, StencilH: 400, RowHeight: 40,
		MinWidth: 30, MaxWidth: 60,
		MinBlank: 4, MaxBlank: 14,
		MinShots: 2, MaxShots: 60,
		MaxRepeat: 20, RegionSkew: 0.5,
		Seed: 9, ColumnCellBands: true,
	}
	in := Generate(p)
	if len(in.RowGroups) != 4 {
		t.Fatalf("instance carries %d bands, want 4", len(in.RowGroups))
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("banded instance fails validation: %v", err)
	}
	// Same params without banding: identical characters, no bands.
	p.ColumnCellBands = false
	plain := Generate(p)
	if len(plain.RowGroups) != 0 {
		t.Fatalf("plain instance carries bands")
	}
	if !reflect.DeepEqual(in.Characters, plain.Characters) {
		t.Fatal("banding changed the generated characters")
	}
}
