package oned

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"eblow/internal/core"
	"eblow/internal/gen"
)

func solveInstance(t *testing.T, in *core.Instance, opt Options) (*core.Solution, *Trace) {
	t.Helper()
	sol, trace, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("Solve(%s): %v", in.Name, err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("Solve(%s) produced invalid solution: %v", in.Name, err)
	}
	return sol, trace
}

func TestSolveSmallInstance(t *testing.T) {
	in := gen.Small(core.OneD, 80, 4, 11)
	sol, _ := solveInstance(t, in, Defaults())

	if sol.NumSelected() == 0 {
		t.Fatal("expected some characters on the stencil")
	}
	vsb := core.MaxInt64(in.VSBTime())
	if sol.WritingTime >= vsb {
		t.Errorf("writing time %d should beat the pure-VSB time %d", sol.WritingTime, vsb)
	}
	if sol.WritingTime != in.WritingTime(sol.Selected) {
		t.Error("cached writing time inconsistent with selection")
	}
	if sol.Algorithm != "E-BLOW-1" {
		t.Errorf("algorithm label %q", sol.Algorithm)
	}
}

func TestSolveSingleCP(t *testing.T) {
	in := gen.Small(core.OneD, 60, 1, 7)
	sol, _ := solveInstance(t, in, Defaults())
	if sol.NumSelected() == 0 {
		t.Fatal("no characters selected")
	}
}

func TestSolveRejectsBadInstances(t *testing.T) {
	if _, _, err := Solve(context.Background(), &core.Instance{}, Defaults()); err == nil {
		t.Error("empty instance should be rejected")
	}
	in := gen.Small(core.TwoD, 20, 1, 3)
	if _, _, err := Solve(context.Background(), in, Defaults()); err == nil {
		t.Error("2D instance should be rejected by the 1D planner")
	}
	// Stencil too short for even one row.
	bad := gen.Small(core.OneD, 10, 1, 3)
	bad.StencilHeight = 10
	if _, _, err := Solve(context.Background(), bad, Defaults()); err == nil {
		t.Error("instance without rows should be rejected")
	}
}

func TestEBlow0VersusEBlow1Labels(t *testing.T) {
	in := gen.Small(core.OneD, 60, 4, 21)
	opt0 := Defaults()
	opt0.EnableFastConvergence = false
	opt0.EnablePostInsertion = false
	sol0, _ := solveInstance(t, in, opt0)
	if sol0.Algorithm != "E-BLOW-0" {
		t.Errorf("ablation label %q, want E-BLOW-0", sol0.Algorithm)
	}
	sol1, _ := solveInstance(t, in, Defaults())
	if sol1.Algorithm != "E-BLOW-1" {
		t.Errorf("label %q, want E-BLOW-1", sol1.Algorithm)
	}
	// Both must be valid; E-BLOW-1 should never be dramatically worse.
	if float64(sol1.WritingTime) > 1.2*float64(sol0.WritingTime) {
		t.Errorf("E-BLOW-1 (%d) much worse than E-BLOW-0 (%d)", sol1.WritingTime, sol0.WritingTime)
	}
}

func TestTraceCollection(t *testing.T) {
	in := gen.Small(core.OneD, 100, 4, 31)
	opt := Defaults()
	opt.CollectTrace = true
	_, trace := solveInstance(t, in, opt)
	if len(trace.UnsolvedPerIteration) == 0 {
		t.Fatal("no iterations recorded")
	}
	for k := 1; k < len(trace.UnsolvedPerIteration); k++ {
		if trace.UnsolvedPerIteration[k] > trace.UnsolvedPerIteration[k-1] {
			t.Errorf("unsolved count increased at iteration %d: %v", k, trace.UnsolvedPerIteration)
		}
	}
}

func TestSimplexBackendAgreesOnTinyInstance(t *testing.T) {
	in := gen.Tiny1T(1)
	optS := Defaults()
	optS.Backend = SimplexLP
	solS, _ := solveInstance(t, in, optS)
	solK, _ := solveInstance(t, in, Defaults())
	// Both backends must produce valid solutions of similar quality on a
	// tiny instance (identical results are not required: rounding order may
	// differ).
	if solS.NumSelected() == 0 || solK.NumSelected() == 0 {
		t.Error("backends selected nothing")
	}
	diff := float64(solS.WritingTime) - float64(solK.WritingTime)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.5*float64(solK.WritingTime) {
		t.Errorf("backends disagree too much: simplex %d vs structured %d", solS.WritingTime, solK.WritingTime)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	d := o.withDefaults()
	if d.Thinv != 0.9 || d.Lth != 0.1 || d.Uth != 0.9 || d.PruneThreshold != 20 {
		t.Errorf("paper defaults not applied: %+v", d)
	}
	if LPBackend(0).String() != "structured" || SimplexLP.String() != "simplex" {
		t.Error("backend names")
	}
	custom := Options{Thinv: 0.5}
	c := custom.withDefaults()
	if c.Thinv != 0.5 {
		t.Error("explicit Thinv overridden")
	}
}

func TestBestInsertion(t *testing.T) {
	in := rowInstance([][3]int{{40, 5, 5}, {40, 10, 10}, {30, 2, 2}}, 1000)
	s := &solver{in: in, n: 3, m: 1, w: 1000}
	s.width = []int{40, 40, 30}
	// Inserting char 2 (blanks 2/2) next to char 1 (blanks 10/10) shares
	// only 2 on that side; every gap of the row [0, 1] is evaluated.
	gap, delta := s.bestInsertion(2, []int{0, 1})
	if gap < 0 || gap > 2 {
		t.Fatalf("gap = %d", gap)
	}
	// Left end: 30 - min(2, 5) = 28; middle: 30 - min(5,2) - min(2,10) + min(5,10) = 31; right end: 30 - min(10,2) = 28.
	if delta != 28 {
		t.Errorf("delta = %d, want 28", delta)
	}
	gap, delta = s.bestInsertion(2, nil)
	if gap != 0 || delta != 30 {
		t.Errorf("empty row insertion = (%d,%d), want (0,30)", gap, delta)
	}
}

// Property: on random instances the planner always returns a valid solution
// whose writing time is no worse than leaving the stencil empty, and every
// row respects the stencil width.
func TestSolveAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(seed%40+40)%40
		in := gen.Small(core.OneD, n, 1+int(seed%5+5)%5, seed)
		sol, _, err := Solve(context.Background(), in, Defaults())
		if err != nil {
			return false
		}
		if err := sol.Validate(in); err != nil {
			return false
		}
		empty := in.WritingTime(make([]bool, in.NumCharacters()))
		if sol.WritingTime > empty {
			return false
		}
		for _, row := range sol.Rows {
			if row.Width(in) > in.StencilWidth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: adding the post stages never invalidates the solution and never
// reduces the number of selected characters.
func TestPostStagesMonotoneSelection(t *testing.T) {
	f := func(seed int64) bool {
		in := gen.Small(core.OneD, 60, 3, seed)
		base := Defaults()
		base.EnablePostInsertion = false
		base.EnablePostSwap = false
		solBase, _, err := Solve(context.Background(), in, base)
		if err != nil || solBase.Validate(in) != nil {
			return false
		}
		full, _, err := Solve(context.Background(), in, Defaults())
		if err != nil || full.Validate(in) != nil {
			return false
		}
		return full.NumSelected() >= solBase.NumSelected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}
