package oned

import (
	"strconv"
	"testing"
)

// BenchmarkRelaxationDecomposed measures the block-decomposed LP relaxation
// (simplex backend, one MCC column-cell band per region) against the
// monolithic restricted LP, and its multi-worker scaling. One iteration is
// one full relaxation solve of the kind every successive-rounding iteration
// pays; wall-clock per op is the number to watch.
func BenchmarkRelaxationDecomposed(b *testing.B) {
	in, groups := groupedInstance(800, 10, 2, 0, 3)
	run := func(b *testing.B, workers int, monolithic bool) {
		s, unsolved, caps := relaxSolver(b, in, groups, SimplexLP, workers, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if monolithic {
				_, err = s.solveRelaxationMonolithic(unsolved, caps)
			} else {
				_, err = s.solveRelaxation(unsolved, caps)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("monolithic", func(b *testing.B) { run(b, 1, true) })
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("blocks-w"+strconv.Itoa(w), func(b *testing.B) { run(b, w, false) })
	}
}

// BenchmarkRelaxationMCC is the 4000-character MCC-scale variant (10
// column-cell bands of 5 rows). The monolithic dense LP does not fit at this
// scale — the decomposition is what makes the simplex backend feasible at
// all — so only the decomposed solve is measured. Skipped in -short runs.
func BenchmarkRelaxationMCC(b *testing.B) {
	if testing.Short() {
		b.Skip("MCC-scale relaxation benchmark skipped in -short mode")
	}
	in, groups := groupedInstance(4000, 10, 5, 0, 17)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("blocks-w"+strconv.Itoa(w), func(b *testing.B) {
			s, unsolved, caps := relaxSolver(b, in, groups, SimplexLP, w, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.solveRelaxation(unsolved, caps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelaxationStructured measures the default structured backend on
// the same grouped instance, at MCC scale: the block split also applies
// there (per-band pooled capacities) and must stay cheap.
func BenchmarkRelaxationStructured(b *testing.B) {
	in, groups := groupedInstance(4000, 10, 5, 0, 5)
	for _, w := range []int{1, 4} {
		b.Run("blocks-w"+strconv.Itoa(w), func(b *testing.B) {
			s, unsolved, caps := relaxSolver(b, in, groups, StructuredLP, w, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.solveRelaxation(unsolved, caps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
