package oned

import (
	"fmt"

	"eblow/internal/knapsack"
	"eblow/internal/lp"
	"eblow/internal/par"
)

// This file implements the block decomposition of the LP relaxation of
// formulation (4)/(5). When Options.RowGroups pins stencil row bands to
// wafer regions (the per-column-cell stencils of an MCC system), the
// capacity matrix of the relaxation is block-diagonal across disjoint row
// groups. The planner detects the independent blocks with a union-find over
// the character-row candidacy graph, solves every block as its own
// sub-problem on the shared worker pool, and merges the fractional
// assignment matrices in block index order, so the result is identical for
// every worker count.
//
// The two backends treat candidacy inside a block differently. The simplex
// backend creates variables only for allowed character-row pairs, so its
// decomposed solve is identical to solving the whole restricted relaxation
// as one monolithic LP. The structured backend generalises its existing
// aggregate-capacity approximation to blocks: within a block it pools the
// block rows' capacities and ignores which of them a bridging character may
// actually use (exactly as it pools the whole stencil when there are no row
// groups), trading that precision for O(n log n) speed; integral
// assignments are still candidacy-checked by fits(). Use SimplexLP when
// exact banding of bridge characters matters.
//
// Without row groups every character is a candidate for every row: the
// detection returns a single block holding the whole problem and the solve
// reduces to exactly the monolithic path (same variable order, same
// constraint order, bit-for-bit the same result as before the
// decomposition existed).

// initRowGroups validates Options.RowGroups against the instance and builds
// the candidacy tables: rowGroup[j] is the group owning row j (-1 = open
// row, usable by everyone) and charGroups[i] is the bitmask of groups whose
// regions character i repeats in. Groups with an empty region list are open:
// their rows stay at -1.
func (s *solver) initRowGroups() error {
	groups := s.opt.RowGroups
	if len(groups) == 0 {
		return nil
	}
	if len(groups) > maxRowGroups {
		return fmt.Errorf("oned: %d row groups exceed the maximum of %d", len(groups), maxRowGroups)
	}
	s.rowGroup = make([]int, s.m)
	for j := range s.rowGroup {
		s.rowGroup[j] = -1
	}
	for g, grp := range groups {
		for _, r := range grp.Regions {
			if r < 0 || r >= s.in.NumRegions {
				return fmt.Errorf("oned: row group %d references region %d of %d", g, r, s.in.NumRegions)
			}
		}
		if len(grp.Regions) == 0 {
			continue // open rows
		}
		for _, j := range grp.Rows {
			if j < 0 || j >= s.m {
				return fmt.Errorf("oned: row group %d references row %d of %d", g, j, s.m)
			}
			if s.rowGroup[j] >= 0 {
				return fmt.Errorf("oned: row %d belongs to row groups %d and %d", j, s.rowGroup[j], g)
			}
			s.rowGroup[j] = g
		}
	}
	s.charGroups = make([]uint64, s.n)
	for i, c := range s.in.Characters {
		var mask uint64
		for g, grp := range groups {
			if len(grp.Regions) == 0 {
				continue
			}
			for _, r := range grp.Regions {
				if c.Repeats[r] > 0 {
					mask |= 1 << uint(g)
					break
				}
			}
		}
		s.charGroups[i] = mask
	}
	return nil
}

// allowed reports whether character i may be assigned to row j under the
// row-group candidacy. Without row groups every pair is allowed.
func (s *solver) allowed(i, j int) bool {
	if s.rowGroup == nil {
		return true
	}
	g := s.rowGroup[j]
	return g < 0 || s.charGroups[i]&(1<<uint(g)) != 0
}

// relaxBlock is one independent sub-problem of the restricted relaxation:
// characters (as indices into the iteration's unsolved slice) plus the rows
// they are candidates for, both in ascending order.
type relaxBlock struct {
	chars []int
	rows  []int
}

// relaxBlocks partitions the relaxation over the unsolved characters into
// independent blocks with a union-find over the character-row candidacy
// graph. Blocks are ordered by their smallest row index, so the merge order
// is deterministic. Characters with no candidate row belong to no block
// (their relaxation row stays zero); rows no unsolved character may use form
// row-only components and are dropped the same way.
func (s *solver) relaxBlocks(unsolved []int) []relaxBlock {
	nu := len(unsolved)
	if s.rowGroup == nil {
		b := relaxBlock{chars: make([]int, nu), rows: make([]int, s.m)}
		for k := range b.chars {
			b.chars[k] = k
		}
		for j := range b.rows {
			b.rows[j] = j
		}
		return []relaxBlock{b}
	}

	parent := make([]int, nu+s.m)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for k, i := range unsolved {
		for j := 0; j < s.m; j++ {
			if s.allowed(i, j) {
				parent[find(k)] = find(nu + j)
			}
		}
	}

	index := make(map[int]int)
	var blocks []relaxBlock
	for j := 0; j < s.m; j++ {
		root := find(nu + j)
		bi, ok := index[root]
		if !ok {
			bi = len(blocks)
			index[root] = bi
			blocks = append(blocks, relaxBlock{})
		}
		blocks[bi].rows = append(blocks[bi].rows, j)
	}
	for k := range unsolved {
		// A character with at least one candidate row shares its root with a
		// row component; one with none is its own root and stays blockless.
		if bi, ok := index[find(k)]; ok {
			blocks[bi].chars = append(blocks[bi].chars, k)
		}
	}
	// Drop row-only components: nothing to solve there.
	kept := blocks[:0]
	for _, b := range blocks {
		if len(b.chars) > 0 {
			kept = append(kept, b)
		}
	}
	return kept
}

// varKey identifies one relaxation variable across rounding iterations by
// the identities that survive re-building: the character id and the row.
type varKey struct{ char, row int }

// relaxWarm remembers the optimal bases of the previous rounding
// iteration's relaxation, keyed by variable and constraint identity rather
// than by index, so the next iteration can warm-start its re-solves even
// though the variable list shrinks as characters get solved and blocks
// merge or split. It is frozen once built: blocks of the next iteration
// read it concurrently, lookups only.
type relaxWarm struct {
	vars  map[varKey]lp.VarStatus // (char id, row) -> status
	rows  map[int]lp.VarStatus    // row id -> row-capacity logical status
	chars map[int]lp.VarStatus    // char id -> one-row-per-char logical status
}

// warmVar and warmLogical carry one basis status out of a block solve as a
// flat slice entry, so the sequential cache rebuild after the parallel
// section never ranges over maps (see docs/INVARIANTS.md on map iteration).
type warmVar struct {
	key varKey
	st  lp.VarStatus
}
type warmLogical struct {
	id int
	st lp.VarStatus
}

// blockWarm is one block's contribution to the next iteration's relaxWarm.
type blockWarm struct {
	vars  []warmVar
	rows  []warmLogical
	chars []warmLogical
}

// blockSolveStats reports one block solve for the trace and the warm cache.
type blockSolveStats struct {
	pivots int        // simplex iterations (SimplexLP backend only)
	lp     bool       // an LP was actually solved
	warmed bool       // a warm basis from the previous iteration was available
	warm   *blockWarm // this solve's basis, keyed for the next iteration
}

// solveRelaxationBlocks solves the (restricted) relaxation block by block on
// the worker pool and merges the per-block fractional assignments into one
// matrix indexed like `unsolved`. Every block writes only its own
// characters' rows, so the merge is deterministic for any worker count.
// With the SimplexLP backend each block warm-starts from its previous
// iteration's basis (unless Options.ColdLP); blocks read the frozen cache
// from the previous iteration concurrently and the refreshed cache is
// assembled sequentially after the parallel section, in block order.
func (s *solver) solveRelaxationBlocks(unsolved []int, caps []float64, blocks []relaxBlock) ([][]float64, error) {
	a := make([][]float64, len(unsolved))
	for k := range a {
		a[k] = make([]float64, s.m)
	}
	errs := make([]error, len(blocks))
	stats := make([]blockSolveStats, len(blocks))
	// The previous iteration's cache is frozen; blocks only look entries up
	// in it, so sharing it across the pool is race-free. The cache is
	// maintained in ColdLP mode too (the bases come back from the solves
	// either way), so both modes report comparable re-solve counts; ColdLP
	// only stops the basis being passed to the solver.
	warmIn := s.relaxWarm
	par.For(s.opt.workerCount(), len(blocks), func(bi int) {
		stats[bi], errs[bi] = s.solveRelaxBlock(blocks[bi], unsolved, caps, a, warmIn)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if s.opt.Backend == SimplexLP {
		next := &relaxWarm{
			vars:  make(map[varKey]lp.VarStatus),
			rows:  make(map[int]lp.VarStatus),
			chars: make(map[int]lp.VarStatus),
		}
		for bi := range blocks {
			st := &stats[bi]
			if !st.lp {
				continue
			}
			s.trace.RelaxSolves++
			s.trace.RelaxPivots += st.pivots
			if st.warmed {
				s.trace.RelaxResolves++
				s.trace.RelaxResolvePivots += st.pivots
			}
			if st.warm != nil {
				// Blocks partition the variables, rows and characters, so
				// insertion order across blocks cannot matter; iterating in
				// block order keeps it deterministic anyway.
				for _, e := range st.warm.vars {
					next.vars[e.key] = e.st
				}
				for _, e := range st.warm.rows {
					next.rows[e.id] = e.st
				}
				for _, e := range st.warm.chars {
					next.chars[e.id] = e.st
				}
			}
		}
		s.relaxWarm = next
	}
	return a, nil
}

// solveRelaxBlock solves one block with the configured backend and scatters
// the result into the shared assignment matrix.
func (s *solver) solveRelaxBlock(b relaxBlock, unsolved []int, caps []float64, a [][]float64, warmIn *relaxWarm) (blockSolveStats, error) {
	switch s.opt.Backend {
	case SimplexLP:
		return s.solveRelaxBlockSimplex(b, unsolved, caps, a, warmIn)
	default:
		items := make([]knapsack.Item, len(b.chars))
		for bk, k := range b.chars {
			i := unsolved[k]
			items[bk] = knapsack.Item{Weight: float64(s.effW[i]), Profit: s.profits[i]}
		}
		subcaps := make([]float64, len(b.rows))
		for bj, j := range b.rows {
			subcaps[bj] = caps[j]
		}
		rel, err := knapsack.RelaxedAssignment(items, subcaps)
		if err != nil {
			return blockSolveStats{}, err
		}
		for bk, k := range b.chars {
			for bj, j := range b.rows {
				a[k][j] = rel.A[bk][bj]
			}
		}
		return blockSolveStats{}, nil
	}
}

// solveRelaxBlockSimplex builds the block's restricted LP (variables only
// for allowed character-row pairs, in character-major order) and solves it
// with the lp backend. With a single full block and no row groups this
// constructs exactly the monolithic LP the planner used before the
// decomposition, variable for variable and constraint for constraint.
// When warmIn carries the block's previous basis (and Options.ColdLP is
// off) the solve warm-starts from it: statuses are looked up per variable
// and constraint identity, with cold defaults for pairs that did not exist
// last iteration, and the lp solver repairs any basic-count drift.
func (s *solver) solveRelaxBlockSimplex(b relaxBlock, unsolved []int, caps []float64, a [][]float64, warmIn *relaxWarm) (blockSolveStats, error) {
	type varRef struct{ k, j int }
	var vars []varRef
	for _, k := range b.chars {
		i := unsolved[k]
		for _, j := range b.rows {
			if s.allowed(i, j) {
				vars = append(vars, varRef{k, j})
			}
		}
	}
	if len(vars) == 0 {
		return blockSolveStats{}, nil
	}
	prob := lp.NewProblem(len(vars))
	prob.Stop = s.ctx.Done()
	obj := make([]float64, len(vars))
	// One pass over the variables groups the constraint terms by row and by
	// character; the constraints are then emitted in row order followed by
	// character order, matching the pre-decomposition builder.
	rowTerms := make(map[int][]lp.Term, len(b.rows))
	charTerms := make(map[int][]lp.Term, len(b.chars))
	for v, vr := range vars {
		i := unsolved[vr.k]
		obj[v] = s.profits[i]
		prob.SetBounds(v, 0, 1)
		rowTerms[vr.j] = append(rowTerms[vr.j], lp.Term{Var: v, Coeff: float64(s.effW[i])})
		charTerms[vr.k] = append(charTerms[vr.k], lp.Term{Var: v, Coeff: 1})
	}
	prob.SetObjective(obj, true)
	// rowsUsed/charsUsed record the constraint emission order, which is
	// also the logical-variable order of the basis.
	var rowsUsed, charsUsed []int
	for _, j := range b.rows {
		if terms := rowTerms[j]; len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, caps[j])
			rowsUsed = append(rowsUsed, j)
		}
	}
	for _, k := range b.chars {
		if terms := charTerms[k]; len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, 1)
			charsUsed = append(charsUsed, k)
		}
	}

	var warm *lp.Basis
	if warmIn != nil && !s.opt.ColdLP {
		st := make([]lp.VarStatus, len(vars)+len(rowsUsed)+len(charsUsed))
		for v, vr := range vars {
			if w, ok := warmIn.vars[varKey{char: unsolved[vr.k], row: vr.j}]; ok {
				st[v] = w
			} else {
				st[v] = lp.AtLower
			}
		}
		pos := len(vars)
		for _, j := range rowsUsed {
			if w, ok := warmIn.rows[j]; ok {
				st[pos] = w
			} else {
				st[pos] = lp.Basic
			}
			pos++
		}
		for _, k := range charsUsed {
			if w, ok := warmIn.chars[unsolved[k]]; ok {
				st[pos] = w
			} else {
				st[pos] = lp.Basic
			}
			pos++
		}
		warm = &lp.Basis{Status: st}
	}

	res, err := lp.SolveWarm(prob, warm)
	if err != nil {
		return blockSolveStats{}, err
	}
	if res.Status != lp.Optimal {
		return blockSolveStats{}, fmt.Errorf("oned: relaxation LP returned %v", res.Status)
	}
	for v, vr := range vars {
		a[vr.k][vr.j] = res.X[v]
	}
	stats := blockSolveStats{pivots: res.Iters, lp: true, warmed: warmIn != nil}
	if res.Basis != nil {
		w := &blockWarm{
			vars:  make([]warmVar, 0, len(vars)),
			rows:  make([]warmLogical, 0, len(rowsUsed)),
			chars: make([]warmLogical, 0, len(charsUsed)),
		}
		for v, vr := range vars {
			w.vars = append(w.vars, warmVar{key: varKey{char: unsolved[vr.k], row: vr.j}, st: res.Basis.Status[v]})
		}
		pos := len(vars)
		for _, j := range rowsUsed {
			w.rows = append(w.rows, warmLogical{id: j, st: res.Basis.Status[pos]})
			pos++
		}
		for _, k := range charsUsed {
			w.chars = append(w.chars, warmLogical{id: unsolved[k], st: res.Basis.Status[pos]})
			pos++
		}
		stats.warm = w
	}
	return stats, nil
}

// solveRelaxationMonolithic solves the restricted relaxation as a single
// problem, ignoring the block structure. It exists as the reference the
// decomposed path is validated against (the equivalence suite asserts
// bit-identical assignment matrices) and for the decomposition benchmark;
// production always goes through the block split.
func (s *solver) solveRelaxationMonolithic(unsolved []int, caps []float64) ([][]float64, error) {
	all := relaxBlock{rows: make([]int, s.m)}
	for j := range all.rows {
		all.rows[j] = j
	}
	for k, i := range unsolved {
		if s.candidacyCount(i) > 0 {
			all.chars = append(all.chars, k)
		}
	}
	a := make([][]float64, len(unsolved))
	for k := range a {
		a[k] = make([]float64, s.m)
	}
	// Always cold (nil warm cache): as the validation reference it must
	// stay a pure single-shot solve, independent of planner history.
	if _, err := s.solveRelaxBlock(all, unsolved, caps, a, nil); err != nil {
		return nil, err
	}
	return a, nil
}

// candidacyCount returns how many rows character i may use.
func (s *solver) candidacyCount(i int) int {
	if s.rowGroup == nil {
		return s.m
	}
	c := 0
	for j := 0; j < s.m; j++ {
		if s.allowed(i, j) {
			c++
		}
	}
	return c
}
