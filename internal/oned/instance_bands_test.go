package oned

import (
	"context"
	"reflect"
	"testing"

	"eblow/internal/gen"
)

// An instance that carries its own column-cell banding must solve exactly
// as if the same bands had been passed through Options.RowGroups — the end
// to end contract of per-column-cell-band mode.
func TestInstanceRowGroupsMatchOptionRowGroups(t *testing.T) {
	plain := gen.Small(0, 60, 4, 17)
	bands := gen.CellBands(plain)
	if bands == nil {
		t.Fatal("test instance cannot be banded")
	}

	banded := gen.Small(0, 60, 4, 17)
	banded.RowGroups = bands

	opt := Defaults()
	opt.Workers = 2
	viaOptions := opt
	viaOptions.RowGroups = bands

	solA, _, err := Solve(context.Background(), plain, viaOptions)
	if err != nil {
		t.Fatal(err)
	}
	solB, _, err := Solve(context.Background(), banded, opt)
	if err != nil {
		t.Fatal(err)
	}
	if solA.WritingTime != solB.WritingTime ||
		!reflect.DeepEqual(solA.Selected, solB.Selected) ||
		!reflect.DeepEqual(solA.Placements, solB.Placements) {
		t.Fatal("instance-level banding solved differently from option-level banding")
	}

	// And the banded solve must differ in configuration from the unbanded
	// one in at least the candidacy sense: explicit options still override
	// the instance's bands (an open band makes every row open again).
	override := opt
	override.RowGroups = []RowGroup{{Rows: nil, Regions: nil}}
	solC, _, err := Solve(context.Background(), banded, override)
	if err != nil {
		t.Fatal(err)
	}
	solPlain, _, err := Solve(context.Background(), plain, opt)
	if err != nil {
		t.Fatal(err)
	}
	if solC.WritingTime != solPlain.WritingTime {
		t.Fatalf("options override did not win over instance bands: T=%d vs unbanded T=%d",
			solC.WritingTime, solPlain.WritingTime)
	}
}
