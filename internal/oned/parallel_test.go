package oned

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
)

// Same instance and options, 1 worker vs several: the planner must return
// the identical stencil plan (merges are by index order, never completion
// order). Run with -race to exercise the parallel row refinement.
func TestSolveDeterministicAcrossWorkerCounts(t *testing.T) {
	in := gen.Small(core.OneD, 140, 4, 17)
	var ref *core.Solution
	for _, workers := range []int{1, 2, 8} {
		opt := Defaults()
		opt.Workers = workers
		sol, _, err := Solve(context.Background(), in, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatalf("workers=%d produced invalid solution: %v", workers, err)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.WritingTime != ref.WritingTime {
			t.Errorf("workers=%d changed writing time: %d vs %d", workers, sol.WritingTime, ref.WritingTime)
		}
		if !reflect.DeepEqual(sol.Selected, ref.Selected) || !reflect.DeepEqual(sol.Rows, ref.Rows) {
			t.Errorf("workers=%d changed the plan", workers)
		}
	}
}

// The solver's parallel per-region time and per-character profit
// evaluations re-implement the core formulas so each worker can own its
// indices; this guard fails if the two implementations ever diverge.
func TestParallelEvaluationMatchesCore(t *testing.T) {
	in := gen.Small(core.OneD, 90, 7, 41)
	s := &solver{ctx: context.Background(), in: in, opt: Defaults().withDefaults(), n: in.NumCharacters(), m: in.NumRows(), w: in.StencilWidth}
	s.assigned = make([]int, s.n)
	for i := range s.assigned {
		// A deterministic mixed selection: every third character "on row 0".
		s.assigned[i] = -1
		if i%3 == 0 {
			s.assigned[i] = 0
		}
	}
	wantTimes := in.RegionTimes(s.selection())
	gotTimes := s.regionTimes()
	if !reflect.DeepEqual(gotTimes, wantTimes) {
		t.Errorf("regionTimes diverged from core.RegionTimes:\n got %v\nwant %v", gotTimes, wantTimes)
	}
	wantProfits := in.Profits(wantTimes)
	gotProfits := s.currentProfits()
	if !reflect.DeepEqual(gotProfits, wantProfits) {
		t.Error("currentProfits diverged from core.Profits")
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := gen.Small(core.OneD, 80, 2, 5)
	start := time.Now()
	_, _, err := Solve(ctx, in, Defaults())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled solve took %s", d)
	}
}

func TestSolveDeadlineMidRun(t *testing.T) {
	in := gen.Small(core.OneD, 200, 6, 23)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := Solve(ctx, in, Defaults())
	// Either the deadline fired at a checkpoint (expected on any normal
	// machine) or the tiny instance finished first; both are legal, but an
	// unrelated error is not.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error: %v", err)
	}
}
