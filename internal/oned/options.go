// Package oned implements the E-BLOW planner for the 1DOSP problem: the
// simplified ILP formulation (4) of the paper, the successive-rounding
// relaxation loop (Algorithm 1), the fast-ILP-convergence step (Algorithm 2),
// the dynamic-programming single-row refinement (Algorithm 3) and the
// post-swap / post-insertion stages, producing a row-structured stencil plan
// that minimizes the MCC writing time.
package oned

import (
	"runtime"
	"time"

	"eblow/internal/core"
)

// LPBackend selects how the LP relaxation of formulation (4) is solved in
// each successive-rounding iteration.
type LPBackend int

const (
	// StructuredLP solves the relaxation with the dedicated multiple-knapsack
	// greedy solver (package knapsack). This is the default: it exploits the
	// structure of formulation (5) and scales to MCC-sized instances.
	StructuredLP LPBackend = iota
	// SimplexLP solves the relaxation with the general dense simplex
	// (package lp). Intended for small instances and for the ablation bench
	// that compares the two backends.
	SimplexLP
)

func (b LPBackend) String() string {
	if b == SimplexLP {
		return "simplex"
	}
	return "structured"
}

// Options configures the E-BLOW 1D planner. The zero value is completed by
// Defaults(); the default parameter values are the ones reported in the
// paper (thinv = 0.9, Lth = 0.1, Uth = 0.9, refinement pruning threshold 20).
type Options struct {
	// Thinv is the rounding threshold of Algorithm 1: every variable within
	// Thinv of the iteration maximum is rounded up.
	Thinv float64
	// Lth and Uth are the fast-ILP-convergence thresholds of Algorithm 2.
	Lth, Uth float64
	// PruneThreshold bounds the number of partial solutions kept per step of
	// the refinement dynamic program (Algorithm 3).
	PruneThreshold int

	// MaxIterations bounds the successive-rounding loop.
	MaxIterations int
	// MaxAssignPerIteration caps how many characters one rounding iteration
	// may fix. The structured LP backend returns nearly integral solutions,
	// so without a cap the whole stencil would be filled in one iteration
	// and the dynamic per-region profit update of Eqn. (6) would never get a
	// chance to rebalance the MCC regions. 0 means max(25, n/12).
	MaxAssignPerIteration int
	// ConvergenceFraction triggers the fast-ILP-convergence step: when one
	// rounding iteration assigns fewer than ConvergenceFraction * n
	// characters (and at least one iteration has run), the remaining
	// variables are handed to the ILP. Set to 0 to only trigger on stalls.
	ConvergenceFraction float64
	// ILPTimeLimit bounds the branch-and-bound run inside fast convergence.
	ILPTimeLimit time.Duration
	// MaxILPVariables caps the number of binary variables handed to the ILP;
	// if more remain the threshold filtering is tightened first.
	MaxILPVariables int

	// EnableFastConvergence and EnablePostInsertion distinguish E-BLOW-0
	// (both false) from E-BLOW-1 (both true); the paper's Fig. 11/12
	// ablation toggles exactly these two techniques.
	EnableFastConvergence bool
	EnablePostInsertion   bool
	// EnablePostSwap controls the greedy post-swap stage.
	EnablePostSwap bool

	// PostSwapCandidates bounds how many unselected characters the post-swap
	// stage considers (sorted by profit).
	PostSwapCandidates int
	// PostInsertCandidates bounds how many unselected characters the
	// post-insertion matching considers.
	PostInsertCandidates int

	// StaticProfit disables the dynamic per-region profit update of Eqn. (6)
	// and uses the selection-independent total reduction instead. Exposed for
	// the ablation benches; the paper's flow keeps it false.
	StaticProfit bool

	// Workers bounds the number of goroutines used for the parallel stages
	// (per-row DP refinement, per-region time/profit evaluation, and the
	// block-decomposed LP relaxation when RowGroups are set). 0 means one
	// worker per CPU; 1 forces the fully sequential flow. The planner
	// returns the same solution for every worker count.
	Workers int

	// RowGroups optionally pins bands of stencil rows to wafer regions, the
	// way each column cell of an MCC system owns its own stencil band: a
	// character is a candidate for a group's rows only if it repeats in at
	// least one of the group's regions. The capacity matrix of the LP
	// relaxation then becomes block-diagonal across disjoint row groups, and
	// the planner detects the blocks (union-find over character-row
	// candidacy) and solves them as independent sub-problems on the worker
	// pool, merged in block index order. Nil falls back to the instance's
	// own banding (core.Instance.RowGroups) when it has one; with neither,
	// the shared-stencil semantics of the paper apply: every character may
	// use every row and the relaxation is one monolithic problem.
	RowGroups []RowGroup

	// Backend selects the LP relaxation solver.
	Backend LPBackend

	// ColdLP disables the warm starts of the SimplexLP backend: every
	// relaxation re-solve and every fast-convergence branch-and-bound node
	// starts from scratch instead of the previous basis. The planner output
	// is gated to be identical either way; this exists for benchmarking the
	// warm-start pivot savings (ospbench -lp-perf) and as an escape hatch.
	ColdLP bool

	// CollectTrace records per-iteration statistics (Figs. 5 and 6).
	CollectTrace bool
}

// RowGroup pins a band of stencil rows to a set of wafer regions (the
// stencil band of one MCC column cell). It is the core model's type: bands
// can live on the instance itself (serialized with it) or be passed
// per-solve through Options.RowGroups.
type RowGroup = core.RowGroup

// maxRowGroups bounds the number of row groups so per-character candidacy
// fits in one uint64 bitmask. It is the core model's cap, so instances that
// pass core validation never trip the solver-side check.
const maxRowGroups = core.MaxRowGroups

// Defaults returns the paper's parameter settings with E-BLOW-1 behaviour
// (fast ILP convergence and post stages enabled).
func Defaults() Options {
	return Options{
		Thinv:                 0.9,
		Lth:                   0.1,
		Uth:                   0.9,
		PruneThreshold:        20,
		MaxIterations:         60,
		MaxAssignPerIteration: 0,
		ConvergenceFraction:   0.01,
		ILPTimeLimit:          2 * time.Second,
		MaxILPVariables:       400,
		EnableFastConvergence: true,
		EnablePostInsertion:   true,
		EnablePostSwap:        true,
		PostSwapCandidates:    200,
		PostInsertCandidates:  200,
		Backend:               StructuredLP,
		CollectTrace:          false,
	}
}

// withDefaults fills zero fields of o with the default settings.
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Thinv <= 0 || o.Thinv > 1 {
		o.Thinv = d.Thinv
	}
	if o.Lth <= 0 {
		o.Lth = d.Lth
	}
	if o.Uth <= 0 {
		o.Uth = d.Uth
	}
	if o.PruneThreshold <= 0 {
		o.PruneThreshold = d.PruneThreshold
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = d.MaxIterations
	}
	if o.ILPTimeLimit <= 0 {
		o.ILPTimeLimit = d.ILPTimeLimit
	}
	if o.MaxILPVariables <= 0 {
		o.MaxILPVariables = d.MaxILPVariables
	}
	if o.PostSwapCandidates <= 0 {
		o.PostSwapCandidates = d.PostSwapCandidates
	}
	if o.PostInsertCandidates <= 0 {
		o.PostInsertCandidates = d.PostInsertCandidates
	}
	if o.ConvergenceFraction <= 0 {
		o.ConvergenceFraction = d.ConvergenceFraction
	}
	return o
}

// workerCount resolves Options.Workers: 0 means one worker per CPU.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Trace records per-iteration statistics of the successive-rounding loop;
// the benchmark harness uses it to regenerate Fig. 5 (unsolved characters per
// LP iteration) and Fig. 6 (distribution of the LP values in the last
// iteration).
type Trace struct {
	// UnsolvedPerIteration[k] is the number of still-unsolved characters
	// after rounding iteration k.
	UnsolvedPerIteration []int
	// AssignedPerIteration[k] is the number of characters assigned to rows
	// in iteration k.
	AssignedPerIteration []int
	// LastLPValues holds the per-character maximum fractional value in the
	// last LP before fast convergence (the histogram of Fig. 6).
	LastLPValues []float64
	// FastILPVariables is the number of binary variables handed to the ILP
	// in the fast-convergence step (0 when the step did not run).
	FastILPVariables int
	// RelaxElapsed is the total wall-clock time spent solving LP relaxations
	// across all successive-rounding iterations (always recorded; the perf
	// harness tracks it in the BENCH trajectory).
	RelaxElapsed time.Duration
	// RelaxSolves and RelaxPivots count the LP block solves and their total
	// simplex iterations across the run (SimplexLP backend only).
	RelaxSolves int
	RelaxPivots int
	// RelaxResolves and RelaxResolvePivots are the subset of the above for
	// which a previous-iteration basis was available — the re-solves that
	// warm starts accelerate. They are counted identically under
	// Options.ColdLP (which only stops the basis being used), so a cold run
	// and a warm run of the same instance are directly comparable:
	// RelaxResolvePivots(warm) / RelaxResolvePivots(cold) is the warm-start
	// pivot ratio that ospbench -lp-perf reports.
	RelaxResolves      int
	RelaxResolvePivots int
	// FastILPPivots sums the simplex iterations of every node relaxation in
	// the fast-convergence branch and bound (0 when the step did not run).
	FastILPPivots int
	// UsedFastConvergence reports whether Algorithm 2 ran.
	UsedFastConvergence bool
}
