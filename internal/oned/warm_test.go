package oned

import (
	"context"
	"testing"

	"eblow/internal/core"
	"eblow/internal/gen"
)

// samePlan fails unless the two solutions select the same characters into
// the same rows with the same writing time — the planner-level notion of
// bit-identical.
func samePlan(t *testing.T, a, b *core.Solution, label string) {
	t.Helper()
	if a.WritingTime != b.WritingTime {
		t.Errorf("%s: writing time %d vs %d", label, a.WritingTime, b.WritingTime)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("%s: selection lengths differ", label)
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Errorf("%s: selection differs at character %d", label, i)
		}
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row counts differ", label)
	}
	for j := range a.Rows {
		ra, rb := a.Rows[j].Chars, b.Rows[j].Chars
		if len(ra) != len(rb) {
			t.Errorf("%s: row %d lengths differ", label, j)
			continue
		}
		for k := range ra {
			if ra[k] != rb[k] {
				t.Errorf("%s: row %d slot %d: char %d vs %d", label, j, k, ra[k], rb[k])
			}
		}
	}
}

// TestSimplexWarmColdWorkersIdentical is the planner-level warm-start gate
// for the SimplexLP backend (run under -race in CI):
//
//   - Within each mode (warm and cold) the plan is bit-identical at every
//     worker count — warm bases propagate through the deterministic merge,
//     so parallelism can never change the plan.
//   - Warm re-solves must be far cheaper per solve than cold ones.
//
// Warm and cold plans are NOT required to match each other bit for bit:
// under degeneracy the two modes may stop at different optimal vertices of
// the same relaxation and round differently. Both plans must be valid and
// of equivalent quality; docs/INVARIANTS.md states this contract.
func TestSimplexWarmColdWorkersIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		in := gen.Small(core.OneD, 70, 3, seed)
		base := Defaults()
		base.Backend = SimplexLP

		traces := map[bool]*Trace{}
		sols := map[bool]*core.Solution{}
		for _, cold := range []bool{false, true} {
			o := base
			o.ColdLP = cold
			o.Workers = 1
			ref, tr := solveInstance(t, in, o)
			traces[cold] = tr
			sols[cold] = ref
			for _, workers := range []int{4, 8} {
				ow := o
				ow.Workers = workers
				sol, _, err := Solve(context.Background(), in, ow)
				if err != nil {
					t.Fatalf("seed %d cold=%v workers=%d: %v", seed, cold, workers, err)
				}
				if err := sol.Validate(in); err != nil {
					t.Fatalf("seed %d cold=%v workers=%d: invalid solution: %v", seed, cold, workers, err)
				}
				samePlan(t, ref, sol, "worker-count variant")
			}
		}

		// Equivalent quality across modes (not bit-identity; see above).
		warmT, coldT := float64(sols[false].WritingTime), float64(sols[true].WritingTime)
		if warmT > 1.1*coldT || coldT > 1.1*warmT {
			t.Errorf("seed %d: warm plan writing time %v vs cold %v; modes should be of equivalent quality",
				seed, warmT, coldT)
		}

		// Warm re-solves must be much cheaper per solve than cold ones. The
		// modes can take different iteration counts (different plans), so
		// compare per-solve averages; ospbench -lp-perf gates the <=10%
		// target on the golden families.
		warm, cold := traces[false], traces[true]
		if warm.RelaxResolves == 0 || cold.RelaxResolves == 0 {
			t.Fatalf("seed %d: no re-solves happened (warm %d, cold %d); instance too small to exercise warm starts",
				seed, warm.RelaxResolves, cold.RelaxResolves)
		}
		warmPer := float64(warm.RelaxResolvePivots) / float64(warm.RelaxResolves)
		coldPer := float64(cold.RelaxResolvePivots) / float64(cold.RelaxResolves)
		if warmPer > coldPer {
			t.Errorf("seed %d: warm re-solves average %.1f pivots, cold %.1f", seed, warmPer, coldPer)
		}
		t.Logf("seed %d: avg re-solve pivots warm %.2f vs cold %.2f (%d vs %d re-solves)",
			seed, warmPer, coldPer, warm.RelaxResolves, cold.RelaxResolves)
	}
}
