package oned

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eblow/internal/core"
)

// rowInstance builds a single-row 1D instance from (width, blankL, blankR)
// triples for refinement tests.
func rowInstance(specs [][3]int, stencilW int) *core.Instance {
	in := &core.Instance{
		Name: "row", Kind: core.OneD,
		StencilWidth: stencilW, StencilHeight: 40,
		NumRegions: 1, RowHeight: 40,
	}
	for i, sp := range specs {
		in.Characters = append(in.Characters, core.Character{
			ID: i, Width: sp[0], Height: 40,
			BlankLeft: sp[1], BlankRight: sp[2],
			VSBShots: 2, Repeats: []int64{1},
		})
	}
	return in
}

func TestRefineRowSingleAndEmpty(t *testing.T) {
	in := rowInstance([][3]int{{40, 5, 5}}, 100)
	if got := refineRow(in, nil, 20); got != nil {
		t.Errorf("empty row refined to %v", got)
	}
	got := refineRow(in, []int{0}, 20)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("single char order = %v", got)
	}
}

func TestRefineRowSymmetricMatchesLemma(t *testing.T) {
	// Symmetric blanks: the DP must achieve the Lemma 1 closed form.
	specs := [][3]int{{50, 8, 8}, {50, 3, 3}, {50, 6, 6}, {50, 1, 1}}
	in := rowInstance(specs, 1000)
	order := refineRow(in, []int{0, 1, 2, 3}, 20)
	width := core.MinRowLength(in, order)
	want := core.SymmetricRowLength([]int{50, 50, 50, 50}, []int{8, 3, 6, 1})
	if width != want {
		t.Errorf("refined width = %d, want %d (Lemma 1)", width, want)
	}
}

// bruteInsertionMin enumerates the 2^(n-1) left/right insertion orders over
// the blank-sorted sequence (the solution space Algorithm 3 explores).
func bruteInsertionMin(in *core.Instance, chars []int) int {
	sorted := append([]int(nil), chars...)
	// Same ordering rule as refineRow.
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			si := in.Characters[sorted[i]].SymmetricHBlank()
			sj := in.Characters[sorted[j]].SymmetricHBlank()
			if sj > si || (sj == si && sorted[j] < sorted[i]) {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	n := len(sorted)
	best := -1
	for mask := 0; mask < 1<<uint(n-1); mask++ {
		order := []int{sorted[0]}
		for k := 1; k < n; k++ {
			if mask&(1<<uint(k-1)) != 0 {
				order = append([]int{sorted[k]}, order...)
			} else {
				order = append(order, sorted[k])
			}
		}
		w := core.MinRowLength(in, order)
		if best < 0 || w < best {
			best = w
		}
	}
	return best
}

// Property: with a large pruning threshold the DP finds the optimum over its
// insertion solution space, and with the default threshold it never does
// worse than the naive blank-sorted order. The quick source is pinned: the
// second property only holds for the naive order with the DP's own
// tie-break (see sortedByBlankOrder), and a fixed seed keeps the suite
// reproducible either way.
func TestRefineRowMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		specs := make([][3]int, n)
		for i := range specs {
			w := 30 + rng.Intn(30)
			specs[i] = [3]int{w, rng.Intn(12), rng.Intn(12)}
		}
		in := rowInstance(specs, 10000)
		chars := make([]int, n)
		for i := range chars {
			chars[i] = i
		}
		unpruned := refineRow(in, chars, 1<<12)
		if core.MinRowLength(in, unpruned) != bruteInsertionMin(in, chars) {
			return false
		}
		pruned := refineRow(in, chars, 20)
		sorted := core.MinRowLength(in, sortedByBlankOrder(in, chars))
		return core.MinRowLength(in, pruned) <= sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// sortedByBlankOrder returns characters ordered by decreasing symmetric
// blank, ties by ascending id — the same ordering rule refineRow uses, so
// this order is always inside the DP's insertion space (all-right
// insertions) and the DP can never do worse than it.
func sortedByBlankOrder(in *core.Instance, chars []int) []int {
	out := append([]int(nil), chars...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			si := in.Characters[out[i]].SymmetricHBlank()
			sj := in.Characters[out[j]].SymmetricHBlank()
			if sj > si || (sj == si && out[j] < out[i]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestPositionsForOrderLegal(t *testing.T) {
	specs := [][3]int{{40, 5, 7}, {35, 3, 9}, {50, 10, 2}}
	in := rowInstance(specs, 200)
	order := []int{2, 0, 1}
	xs := positionsForOrder(in, order)
	if xs[0] != 0 {
		t.Errorf("first position %d", xs[0])
	}
	// 2 -> 0: overlap min(right of 2 = 2, left of 0 = 5) = 2: x = 50-2 = 48.
	if xs[1] != 48 {
		t.Errorf("xs[1] = %d, want 48", xs[1])
	}
	// 0 -> 1: overlap min(7, 3) = 3: x = 48 + 40 - 3 = 85.
	if xs[2] != 85 {
		t.Errorf("xs[2] = %d, want 85", xs[2])
	}

	sol := &core.Solution{
		Selected: []bool{true, true, true},
		Rows:     []core.Row{{Y: 0, Chars: order, X: xs}},
	}
	if err := sol.Validate(in); err != nil {
		t.Errorf("positionsForOrder produced an illegal row: %v", err)
	}
}

func TestPruneInferior(t *testing.T) {
	sols := []partialOrder{
		{width: 100, left: 5, right: 5, order: []int{0}},
		{width: 100, left: 3, right: 3, order: []int{1}}, // dominated by the first
		{width: 90, left: 1, right: 1, order: []int{2}},  // narrower, kept
		{width: 120, left: 9, right: 9, order: []int{3}}, // wider but bigger blanks, kept
	}
	kept := pruneInferior(sols, 10)
	if len(kept) != 3 {
		t.Fatalf("kept %d solutions, want 3", len(kept))
	}
	for _, k := range kept {
		if k.order[0] == 1 {
			t.Error("dominated solution survived pruning")
		}
	}
	limited := pruneInferior(sols, 1)
	if len(limited) != 1 || limited[0].width != 90 {
		t.Errorf("limit should keep the narrowest solution, got %+v", limited)
	}
}
