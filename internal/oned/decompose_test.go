package oned

import (
	"context"
	"math/rand"
	"testing"

	"eblow/internal/core"
)

// groupedInstance builds a 1D MCC instance whose characters each repeat in
// one region (or bridge into the next region every bridgeEvery characters),
// together with row groups that pin rowsPerGroup stencil rows to every
// region — the per-column-cell stencil band layout that makes the
// relaxation's capacity matrix block-diagonal.
func groupedInstance(nChars, nGroups, rowsPerGroup, bridgeEvery int, seed int64) (*core.Instance, []RowGroup) {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{
		Name: "grouped", Kind: core.OneD,
		StencilWidth:  600,
		StencilHeight: 40 * nGroups * rowsPerGroup,
		NumRegions:    nGroups,
		RowHeight:     40,
	}
	for i := 0; i < nChars; i++ {
		c := core.Character{
			ID:    i,
			Width: 30 + rng.Intn(30), Height: 40,
			BlankLeft: 3 + rng.Intn(8), BlankRight: 3 + rng.Intn(8),
			VSBShots: 2 + rng.Intn(30),
			Repeats:  make([]int64, nGroups),
		}
		g := i % nGroups
		c.Repeats[g] = int64(1 + rng.Intn(20))
		if bridgeEvery > 0 && i%bridgeEvery == 0 {
			c.Repeats[(g+1)%nGroups] = int64(1 + rng.Intn(20))
		}
		in.Characters = append(in.Characters, c)
	}
	groups := make([]RowGroup, nGroups)
	for g := range groups {
		for r := 0; r < rowsPerGroup; r++ {
			groups[g].Rows = append(groups[g].Rows, g*rowsPerGroup+r)
		}
		groups[g].Regions = []int{g}
	}
	return in, groups
}

// relaxSolver builds a solver mid-flight: row groups installed, profits
// evaluated, and a few characters pre-assigned so the row capacities are
// uneven the way they are in later rounding iterations.
func relaxSolver(t testing.TB, in *core.Instance, groups []RowGroup, backend LPBackend, workers, preAssign int) (*solver, []int, []float64) {
	t.Helper()
	opt := Defaults()
	opt.Backend = backend
	opt.Workers = workers
	opt.RowGroups = groups
	s, err := newSolver(context.Background(), in, opt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for i := 0; i < s.n && assigned < preAssign; i++ {
		for j := 0; j < s.m; j++ {
			if s.fits(i, j) {
				s.assign(i, j)
				assigned++
				break
			}
		}
	}
	s.profits = s.currentProfits()
	unsolved := s.unsolvedIDs()
	caps := s.rowCapacities(unsolved)
	return s, unsolved, caps
}

func sameMatrix(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", label, len(a), len(b))
	}
	for k := range a {
		for j := range a[k] {
			if a[k][j] != b[k][j] {
				t.Fatalf("%s: a[%d][%d] = %v vs %v (not bit-identical)", label, k, j, a[k][j], b[k][j])
			}
		}
	}
}

// TestRelaxBlocksDetection checks the union-find block structure: disjoint
// region populations split into one block per group, bridging characters
// merge their two groups, and without row groups everything is one block.
func TestRelaxBlocksDetection(t *testing.T) {
	in, groups := groupedInstance(60, 4, 2, 0, 1)
	s, unsolved, _ := relaxSolver(t, in, groups, StructuredLP, 1, 0)
	blocks := s.relaxBlocks(unsolved)
	if len(blocks) != 4 {
		t.Fatalf("disjoint instance split into %d blocks, want 4", len(blocks))
	}
	for bi, b := range blocks {
		if len(b.rows) != 2 || len(b.chars) != 15 {
			t.Errorf("block %d has %d rows and %d chars, want 2 and 15", bi, len(b.rows), len(b.chars))
		}
		for _, k := range b.chars {
			for _, j := range b.rows {
				if !s.allowed(unsolved[k], j) {
					t.Errorf("block %d pairs char %d with row %d it may not use", bi, unsolved[k], j)
				}
			}
		}
	}

	// A character bridging every pair of adjacent groups chains all blocks
	// together.
	in2, groups2 := groupedInstance(60, 4, 2, 1, 2)
	s2, unsolved2, _ := relaxSolver(t, in2, groups2, StructuredLP, 1, 0)
	if blocks := s2.relaxBlocks(unsolved2); len(blocks) != 1 {
		t.Fatalf("bridged instance split into %d blocks, want 1", len(blocks))
	}

	// No row groups: one block covering every character and row.
	s3, unsolved3, _ := relaxSolver(t, in, nil, StructuredLP, 1, 0)
	blocks3 := s3.relaxBlocks(unsolved3)
	if len(blocks3) != 1 || len(blocks3[0].chars) != len(unsolved3) || len(blocks3[0].rows) != s3.m {
		t.Fatalf("ungrouped instance should be one full block, got %+v", blocks3)
	}
}

// TestBlockDecomposedMatchesMonolithicSimplex asserts the core equivalence
// guarantee of the decomposition: solving the candidacy blocks independently
// and merging in block order yields bit-for-bit the assignment matrix of the
// monolithic restricted LP — on block-diagonal instances, on instances with
// bridging characters, and on non-decomposable (ungrouped) instances, at
// several worker counts and with uneven row fill.
func TestBlockDecomposedMatchesMonolithicSimplex(t *testing.T) {
	cases := []struct {
		name        string
		bridgeEvery int
		grouped     bool
		preAssign   int
	}{
		{name: "block-diagonal", grouped: true},
		{name: "block-diagonal-filled", grouped: true, preAssign: 12},
		{name: "bridged", grouped: true, bridgeEvery: 7},
		{name: "ungrouped", grouped: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, groups := groupedInstance(48, 3, 2, tc.bridgeEvery, 7)
			if !tc.grouped {
				groups = nil
			}
			for _, workers := range []int{1, 4} {
				s, unsolved, caps := relaxSolver(t, in, groups, SimplexLP, workers, tc.preAssign)
				got, err := s.solveRelaxation(unsolved, caps)
				if err != nil {
					t.Fatal(err)
				}
				want, err := s.solveRelaxationMonolithic(unsolved, caps)
				if err != nil {
					t.Fatal(err)
				}
				sameMatrix(t, tc.name, got, want)
			}
		})
	}
}

// TestBlockDecomposedDeterministicWorkers asserts the structured backend's
// block solve is bit-identical for every worker count, at MCC scale (4000
// characters, 10 column-cell bands).
func TestBlockDecomposedDeterministicWorkers(t *testing.T) {
	nChars := 4000
	if testing.Short() {
		nChars = 400
	}
	in, groups := groupedInstance(nChars, 10, 5, 11, 9)
	s1, unsolved1, caps1 := relaxSolver(t, in, groups, StructuredLP, 1, 40)
	a1, err := s1.solveRelaxation(unsolved1, caps1)
	if err != nil {
		t.Fatal(err)
	}
	s8, unsolved8, caps8 := relaxSolver(t, in, groups, StructuredLP, 8, 40)
	a8, err := s8.solveRelaxation(unsolved8, caps8)
	if err != nil {
		t.Fatal(err)
	}
	if len(unsolved1) != len(unsolved8) {
		t.Fatal("solver setup diverged between worker counts")
	}
	sameMatrix(t, "workers 1 vs 8", a1, a8)
}

// TestSolveWithRowGroups runs the full planner with row groups: the plan
// must be identical for every worker count, must only place characters on
// rows their group allows, and must stay valid.
func TestSolveWithRowGroups(t *testing.T) {
	in, groups := groupedInstance(120, 4, 2, 13, 3)
	for _, backend := range []LPBackend{StructuredLP, SimplexLP} {
		opt := Defaults()
		opt.Backend = backend
		opt.RowGroups = groups
		opt.Workers = 1
		ref, _, err := Solve(context.Background(), in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Validate(in); err != nil {
			t.Fatalf("%v: invalid solution: %v", backend, err)
		}
		if ref.NumSelected() == 0 {
			t.Fatalf("%v: empty plan", backend)
		}

		// Candidacy respected on every row.
		rowGroupOf := make([]int, in.NumRows())
		for j := range rowGroupOf {
			rowGroupOf[j] = -1
		}
		for g, grp := range groups {
			for _, j := range grp.Rows {
				rowGroupOf[j] = g
			}
		}
		for _, row := range ref.Rows {
			j := row.Y / in.RowHeight
			g := rowGroupOf[j]
			if g < 0 {
				continue
			}
			for _, c := range row.Chars {
				ok := false
				for _, r := range groups[g].Regions {
					if in.Characters[c].Repeats[r] > 0 {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("%v: character %d placed on row %d outside its groups", backend, c, j)
				}
			}
		}

		opt.Workers = 8
		par, _, err := Solve(context.Background(), in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if par.WritingTime != ref.WritingTime || par.NumSelected() != ref.NumSelected() {
			t.Errorf("%v: workers changed the plan: T=%d/%d selected=%d/%d",
				backend, ref.WritingTime, par.WritingTime, ref.NumSelected(), par.NumSelected())
		}
	}
}

// TestRowGroupValidation exercises the option validation.
func TestRowGroupValidation(t *testing.T) {
	in, groups := groupedInstance(20, 2, 2, 0, 5)
	bad := []struct {
		name   string
		mutate func([]RowGroup) []RowGroup
	}{
		{"row out of range", func(g []RowGroup) []RowGroup {
			g[0].Rows = append(g[0].Rows, 99)
			return g
		}},
		{"region out of range", func(g []RowGroup) []RowGroup {
			g[0].Regions = []int{7}
			return g
		}},
		{"row in two groups", func(g []RowGroup) []RowGroup {
			g[1].Rows = append(g[1].Rows, g[0].Rows[0])
			return g
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			gs := make([]RowGroup, len(groups))
			for i, g := range groups {
				gs[i] = RowGroup{Rows: append([]int(nil), g.Rows...), Regions: append([]int(nil), g.Regions...)}
			}
			opt := Defaults()
			opt.RowGroups = tc.mutate(gs)
			if _, _, err := Solve(context.Background(), in, opt); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}
