package oned

import (
	"sort"

	"eblow/internal/core"
	"eblow/internal/matching"
)

// This file implements the two post-optimization stages of E-BLOW 1D:
// post-swap (exchange an on-stencil character for a better off-stencil one)
// and post-insertion (insert additional characters into row gaps, formulated
// as a maximum-weight bipartite matching between characters and rows, Fig. 8
// of the paper).

// postSwap runs swap passes until the writing time stops improving. A pass
// tries, for every promising unselected character, to exchange it for one
// on-stencil character (the paper's post-swap) or — when the rows are too
// tightly packed to admit a wider character one-for-one — for two adjacent
// on-stencil characters.
func (s *solver) postSwap() {
	for pass := 0; pass < 8; pass++ {
		if s.ctx.Err() != nil {
			return
		}
		if !s.postSwapOnce() {
			return
		}
	}
}

// postSwapOnce performs one sweep over the unselected candidates and reports
// whether any swap was applied.
func (s *solver) postSwapOnce() bool {
	times := s.regionTimes()
	profits := s.currentProfits()

	candidates := s.unselectedByProfit(profits, s.opt.PostSwapCandidates)
	if len(candidates) == 0 {
		return false
	}

	reductions := func(i int) []int64 {
		r := make([]int64, s.in.NumRegions)
		for c := range r {
			r[c] = s.in.Reduction(i, c)
		}
		return r
	}
	improvedAny := false

	for _, u := range candidates {
		if s.assigned[u] >= 0 {
			continue
		}
		ru := reductions(u)
		curMax := core.MaxInt64(times)
		curTotal := sumTimes(times)
		bestRow := -1
		var bestOut []int // characters leaving the stencil
		var bestMax, bestTotal int64
		var bestOrder []int

		// A swap is accepted when it strictly reduces the maximum region
		// time, or keeps the maximum and strictly reduces the total writing
		// time; the second case matters when several regions are tied at the
		// maximum and no single swap can lower all of them at once.
		consider := func(j int, out []int, order []int, newMax, newTotal int64) {
			if newMax > curMax || (newMax == curMax && newTotal >= curTotal) {
				return
			}
			if bestRow >= 0 && (newMax > bestMax || (newMax == bestMax && newTotal >= bestTotal)) {
				return
			}
			if s.rowWidthWithOrder(order) > s.w {
				return
			}
			bestRow, bestMax, bestTotal = j, newMax, newTotal
			bestOut = append([]int(nil), out...)
			bestOrder = append([]int(nil), order...)
		}

		after := func(out []int) (int64, int64) {
			var newMax, newTotal int64
			for c := range times {
				t := times[c] - ru[c]
				for _, v := range out {
					t += s.in.Reduction(v, c)
				}
				if t > newMax {
					newMax = t
				}
				newTotal += t
			}
			return newMax, newTotal
		}

		for j := range s.rows {
			if !s.allowed(u, j) {
				continue
			}
			row := &s.rows[j]
			for k, v := range row.order {
				// One-for-one: replace v by u.
				order := append([]int(nil), row.order...)
				order[k] = u
				nm, nt := after([]int{v})
				consider(j, []int{v}, order, nm, nt)
				// One-for-two: replace the adjacent pair (v, next) by u; this
				// is the only way a wide character can enter a tightly packed
				// row.
				if k+1 < len(row.order) {
					v2 := row.order[k+1]
					order2 := make([]int, 0, len(row.order)-1)
					order2 = append(order2, row.order[:k]...)
					order2 = append(order2, u)
					order2 = append(order2, row.order[k+2:]...)
					nm2, nt2 := after([]int{v, v2})
					consider(j, []int{v, v2}, order2, nm2, nt2)
				}
			}
		}
		if bestRow < 0 {
			continue
		}
		// Apply the swap.
		for _, v := range bestOut {
			s.unassign(v)
			for c := range times {
				times[c] += s.in.Reduction(v, c)
			}
		}
		s.assign(u, bestRow)
		row := &s.rows[bestRow]
		row.order = bestOrder
		row.width = s.rowWidthWithOrder(bestOrder)
		for c := range times {
			times[c] -= ru[c]
		}
		improvedAny = true
	}
	return improvedAny
}

// sumTimes returns the total writing time over all regions.
func sumTimes(times []int64) int64 {
	var s int64
	for _, t := range times {
		s += t
	}
	return s
}

// postInsert repeatedly runs the matching-based insertion until no further
// characters can be added, then finishes with a plain right-end append pass
// so trailing slack in the rows never goes unused.
func (s *solver) postInsert() {
	for pass := 0; pass < 12; pass++ {
		if s.ctx.Err() != nil {
			return
		}
		if s.postInsertOnce() == 0 {
			break
		}
	}
	s.appendRemaining()
}

// postInsertOnce inserts additional characters into rows with spare width
// and returns the number of insertions. The assignment of characters to rows
// is a maximum-weight bipartite matching with at most one insertion per row
// (Fig. 8 of the paper); the insertion point inside a row is the gap with
// the smallest width increase.
func (s *solver) postInsertOnce() int {
	profits := s.currentProfits()
	candidates := s.unselectedByProfit(profits, s.opt.PostInsertCandidates)
	if len(candidates) == 0 {
		return 0
	}

	// Rows with spare capacity.
	type rowSlack struct {
		row   int
		slack int
	}
	var rows []rowSlack
	for j := range s.rows {
		slack := s.w - s.rows[j].width
		if slack > 0 {
			rows = append(rows, rowSlack{row: j, slack: slack})
		}
	}
	if len(rows) == 0 {
		return 0
	}

	type insertion struct {
		gap   int
		delta int
	}
	best := make(map[[2]int]insertion) // (candidate index, row index) -> insertion

	var edges []matching.Edge
	for ci, u := range candidates {
		for rj, rs := range rows {
			if !s.allowed(u, rs.row) {
				continue
			}
			gap, delta := s.bestInsertion(u, s.rows[rs.row].order)
			if delta <= rs.slack {
				best[[2]int{ci, rj}] = insertion{gap: gap, delta: delta}
				edges = append(edges, matching.Edge{L: ci, R: rj, Weight: profits[u]})
			}
		}
	}
	if len(edges) == 0 {
		return 0
	}
	inserted := 0
	match, _ := matching.MaxWeight(len(candidates), len(rows), edges)
	for ci, rj := range match {
		if rj < 0 {
			continue
		}
		u := candidates[ci]
		rowIdx := rows[rj].row
		ins := best[[2]int{ci, rj}]
		row := &s.rows[rowIdx]
		order := make([]int, 0, len(row.order)+1)
		order = append(order, row.order[:ins.gap]...)
		order = append(order, u)
		order = append(order, row.order[ins.gap:]...)
		width := s.rowWidthWithOrder(order)
		if width > s.w {
			continue // the symmetric estimate was off; skip this insertion
		}
		s.assign(u, rowIdx)
		row.order = order
		row.width = width
		inserted++
	}
	return inserted
}

// appendRemaining greedily appends any remaining positive-profit characters
// at the right end of the first row with enough slack (the simple insertion
// of the prior work, used here as a final clean-up).
func (s *solver) appendRemaining() {
	profits := s.currentProfits()
	candidates := s.unselectedByProfit(profits, s.n)
	for _, u := range candidates {
		cu := s.in.Characters[u]
		for j := range s.rows {
			if !s.allowed(u, j) {
				continue
			}
			row := &s.rows[j]
			var newWidth int
			if len(row.order) == 0 {
				newWidth = cu.Width
			} else {
				last := s.in.Characters[row.order[len(row.order)-1]]
				newWidth = row.width + cu.Width - core.HOverlap(last, cu)
			}
			if newWidth <= s.w {
				s.assign(u, j)
				row.order = append(row.order, u)
				row.width = newWidth
				break
			}
		}
	}
}

// bestInsertion returns the gap index (0..len(order)) with the smallest width
// increase when inserting character u into the ordered row, and that
// increase.
func (s *solver) bestInsertion(u int, order []int) (int, int) {
	cu := s.in.Characters[u]
	if len(order) == 0 {
		return 0, cu.Width
	}
	bestGap, bestDelta := -1, 0
	for gap := 0; gap <= len(order); gap++ {
		var delta int
		switch gap {
		case 0:
			first := s.in.Characters[order[0]]
			delta = cu.Width - core.HOverlap(cu, first)
		case len(order):
			last := s.in.Characters[order[len(order)-1]]
			delta = cu.Width - core.HOverlap(last, cu)
		default:
			a := s.in.Characters[order[gap-1]]
			b := s.in.Characters[order[gap]]
			delta = cu.Width - core.HOverlap(a, cu) - core.HOverlap(cu, b) + core.HOverlap(a, b)
		}
		if bestGap < 0 || delta < bestDelta {
			bestGap, bestDelta = gap, delta
		}
	}
	return bestGap, bestDelta
}

// unselectedByProfit returns up to limit unselected characters with positive
// profit, sorted by decreasing profit.
func (s *solver) unselectedByProfit(profits []float64, limit int) []int {
	var ids []int
	for i := 0; i < s.n; i++ {
		if s.assigned[i] < 0 && profits[i] > 0 && s.width[i] <= s.w {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if profits[ids[a]] != profits[ids[b]] {
			return profits[ids[a]] > profits[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if len(ids) > limit {
		ids = ids[:limit]
	}
	return ids
}
