package oned

import (
	"sort"

	"eblow/internal/core"
	"eblow/internal/par"
)

// This file implements the refinement stage (Algorithm 3 of the paper): a
// dynamic program over single-row orderings that exploits the structure of
// the symmetric-blank optimum (characters sorted by blank, each inserted at
// the left or right end) while evaluating the true asymmetric blanks. It
// also contains the row legalisation that drops characters when the
// symmetric-blank estimate was too optimistic.

// partialOrder is one DP state: a packed order of a prefix of the row's
// characters together with its total width and the outer blanks.
type partialOrder struct {
	width int
	left  int // left blank of the leftmost character
	right int // right blank of the rightmost character
	order []int
}

// refineRow finds a near-minimal-width ordering for the characters of a row.
// Characters are processed in decreasing order of symmetric blank; each step
// extends every kept partial solution at the left or the right end and prunes
// dominated solutions, keeping at most pruneThreshold of them.
func refineRow(in *core.Instance, chars []int, pruneThreshold int) []int {
	if len(chars) == 0 {
		return nil
	}
	sorted := append([]int(nil), chars...)
	sort.Slice(sorted, func(a, b int) bool {
		sa := in.Characters[sorted[a]].SymmetricHBlank()
		sb := in.Characters[sorted[b]].SymmetricHBlank()
		if sa != sb {
			return sa > sb
		}
		return sorted[a] < sorted[b]
	})

	first := in.Characters[sorted[0]]
	solutions := []partialOrder{{
		width: first.Width,
		left:  first.BlankLeft,
		right: first.BlankRight,
		order: []int{sorted[0]},
	}}

	for _, id := range sorted[1:] {
		c := in.Characters[id]
		next := make([]partialOrder, 0, 2*len(solutions))
		for _, s := range solutions {
			// Insert at the left end: the character's right blank overlaps
			// with the current left end.
			next = append(next, partialOrder{
				width: s.width + c.Width - min(c.BlankRight, s.left),
				left:  c.BlankLeft,
				right: s.right,
				order: prependCopy(id, s.order),
			})
			// Insert at the right end.
			next = append(next, partialOrder{
				width: s.width + c.Width - min(c.BlankLeft, s.right),
				left:  s.left,
				right: c.BlankRight,
				order: appendCopy(s.order, id),
			})
		}
		solutions = pruneInferior(next, pruneThreshold)
	}

	best := solutions[0]
	for _, s := range solutions[1:] {
		if s.width < best.width {
			best = s
		}
	}
	return best.order
}

func prependCopy(id int, order []int) []int {
	out := make([]int, 0, len(order)+1)
	out = append(out, id)
	return append(out, order...)
}

func appendCopy(order []int, id int) []int {
	out := make([]int, 0, len(order)+1)
	out = append(out, order...)
	return append(out, id)
}

// pruneInferior removes dominated partial solutions. Solution B is dominated
// by A when A is no wider and both of A's outer blanks are at least as large
// (so any future extension of B can be replicated at least as well from A).
// If more than limit solutions survive, the narrowest ones are kept.
func pruneInferior(sols []partialOrder, limit int) []partialOrder {
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].width != sols[j].width {
			return sols[i].width < sols[j].width
		}
		if sols[i].left != sols[j].left {
			return sols[i].left > sols[j].left
		}
		return sols[i].right > sols[j].right
	})
	var kept []partialOrder
	for _, s := range sols {
		dominated := false
		for _, k := range kept {
			if k.width <= s.width && k.left >= s.left && k.right >= s.right {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, s)
		}
	}
	if len(kept) > limit {
		kept = kept[:limit]
	}
	return kept
}

// positionsForOrder packs an ordered row flush left and returns the x
// coordinate of every character's bounding box.
func positionsForOrder(in *core.Instance, order []int) []int {
	xs := make([]int, len(order))
	for k := 1; k < len(order); k++ {
		prev := in.Characters[order[k-1]]
		cur := in.Characters[order[k]]
		xs[k] = xs[k-1] + prev.Width - core.HOverlap(prev, cur)
	}
	return xs
}

// refineAllRows orders every row, legalising rows that overflow the stencil
// width by evicting their lowest-profit characters. Rows are refined on the
// worker pool: the DP and the eviction loop of row j only touch row j's
// state and the characters assigned to it (unassign on an evicted character
// mutates s.rows[j], s.assigned[i] and s.solved[i] for a character i that no
// other row holds), so rows are independent and the outcome is identical for
// any worker count.
func (s *solver) refineAllRows() {
	profits := s.currentProfits()
	par.For(s.opt.workerCount(), s.m, func(j int) {
		r := &s.rows[j]
		if len(r.chars) == 0 {
			r.order, r.width = nil, 0
			return
		}
		order := refineRow(s.in, r.chars, s.opt.PruneThreshold)
		width := core.MinRowLength(s.in, order)
		for width > s.w && len(order) > 0 {
			if s.ctx.Err() != nil {
				break // Solve surfaces ctx.Err(); partial orders are discarded
			}
			// Evict the lowest-profit character and re-run the ordering.
			worst := 0
			for k := 1; k < len(order); k++ {
				if profits[order[k]] < profits[order[worst]] {
					worst = k
				}
			}
			evicted := order[worst]
			s.unassign(evicted)
			s.solved[evicted] = true
			order = refineRow(s.in, s.rows[j].chars, s.opt.PruneThreshold)
			width = core.MinRowLength(s.in, order)
		}
		r.order = order
		r.width = width
	})
}

// rowWidthWithOrder recomputes a row's packed width for an arbitrary order.
func (s *solver) rowWidthWithOrder(order []int) int {
	return core.MinRowLength(s.in, order)
}

// buildSolution assembles the final core.Solution from the per-row orders.
func (s *solver) buildSolution() *core.Solution {
	sol := &core.Solution{Selected: s.selection()}
	for j := range s.rows {
		r := &s.rows[j]
		if len(r.order) == 0 {
			continue
		}
		xs := positionsForOrder(s.in, r.order)
		sol.Rows = append(sol.Rows, core.Row{
			Y:     j * s.in.RowHeight,
			Chars: append([]int(nil), r.order...),
			X:     xs,
		})
	}
	sol.PlacementsFromRows()
	return sol
}
