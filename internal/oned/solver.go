package oned

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"eblow/internal/core"
	"eblow/internal/ilp"
	"eblow/internal/knapsack"
	"eblow/internal/lp"
	"eblow/internal/par"
)

// solver holds the working state of one E-BLOW 1D run.
type solver struct {
	ctx context.Context
	in  *core.Instance
	opt Options

	n, m, w int // characters, rows, stencil width

	width  []int // bounding-box widths
	sblank []int // symmetric blanks s_i
	effW   []int // w_i - s_i

	assigned []int  // row index per character, -1 when not on the stencil
	solved   []bool // successive-rounding bookkeeping
	profits  []float64

	rows []rowState

	// rowGroup[j] is the row group owning row j (-1 = open row); nil when
	// Options.RowGroups is unset. charGroups[i] is the bitmask of groups
	// whose regions character i repeats in.
	rowGroup   []int
	charGroups []uint64

	// lastRelax maps character id -> per-row fractions from the most recent
	// LP relaxation (used by fast convergence and the Fig. 6 trace).
	lastRelax map[int][]float64

	// relaxWarm caches the previous relaxation's optimal bases by variable
	// and constraint identity (SimplexLP backend only). Each rounding
	// iteration's re-solves warm-start from it, and fast convergence seeds
	// its branch-and-bound root from it. Frozen once built: the next
	// iteration's blocks read it concurrently, lookups only.
	relaxWarm *relaxWarm

	trace Trace
}

// rowState tracks one stencil row during assignment (before refinement).
type rowState struct {
	chars    []int
	usedEff  int // sum of (w_i - s_i) over assigned characters
	maxBlank int // max s_i over assigned characters
	order    []int
	width    int
}

// Solve runs the full E-BLOW 1D flow on the instance and returns the stencil
// plan plus the iteration trace. The context cancels the run between stages
// and between rounding iterations: an already-done context returns ctx.Err()
// before any work happens, and a context that expires mid-run stops the
// planner at the next checkpoint with ctx.Err(). The flow is deterministic
// for a given instance and options regardless of opt.Workers.
func Solve(ctx context.Context, in *core.Instance, opt Options) (*core.Solution, *Trace, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if in.Kind != core.OneD {
		return nil, nil, fmt.Errorf("oned: instance %q is not a 1DOSP instance", in.Name)
	}
	opt = opt.withDefaults()
	if len(opt.RowGroups) == 0 {
		// An instance generated in per-column-cell-band mode carries its
		// banding with it; explicit options still override.
		opt.RowGroups = in.RowGroups
	}

	s, err := newSolver(ctx, in, opt)
	if err != nil {
		return nil, nil, err
	}

	s.successiveRounding()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opt.EnableFastConvergence {
		s.fastConvergence()
		s.convergeTail()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	s.refineAllRows()
	if opt.EnablePostSwap {
		s.postSwap()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opt.EnablePostInsertion {
		s.postInsert()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	sol := s.buildSolution()
	name := "E-BLOW-1"
	if !opt.EnableFastConvergence && !opt.EnablePostInsertion {
		name = "E-BLOW-0"
	}
	sol.Finalize(in, name, time.Since(start))
	return sol, &s.trace, nil
}

// newSolver builds the working state for one run; opt must already have its
// defaults filled in.
func newSolver(ctx context.Context, in *core.Instance, opt Options) (*solver, error) {
	s := &solver{
		ctx: ctx,
		in:  in,
		opt: opt,
		n:   in.NumCharacters(),
		m:   in.NumRows(),
		w:   in.StencilWidth,
	}
	if s.m == 0 {
		return nil, fmt.Errorf("oned: stencil of %q has no rows", in.Name)
	}
	if err := s.initRowGroups(); err != nil {
		return nil, err
	}
	s.width = make([]int, s.n)
	s.sblank = make([]int, s.n)
	s.effW = make([]int, s.n)
	s.assigned = make([]int, s.n)
	s.solved = make([]bool, s.n)
	s.rows = make([]rowState, s.m)
	for i, c := range in.Characters {
		s.width[i] = c.Width
		s.sblank[i] = c.SymmetricHBlank()
		s.effW[i] = c.Width - s.sblank[i]
		s.assigned[i] = -1
		if c.Width > s.w {
			// Can never fit on a row; treat as solved (never selected).
			s.solved[i] = true
		}
	}
	return s, nil
}

// selection returns the current selection vector (characters assigned to a
// row).
func (s *solver) selection() []bool {
	sel := make([]bool, s.n)
	for i, r := range s.assigned {
		sel[i] = r >= 0
	}
	return sel
}

// regionTimes returns the current per-region writing times. Regions are
// evaluated on the worker pool; each worker owns whole regions, so the
// result matches the sequential core.Instance.RegionTimes exactly.
func (s *solver) regionTimes() []int64 {
	sel := s.selection()
	t := s.in.VSBTime()
	par.For(s.opt.workerCount(), len(t), func(r int) {
		for i, on := range sel {
			if on {
				t[r] -= s.in.Reduction(i, r)
			}
		}
	})
	return t
}

// currentProfits evaluates the profit of every character for the current
// selection: the dynamic Eqn. (6) value by default, or the static total
// reduction when the StaticProfit ablation is enabled. The per-character
// profit sums are independent, so they are computed on the worker pool with
// each worker writing only its own indices — bit-identical to the
// sequential core.Instance.Profits for any worker count.
func (s *solver) currentProfits() []float64 {
	if s.opt.StaticProfit {
		return s.in.StaticProfits()
	}
	times := s.regionTimes()
	tmax := core.MaxInt64(times)
	profits := make([]float64, s.n)
	if tmax <= 0 {
		return profits
	}
	par.For(s.opt.workerCount(), s.n, func(i int) {
		var p float64
		for r, rep := range s.in.Characters[i].Repeats {
			w := float64(times[r]) / float64(tmax)
			p += w * float64(s.in.Characters[i].VSBShots-1) * float64(rep)
		}
		profits[i] = p
	})
	return profits
}

// fits reports whether character i can be added to row j under the
// symmetric-blank capacity model (Lemma 1 of the paper) and the row-group
// candidacy.
func (s *solver) fits(i, j int) bool {
	if !s.allowed(i, j) {
		return false
	}
	r := &s.rows[j]
	maxBlank := r.maxBlank
	if s.sblank[i] > maxBlank {
		maxBlank = s.sblank[i]
	}
	return r.usedEff+s.effW[i]+maxBlank <= s.w
}

// assign puts character i on row j.
func (s *solver) assign(i, j int) {
	r := &s.rows[j]
	r.chars = append(r.chars, i)
	r.usedEff += s.effW[i]
	if s.sblank[i] > r.maxBlank {
		r.maxBlank = s.sblank[i]
	}
	s.assigned[i] = j
	s.solved[i] = true
}

// unassign removes character i from its row (used by post-swap).
func (s *solver) unassign(i int) {
	j := s.assigned[i]
	if j < 0 {
		return
	}
	r := &s.rows[j]
	for k, id := range r.chars {
		if id == i {
			r.chars = append(r.chars[:k], r.chars[k+1:]...)
			break
		}
	}
	r.usedEff -= s.effW[i]
	r.maxBlank = 0
	for _, id := range r.chars {
		if s.sblank[id] > r.maxBlank {
			r.maxBlank = s.sblank[id]
		}
	}
	s.assigned[i] = -1
}

// unsolvedIDs returns the characters that still need a rounding decision.
func (s *solver) unsolvedIDs() []int {
	var ids []int
	for i := 0; i < s.n; i++ {
		if !s.solved[i] {
			ids = append(ids, i)
		}
	}
	return ids
}

// rowCapacities returns the remaining symmetric-blank capacity of every row
// for the LP relaxation. Empty rows reserve space for the largest blank
// among the unsolved characters (the W - maxs bound of formulation (5)).
func (s *solver) rowCapacities(unsolved []int) []float64 {
	maxBlankUnsolved := 0
	for _, i := range unsolved {
		if s.sblank[i] > maxBlankUnsolved {
			maxBlankUnsolved = s.sblank[i]
		}
	}
	caps := make([]float64, s.m)
	for j := range s.rows {
		r := &s.rows[j]
		reserve := r.maxBlank
		if len(r.chars) == 0 {
			reserve = maxBlankUnsolved
		}
		c := s.w - r.usedEff - reserve
		if c < 0 {
			c = 0
		}
		caps[j] = float64(c)
	}
	return caps
}

// solveRelaxation solves the LP relaxation of the simplified formulation for
// the unsolved characters and returns the fractional assignment matrix
// indexed like `unsolved`. The relaxation is split into its independent
// candidacy blocks (one block covering everything when no row groups are
// configured) and the blocks are solved concurrently on the worker pool;
// the relaxation wall-clock is accumulated into the trace.
func (s *solver) solveRelaxation(unsolved []int, caps []float64) ([][]float64, error) {
	start := time.Now()
	a, err := s.solveRelaxationBlocks(unsolved, caps, s.relaxBlocks(unsolved))
	s.trace.RelaxElapsed += time.Since(start)
	return a, err
}

// successiveRounding is Algorithm 1 of the paper: solve the relaxation,
// round the variables close to the iteration maximum, update profits and
// repeat until the stencil is full or assignments stall.
func (s *solver) successiveRounding() {
	type entry struct {
		char, row int
		value     float64
	}
	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		if s.ctx.Err() != nil {
			return
		}
		unsolved := s.unsolvedIDs()
		if len(unsolved) == 0 {
			return
		}
		s.profits = s.currentProfits()
		caps := s.rowCapacities(unsolved)
		a, err := s.solveRelaxation(unsolved, caps)
		if err != nil {
			return
		}

		// Remember the latest relaxation for fast convergence / tracing.
		s.lastRelax = make(map[int][]float64, len(unsolved))
		for k, i := range unsolved {
			s.lastRelax[i] = a[k]
		}

		apq := 0.0
		var entries []entry
		for k, i := range unsolved {
			for j := 0; j < s.m; j++ {
				v := a[k][j]
				if v > apq {
					apq = v
				}
				if v > 1e-9 {
					entries = append(entries, entry{char: i, row: j, value: v})
				}
			}
		}
		if apq <= 1e-9 {
			s.recordIteration(0)
			return
		}
		threshold := apq * s.opt.Thinv
		// Round in the relaxation's own ranking: by fractional value, then by
		// profit density. Density keeps the realised selection close to the
		// fractional-knapsack optimum of the relaxation; ranking ties by
		// absolute profit instead measurably erodes the total reduction.
		density := func(i int) float64 {
			if s.effW[i] <= 0 {
				return s.profits[i]
			}
			return s.profits[i] / float64(s.effW[i])
		}
		sort.Slice(entries, func(x, y int) bool {
			if entries[x].value != entries[y].value {
				return entries[x].value > entries[y].value
			}
			return density(entries[x].char) > density(entries[y].char)
		})

		capAssign := s.opt.MaxAssignPerIteration
		if capAssign <= 0 {
			capAssign = s.n / 12
			if capAssign < 25 {
				capAssign = 25
			}
		}
		assignedThisIter := 0
		for _, e := range entries {
			if e.value < threshold || assignedThisIter >= capAssign {
				break
			}
			if s.solved[e.char] {
				continue
			}
			if s.fits(e.char, e.row) {
				s.assign(e.char, e.row)
				assignedThisIter++
				continue
			}
			// The designated row is full (typically because the relaxation
			// split this character across a row boundary); any other row
			// with room is just as good.
			for j := 0; j < s.m; j++ {
				if j != e.row && s.fits(e.char, j) {
					s.assign(e.char, j)
					assignedThisIter++
					break
				}
			}
		}
		s.recordIteration(assignedThisIter)

		if assignedThisIter == 0 {
			return
		}
		if s.opt.EnableFastConvergence && iter >= 1 &&
			assignedThisIter < s.convergenceTrigger() {
			return
		}
	}
}

func (s *solver) convergenceTrigger() int {
	t := int(math.Ceil(s.opt.ConvergenceFraction * float64(s.n)))
	if t < 2 {
		t = 2
	}
	return t
}

func (s *solver) recordIteration(assigned int) {
	if !s.opt.CollectTrace {
		return
	}
	s.trace.AssignedPerIteration = append(s.trace.AssignedPerIteration, assigned)
	s.trace.UnsolvedPerIteration = append(s.trace.UnsolvedPerIteration, len(s.unsolvedIDs()))
}

// fastConvergence is Algorithm 2: variables below Lth are fixed to zero,
// variables above Uth are rounded up, and the remaining ones are decided by
// a small ILP solved with branch and bound.
func (s *solver) fastConvergence() {
	unsolved := s.unsolvedIDs()
	if len(unsolved) == 0 || s.lastRelax == nil {
		return
	}
	s.trace.UsedFastConvergence = true
	s.profits = s.currentProfits()

	if s.opt.CollectTrace {
		for _, i := range unsolved {
			if vals, ok := s.lastRelax[i]; ok {
				best := 0.0
				for _, v := range vals {
					if v > best {
						best = v
					}
				}
				s.trace.LastLPValues = append(s.trace.LastLPValues, best)
			}
		}
	}

	type pair struct {
		char, row int
		value     float64
	}
	var undecided []pair
	for _, i := range unsolved {
		vals, ok := s.lastRelax[i]
		if !ok {
			continue
		}
		for j := 0; j < s.m; j++ {
			v := vals[j]
			switch {
			case v > s.opt.Uth:
				if !s.solved[i] && s.fits(i, j) {
					s.assign(i, j)
				}
			case v >= s.opt.Lth:
				undecided = append(undecided, pair{char: i, row: j, value: v})
			}
		}
	}
	// Characters whose every variable fell below Lth stay off the stencil;
	// nothing to do for them (they simply remain unassigned).

	// Drop pairs whose character got assigned by the Uth pass.
	kept := undecided[:0]
	for _, p := range undecided {
		if !s.solved[p.char] {
			kept = append(kept, p)
		}
	}
	undecided = kept
	if len(undecided) == 0 {
		return
	}
	if len(undecided) > s.opt.MaxILPVariables {
		sort.Slice(undecided, func(x, y int) bool { return undecided[x].value > undecided[y].value })
		undecided = undecided[:s.opt.MaxILPVariables]
	}
	s.trace.FastILPVariables = len(undecided)

	// Build the ILP over the undecided pairs.
	caps := s.rowCapacities(s.unsolvedIDs())
	prob := lp.NewProblem(len(undecided))
	obj := make([]float64, len(undecided))
	binaries := make([]int, len(undecided))
	for v, p := range undecided {
		obj[v] = s.profits[p.char]
		binaries[v] = v
	}
	prob.SetObjective(obj, true)
	// Row capacity constraints.
	rowTerms := make(map[int][]lp.Term)
	charTerms := make(map[int][]lp.Term)
	for v, p := range undecided {
		rowTerms[p.row] = append(rowTerms[p.row], lp.Term{Var: v, Coeff: float64(s.effW[p.char])})
		charTerms[p.char] = append(charTerms[p.char], lp.Term{Var: v, Coeff: 1})
	}
	// Constraint order shapes the simplex pivot sequence and the B&B
	// tree, so it must not come from map iteration: add rows and chars in
	// sorted key order to keep the fast-ILP plan bit-identical run to run.
	rows := make([]int, 0, len(rowTerms))
	for row := range rowTerms {
		rows = append(rows, row)
	}
	sort.Ints(rows)
	for _, row := range rows {
		prob.AddConstraint(rowTerms[row], lp.LE, caps[row])
	}
	chars := make([]int, 0, len(charTerms))
	for c := range charTerms {
		chars = append(chars, c)
	}
	sort.Ints(chars)
	for _, c := range chars {
		prob.AddConstraint(charTerms[c], lp.LE, 1)
	}
	// With the SimplexLP backend the fast ILP is a sub-problem of the last
	// relaxation (same (char,row) variables and the same constraint shapes,
	// restricted to the undecided pairs), so the cached relaxation basis
	// seeds the branch-and-bound root: statuses are looked up per identity,
	// with cold defaults for anything the cache does not know, and the lp
	// solver repairs the basic count on adoption.
	var rootBasis *lp.Basis
	if s.opt.Backend == SimplexLP && !s.opt.ColdLP && s.relaxWarm != nil {
		st := make([]lp.VarStatus, len(undecided)+len(rows)+len(chars))
		for v, p := range undecided {
			if w, ok := s.relaxWarm.vars[varKey{char: p.char, row: p.row}]; ok {
				st[v] = w
			} else {
				st[v] = lp.AtLower
			}
		}
		pos := len(undecided)
		for _, row := range rows {
			if w, ok := s.relaxWarm.rows[row]; ok {
				st[pos] = w
			} else {
				st[pos] = lp.Basic
			}
			pos++
		}
		for _, c := range chars {
			if w, ok := s.relaxWarm.chars[c]; ok {
				st[pos] = w
			} else {
				st[pos] = lp.Basic
			}
			pos++
		}
		rootBasis = &lp.Basis{Status: st}
	}
	// The ILP engine keeps its result worker-count independent, so handing
	// it the planner's worker budget preserves the deterministic-plan
	// contract while the fast-convergence step stops being single-threaded.
	res, err := ilp.Solve(s.ctx, ilp.NewBinaryProblem(prob, binaries), ilp.Options{
		Maximize:  true,
		TimeLimit: s.opt.ILPTimeLimit,
		Workers:   s.opt.workerCount(),
		RootBasis: rootBasis,
		ColdLP:    s.opt.ColdLP,
	})
	if err != nil || res.X == nil {
		return
	}
	s.trace.FastILPPivots = res.LPPivots
	// Apply the ILP decisions (highest value first so capacity conflicts are
	// resolved in favour of the more attractive pairs).
	type chosen struct {
		pair
	}
	var picks []chosen
	for v, p := range undecided {
		if res.X[v] > 0.5 {
			picks = append(picks, chosen{p})
		}
	}
	sort.Slice(picks, func(x, y int) bool { return picks[x].value > picks[y].value })
	for _, c := range picks {
		if !s.solved[c.char] && s.fits(c.char, c.row) {
			s.assign(c.char, c.row)
		}
	}
}

// convergeTail decides the remaining unassigned characters with an exact
// 0/1 knapsack over the aggregate remaining capacity and assigns the chosen
// ones first-fit. This is the structured counterpart of handing the whole
// residual formulation (4) to the ILP: the LP relaxation excludes characters
// purely by profit density, which can strand wide characters with a large
// absolute writing-time reduction; the exact knapsack re-evaluates that
// trade-off by total profit before the stencil capacity is gone.
func (s *solver) convergeTail() {
	s.profits = s.currentProfits()
	var ids []int
	for i := 0; i < s.n; i++ {
		if s.assigned[i] < 0 && s.width[i] <= s.w && s.profits[i] > 0 {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		return
	}
	remaining := 0
	for j := range s.rows {
		r := &s.rows[j]
		c := s.w - r.usedEff - r.maxBlank
		if c > 0 {
			remaining += c
		}
	}
	if remaining <= 0 {
		return
	}
	weights := make([]int, len(ids))
	values := make([]float64, len(ids))
	for k, i := range ids {
		weights[k] = s.effW[i]
		values[k] = s.profits[i]
	}
	_, chosen := knapsack.ExactBinary(weights, values, remaining)
	// Assign the chosen characters first-fit, most profitable first.
	var picked []int
	for k, ok := range chosen {
		if ok {
			picked = append(picked, ids[k])
		}
	}
	sort.Slice(picked, func(a, b int) bool { return s.profits[picked[a]] > s.profits[picked[b]] })
	for _, i := range picked {
		for j := 0; j < s.m; j++ {
			if s.fits(i, j) {
				s.assign(i, j)
				break
			}
		}
	}
}
