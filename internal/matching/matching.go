// Package matching implements maximum-weight bipartite matching via the
// Hungarian algorithm. E-BLOW uses it in the post-insertion stage of the 1D
// planner: unselected characters are matched to stencil rows with spare
// capacity so that the total inserted profit is maximized under the
// constraint of at most one insertion per row (Fig. 8 of the paper).
package matching

import "math"

// Edge is an admissible (left, right) pair with a non-negative weight.
// Edges with negative weight are ignored (matching them can never help).
type Edge struct {
	L, R   int
	Weight float64
}

// MaxWeight computes a maximum-weight matching of the bipartite graph with
// nLeft left vertices, nRight right vertices and the given edges. It returns
// the matched right vertex for every left vertex (-1 when unmatched) and the
// total weight. The matching is not required to be perfect: vertices stay
// unmatched whenever that is at least as good.
//
// The implementation is the O(n^3) Hungarian algorithm on a square matrix
// padded with zero-weight cells; zero-weight assignments are reported as
// "unmatched".
func MaxWeight(nLeft, nRight int, edges []Edge) ([]int, float64) {
	match := make([]int, nLeft)
	for i := range match {
		match[i] = -1
	}
	if nLeft == 0 || nRight == 0 || len(edges) == 0 {
		return match, 0
	}

	n := nLeft
	if nRight > n {
		n = nRight
	}
	// weight[i][j] >= 0; absent edges have weight 0.
	weight := make([][]float64, n)
	for i := range weight {
		weight[i] = make([]float64, n)
	}
	for _, e := range edges {
		if e.L < 0 || e.L >= nLeft || e.R < 0 || e.R >= nRight {
			continue
		}
		if e.Weight > weight[e.L][e.R] {
			weight[e.L][e.R] = e.Weight
		}
	}

	// Hungarian algorithm for the assignment problem, maximization form,
	// using the standard shortest-augmenting-path formulation on costs
	// cost[i][j] = maxW - weight[i][j].
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if weight[i][j] > maxW {
				maxW = weight[i][j]
			}
		}
	}
	cost := func(i, j int) float64 { return maxW - weight[i][j] }

	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based, 0 = none)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j] - 1
		r := j - 1
		if i < 0 || i >= nLeft || r >= nRight {
			continue
		}
		if weight[i][r] > 0 {
			match[i] = r
			total += weight[i][r]
		}
	}
	return match, total
}
