package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyInputs(t *testing.T) {
	m, w := MaxWeight(0, 0, nil)
	if len(m) != 0 || w != 0 {
		t.Errorf("empty: %v %v", m, w)
	}
	m, w = MaxWeight(3, 0, nil)
	if w != 0 || len(m) != 3 || m[0] != -1 {
		t.Errorf("no right side: %v %v", m, w)
	}
	m, w = MaxWeight(2, 2, nil)
	if w != 0 || m[0] != -1 || m[1] != -1 {
		t.Errorf("no edges: %v %v", m, w)
	}
}

func TestSimpleAssignment(t *testing.T) {
	// Two characters, two rows: the cross assignment is optimal (5+4=9 vs 3+2=5).
	edges := []Edge{
		{L: 0, R: 0, Weight: 3},
		{L: 0, R: 1, Weight: 5},
		{L: 1, R: 0, Weight: 4},
		{L: 1, R: 1, Weight: 2},
	}
	m, w := MaxWeight(2, 2, edges)
	if math.Abs(w-9) > 1e-9 {
		t.Errorf("weight = %v, want 9", w)
	}
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("matching = %v, want [1 0]", m)
	}
}

func TestUnbalancedSides(t *testing.T) {
	// Three left, one right: only the heaviest edge should be used.
	edges := []Edge{
		{L: 0, R: 0, Weight: 1},
		{L: 1, R: 0, Weight: 7},
		{L: 2, R: 0, Weight: 3},
	}
	m, w := MaxWeight(3, 1, edges)
	if math.Abs(w-7) > 1e-9 {
		t.Errorf("weight = %v, want 7", w)
	}
	if m[0] != -1 || m[1] != 0 || m[2] != -1 {
		t.Errorf("matching = %v, want [-1 0 -1]", m)
	}
}

func TestIgnoresNegativeAndOutOfRangeEdges(t *testing.T) {
	edges := []Edge{
		{L: 0, R: 0, Weight: -5},
		{L: 5, R: 0, Weight: 100}, // out of range, ignored
		{L: 0, R: 9, Weight: 100}, // out of range, ignored
		{L: 1, R: 1, Weight: 2},
	}
	m, w := MaxWeight(2, 2, edges)
	if math.Abs(w-2) > 1e-9 {
		t.Errorf("weight = %v, want 2", w)
	}
	if m[0] != -1 || m[1] != 1 {
		t.Errorf("matching = %v, want [-1 1]", m)
	}
}

func TestDuplicateEdgesKeepMax(t *testing.T) {
	edges := []Edge{
		{L: 0, R: 0, Weight: 2},
		{L: 0, R: 0, Weight: 6},
		{L: 0, R: 0, Weight: 4},
	}
	_, w := MaxWeight(1, 1, edges)
	if math.Abs(w-6) > 1e-9 {
		t.Errorf("weight = %v, want 6", w)
	}
}

// bruteForce finds the optimal matching weight by trying every injective
// assignment of left vertices to right vertices (including leaving vertices
// unmatched).
func bruteForce(nLeft, nRight int, w [][]float64) float64 {
	best := 0.0
	usedR := make([]bool, nRight)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc > best {
			best = acc
		}
		if i == nLeft {
			return
		}
		rec(i+1, acc) // leave i unmatched
		for r := 0; r < nRight; r++ {
			if !usedR[r] && w[i][r] > 0 {
				usedR[r] = true
				rec(i+1, acc+w[i][r])
				usedR[r] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: Hungarian result equals brute force on random small graphs.
func TestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := 1 + rng.Intn(6)
		nR := 1 + rng.Intn(6)
		w := make([][]float64, nL)
		var edges []Edge
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				if rng.Float64() < 0.6 {
					w[i][j] = float64(rng.Intn(50))
					if w[i][j] > 0 {
						edges = append(edges, Edge{L: i, R: j, Weight: w[i][j]})
					}
				}
			}
		}
		_, got := MaxWeight(nL, nR, edges)
		want := bruteForce(nL, nR, w)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the returned matching is injective (no right vertex reused) and
// its weight equals the sum of matched edge weights.
func TestMatchingIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(8)
		weights := make(map[[2]int]float64)
		var edges []Edge
		for i := 0; i < nL; i++ {
			for j := 0; j < nR; j++ {
				if rng.Float64() < 0.5 {
					w := float64(rng.Intn(30) + 1)
					weights[[2]int{i, j}] = w
					edges = append(edges, Edge{L: i, R: j, Weight: w})
				}
			}
		}
		match, total := MaxWeight(nL, nR, edges)
		seen := make(map[int]bool)
		sum := 0.0
		for i, r := range match {
			if r == -1 {
				continue
			}
			if seen[r] {
				return false
			}
			seen[r] = true
			w, ok := weights[[2]int{i, r}]
			if !ok {
				return false
			}
			sum += w
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
