// The dispatcher's write-ahead log: one NDJSON record per public job
// transition. Accepted records carry the original submit body verbatim, so
// a dead node's jobs can be re-dispatched to a surviving peer (and a
// restarted dispatcher can rebuild its whole table) from the log alone.
// Unlike the service WAL, records here are fsynced synchronously — the
// dispatcher's per-record payload is one HTTP request body, and the ack
// must not promise durability before the spec is on disk.
package dispatch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// WAL record ops, in lifecycle order. A "dispatched" record is advisory —
// it lets a restarted dispatcher re-attach to a backend job instead of
// re-submitting it — while "accepted" and "terminal" carry the durability
// contract: accepted-but-not-terminal jobs are exactly the failover set.
const (
	walOpAccepted   = "accepted"
	walOpDispatched = "dispatched"
	walOpTerminal   = "terminal"
)

// walRecord is one NDJSON line of the dispatcher log.
type walRecord struct {
	Op   string    `json:"op"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// Accepted fields: the verbatim submit body plus the derived identity
	// the dispatcher needs without re-decoding the instance.
	Body       json.RawMessage `json:"body,omitempty"`
	RoutingKey string          `json:"routingKey,omitempty"`
	Name       string          `json:"name,omitempty"`
	Kind       string          `json:"kind,omitempty"`
	Solver     string          `json:"solver,omitempty"`
	Label      string          `json:"label,omitempty"`

	// Dispatch assignment.
	Node      string `json:"node,omitempty"`
	BackendID string `json:"backendId,omitempty"`

	// Terminal outcome.
	State  string `json:"state,omitempty"`
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
}

// WALStats summarizes what a boot-time replay found in the log.
type WALStats struct {
	// Records is the number of well-formed records read at open.
	Records int
	// SkippedLines counts unparseable lines (typically one torn tail line
	// after a hard kill mid-append); they are ignored, never fatal.
	SkippedLines int
	// Resumed is the number of non-terminal jobs the dispatcher picked back
	// up (re-attached or re-dispatched).
	Resumed int
	// Terminal is the number of finished job records restored.
	Terminal int
}

// ErrWALClosed is returned by WAL operations after Close.
var ErrWALClosed = errors.New("dispatch: WAL is closed")

// WAL is the dispatcher's durable job log. Open it with OpenWAL and hand
// it to Config.WAL; the Dispatcher owns it from then on.
type WAL struct {
	path string
	// tornTail records (at load) that the file does not end in a newline;
	// OpenWAL terminates the fragment before appending.
	tornTail bool

	mu sync.Mutex
	// guarded by mu
	f *os.File
	// guarded by mu
	closed bool
	// guarded by mu — parsed at open, consumed once by New
	replay []walRecord
	// guarded by mu
	stats WALStats
}

// OpenWAL opens (creating if needed) the dispatcher log at path and parses
// its existing records for replay. Unparseable lines — e.g. a torn tail
// after kill -9 mid-append — are counted in Stats and skipped.
func OpenWAL(path string) (*WAL, error) {
	w := &WAL{path: path}
	if err := w.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: opening WAL: %w", err)
	}
	if w.tornTail {
		// A kill mid-append left a partial last line. Terminate it now so
		// the next record starts on its own line instead of concatenating
		// onto the fragment (which would corrupt that record too).
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, fmt.Errorf("dispatch: terminating torn WAL tail: %w", err)
		}
	}
	w.f = f
	return w, nil
}

// load parses the existing log into w.replay, tolerating a torn tail.
func (w *WAL) load() error {
	f, err := os.Open(w.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dispatch: reading WAL: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var recs []walRecord
	var skipped int
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) > 0 {
			w.tornTail = true
		}
		if len(bytes.TrimSpace(line)) > 0 {
			var rec walRecord
			if json.Unmarshal(line, &rec) != nil || rec.Op == "" || rec.Job == "" {
				skipped++
			} else {
				recs = append(recs, rec)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dispatch: reading WAL: %w", err)
		}
	}
	w.mu.Lock()
	w.replay, w.stats = recs, WALStats{Records: len(recs), SkippedLines: skipped}
	w.mu.Unlock()
	return nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Stats reports what the boot-time replay found; the Resumed/Terminal
// counts are filled in once a Dispatcher consumed the log.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// replayRecords hands the parsed records to the dispatcher, once.
func (w *WAL) replayRecords() []walRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs := w.replay
	w.replay = nil
	return recs
}

func (w *WAL) setReplayStats(resumed, terminal int) {
	w.mu.Lock()
	w.stats.Resumed, w.stats.Terminal = resumed, terminal
	w.mu.Unlock()
}

// Append writes one record and fsyncs it before returning: when Append
// returns nil the record survives any crash.
func (w *WAL) Append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dispatch: encoding WAL record: %w", err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("dispatch: appending WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dispatch: syncing WAL: %w", err)
	}
	return nil
}

// Close closes the log. Idempotent and safe for concurrent callers.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}
