package dispatch

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWALAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []walRecord{
		{Op: walOpAccepted, Job: "j1", Time: time.Unix(10, 0).UTC(), Body: []byte(`{"benchmark":"1T-1"}`), RoutingKey: "rk", Name: "1T-1", Kind: "1D", Solver: "greedy"},
		{Op: walOpDispatched, Job: "j1", Node: "a", BackendID: "j1"},
		{Op: walOpTerminal, Job: "j1", Node: "a", BackendID: "j1", State: "done", Digest: "sha"},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(walRecord{Op: walOpAccepted, Job: "j2"}); err != ErrWALClosed {
		t.Fatalf("Append after Close = %v, want ErrWALClosed", err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if s := w2.Stats(); s.Records != 3 || s.SkippedLines != 0 {
		t.Fatalf("Stats = %+v, want 3 records, 0 skipped", s)
	}
	got := w2.replayRecords()
	if len(got) != 3 || got[0].Op != walOpAccepted || got[2].Digest != "sha" {
		t.Fatalf("replayRecords = %+v", got)
	}
	if string(got[0].Body) != `{"benchmark":"1T-1"}` {
		t.Fatalf("accepted body = %s", got[0].Body)
	}
	if again := w2.replayRecords(); again != nil {
		t.Fatalf("replayRecords must hand the log over once, got %d more", len(again))
	}
}

// TestWALTornTailSkipped pins the kill -9 contract: a partial final line is
// skipped and counted, never fatal, and the log stays appendable.
func TestWALTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord{Op: walOpAccepted, Job: "j1", Body: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"terminal","job":"j1","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL after torn tail: %v", err)
	}
	defer w2.Close()
	if s := w2.Stats(); s.Records != 1 || s.SkippedLines != 1 {
		t.Fatalf("Stats = %+v, want 1 record, 1 skipped line", s)
	}
	if err := w2.Append(walRecord{Op: walOpTerminal, Job: "j1", State: "done"}); err != nil {
		t.Fatalf("Append after torn-tail open: %v", err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	// OpenWAL terminated the torn fragment before w2's append, so the
	// record written after the crash must replay intact alongside the
	// original one.
	if s := w3.Stats(); s.Records != 2 || s.SkippedLines != 1 {
		t.Fatalf("Stats after reopen = %+v, want 2 records, 1 skipped line", s)
	}
	got := w3.replayRecords()
	if len(got) != 2 || got[1].Op != walOpTerminal || got[1].State != "done" {
		t.Fatalf("replay after torn-tail append = %+v", got)
	}
}
