package dispatch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzDispatchProxy fuzzes the dispatcher's proxy surface: one backend job
// document and one NDJSON event stream, both attacker-shaped. The
// invariants: no panic, a document that decodes gets the public identity
// stamped in, and every line the event proxy emits is well-formed JSON
// carrying the public job ID — torn or malformed backend lines are
// dropped, never forwarded.
func FuzzDispatchProxy(f *testing.F) {
	f.Add(
		[]byte(`{"id":"b7","state":"done","result":{"digest":"sha256:ab","objective":12345678901234}}`),
		[]byte("{\"seq\":1,\"job\":\"b7\",\"state\":\"queued\"}\n{\"seq\":2,\"job\":\"b7\",\"state\":\"done\"}\n"),
	)
	f.Add(
		[]byte(`{"id":"b1","state":"running"}`),
		[]byte("{\"seq\":1,\"job\":\"b1\",\"state\":\"running\"}\n{\"seq\":2,\"job\":\"b1\",\"st"), // torn tail
	)
	f.Add([]byte(`null`), []byte("not json at all\n\n{\"state\":\"done\"}\n"))
	f.Add([]byte(`[1,2,3]`), []byte("{\"state\":8}\n{}\n"))
	f.Add([]byte(`{"error":"boom","state":7}`), []byte("{\"state\":\"done\"} trailing junk\n"))

	f.Fuzz(func(t *testing.T, doc, stream []byte) {
		m, err := rewriteJobJSON(doc, "j9", "node-x")
		if err == nil {
			if m["id"] != "j9" {
				t.Fatalf("rewritten document id = %v, want j9", m["id"])
			}
			if m["node"] != "node-x" {
				t.Fatalf("rewritten document node = %v, want node-x", m["node"])
			}
			// The public document must re-encode; UseNumber means numbers
			// survive as json.Number, never as lossy float64.
			if _, err := json.Marshal(m); err != nil {
				t.Fatalf("rewritten document does not re-encode: %v", err)
			}
			jobDocFields(m) // must not panic on any field shape
		}

		var out bytes.Buffer
		_, perr := proxyEvents(&out, bytes.NewReader(stream), "j9", "node-x", nil)
		if perr != nil && !errors.Is(perr, bufio.ErrTooLong) {
			t.Fatalf("proxyEvents on an in-memory stream: %v", perr)
		}
		sc := bufio.NewScanner(&out)
		sc.Buffer(make([]byte, 0, 64*1024), maxEventLine)
		for sc.Scan() {
			line := sc.Bytes()
			var ev map[string]any
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("proxied stream emitted a malformed line %q: %v", line, err)
			}
			if ev["job"] != "j9" {
				t.Fatalf("proxied event carries job %v, want j9 (line %q)", ev["job"], line)
			}
			if ev["node"] != "node-x" {
				t.Fatalf("proxied event carries node %v, want node-x", ev["node"])
			}
		}
	})
}

// TestRewriteJobJSONPreservesNumbers pins the UseNumber contract: an int64
// objective survives the proxy rewrite digit for digit instead of rounding
// through float64.
func TestRewriteJobJSONPreservesNumbers(t *testing.T) {
	body := []byte(`{"id":"b1","state":"done","result":{"digest":"d","objective":9007199254740993}}`)
	m, err := rewriteJobJSON(body, "j1", "a")
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "9007199254740993") {
		t.Fatalf("objective lost precision through the rewrite: %s", out)
	}
	state, digest, _ := jobDocFields(m)
	if state != "done" || digest != "d" {
		t.Fatalf("jobDocFields = (%q, %q), want (done, d)", state, digest)
	}
}

// TestRewriteEventLine covers the drop-don't-corrupt contract for single
// lines.
func TestRewriteEventLine(t *testing.T) {
	if _, _, ok := rewriteEventLine([]byte(`{"state":"done"} extra`), "j1", "n"); ok {
		t.Fatal("trailing garbage must be rejected")
	}
	if _, _, ok := rewriteEventLine([]byte(`[1,2]`), "j1", "n"); ok {
		t.Fatal("non-object events must be rejected")
	}
	out, state, ok := rewriteEventLine([]byte(`{"seq":3,"job":"b9","state":"running"}`), "j1", "n")
	if !ok || state != "running" {
		t.Fatalf("rewriteEventLine ok=%v state=%q", ok, state)
	}
	var ev map[string]any
	if err := json.Unmarshal(out, &ev); err != nil {
		t.Fatal(err)
	}
	if ev["job"] != "j1" || ev["node"] != "n" || ev["seq"] != float64(3) {
		t.Fatalf("rewritten event = %v", ev)
	}
}
