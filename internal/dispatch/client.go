package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"eblow/internal/learn"
	"eblow/internal/service"
)

// shortTimeout bounds every non-streaming backend call: a node that cannot
// answer a status or list request within it counts as a failed probe.
const shortTimeout = 10 * time.Second

// nodeClient speaks the service HTTP API to one backend solver node. It is
// stateless and safe for concurrent use; health bookkeeping lives on the
// Dispatcher's nodeState, not here.
type nodeClient struct {
	name string
	base string // URL without trailing slash
	// short serves every request that must answer promptly; stream has no
	// client timeout so NDJSON event streams can stay open for the life of
	// a job (cancellation flows through the request context instead).
	short  *http.Client
	stream *http.Client
}

func newNodeClient(name, baseURL string, transport http.RoundTripper) *nodeClient {
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &nodeClient{
		name:   name,
		base:   strings.TrimRight(baseURL, "/"),
		short:  &http.Client{Transport: transport, Timeout: shortTimeout},
		stream: &http.Client{Transport: transport},
	}
}

// decodeBody decodes a backend JSON response generically. UseNumber keeps
// int64 objectives intact when the dispatcher re-encodes the document for
// its own client.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	return dec.Decode(v)
}

// submit posts the verbatim submit body and returns the backend's job
// document. A non-202 answer is an error carrying the backend's message.
func (c *nodeClient) submit(ctx context.Context, body []byte) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.short.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("dispatch: node %s rejected the job: %s", c.name, readError(resp))
	}
	var m map[string]any
	if err := decodeBody(resp.Body, &m); err != nil || m == nil {
		return nil, fmt.Errorf("dispatch: node %s returned an unreadable job document: %v", c.name, err)
	}
	return m, nil
}

// listJobs fetches the node's full job list; it doubles as the health
// probe and the per-job state sync.
func (c *nodeClient) listJobs(ctx context.Context) ([]map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.short.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dispatch: node %s job list: %s", c.name, readError(resp))
	}
	var out []map[string]any
	if err := decodeBody(resp.Body, &out); err != nil {
		return nil, fmt.Errorf("dispatch: node %s job list: %w", c.name, err)
	}
	return out, nil
}

// get proxies one GET (status or result) and returns the document plus the
// backend's status code.
func (c *nodeClient) get(ctx context.Context, path string) (map[string]any, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.short.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := decodeBody(resp.Body, &m); err != nil || m == nil {
		return nil, resp.StatusCode, fmt.Errorf("dispatch: node %s returned an unreadable document for %s: %v", c.name, path, err)
	}
	return m, resp.StatusCode, nil
}

// cancel proxies DELETE /v1/jobs/{id}.
func (c *nodeClient) cancel(ctx context.Context, backendID string) (map[string]any, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+backendID, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.short.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := decodeBody(resp.Body, &m); err != nil || m == nil {
		return nil, resp.StatusCode, fmt.Errorf("dispatch: node %s returned an unreadable cancel reply: %v", c.name, err)
	}
	return m, resp.StatusCode, nil
}

// events opens the backend's NDJSON event stream for the job. The caller
// owns the returned body and must close it; the stream ends when the job
// goes terminal, the backend dies, or ctx is cancelled.
func (c *nodeClient) events(ctx context.Context, backendID string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+backendID+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, fmt.Errorf("dispatch: node %s event stream: %s", c.name, readError(resp))
	}
	return resp.Body, nil
}

// stats fetches the node's operational snapshot.
func (c *nodeClient) stats(ctx context.Context) (service.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return service.Stats{}, err
	}
	resp, err := c.short.Do(req)
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Stats{}, fmt.Errorf("dispatch: node %s stats: %s", c.name, readError(resp))
	}
	var s service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return service.Stats{}, fmt.Errorf("dispatch: node %s stats: %w", c.name, err)
	}
	return s, nil
}

// learnSnapshot fetches the node's learned-scheduling statistics. A node
// with learning disabled answers 404; that is reported as ok == false, not
// an error, so aggregation skips it quietly.
func (c *nodeClient) learnSnapshot(ctx context.Context) (path string, shapes map[string]*learn.ShapeStats, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/learn", nil)
	if err != nil {
		return "", nil, false, err
	}
	resp, err := c.short.Do(req)
	if err != nil {
		return "", nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return "", nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", nil, false, fmt.Errorf("dispatch: node %s learn stats: %s", c.name, readError(resp))
	}
	var body struct {
		Path   string                       `json:"path"`
		Shapes map[string]*learn.ShapeStats `json:"shapes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", nil, false, fmt.Errorf("dispatch: node %s learn stats: %w", c.name, err)
	}
	return body.Path, body.Shapes, true, nil
}

// readError extracts the backend's error message from a non-2xx reply,
// falling back to the HTTP status line.
func readError(resp *http.Response) string {
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		return fmt.Sprintf("%s (%s)", body.Error, resp.Status)
	}
	return resp.Status
}
