// HTTP surface of the dispatcher. The mux mirrors the single-node service
// API route for route, so clients cannot tell (and need not care) whether
// they talk to one solver or a fleet:
//
//	GET    /v1/solvers            registered strategies (served locally)
//	GET    /v1/stats              fleet-aggregated stats (per node + sums)
//	GET    /v1/learn              fleet-merged learned-scheduling stats
//	POST   /v1/jobs               submit; routed by instance fingerprint
//	GET    /v1/jobs               list public jobs in submission order
//	GET    /v1/jobs/{id}          status, proxied from the owning node
//	GET    /v1/jobs/{id}/result   full result, proxied from the owning node
//	GET    /v1/jobs/{id}/events   NDJSON stream, re-attached across failover
//	DELETE /v1/jobs/{id}          cancel, proxied to the owning node
//
// Every backend document crosses rewriteJobDoc/rewriteEventLine on the way
// out: the backend's job ID is replaced with the public one and the owning
// node's name is added, without touching (or trusting) anything else in the
// document. Those rewrites plus proxyEvents are the fuzz surface —
// FuzzDispatchProxy feeds them malformed replies and torn NDJSON streams.
package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"eblow"
	"eblow/internal/service"
)

// NewHandler mounts the dispatcher's public API. Like the single-node
// handler it is unauthenticated; cmd/eblowd wraps it with Keyring.Wrap
// when started with -auth-keys.
func NewHandler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		type info struct {
			Name   string `json:"name"`
			Doc    string `json:"doc"`
			OneD   bool   `json:"oneD"`
			TwoD   bool   `json:"twoD"`
			Racing bool   `json:"racing"`
		}
		var out []info
		for _, e := range eblow.SolverInfos() {
			out = append(out, info{Name: e.Name, Doc: e.Doc, OneD: e.OneD, TwoD: e.TwoD, Racing: e.Racing})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats(r.Context()))
	})
	mux.HandleFunc("GET /v1/learn", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Learn(r.Context()))
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("dispatch: reading request: %w", err))
			return
		}
		doc, err := d.Submit(body)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrClosed):
				code = http.StatusServiceUnavailable
			case errors.Is(err, service.ErrNotDurable):
				// Same contract as the single-node service: the job will
				// run, but a 202 must not promise durability the WAL could
				// not deliver.
				code = http.StatusInternalServerError
			}
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, doc)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := d.Status(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		doc, code, err := d.Result(r.Context(), r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNodeDown):
			writeError(w, http.StatusBadGateway, err)
		case err != nil:
			writeError(w, http.StatusBadGateway, err)
		default:
			writeJSON(w, code, doc)
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := d.Cancel(r.Context(), r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case err != nil:
			writeError(w, http.StatusBadGateway, err)
		default:
			writeJSON(w, http.StatusOK, doc)
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if d.snapshot(id) == nil {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		flush := func() {}
		if flusher != nil {
			flush = flusher.Flush
		}
		_ = d.StreamEvents(r.Context(), id, w, flush)
	})
	return mux
}

// eventsPollInterval paces the re-attach loop while a job waits for a node
// (or for its failover re-dispatch).
const eventsPollInterval = 50 * time.Millisecond

// StreamEvents proxies the job's NDJSON event stream to w, surviving
// failover: when the owning node's stream breaks before a terminal event,
// the loop re-resolves the owner and re-attaches. A re-attached stream
// replays the (re-run) job's events from the start, so delivery across a
// failover is at-least-once; the stream still ends after exactly one
// terminal state. A job whose backend is gone but whose table entry is
// terminal gets one synthesized terminal event.
func (d *Dispatcher) StreamEvents(ctx context.Context, id string, w io.Writer, flush func()) error {
	if flush == nil {
		flush = func() {}
	}
	for {
		d.mu.Lock()
		j := d.jobs[id]
		if j == nil {
			d.mu.Unlock()
			return ErrNotFound
		}
		node, backendID := j.node, j.backendID
		terminal, state, errMsg := j.terminal, j.state, j.errMsg
		var ns *nodeState
		if node != "" {
			ns = d.nodes[node]
		}
		d.mu.Unlock()

		if ns != nil {
			body, err := ns.client.events(ctx, backendID)
			if err == nil {
				lastState, werr := proxyEvents(w, body, id, node, flush)
				body.Close()
				if werr != nil && ctx.Err() != nil {
					return nil // client went away
				}
				if service.State(lastState).Terminal() {
					return nil
				}
				// The stream broke mid-job (backend died, or the job was
				// evicted): fall through, wait, and re-resolve the owner.
			}
		} else if terminal {
			// The job finished without a reachable backend (cancelled while
			// unassigned, or restored terminal from the WAL): synthesize the
			// one terminal event the contract promises.
			ev := map[string]any{"job": id, "state": state, "time": time.Now(), "synthesized": true}
			if errMsg != "" {
				ev["message"] = errMsg
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := w.Write(append(b, '\n')); err != nil {
				return nil
			}
			flush()
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-d.stop:
			return nil
		case <-time.After(eventsPollInterval):
		}
	}
}

// rewriteJobDoc makes a backend job document public: the backend's job ID
// is replaced with the dispatcher's and the owning node is stamped in.
// The input map is never mutated — callers share cached documents across
// goroutines — and nothing else in the document is interpreted.
func rewriteJobDoc(doc map[string]any, publicID, node string) map[string]any {
	out := make(map[string]any, len(doc)+1)
	for k, v := range doc {
		out[k] = v
	}
	out["id"] = publicID
	if node != "" {
		out["node"] = node
	}
	return out
}

// rewriteJobJSON decodes one backend job document and rewrites it for the
// public API. UseNumber keeps int64 objectives intact through the
// re-encode. Malformed or non-object bodies are an error, never a panic —
// this is half of the FuzzDispatchProxy surface.
func rewriteJobJSON(body []byte, publicID, node string) (map[string]any, error) {
	var m map[string]any
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dispatch: unreadable backend document: %w", err)
	}
	if m == nil {
		return nil, errors.New("dispatch: backend document is null")
	}
	return rewriteJobDoc(m, publicID, node), nil
}

// jobDocFields lifts the dispatcher's bookkeeping fields out of a public
// job document: the state, the result digest (nested under result), and
// the error message. Missing or mistyped fields read as "".
func jobDocFields(doc map[string]any) (state, digest, errMsg string) {
	state, _ = doc["state"].(string)
	errMsg, _ = doc["error"].(string)
	if res, ok := doc["result"].(map[string]any); ok {
		digest, _ = res["digest"].(string)
	}
	return state, digest, errMsg
}

// rewriteEventLine rewrites one backend NDJSON event line for the public
// stream: the backend job ID is replaced, the node is stamped in, and the
// event's state is lifted out so the caller can spot the terminal one. A
// line that is not one well-formed JSON object reports ok == false and is
// dropped by the proxy — a torn backend line must never corrupt the public
// stream.
func rewriteEventLine(line []byte, publicID, node string) (out []byte, state string, ok bool) {
	var m map[string]any
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil || m == nil {
		return nil, "", false
	}
	if dec.More() {
		return nil, "", false // trailing garbage on the line
	}
	m["job"] = publicID
	if node != "" {
		m["node"] = node
	}
	state, _ = m["state"].(string)
	b, err := json.Marshal(m)
	if err != nil {
		return nil, "", false
	}
	return append(b, '\n'), state, true
}

// maxEventLine bounds one backend event line (1 MiB — events are small;
// anything bigger is a corrupt or hostile stream).
const maxEventLine = 1 << 20

// proxyEvents copies a backend NDJSON event stream to dst line by line,
// rewriting each event for the public API. Malformed lines (including the
// torn tail of a stream cut by a node kill) are skipped. It returns the
// last event state seen and the error that ended the stream: a dst write
// error aborts (the public client is gone), src errors just end the copy.
func proxyEvents(dst io.Writer, src io.Reader, publicID, node string, flush func()) (lastState string, err error) {
	if flush == nil {
		flush = func() {}
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), maxEventLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		out, state, ok := rewriteEventLine(line, publicID, node)
		if !ok {
			continue
		}
		if _, werr := dst.Write(out); werr != nil {
			return lastState, werr
		}
		flush()
		if state != "" {
			lastState = state
		}
	}
	return lastState, sc.Err()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
