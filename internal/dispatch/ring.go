// Package dispatch is the fleet front-end behind `eblowd -dispatch`: one
// process that owns the public HTTP API and shards submitted jobs across N
// backend solver nodes. Routing is consistent hashing on the internal/learn
// instance fingerprint, so every job of one shape lands on the same node —
// that node's learned store accumulates the shape's race statistics and its
// batch scheduler keeps forming cohorts from compatible traffic, exactly as
// if the shape had a dedicated single-node deployment.
//
// The dispatcher keeps its own write-ahead log of accepted submissions
// (wal.go): a job acknowledged with 202 is on the dispatcher's disk before
// the ack, independent of any backend. When a node dies — detected by the
// per-node health loop after a run of failed probes — the ring drops it and
// every job it had accepted but not finished is re-dispatched to the
// surviving peers from the logged spec. Re-solving is deterministic for a
// fixed seed, so a failed-over job produces a result digest bit-identical
// to an uninterrupted single-node run (the failover test and the chaos
// script both gate exactly that).
package dispatch

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per backend used when a Ring is
// built with a non-positive one. More virtual nodes smooth the key
// distribution (share variance shrinks like 1/sqrt(vnodes)) at the cost of
// a longer sorted point list.
const DefaultVNodes = 128

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Adding a node moves
// keys only onto the new node; removing a node moves only the removed
// node's keys, each to some surviving node — no key ever migrates between
// two surviving nodes (the remap-minimality contract, property-tested in
// ring_test.go). The zero value is not usable; construct with NewRing.
//
// Ring is a plain data structure: deterministic (ties on the circle break
// by node name), no clock, no goroutines, not safe for concurrent use. The
// Dispatcher drives it under its own mutex.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []ringPoint // sorted by (hash, node)
}

// NewRing returns an empty ring with the given virtual-node count per
// backend (<= 0 uses DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// ringHash is the ring's hash function: 64-bit FNV-1a strengthened by the
// murmur3 fmix64 finalizer. Raw FNV-1a clusters in the high bits on short
// sequential keys ("a#0".."a#127", "1D/r:small/..."), which skews ring
// shares by up to ~4x; the finalizer's avalanche restores an even spread.
// Both steps are fixed constants — stable across processes and platforms,
// so a restarted dispatcher routes exactly like its predecessor.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts the node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes the node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(r.points); i++ {
		r.points[i] = ringPoint{}
	}
	r.points = kept
}

// Has reports whether the node is on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of (real, not virtual) nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's nodes in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning the key: the first virtual point at or
// clockwise after the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
