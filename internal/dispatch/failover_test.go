package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eblow"
	"eblow/internal/service"
)

// fleetNode is one in-process backend: a real service.Manager behind a
// real HTTP server, so the dispatcher is exercised over the actual wire
// protocol.
type fleetNode struct {
	name string
	m    *service.Manager
	srv  *httptest.Server
	dead bool
}

// kill tears the node down hard: the HTTP listener first (the dispatcher
// sees connection errors, exactly like a kill -9), then the manager.
func (n *fleetNode) kill() {
	if n.dead {
		return
	}
	n.dead = true
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.m.Close()
}

func newFleet(t *testing.T, n, workers int) ([]*fleetNode, []NodeConfig) {
	t.Helper()
	nodes := make([]*fleetNode, n)
	cfgs := make([]NodeConfig, n)
	for i := range nodes {
		m := service.New(service.Config{Workers: workers})
		srv := httptest.NewServer(service.NewHandler(m))
		nodes[i] = &fleetNode{name: fmt.Sprintf("n%d", i+1), m: m, srv: srv}
		cfgs[i] = NodeConfig{Name: nodes[i].name, URL: srv.URL}
	}
	t.Cleanup(func() {
		for _, fn := range nodes {
			fn.kill()
		}
	})
	return nodes, cfgs
}

// submitBody builds a POST /v1/jobs body for a small deterministic
// instance. Same kind+chars+regions means same learn fingerprint, so jobs
// built from the same geometry always share a routing key.
func submitBody(t *testing.T, kind eblow.Kind, chars int, instSeed int64, solver, label string) []byte {
	t.Helper()
	in := eblow.SmallInstance(kind, chars, 2, instSeed)
	var instJSON bytes.Buffer
	if err := eblow.EncodeInstance(&instJSON, in); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"instance": json.RawMessage(instJSON.Bytes()),
		"solver":   solver,
		"label":    label,
		"params":   map[string]any{"seed": 1, "workers": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// referenceDigests runs the same specs through one plain single-node
// manager and returns digest per label — the ground truth the fleet (and
// the failed-over fleet) must reproduce bit for bit.
func referenceDigests(t *testing.T, bodies [][]byte) map[string]string {
	t.Helper()
	m := service.New(service.Config{Workers: 1})
	defer m.Close()
	out := make(map[string]string, len(bodies))
	ids := make(map[string]string, len(bodies))
	for _, body := range bodies {
		spec, err := service.ParseSubmit(body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[s.Label] = s.ID
	}
	for label, id := range ids {
		s := waitManagerTerminal(t, m, id, 60*time.Second)
		if s.State != service.StateDone {
			t.Fatalf("reference job %s finished %s: %v", label, s.State, s.Err)
		}
		if s.Digest == "" {
			t.Fatalf("reference job %s has no digest", label)
		}
		out[label] = s.Digest
	}
	return out
}

func waitManagerTerminal(t *testing.T, m *service.Manager, id string, within time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		s, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State.Terminal() {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, s.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitDispatchTerminal polls the dispatcher until the job is terminal and
// returns its public document.
func waitDispatchTerminal(t *testing.T, d *Dispatcher, id string, within time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		doc, err := d.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		state, _, _ := jobDocFields(doc)
		if service.State(state).Terminal() {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, state, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func docDigest(doc map[string]any) string {
	_, digest, _ := jobDocFields(doc)
	return digest
}

// TestDispatchShardsAndAggregates is the happy-path e2e: a 3-node fleet
// behind the dispatcher's public API. Jobs of the same shape must share a
// node, every digest must match the single-node reference, the event
// stream must carry public IDs to a terminal event, and the stats/learn
// aggregation endpoints must see the whole fleet.
func TestDispatchShardsAndAggregates(t *testing.T) {
	_, cfgs := newFleet(t, 3, 1)
	d, err := New(Config{Nodes: cfgs, HealthInterval: 25 * time.Millisecond, FailAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()

	// Three distinct geometries → up to three routing keys; several jobs
	// per geometry → co-location is observable. Solvers are picked per
	// kind: sa24 is 2D-only, greedy handles 1D.
	var bodies [][]byte
	geoms := []struct {
		kind   eblow.Kind
		chars  int
		solver string
	}{{eblow.OneD, 30, "greedy"}, {eblow.TwoD, 20, "sa24"}, {eblow.OneD, 120, "greedy"}}
	for gi, g := range geoms {
		for k := 0; k < 2; k++ {
			label := fmt.Sprintf("g%d-%d", gi, k)
			bodies = append(bodies, submitBody(t, g.kind, g.chars, int64(100+10*gi+k), g.solver, label))
		}
	}
	want := referenceDigests(t, bodies)

	idByLabel := make(map[string]string)
	for _, body := range bodies {
		resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d: %v", resp.StatusCode, doc)
		}
		idByLabel[doc["label"].(string)] = doc["id"].(string)
	}

	nodeByLabel := make(map[string]string)
	for label, id := range idByLabel {
		doc := waitDispatchTerminal(t, d, id, 60*time.Second)
		state, digest, _ := jobDocFields(doc)
		if state != string(service.StateDone) {
			t.Fatalf("job %s finished %q: %v", label, state, doc["error"])
		}
		if digest != want[label] {
			t.Errorf("job %s digest %q, want reference %q", label, digest, want[label])
		}
		node, _ := doc["node"].(string)
		if node == "" {
			t.Fatalf("job %s has no node: %v", label, doc)
		}
		nodeByLabel[label] = node
	}
	// Same geometry → same routing key → same node.
	for gi := range geoms {
		a, b := nodeByLabel[fmt.Sprintf("g%d-0", gi)], nodeByLabel[fmt.Sprintf("g%d-1", gi)]
		if a != b {
			t.Errorf("geometry %d split across nodes %s and %s; same shape must co-locate", gi, a, b)
		}
	}

	// Event stream: public IDs, ends with a terminal state.
	someLabel := "g0-0"
	resp, err := http.Get(front.URL + "/v1/jobs/" + idByLabel[someLabel] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event stream line %q: %v", sc.Text(), err)
		}
		if ev["job"] != idByLabel[someLabel] {
			t.Fatalf("event carries job %v, want public id %s", ev["job"], idByLabel[someLabel])
		}
		last = ev
	}
	if last == nil || !service.State(last["state"].(string)).Terminal() {
		t.Fatalf("event stream ended without a terminal event: %v", last)
	}

	// Fleet stats: the sums must account for every job on every node.
	fs := d.Stats(context.Background())
	if len(fs.Nodes) != 3 {
		t.Fatalf("Stats lists %d nodes, want 3", len(fs.Nodes))
	}
	for _, ns := range fs.Nodes {
		if !ns.Healthy {
			t.Errorf("node %s unhealthy in stats: %s", ns.Name, ns.Error)
		}
	}
	if fs.Fleet.Jobs.Done != len(bodies) {
		t.Errorf("fleet Done = %d, want %d", fs.Fleet.Jobs.Done, len(bodies))
	}
	if fs.Dispatcher.Jobs.Total != len(bodies) || fs.Dispatcher.Jobs.Done != len(bodies) {
		t.Errorf("dispatcher table = %+v, want %d done", fs.Dispatcher.Jobs, len(bodies))
	}

	// Learn aggregation: these backends run without learning, which must
	// read as a present-but-disabled fleet, not an error.
	fl := d.Learn(context.Background())
	if len(fl.Nodes) != 3 {
		t.Fatalf("Learn lists %d nodes, want 3", len(fl.Nodes))
	}
	for _, ln := range fl.Nodes {
		if ln.Error != "" || ln.Enabled {
			t.Errorf("learn node %s: enabled=%v err=%q, want disabled and quiet", ln.Name, ln.Enabled, ln.Error)
		}
	}
}

// TestDispatchFailover is the satellite e2e: 3 nodes, one killed mid-queue,
// every job must still reach a terminal state with a digest bit-identical
// to an uninterrupted single-node run.
func TestDispatchFailover(t *testing.T) {
	nodes, cfgs := newFleet(t, 3, 1)
	wal, err := OpenWAL(filepath.Join(t.TempDir(), "dispatch.wal"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Nodes:          cfgs,
		HealthInterval: 20 * time.Millisecond,
		FailAfter:      2,
		WAL:            wal,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// One geometry → one routing key → every job on one node, queued
	// behind each other on its single worker. chars 140 makes each solve
	// slow enough that the queue is still deep when the node dies.
	const jobs = 6
	var bodies [][]byte
	for k := 0; k < jobs; k++ {
		bodies = append(bodies, submitBody(t, eblow.TwoD, 140, int64(200+k), "sa24", fmt.Sprintf("f-%d", k)))
	}
	want := referenceDigests(t, bodies)

	idByLabel := make(map[string]string, jobs)
	for _, body := range bodies {
		doc, err := d.Submit(body)
		if err != nil {
			t.Fatal(err)
		}
		idByLabel[doc["label"].(string)] = doc["id"].(string)
	}

	// Find the owner once the first job is assigned, then kill it right
	// away: the dispatcher's table has not yet synced results for most of
	// the queue, so the dead node's accepted-but-not-terminal jobs must be
	// re-dispatched to survivors — the failover path under test.
	var owner string
	firstID := idByLabel["f-0"]
	deadline := time.Now().Add(10 * time.Second)
	for owner == "" {
		if node, ok := d.Owner(firstID); ok && node != "" {
			owner = node
		}
		if time.Now().After(deadline) {
			t.Fatal("job f-0 never got a node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, fn := range nodes {
		if fn.name == owner {
			fn.kill()
		}
	}

	// Every job must still finish — the survivors take over the dead
	// node's accepted-but-not-terminal queue from the dispatcher's WAL —
	// and every digest must equal the single-node reference.
	for label, id := range idByLabel {
		doc := waitDispatchTerminal(t, d, id, 120*time.Second)
		state, digest, _ := jobDocFields(doc)
		if state != string(service.StateDone) {
			t.Fatalf("job %s finished %q after failover: %v", label, state, doc["error"])
		}
		if digest != want[label] {
			t.Errorf("job %s digest %q after failover, want reference %q", label, digest, want[label])
		}
	}

	if d.Healthy(owner) {
		t.Errorf("killed node %s still marked healthy", owner)
	}
	fs := d.Stats(context.Background())
	if fs.Dispatcher.AliveNodes != 2 {
		t.Errorf("AliveNodes = %d after killing one of three, want 2", fs.Dispatcher.AliveNodes)
	}
	if fs.Dispatcher.Jobs.Done != jobs {
		t.Errorf("dispatcher table Done = %d, want %d", fs.Dispatcher.Jobs.Done, jobs)
	}

	// At least one job must have re-homed onto a survivor. A job may
	// legitimately keep recording the dead node — that means it went
	// terminal there before the kill — but then it must be done, with its
	// digest already checked above.
	rehomed := 0
	for label, id := range idByLabel {
		node, ok := d.Owner(id)
		if !ok || node == "" {
			t.Errorf("job %s has no owner after failover", label)
			continue
		}
		if node != owner {
			rehomed++
		}
	}
	if rehomed == 0 {
		t.Error("no job re-homed to a survivor; the kill landed after the whole queue drained")
	}
}

// TestDispatchWALRestartRestoresTable pins the dispatcher's own crash
// story: a new dispatcher over the same WAL serves the finished jobs as
// digest-only records and keeps allocating fresh public IDs.
func TestDispatchWALRestartRestoresTable(t *testing.T) {
	_, cfgs := newFleet(t, 2, 1)
	walPath := filepath.Join(t.TempDir(), "dispatch.wal")
	wal, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Nodes: cfgs, HealthInterval: 25 * time.Millisecond, FailAfter: 3, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	body := submitBody(t, eblow.OneD, 30, 301, "greedy", "restart-0")
	doc, err := d.Submit(body)
	if err != nil {
		t.Fatal(err)
	}
	id := doc["id"].(string)
	finished := waitDispatchTerminal(t, d, id, 60*time.Second)
	wantDigest := docDigest(finished)
	if wantDigest == "" {
		t.Fatal("finished job has no digest")
	}
	d.Close()

	wal2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(Config{Nodes: cfgs, HealthInterval: 25 * time.Millisecond, FailAfter: 3, WAL: wal2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if s := wal2.Stats(); s.Terminal != 1 {
		t.Fatalf("replay stats = %+v, want 1 terminal record", s)
	}
	got, err := d2.Status(context.Background(), id)
	if err != nil {
		t.Fatalf("restored job %s: %v", id, err)
	}
	state, digest, _ := jobDocFields(got)
	if state != string(service.StateDone) || digest != wantDigest {
		t.Fatalf("restored job = (%q, %q), want (done, %q)", state, digest, wantDigest)
	}
	if got["replayed"] != true {
		t.Errorf("restored job not marked replayed: %v", got)
	}
	// The result endpoint still answers: proxied in full while the
	// backend retains the record, from the dispatcher's digest-only
	// snapshot once it doesn't.
	res, code, err := d2.Result(context.Background(), id)
	if err != nil || code != http.StatusOK {
		t.Fatalf("Result after restart = %d, %v", code, err)
	}
	if docDigest(res) != wantDigest {
		t.Fatalf("Result digest %q, want %q", docDigest(res), wantDigest)
	}

	// Fresh submissions must not collide with replayed IDs.
	doc2, err := d2.Submit(submitBody(t, eblow.OneD, 30, 302, "greedy", "restart-1"))
	if err != nil {
		t.Fatal(err)
	}
	if doc2["id"].(string) == id {
		t.Fatalf("public ID %s reused after restart", id)
	}
}

// TestDispatchRejectsBadSubmitsLocally pins that validation happens at the
// front door: a bad body never reaches a backend, burns a WAL record, or
// allocates a public ID.
func TestDispatchRejectsBadSubmitsLocally(t *testing.T) {
	_, cfgs := newFleet(t, 1, 1)
	d, err := New(Config{Nodes: cfgs, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()

	for _, body := range []string{
		`{"benchmark":"no-such-benchmark"}`,
		`{"benchmark":"1T-1","instance":{}}`,
		`{"benchmark":"1T-1","params":{"seed":-1}}`,
		`not json`,
	} {
		resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	if got := len(d.List()); got != 0 {
		t.Fatalf("rejected submissions left %d jobs in the table", got)
	}
	if _, err := d.Status(context.Background(), "j1"); err == nil {
		t.Fatal("no job should exist after rejected submissions")
	}
}

// TestDispatchCancelUnassigned covers cancelling a job that is waiting for
// a node: it must go terminal locally and stream exactly one synthesized
// terminal event.
func TestDispatchCancelUnassigned(t *testing.T) {
	nodes, cfgs := newFleet(t, 1, 1)
	nodes[0].kill() // fleet of one, already dead: nothing can be assigned
	d, err := New(Config{Nodes: cfgs, HealthInterval: 10 * time.Millisecond, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	doc, err := d.Submit(submitBody(t, eblow.OneD, 30, 401, "greedy", "orphan"))
	if err != nil {
		t.Fatal(err)
	}
	id := doc["id"].(string)
	state, _, _ := jobDocFields(doc)
	if state != string(service.StateQueued) {
		t.Fatalf("submitted job state %q, want queued (accepted without a node)", state)
	}

	got, err := d.Cancel(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	state, _, _ = jobDocFields(got)
	if state != string(service.StateCanceled) {
		t.Fatalf("cancelled job state %q", state)
	}

	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.StreamEvents(ctx, id, &buf, nil); err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &ev); err != nil {
		t.Fatalf("synthesized event stream %q: %v", buf.String(), err)
	}
	if ev["job"] != id || ev["state"] != string(service.StateCanceled) || ev["synthesized"] != true {
		t.Fatalf("synthesized terminal event = %v", ev)
	}
}
