package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"eblow"
	"eblow/internal/learn"
	"eblow/internal/service"
)

// NodeConfig names one backend solver node of the fleet.
type NodeConfig struct {
	// Name is the node's stable identity: it seeds the hash ring, appears
	// in job statuses and WAL records, and must stay the same across node
	// restarts (the URL may change; the name is what routing keys stick to).
	Name string
	// URL is the node's base HTTP address, e.g. "http://10.0.0.7:8080".
	URL string
}

// Config configures a Dispatcher.
type Config struct {
	// Nodes is the backend fleet (at least one, unique names).
	Nodes []NodeConfig
	// VNodes is the virtual-node count per backend on the hash ring
	// (<= 0 uses DefaultVNodes).
	VNodes int
	// HealthInterval is the per-node probe-and-sync period (<= 0 means
	// 1s). Each cycle fetches the node's job list, which doubles as the
	// health probe and the job-state sync.
	HealthInterval time.Duration
	// FailAfter is how many consecutive failed probes mark a node dead and
	// trigger failover (<= 0 means 3). Probes back off exponentially while
	// a node stays unreachable, and a dead node that answers again rejoins
	// the ring.
	FailAfter int
	// WAL is the dispatcher's durable log of accepted submissions (see
	// OpenWAL); nil disables durability. The dispatcher owns it from here
	// on: New replays it, Submit fsyncs the accepted spec before the ack,
	// and Close closes it.
	WAL *WAL
	// Transport overrides the HTTP transport used for backend calls (nil
	// uses http.DefaultTransport). Tests inject httptest transports here.
	Transport http.RoundTripper
	// Logf receives operational log lines (node death, failover, rejoin);
	// nil discards them.
	Logf func(format string, args ...any)
}

// ErrNotFound is returned for an unknown public job ID.
var ErrNotFound = errors.New("dispatch: no such job")

// ErrClosed is returned when submitting to a closed dispatcher.
var ErrClosed = errors.New("dispatch: dispatcher is closed")

// ErrNodeDown is returned when an operation needs the job's backend node
// and that node is currently unreachable.
var ErrNodeDown = errors.New("dispatch: the job's node is unreachable")

// jobRecord is the dispatcher's record of one public job.
//
// The status field holds the job's last rendered public document. Status
// maps are immutable once stored: every update replaces the whole map, so
// a handler that snapshotted a reference under mu may marshal it after
// unlocking without racing the sync loops.
type jobRecord struct {
	id         string
	body       []byte // verbatim submit body, re-posted on failover
	routingKey string
	name       string // instance name
	kind       string
	solver     string // solver label for synthesized statuses
	label      string
	submitted  time.Time

	// node is the owning backend ("" while waiting for one); mutated only
	// while holding the Dispatcher's mu, like every field below.
	node        string
	backendID   string
	state       string
	digest      string
	errMsg      string
	status      map[string]any
	terminal    bool
	replayed    bool
	walDone     bool // the terminal WAL record has been written
	dispatching bool // a dispatch attempt is in flight; don't start another
}

// nodeState is the dispatcher's view of one backend. The client is
// stateless and safe for concurrent use; alive and fails are mutated only
// while holding the Dispatcher's mu.
type nodeState struct {
	name   string
	url    string
	client *nodeClient
	alive  bool
	fails  int
}

// Dispatcher shards jobs across the fleet and proxies the public API.
type Dispatcher struct {
	cfg Config

	mu sync.Mutex
	// guarded by mu — hash ring of the currently-alive nodes
	ring *Ring
	// guarded by mu
	nodes map[string]*nodeState
	// nodeOrder is the config order of the node names.
	// immutable after construction
	nodeOrder []string
	// guarded by mu
	jobs map[string]*jobRecord
	// guarded by mu — submission order of the keys of jobs
	order []string
	// guarded by mu
	nextID int
	// guarded by mu
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the fleet config, replays the WAL if one is given, and
// starts the per-node health/sync loops plus the re-dispatch janitor.
func New(cfg Config) (*Dispatcher, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("dispatch: a fleet needs at least one node")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	d := &Dispatcher{
		cfg:   cfg,
		ring:  NewRing(cfg.VNodes),
		nodes: make(map[string]*nodeState),
		jobs:  make(map[string]*jobRecord),
		stop:  make(chan struct{}),
	}
	for _, nc := range cfg.Nodes {
		if nc.Name == "" || nc.URL == "" {
			return nil, fmt.Errorf("dispatch: node needs a name and a URL, got %q=%q", nc.Name, nc.URL)
		}
		if _, dup := d.nodes[nc.Name]; dup {
			return nil, fmt.Errorf("dispatch: duplicate node name %q", nc.Name)
		}
		d.nodes[nc.Name] = &nodeState{
			name:   nc.Name,
			url:    nc.URL,
			client: newNodeClient(nc.Name, nc.URL, cfg.Transport),
			alive:  true, // optimistic: the first failed probes evict it
		}
		d.nodeOrder = append(d.nodeOrder, nc.Name)
		d.ring.Add(nc.Name)
	}
	if cfg.WAL != nil {
		d.mu.Lock()
		d.replayWALLocked()
		d.mu.Unlock()
	}
	for _, name := range d.nodeOrder {
		d.wg.Add(1)
		go d.watchNode(name)
	}
	d.wg.Add(1)
	go d.janitor()
	return d, nil
}

// logf forwards to Config.Logf when set.
func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Nodes returns the fleet's node names in config order.
func (d *Dispatcher) Nodes() []string { return append([]string(nil), d.nodeOrder...) }

// Owner reports which node currently owns the job ("" while unassigned).
func (d *Dispatcher) Owner(id string) (node string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, found := d.jobs[id]
	if !found {
		return "", false
	}
	return j.node, true
}

// Submit accepts one public submission: the body is validated exactly as a
// backend would (service.ParseSubmit), the routing key is the instance's
// learned-scheduling fingerprint, the accepted spec is fsynced to the
// dispatcher WAL before the ack, and the job is dispatched to the ring
// owner. A submission with no reachable owner is still accepted — it waits
// unassigned and the janitor dispatches it as soon as a node can take it.
func (d *Dispatcher) Submit(body []byte) (map[string]any, error) {
	spec, err := service.ParseSubmit(body)
	if err != nil {
		return nil, err
	}
	shape := eblow.Fingerprint(spec.Instance)

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	d.nextID++
	j := &jobRecord{
		id:         fmt.Sprintf("j%d", d.nextID),
		body:       append([]byte(nil), body...),
		routingKey: shape.Key(),
		name:       spec.Instance.Name,
		kind:       spec.Instance.Kind.String(),
		solver:     specLabel(spec),
		label:      spec.Label,
		submitted:  time.Now(),
		state:      string(service.StateQueued),
	}
	j.status = synthStatus(j)
	d.jobs[j.id] = j
	d.order = append(d.order, j.id)
	rec := walRecord{
		Op: walOpAccepted, Job: j.id, Time: j.submitted,
		Body: append(json.RawMessage(nil), body...), RoutingKey: j.routingKey,
		Name: j.name, Kind: j.kind, Solver: spec.Solver, Label: j.label,
	}
	d.mu.Unlock()

	if d.cfg.WAL != nil {
		if err := d.cfg.WAL.Append(rec); err != nil {
			// The job will run, but the ack must not promise durability it
			// cannot keep — same contract as the single-node service.
			d.tryDispatch(j.id)
			return d.snapshot(j.id), fmt.Errorf("%w: job %s: %v", service.ErrNotDurable, j.id, err)
		}
	}
	d.tryDispatch(j.id)
	return d.snapshot(j.id), nil
}

// snapshot returns the job's current public status document.
func (d *Dispatcher) snapshot(id string) map[string]any {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.jobs[id]
	if j == nil {
		return nil
	}
	return j.status
}

// specLabel mirrors the service's solver labeling for synthesized
// statuses.
func specLabel(spec service.JobSpec) string {
	switch {
	case spec.Solver != "":
		return spec.Solver
	case len(spec.Params.Strategies) == 1:
		return spec.Params.Strategies[0]
	case len(spec.Params.Strategies) > 1:
		return fmt.Sprintf("portfolio of %v", spec.Params.Strategies)
	default:
		return "eblow"
	}
}

// synthStatus renders a public status document from the dispatcher's own
// record — used while a job waits unassigned, after a replay, and as the
// fallback when the owning node cannot be asked.
func synthStatus(j *jobRecord) map[string]any {
	m := map[string]any{
		"id":        j.id,
		"solver":    j.solver,
		"instance":  j.name,
		"kind":      j.kind,
		"state":     j.state,
		"submitted": j.submitted,
	}
	if j.label != "" {
		m["label"] = j.label
	}
	if j.node != "" {
		m["node"] = j.node
	}
	if j.errMsg != "" {
		m["error"] = j.errMsg
	}
	if j.replayed {
		m["replayed"] = true
	}
	if j.digest != "" {
		m["result"] = map[string]any{"digest": j.digest}
	}
	return m
}

// tryDispatch posts the job to its ring owner if it is unassigned. Safe to
// call at any time; a job that is terminal, already assigned, mid-dispatch
// or without a reachable owner is left alone.
func (d *Dispatcher) tryDispatch(id string) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil || j.terminal || j.node != "" || j.dispatching || d.closed {
		d.mu.Unlock()
		return
	}
	owner := d.ring.Owner(j.routingKey)
	if owner == "" {
		d.mu.Unlock()
		return
	}
	ns := d.nodes[owner]
	j.dispatching = true
	body := j.body
	d.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), shortTimeout)
	doc, err := ns.client.submit(ctx, body)
	cancel()

	d.mu.Lock()
	j.dispatching = false
	if err != nil || j.terminal {
		d.mu.Unlock()
		if err != nil {
			d.logf("dispatching %s to node %s failed (will retry): %v", id, owner, err)
		}
		return
	}
	backendID, _ := doc["id"].(string)
	if backendID == "" {
		d.mu.Unlock()
		d.logf("node %s accepted %s without a job id; leaving it for the janitor", owner, id)
		return
	}
	j.node = owner
	j.backendID = backendID
	d.applyBackendDocLocked(j, doc)
	terminalRec, ok := d.terminalRecordLocked(j)
	d.mu.Unlock()

	d.walAppend(walRecord{Op: walOpDispatched, Job: id, Time: time.Now(), Node: owner, BackendID: backendID})
	if ok {
		d.walAppend(terminalRec)
	}
}

// applyBackendDocLocked folds a backend job document into the record: the
// public rewritten form becomes the status snapshot, and state/digest/error
// are lifted out for the dispatcher's own bookkeeping. Callers hold d.mu.
func (d *Dispatcher) applyBackendDocLocked(j *jobRecord, doc map[string]any) {
	pub := rewriteJobDoc(doc, j.id, j.node)
	state, digest, errMsg := jobDocFields(pub)
	if state == "" {
		return // unreadable document; keep the last good snapshot
	}
	j.state = state
	if digest != "" {
		j.digest = digest
	}
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.status = pub
	if service.State(state).Terminal() {
		j.terminal = true
	}
}

// terminalRecordLocked builds the job's terminal WAL record the first time
// the job is seen terminal; ok is false when no record should be written
// (not terminal yet, already written, or no WAL). Callers hold d.mu.
func (d *Dispatcher) terminalRecordLocked(j *jobRecord) (walRecord, bool) {
	if !j.terminal || j.walDone || d.cfg.WAL == nil {
		return walRecord{}, false
	}
	j.walDone = true
	return walRecord{
		Op: walOpTerminal, Job: j.id, Time: time.Now(),
		Node: j.node, BackendID: j.backendID,
		State: j.state, Digest: j.digest, Error: j.errMsg,
	}, true
}

// walAppend appends a record, logging (not failing) on error: losing a
// dispatched or terminal record only means extra deterministic re-work
// after a dispatcher restart.
func (d *Dispatcher) walAppend(rec walRecord) {
	if d.cfg.WAL == nil {
		return
	}
	if err := d.cfg.WAL.Append(rec); err != nil && !errors.Is(err, ErrWALClosed) {
		d.logf("WAL append failed: %v", err)
	}
}

// watchNode is one backend's health-and-sync loop: every cycle fetches the
// node's job list (the probe), folds the listed states into the
// dispatcher's records, unassigns jobs the backend no longer knows, and —
// after FailAfter consecutive failures — declares the node dead, drops it
// from the ring and fails its jobs over to the survivors. Probes back off
// exponentially while the node stays dead; a successful probe rejoins it.
func (d *Dispatcher) watchNode(name string) {
	defer d.wg.Done()
	d.mu.Lock()
	ns := d.nodes[name]
	d.mu.Unlock()
	delay := d.cfg.HealthInterval
	for {
		select {
		case <-d.stop:
			return
		case <-time.After(delay):
		}
		ctx, cancel := context.WithTimeout(context.Background(), shortTimeout)
		list, err := ns.client.listJobs(ctx)
		cancel()
		if err != nil {
			delay = d.nodeProbeFailed(ns, err)
			continue
		}
		delay = d.cfg.HealthInterval
		d.nodeProbeOK(ns, list)
	}
}

// nodeProbeFailed counts one failed probe, performing death detection and
// failover at the threshold, and returns the next probe delay (exponential
// backoff, capped at 8 intervals).
func (d *Dispatcher) nodeProbeFailed(ns *nodeState, probeErr error) time.Duration {
	d.mu.Lock()
	ns.fails++
	fails := ns.fails
	died := ns.alive && ns.fails >= d.cfg.FailAfter
	var orphans []string
	if died {
		ns.alive = false
		d.ring.Remove(ns.name)
		for _, id := range d.order {
			j := d.jobs[id]
			if j.node == ns.name && !j.terminal {
				j.node = ""
				j.backendID = ""
				j.state = string(service.StateQueued)
				j.status = synthStatus(j)
				orphans = append(orphans, id)
			}
		}
	}
	d.mu.Unlock()

	if died {
		d.logf("node %s is down after %d failed probes (%v); re-dispatching %d jobs to %d surviving nodes",
			ns.name, fails, probeErr, len(orphans), d.aliveCount())
		for _, id := range orphans {
			d.tryDispatch(id)
		}
	}
	backoff := min(fails-d.cfg.FailAfter, 3)
	if backoff < 0 {
		backoff = 0
	}
	return d.cfg.HealthInterval << backoff
}

// nodeProbeOK folds a successful probe's job list into the dispatcher's
// records and rejoins the node if it had been marked dead.
func (d *Dispatcher) nodeProbeOK(ns *nodeState, list []map[string]any) {
	byID := make(map[string]map[string]any, len(list))
	for _, doc := range list {
		if id, _ := doc["id"].(string); id != "" {
			byID[id] = doc
		}
	}
	d.mu.Lock()
	ns.fails = 0
	rejoined := !ns.alive
	if rejoined {
		ns.alive = true
		d.ring.Add(ns.name)
	}
	var terminalRecs []walRecord
	var lost []string
	for _, id := range d.order {
		j := d.jobs[id]
		if j.node != ns.name || j.terminal {
			continue
		}
		doc, known := byID[j.backendID]
		if !known {
			// The backend no longer knows the job (it restarted with an
			// empty queue, or evicted the record): hand it back to the
			// janitor for a deterministic re-dispatch.
			j.node = ""
			j.backendID = ""
			j.state = string(service.StateQueued)
			j.status = synthStatus(j)
			lost = append(lost, id)
			continue
		}
		d.applyBackendDocLocked(j, doc)
		if rec, ok := d.terminalRecordLocked(j); ok {
			terminalRecs = append(terminalRecs, rec)
		}
	}
	d.mu.Unlock()

	if rejoined {
		d.logf("node %s rejoined the ring", ns.name)
	}
	for _, rec := range terminalRecs {
		d.walAppend(rec)
	}
	for _, id := range lost {
		d.tryDispatch(id)
	}
}

// aliveCount returns how many nodes are currently on the ring.
func (d *Dispatcher) aliveCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ring.Len()
}

// janitor periodically re-dispatches unassigned jobs — submissions that
// arrived while their owner was down, and failover orphans whose first
// re-dispatch attempt failed.
func (d *Dispatcher) janitor() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
		}
		d.mu.Lock()
		var waiting []string
		for _, id := range d.order {
			j := d.jobs[id]
			if j.node == "" && !j.terminal && !j.dispatching {
				waiting = append(waiting, id)
			}
		}
		d.mu.Unlock()
		for _, id := range waiting {
			d.tryDispatch(id)
		}
	}
}

// Status returns the job's public status document, asking the owning node
// live when possible and falling back to the dispatcher's last snapshot
// when the job is unassigned, terminal, or its node cannot answer.
func (d *Dispatcher) Status(ctx context.Context, id string) (map[string]any, error) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	node, backendID, cached := j.node, j.backendID, j.status
	terminal := j.terminal
	var ns *nodeState
	if node != "" {
		ns = d.nodes[node]
	}
	d.mu.Unlock()

	if ns == nil || terminal {
		return cached, nil
	}
	doc, code, err := ns.client.get(ctx, "/v1/jobs/"+backendID)
	if err != nil || code != http.StatusOK {
		return cached, nil
	}
	d.mu.Lock()
	if j.node == node { // not failed over while we asked
		d.applyBackendDocLocked(j, doc)
	}
	rec, ok := d.terminalRecordLocked(j)
	out := j.status
	d.mu.Unlock()
	if ok {
		d.walAppend(rec)
	}
	return out, nil
}

// Result proxies the job's full result (stencil plan included) from the
// owning node. A terminal job whose node no longer has the record answers
// with the dispatcher's digest-only snapshot, like a WAL-replayed record.
func (d *Dispatcher) Result(ctx context.Context, id string) (map[string]any, int, error) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return nil, 0, ErrNotFound
	}
	node, backendID, cached := j.node, j.backendID, j.status
	terminal := j.terminal
	var ns *nodeState
	if node != "" {
		ns = d.nodes[node]
	}
	d.mu.Unlock()

	if ns != nil {
		doc, code, err := ns.client.get(ctx, "/v1/jobs/"+backendID+"/result")
		if err == nil {
			if code != http.StatusOK {
				// Pass backend refusals (409 not ready, 404 evicted)
				// through with the backend's own document.
				return rewriteJobDoc(doc, id, node), code, nil
			}
			return rewriteJobDoc(doc, id, node), http.StatusOK, nil
		}
	}
	if terminal {
		return cached, http.StatusOK, nil
	}
	if ns == nil {
		return nil, 0, fmt.Errorf("%w: job %s is waiting for a node", ErrNodeDown, id)
	}
	return nil, 0, fmt.Errorf("%w: job %s on node %s", ErrNodeDown, id, node)
}

// Cancel proxies a cancellation. An unassigned job is cancelled locally;
// a job whose node is unreachable returns ErrNodeDown (retry after the
// failover re-homes it).
func (d *Dispatcher) Cancel(ctx context.Context, id string) (map[string]any, error) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.terminal {
		out := j.status
		d.mu.Unlock()
		return out, nil
	}
	if j.node == "" {
		j.state = string(service.StateCanceled)
		j.terminal = true
		j.errMsg = context.Canceled.Error()
		j.status = synthStatus(j)
		rec, ok := d.terminalRecordLocked(j)
		out := j.status
		d.mu.Unlock()
		if ok {
			d.walAppend(rec)
		}
		return out, nil
	}
	node, backendID := j.node, j.backendID
	ns := d.nodes[node]
	d.mu.Unlock()

	doc, code, err := ns.client.cancel(ctx, backendID)
	if err != nil || code != http.StatusOK {
		if err == nil {
			return nil, fmt.Errorf("dispatch: node %s refused the cancel (HTTP %d)", node, code)
		}
		return nil, fmt.Errorf("%w: job %s on node %s: %v", ErrNodeDown, id, node, err)
	}
	d.mu.Lock()
	if j.node == node {
		d.applyBackendDocLocked(j, doc)
	}
	rec, ok := d.terminalRecordLocked(j)
	out := j.status
	d.mu.Unlock()
	if ok {
		d.walAppend(rec)
	}
	return out, nil
}

// List returns every public job's last status snapshot in submission
// order. Snapshots refresh on the health-sync cadence (plus every live
// Status call), so a just-finished job may read as running for up to one
// HealthInterval.
func (d *Dispatcher) List() []map[string]any {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]map[string]any, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.jobs[id].status)
	}
	return out
}

// NodeStatus is one backend's entry in the aggregated fleet stats.
type NodeStatus struct {
	Name    string         `json:"name"`
	URL     string         `json:"url"`
	Healthy bool           `json:"healthy"`
	Error   string         `json:"error,omitempty"`
	Stats   *service.Stats `json:"stats,omitempty"`
}

// DispatcherStats reports the dispatcher's own job table.
type DispatcherStats struct {
	// Jobs breaks the public job records down by state.
	Jobs service.StateCounts `json:"jobs"`
	// Unassigned counts jobs waiting for a reachable node.
	Unassigned int `json:"unassigned"`
	// Nodes and AliveNodes size the fleet.
	Nodes      int `json:"nodes"`
	AliveNodes int `json:"aliveNodes"`
}

// FleetStats is the dispatcher's GET /v1/stats document: the dispatcher's
// own table, each node's live snapshot, and the fleet-wide sums.
type FleetStats struct {
	Dispatcher DispatcherStats `json:"dispatcher"`
	Nodes      []NodeStatus    `json:"nodes"`
	// Fleet sums workers, queue depths, state counts and batch counters
	// across every node that answered.
	Fleet service.Stats `json:"fleet"`
}

// Stats aggregates GET /v1/stats across the fleet: each node is asked
// live and concurrently; unreachable nodes report their error instead of
// counters.
func (d *Dispatcher) Stats(ctx context.Context) FleetStats {
	d.mu.Lock()
	out := FleetStats{Dispatcher: DispatcherStats{Nodes: len(d.nodeOrder), AliveNodes: d.ring.Len()}}
	for _, id := range d.order {
		j := d.jobs[id]
		switch service.State(j.state) {
		case service.StateQueued:
			out.Dispatcher.Jobs.Queued++
		case service.StateRunning:
			out.Dispatcher.Jobs.Running++
		case service.StateDone:
			out.Dispatcher.Jobs.Done++
		case service.StateFailed:
			out.Dispatcher.Jobs.Failed++
		case service.StateCanceled:
			out.Dispatcher.Jobs.Canceled++
		}
		out.Dispatcher.Jobs.Total++
		if j.node == "" && !j.terminal {
			out.Dispatcher.Unassigned++
		}
	}
	clients := make([]*nodeState, 0, len(d.nodeOrder))
	for _, name := range d.nodeOrder {
		clients = append(clients, d.nodes[name])
	}
	d.mu.Unlock()

	out.Nodes = make([]NodeStatus, len(clients))
	var wg sync.WaitGroup
	for i, ns := range clients {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			st := NodeStatus{Name: ns.name, URL: ns.url}
			s, err := ns.client.stats(ctx)
			if err != nil {
				st.Error = err.Error()
			} else {
				st.Healthy = true
				st.Stats = &s
			}
			out.Nodes[i] = st
		}(i, ns)
	}
	wg.Wait()
	for _, st := range out.Nodes {
		if st.Stats == nil {
			continue
		}
		addStats(&out.Fleet, *st.Stats)
	}
	return out
}

// addStats sums one node's operational counters into the fleet totals.
func addStats(dst *service.Stats, src service.Stats) {
	dst.Workers += src.Workers
	dst.QueueDepth += src.QueueDepth
	dst.InFlight += src.InFlight
	dst.Jobs.Queued += src.Jobs.Queued
	dst.Jobs.Running += src.Jobs.Running
	dst.Jobs.Done += src.Jobs.Done
	dst.Jobs.Failed += src.Jobs.Failed
	dst.Jobs.Canceled += src.Jobs.Canceled
	dst.Jobs.Total += src.Jobs.Total
	dst.Batch.Enabled = dst.Batch.Enabled || src.Batch.Enabled
	dst.Batch.Cohorts += src.Batch.Cohorts
	dst.Batch.BatchedJobs += src.Batch.BatchedJobs
	dst.Batch.SoloJobs += src.Batch.SoloJobs
	dst.Batch.Overtakes += src.Batch.Overtakes
	dst.Batch.AgedPops += src.Batch.AgedPops
	if src.Batch.MaxCohort > dst.Batch.MaxCohort {
		dst.Batch.MaxCohort = src.Batch.MaxCohort
	}
}

// LearnNode is one backend's entry in the aggregated learn stats.
type LearnNode struct {
	Name string `json:"name"`
	// Path is the node's store file ("" when the node has learning
	// disabled or could not be asked).
	Path string `json:"path,omitempty"`
	// Enabled reports whether the node serves learned-scheduling stats.
	Enabled bool   `json:"enabled"`
	Error   string `json:"error,omitempty"`
}

// FleetLearn is the dispatcher's GET /v1/learn document: per-node store
// identities plus the per-shape statistics merged across the fleet.
type FleetLearn struct {
	Nodes []LearnNode `json:"nodes"`
	// Shapes is the fleet-wide merge: counters add per shape and strategy,
	// best objectives take the minimum (learn.MergeSnapshots).
	Shapes map[string]*learn.ShapeStats `json:"shapes"`
}

// Learn aggregates GET /v1/learn across the fleet. Because routing pins
// each shape to one node, the merged snapshot is also the sharding story:
// each shape's races all come from its owning node.
func (d *Dispatcher) Learn(ctx context.Context) FleetLearn {
	d.mu.Lock()
	clients := make([]*nodeState, 0, len(d.nodeOrder))
	for _, name := range d.nodeOrder {
		clients = append(clients, d.nodes[name])
	}
	d.mu.Unlock()

	type reply struct {
		node   LearnNode
		shapes map[string]*learn.ShapeStats
	}
	replies := make([]reply, len(clients))
	var wg sync.WaitGroup
	for i, ns := range clients {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			r := reply{node: LearnNode{Name: ns.name}}
			path, shapes, enabled, err := ns.client.learnSnapshot(ctx)
			switch {
			case err != nil:
				r.node.Error = err.Error()
			case enabled:
				r.node.Enabled = true
				r.node.Path = path
				r.shapes = shapes
			}
			replies[i] = r
		}(i, ns)
	}
	wg.Wait()
	out := FleetLearn{Shapes: make(map[string]*learn.ShapeStats)}
	for _, r := range replies {
		out.Nodes = append(out.Nodes, r.node)
		learn.MergeSnapshots(out.Shapes, r.shapes)
	}
	return out
}

// Close stops the health loops and the janitor, closes the WAL, and
// returns. Backend nodes are independent processes and keep running.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
	if d.cfg.WAL != nil {
		_ = d.cfg.WAL.Close()
	}
}

// replayWALLocked rebuilds the dispatcher's job table from the log read at
// OpenWAL. Terminal jobs come back as digest-only records; every other
// accepted job re-enters the table with its last known assignment — the
// first health sync confirms it (or hands it to the janitor for a
// deterministic re-dispatch). Called from New before the loops start;
// d.mu is held.
func (d *Dispatcher) replayWALLocked() {
	recs := d.cfg.WAL.replayRecords()
	type slot struct {
		accepted   *walRecord
		dispatched *walRecord
		terminal   *walRecord
	}
	slots := make(map[string]*slot)
	var order []string
	maxID := 0
	for i := range recs {
		rec := &recs[i]
		s := slots[rec.Job]
		if s == nil {
			s = &slot{}
			slots[rec.Job] = s
			order = append(order, rec.Job)
		}
		switch rec.Op {
		case walOpAccepted:
			if s.accepted == nil {
				s.accepted = rec
			}
		case walOpDispatched:
			s.dispatched = rec
		case walOpTerminal:
			s.terminal = rec
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "j")); err == nil && n > maxID {
			maxID = n
		}
	}
	resumed, terminal := 0, 0
	for _, id := range order {
		s := slots[id]
		if s.accepted == nil {
			continue // dispatched/terminal noise without a spec; nothing to rebuild
		}
		a := s.accepted
		j := &jobRecord{
			id:         id,
			body:       append([]byte(nil), a.Body...),
			routingKey: a.RoutingKey,
			name:       a.Name,
			kind:       a.Kind,
			solver:     a.Solver,
			label:      a.Label,
			submitted:  a.Time,
			state:      string(service.StateQueued),
			replayed:   true,
		}
		if j.solver == "" {
			j.solver = "eblow"
		}
		switch {
		case s.terminal != nil:
			j.state = s.terminal.State
			j.digest = s.terminal.Digest
			j.errMsg = s.terminal.Error
			j.node = s.terminal.Node
			j.backendID = s.terminal.BackendID
			j.terminal = true
			j.walDone = true
			terminal++
		case s.dispatched != nil:
			j.node = s.dispatched.Node
			j.backendID = s.dispatched.BackendID
			resumed++
		default:
			resumed++
		}
		j.status = synthStatus(j)
		d.jobs[id] = j
		d.order = append(d.order, id)
	}
	if maxID > d.nextID {
		d.nextID = maxID
	}
	d.cfg.WAL.setReplayStats(resumed, terminal)
}

// Healthy reports whether the named node is currently on the ring.
func (d *Dispatcher) Healthy(node string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ns := d.nodes[node]
	return ns != nil && ns.alive
}
