package dispatch

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingOwnerDeterministic pins the ring's cross-process stability: the
// same nodes and key must resolve identically in a fresh ring (a restarted
// dispatcher routes exactly like its predecessor).
func TestRingOwnerDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		for _, n := range []string{"c", "a", "b"} {
			r.Add(n)
		}
		return r
	}
	a, b := build(), NewRing(64)
	for _, n := range []string{"a", "b", "c"} {
		b.Add(n)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("shape-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs across identically-populated rings (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(0)
	if r.Owner("anything") != "" {
		t.Fatal("empty ring must own nothing")
	}
	r.Add("a")
	if got := r.Owner("key"); got != "a" {
		t.Fatalf("single-node ring owns everything; Owner = %q", got)
	}
	r.Add("a") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", r.Len())
	}
	r.Remove("missing") // absent remove is a no-op
	r.Remove("a")
	if r.Len() != 0 || r.Owner("key") != "" {
		t.Fatal("removing the last node must empty the ring")
	}
}

// TestRingRemapProperty is the satellite property test: across 20 random
// seeds, adding one node remaps at most jobs/N + slack keys — and only
// onto the new node — while removing one node remaps exactly the removed
// node's keys, each onto some survivor. No key ever migrates between two
// surviving nodes.
func TestRingRemapProperty(t *testing.T) {
	const (
		keys   = 500
		vnodes = 128
	)
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(6) // 3..8 nodes
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("node-%d-%d", seed, rng.Intn(1_000_000))
			}
			r := NewRing(vnodes)
			for _, name := range names {
				r.Add(name)
			}
			jobKeys := make([]string, keys)
			for i := range jobKeys {
				jobKeys[i] = fmt.Sprintf("fp-%d-%d", seed, rng.Int63())
			}
			before := make(map[string]string, keys)
			for _, k := range jobKeys {
				before[k] = r.Owner(k)
			}

			// Expected share of a ring with n+1 nodes, plus slack for hash
			// variance (vnodes=128 keeps the share within ~±35% whp; the
			// slack below is far looser, the property still catches a
			// broken ring that remaps O(jobs) keys).
			slack := keys / 8
			added := fmt.Sprintf("node-%d-added", seed)
			r.Add(added)
			moved := 0
			for _, k := range jobKeys {
				now := r.Owner(k)
				if now == before[k] {
					continue
				}
				if now != added {
					t.Fatalf("add %q: key %q migrated between survivors %q -> %q", added, k, before[k], now)
				}
				moved++
			}
			if bound := keys/(n+1) + slack; moved > bound {
				t.Fatalf("add: %d of %d keys remapped, want <= %d (n=%d)", moved, keys, bound, n)
			}

			// Remove the added node: exactly its keys move back, each to a
			// survivor — and, since the ring is back to the original point
			// set, to exactly their original owner.
			r.Remove(added)
			for _, k := range jobKeys {
				if got := r.Owner(k); got != before[k] {
					t.Fatalf("remove: key %q owned by %q, want its original owner %q", k, got, before[k])
				}
			}

			// Remove one original node: only its keys remap, onto survivors.
			victim := names[rng.Intn(n)]
			r.Remove(victim)
			for _, k := range jobKeys {
				now := r.Owner(k)
				if before[k] == victim {
					if now == victim || now == "" {
						t.Fatalf("remove %q: key %q still resolves to it", victim, k)
					}
					continue
				}
				if now != before[k] {
					t.Fatalf("remove %q: unrelated key %q migrated %q -> %q", victim, k, before[k], now)
				}
			}
		})
	}
}

// TestRingBalance sanity-checks the virtual-node smoothing: with the
// default vnode count no node's share is pathologically far from fair.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVNodes)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d of %d keys; want within [%d, %d]", n, counts[n], keys, fair/2, fair*2)
		}
	}
}
