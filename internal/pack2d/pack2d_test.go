package pack2d

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eblow/internal/core"
	"eblow/internal/seqpair"
)

func TestPackExactTwoBlocksShareBlank(t *testing.T) {
	blocks := []Block{
		{W: 40, H: 40, BlankL: 5, BlankR: 5, BlankT: 5, BlankB: 5},
		{W: 40, H: 40, BlankL: 10, BlankR: 10, BlankT: 10, BlankB: 10},
	}
	sp := seqpair.New(2) // block 0 left of block 1
	pl := PackExact(sp, blocks)
	// Shared blank = min(5, 10) = 5, so block 1 starts at 35 and the total
	// width is 75.
	if pl.X[1] != 35 {
		t.Errorf("X[1] = %d, want 35", pl.X[1])
	}
	if pl.Width != 75 || pl.Height != 40 {
		t.Errorf("bounding box = %dx%d, want 75x40", pl.Width, pl.Height)
	}
}

func TestPackExactVerticalShare(t *testing.T) {
	blocks := []Block{
		{W: 30, H: 30, BlankT: 4, BlankB: 6},
		{W: 30, H: 30, BlankT: 8, BlankB: 2},
	}
	// Block 0 below block 1: Gamma+ = <1 0>, Gamma- = <0 1>.
	sp := &seqpair.SeqPair{Pos: []int{1, 0}, Neg: []int{0, 1}}
	pl := PackExact(sp, blocks)
	// Vertical share = min(top of 0, bottom of 1) = min(4, 2) = 2.
	if pl.Y[1] != 28 {
		t.Errorf("Y[1] = %d, want 28", pl.Y[1])
	}
	if pl.Height != 58 {
		t.Errorf("Height = %d, want 58", pl.Height)
	}
}

func TestPackExactEmptyAndMismatch(t *testing.T) {
	pl := PackExact(seqpair.New(0), nil)
	if pl.Width != 0 || pl.Height != 0 {
		t.Error("empty packing should be zero-sized")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	PackExact(seqpair.New(2), []Block{{W: 1, H: 1}})
}

func TestPackApproxShrinks(t *testing.T) {
	blocks := []Block{
		{W: 40, H: 40, BlankL: 10, BlankR: 10, BlankT: 10, BlankB: 10},
		{W: 40, H: 40, BlankL: 10, BlankR: 10, BlankT: 10, BlankB: 10},
	}
	sp := seqpair.New(2)
	pl := PackApprox(sp, blocks)
	// Each block shrinks to 30 wide; the pair occupies 60 < 80.
	if pl.Width != 60 {
		t.Errorf("approx width = %d, want 60", pl.Width)
	}
	ex := PackExact(sp, blocks)
	// Exact sharing is min(10,10)=10, so exact width is 70.
	if ex.Width != 70 {
		t.Errorf("exact width = %d, want 70", ex.Width)
	}
}

func TestPackApproxMinimumSize(t *testing.T) {
	blocks := []Block{{W: 2, H: 2, BlankL: 1, BlankR: 1, BlankT: 1, BlankB: 1}}
	pl := PackApprox(seqpair.New(1), blocks)
	if pl.Width < 1 || pl.Height < 1 {
		t.Error("approx blocks must keep positive size")
	}
}

func TestInsideOutline(t *testing.T) {
	blocks := []Block{{W: 40, H: 40}, {W: 40, H: 40}}
	sp := seqpair.New(2)
	pl := PackExact(sp, blocks)
	inside := InsideOutline(pl, blocks, 50, 50)
	if !inside[0] || inside[1] {
		t.Errorf("inside = %v, want [true false]", inside)
	}
	inside = InsideOutline(pl, blocks, 100, 50)
	if !inside[0] || !inside[1] {
		t.Errorf("inside = %v, want [true true]", inside)
	}
}

// Property: placements produced by PackExact always pass the strict 2D
// validator of package core (with an outline large enough to hold them).
func TestPackExactAlwaysLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		blocks := make([]Block, n)
		chars := make([]core.Character, n)
		for i := range blocks {
			w := 10 + rng.Intn(40)
			h := 10 + rng.Intn(40)
			bl := rng.Intn(min(8, w/2))
			br := rng.Intn(min(8, w/2))
			bt := rng.Intn(min(8, h/2))
			bb := rng.Intn(min(8, h/2))
			blocks[i] = Block{W: w, H: h, BlankL: bl, BlankR: br, BlankT: bt, BlankB: bb}
			chars[i] = core.Character{
				ID: i, Width: w, Height: h,
				BlankLeft: bl, BlankRight: br, BlankTop: bt, BlankBottom: bb,
				VSBShots: 2, Repeats: []int64{1},
			}
		}
		sp := seqpair.Random(n, rng)
		pl := PackExact(sp, blocks)

		in := &core.Instance{
			Name: "pack2d-prop", Kind: core.TwoD,
			StencilWidth: pl.Width + 1, StencilHeight: pl.Height + 1,
			NumRegions: 1, Characters: chars,
		}
		sol := &core.Solution{Selected: make([]bool, n)}
		for i := range chars {
			sol.Selected[i] = true
			sol.Placements = append(sol.Placements, core.Placement{Char: i, X: pl.X[i], Y: pl.Y[i]})
		}
		return sol.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: exact packing is never smaller than the sum of pattern areas
// would allow (area lower bound on the bounding box).
func TestPackExactAreaBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		blocks := make([]Block, n)
		patternArea := 0
		for i := range blocks {
			w := 10 + rng.Intn(30)
			h := 10 + rng.Intn(30)
			blocks[i] = Block{W: w, H: h, BlankL: 2, BlankR: 2, BlankT: 2, BlankB: 2}
			patternArea += (w - 4) * (h - 4)
		}
		sp := seqpair.Random(n, rng)
		pl := PackExact(sp, blocks)
		return pl.Width*pl.Height >= patternArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
