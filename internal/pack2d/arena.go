package pack2d

import "sync"

// Arena hands out fixed-length slices carved from a few large contiguous
// backing arrays — one per element type — so the hot per-instance arrays of
// a batched cohort (shrunk dimensions, cached positions, the Fenwick trees,
// per-region writing times) land next to each other in memory instead of
// wherever the general allocator scattered them. That is the struct-of-
// arrays layout the batch execution layer wants: one cohort, a handful of
// cache-dense backing arrays, every instance's state a contiguous window
// into them.
//
// Carving is a bump-pointer append and thread-safe, so concurrent annealing
// restarts may build their states from one shared arena. An arena whose
// backing array runs out falls back to the regular allocator — a
// conservative size estimate costs locality, never correctness. Carved
// slices have capacity equal to their length, so an append can never bleed
// into a neighbouring carve.
type Arena struct {
	mu   sync.Mutex
	i32  []int32
	ints []int
	i64  []int64
	b    []bool
}

// NewArena pre-allocates backing arrays sized for the given element counts
// per type.
func NewArena(int32s, ints, int64s, bools int) *Arena {
	return &Arena{
		i32:  make([]int32, 0, int32s),
		ints: make([]int, 0, ints),
		i64:  make([]int64, 0, int64s),
		b:    make([]bool, 0, bools),
	}
}

// carve bump-allocates a zeroed length-n slice from buf, falling back to
// make when the remaining capacity is short. The three-index slice pins the
// capacity so later appends by the caller reallocate instead of writing
// into the next carve.
func carve[T any](mu *sync.Mutex, buf *[]T, n int) []T {
	mu.Lock()
	defer mu.Unlock()
	lo := len(*buf)
	if cap(*buf)-lo < n {
		return make([]T, n)
	}
	*buf = (*buf)[:lo+n]
	return (*buf)[lo : lo+n : lo+n]
}

// Int32s carves a zeroed []int32 of length n. A nil arena degrades to make.
func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return carve(&a.mu, &a.i32, n)
}

// Ints carves a zeroed []int of length n. A nil arena degrades to make.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return carve(&a.mu, &a.ints, n)
}

// Int64s carves a zeroed []int64 of length n. A nil arena degrades to make.
func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	return carve(&a.mu, &a.i64, n)
}

// Bools carves a zeroed []bool of length n. A nil arena degrades to make.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return carve(&a.mu, &a.b, n)
}

// IncrementalInt32s returns how many int32 elements one Incremental over n
// blocks carves (see NewIncrementalArena), so batch callers can size an
// arena exactly.
func IncrementalInt32s(n int) int { return 11*n + 2 }

// IncrementalInts returns the []int element count of one Incremental over n
// blocks.
func IncrementalInts(n int) int { return n }

// IncrementalBools returns the []bool element count of one Incremental over
// n blocks.
func IncrementalBools(n int) int { return n }
