package pack2d

import (
	"eblow/internal/seqpair"
)

// Incremental evaluates the approximate packing (PackApprox semantics) of a
// sequence pair under single-swap moves without re-packing the whole
// floorplan. It caches the per-block positions of the last evaluation
// together with the Fenwick-tree state of both longest-weighted-common-
// subsequence passes; a swap invalidates only the Gamma- suffix starting at
// the earliest affected index, so Reevaluate rewinds the trees to that point
// (via per-step undo logs) and replays just the stale suffix. The results
// are bit-identical to a full PackApprox + InsideOutline evaluation: the
// replayed pass performs exactly the arithmetic of seqpair's lwcs on the
// same data.
//
// The evaluator owns the index mirrors (block -> position in Gamma+/Gamma-),
// so moves must be applied through SwapPos/SwapNeg/SwapBoth. After replacing
// the sequence pair wholesale (a Restore), call Reset.
//
// Incremental is not safe for concurrent use; every annealing restart owns
// its own evaluator.
type Incremental struct {
	sp     *seqpair.SeqPair
	blocks []Block
	outW   int
	outH   int

	sw, sh []int32 // shrunk dimensions, exactly as PackApprox computes them
	fw, fh []int32 // full block dimensions, for the inside-outline check
	posIdx []int32 // block -> index in Gamma+
	negPos []int   // block -> index in Gamma-

	x, y   []int32
	inside []bool

	ax, ay axis

	// dirtyFrom is the earliest Gamma- index whose cached position may be
	// stale; len(blocks) means the cache is clean.
	dirtyFrom int
}

// NewIncremental builds an evaluator for the sequence pair over the blocks
// inside an outlineW x outlineH outline. The caches start cold: the first
// Reevaluate performs one full packing pass.
func NewIncremental(sp *seqpair.SeqPair, blocks []Block, outlineW, outlineH int) *Incremental {
	return NewIncrementalArena(sp, blocks, outlineW, outlineH, nil)
}

// NewIncrementalArena is NewIncremental with the hot per-block arrays carved
// from the arena instead of individually heap-allocated, so a batched cohort
// of evaluators lays its state out struct-of-arrays style: the same array of
// every instance sits contiguously in a shared backing buffer. A nil arena
// reproduces NewIncremental exactly. One evaluator carves
// IncrementalInt32s/Ints/Bools(n) elements (the rewind logs grow on the heap
// on demand; they start empty either way).
func NewIncrementalArena(sp *seqpair.SeqPair, blocks []Block, outlineW, outlineH int, a *Arena) *Incremental {
	n := len(blocks)
	if sp.Len() != n {
		panic("pack2d: sequence pair and block count mismatch")
	}
	inc := &Incremental{
		sp:     sp,
		blocks: blocks,
		outW:   outlineW,
		outH:   outlineH,
		sw:     a.Int32s(n),
		sh:     a.Int32s(n),
		fw:     a.Int32s(n),
		fh:     a.Int32s(n),
		posIdx: a.Int32s(n),
		negPos: a.Ints(n),
		x:      a.Int32s(n),
		y:      a.Int32s(n),
		inside: a.Bools(n),
	}
	for i, b := range blocks {
		w, h := shrunkDims(b)
		inc.sw[i], inc.sh[i] = int32(w), int32(h)
		inc.fw[i], inc.fh[i] = int32(b.W), int32(b.H)
	}
	inc.ax.initArena(n, a)
	inc.ay.initArena(n, a)
	inc.Reset()
	return inc
}

// SeqPair returns the sequence pair the evaluator operates on.
func (inc *Incremental) SeqPair() *seqpair.SeqPair { return inc.sp }

// Inside reports whether block b was fully inside the outline at the last
// Reevaluate.
func (inc *Incremental) Inside(b int) bool { return inc.inside[b] }

// X returns the cached approximate x position of block b.
func (inc *Incremental) X(b int) int { return int(inc.x[b]) }

// Y returns the cached approximate y position of block b.
func (inc *Incremental) Y(b int) int { return int(inc.y[b]) }

// Reset rebuilds the index mirrors from the sequence pair and marks every
// cached position stale, forcing the next Reevaluate to replay the full
// packing. Use it after the sequence pair was replaced wholesale. The cached
// inside flags are kept, so callers tracking flips across Reset stay
// consistent.
func (inc *Incremental) Reset() {
	for i, b := range inc.sp.Pos {
		inc.posIdx[b] = int32(i)
	}
	for i, b := range inc.sp.Neg {
		inc.negPos[b] = i
	}
	inc.ax.clear()
	inc.ay.clear()
	inc.dirtyFrom = 0
}

// SwapPos swaps Gamma+ positions i and j and marks the affected suffix dirty.
func (inc *Incremental) SwapPos(i, j int) {
	inc.sp.SwapPos(i, j)
	a, b := inc.sp.Pos[i], inc.sp.Pos[j]
	inc.posIdx[a], inc.posIdx[b] = int32(i), int32(j)
	inc.markDirty(min(inc.negPos[a], inc.negPos[b]))
}

// SwapNeg swaps Gamma- positions i and j and marks the affected suffix dirty.
func (inc *Incremental) SwapNeg(i, j int) {
	inc.sp.SwapNeg(i, j)
	a, b := inc.sp.Neg[i], inc.sp.Neg[j]
	inc.negPos[a], inc.negPos[b] = i, j
	inc.markDirty(min(i, j))
}

// SwapBoth exchanges blocks a and b in both sequences. The cached index
// mirrors make this O(1) where seqpair.SeqPair.SwapBoth scans both sequences.
func (inc *Incremental) SwapBoth(a, b int) {
	pa, pb := inc.posIdx[a], inc.posIdx[b]
	na, nb := inc.negPos[a], inc.negPos[b]
	inc.sp.SwapPos(int(pa), int(pb))
	inc.sp.SwapNeg(na, nb)
	inc.posIdx[a], inc.posIdx[b] = pb, pa
	inc.negPos[a], inc.negPos[b] = nb, na
	inc.markDirty(min(na, nb))
}

func (inc *Incremental) markDirty(k int) {
	if k < inc.dirtyFrom {
		inc.dirtyFrom = k
	}
}

// Reevaluate brings the cached positions in line with the sequence pair by
// replaying the packing passes from the earliest dirty Gamma- index, and
// appends to flips every block whose inside-outline status changed since the
// previous evaluation. It returns the (possibly grown) flips slice. The
// positions and inside flags it produces are bit-identical to
// InsideOutline(PackApprox(sp, blocks), blocks, outlineW, outlineH).
func (inc *Incremental) Reevaluate(flips []int) []int {
	n := len(inc.blocks)
	d := inc.dirtyFrom
	if d >= n {
		return flips
	}
	inc.ax.rewind(d)
	inc.ay.rewind(d)
	neg := inc.sp.Neg
	outW, outH := int32(inc.outW), int32(inc.outH)
	for t := d; t < n; t++ {
		b := neg[t]
		kx := inc.posIdx[b]
		var x int32
		if kx > 0 {
			x = inc.ax.prefixMax(kx - 1)
		}
		inc.x[b] = x
		inc.ax.update(t, kx, x+inc.sw[b])

		ky := int32(n-1) - kx
		var y int32
		if ky > 0 {
			y = inc.ay.prefixMax(ky - 1)
		}
		inc.y[b] = y
		inc.ay.update(t, ky, y+inc.sh[b])

		in := x+inc.fw[b] <= outW && y+inc.fh[b] <= outH
		if in != inc.inside[b] {
			inc.inside[b] = in
			flips = append(flips, b)
		}
	}
	inc.dirtyFrom = n
	return flips
}

// axis is one packing direction: a Fenwick max tree over the pass keys whose
// point updates are logged per pass step, so the tree can be rewound to the
// state it had before any given step and the pass replayed from there.
// Coordinates in this problem comfortably fit int32, which halves the cache
// footprint of the hot arrays; a log entry packs node index and previous
// value into one uint64.
type axis struct {
	tree    []int32
	log     []uint64 // node << 32 | previous value, for rewind
	stepEnd []int32  // stepEnd[t] = len(log) after step t's update
}

func (a *axis) initArena(n int, ar *Arena) {
	a.tree = ar.Int32s(n + 1)
	a.stepEnd = ar.Int32s(n)
}

func (a *axis) clear() {
	for i := range a.tree {
		a.tree[i] = 0
	}
	a.log = a.log[:0]
}

// update raises the max at index i to v as pass step `step`, logging every
// node it actually changes. The nodes on a Fenwick update path cover nested
// ranges, so the first node already at >= v ends the walk: every further
// node stores the max of a superset of that node's range.
func (a *axis) update(step int, i, v int32) {
	tree := a.tree
	for i++; int(i) < len(tree); i += i & (-i) {
		old := tree[i]
		if old >= v {
			break
		}
		a.log = append(a.log, uint64(i)<<32|uint64(uint32(old)))
		tree[i] = v
	}
	a.stepEnd[step] = int32(len(a.log))
}

func (a *axis) prefixMax(i int32) int32 {
	tree := a.tree
	var best int32
	for i++; i > 0; i -= i & (-i) {
		if tree[i] > best {
			best = tree[i]
		}
	}
	return best
}

// rewind restores the tree to the state it had before pass step `step` by
// undoing the logged writes in reverse order.
func (a *axis) rewind(step int) {
	end := 0
	if step > 0 {
		end = int(a.stepEnd[step-1])
	}
	for k := len(a.log) - 1; k >= end; k-- {
		e := a.log[k]
		a.tree[e>>32] = int32(uint32(e))
	}
	a.log = a.log[:end]
}
