// Package pack2d evaluates sequence-pair floorplans of OSP characters with
// blank sharing. It provides two evaluations:
//
//   - PackApprox: the fast O(n log n) packing used inside the simulated
//     annealing loop. Blocks are shrunk by half of their blank margins, which
//     approximates the average amount of blank two neighbours can share.
//   - PackExact: the exact O(n^2) evaluation used to legalise the final
//     floorplan. For every ordered pair (i left-of j) it enforces
//     x_j >= x_i + w_i - min(blankRight_i, blankLeft_j), the precise pairwise
//     spacing rule of the OSP problem, and analogously in y. Placements
//     produced by PackExact always satisfy core.Solution.Validate2D for the
//     characters that remain inside the stencil outline.
package pack2d

import (
	"eblow/internal/seqpair"
)

// Block is a rectangle (a character or a cluster of characters) with blank
// margins on its four sides.
type Block struct {
	W, H                           int
	BlankL, BlankR, BlankT, BlankB int
}

// Placement is the result of a packing evaluation.
type Placement struct {
	X, Y          []int
	Width, Height int
}

// PackApprox packs blocks shrunk by half their blanks using the plain
// sequence-pair longest-common-subsequence evaluation. The resulting
// positions are optimistic (patterns may end up slightly too close); use
// PackExact to legalise a floorplan before reporting it.
func PackApprox(sp *seqpair.SeqPair, blocks []Block) *Placement {
	shrunk := make([]seqpair.Block, len(blocks))
	for i, b := range blocks {
		w, h := shrunkDims(b)
		shrunk[i] = seqpair.Block{W: w, H: h}
	}
	p := seqpair.Pack(sp, shrunk)
	return &Placement{X: p.X, Y: p.Y, Width: p.Width, Height: p.Height}
}

// shrunkDims returns a block's dimensions reduced by half its blank margins
// (clamped to 1), the approximation PackApprox packs with. The incremental
// evaluator shares this helper because its bit-identical-to-PackApprox
// guarantee depends on the two never diverging.
func shrunkDims(b Block) (int, int) {
	w := b.W - (b.BlankL+b.BlankR)/2
	h := b.H - (b.BlankT+b.BlankB)/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// PackExact computes the minimal legal positions realising the sequence pair
// with exact pairwise blank sharing. Complexity is O(n^2).
func PackExact(sp *seqpair.SeqPair, blocks []Block) *Placement {
	n := len(blocks)
	if sp.Len() != n {
		panic("pack2d: sequence pair and block count mismatch")
	}
	pl := &Placement{X: make([]int, n), Y: make([]int, n)}
	if n == 0 {
		return pl
	}
	posIdx := make([]int, n)
	negIdx := make([]int, n)
	for i, b := range sp.Pos {
		posIdx[b] = i
	}
	for i, b := range sp.Neg {
		negIdx[b] = i
	}

	// Process blocks in Gamma- order: every horizontal or vertical
	// predecessor of a block appears earlier in Gamma-, so a single pass
	// computes the longest-path positions.
	for _, j := range sp.Neg {
		x, y := 0, 0
		for _, i := range sp.Neg {
			if i == j {
				break
			}
			if posIdx[i] < posIdx[j] { // i left of j
				share := min(blocks[i].BlankR, blocks[j].BlankL)
				if v := pl.X[i] + blocks[i].W - share; v > x {
					x = v
				}
			} else { // i below j (posIdx[i] > posIdx[j], negIdx[i] < negIdx[j])
				share := min(blocks[i].BlankT, blocks[j].BlankB)
				if v := pl.Y[i] + blocks[i].H - share; v > y {
					y = v
				}
			}
		}
		pl.X[j], pl.Y[j] = x, y
		if r := x + blocks[j].W; r > pl.Width {
			pl.Width = r
		}
		if t := y + blocks[j].H; t > pl.Height {
			pl.Height = t
		}
	}
	return pl
}

// InsideOutline reports which blocks of a placement lie fully inside a
// W x H outline anchored at the origin.
func InsideOutline(pl *Placement, blocks []Block, w, h int) []bool {
	inside := make([]bool, len(blocks))
	for i, b := range blocks {
		inside[i] = pl.X[i] >= 0 && pl.Y[i] >= 0 && pl.X[i]+b.W <= w && pl.Y[i]+b.H <= h
	}
	return inside
}
