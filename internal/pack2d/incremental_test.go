package pack2d

import (
	"math/rand"
	"testing"

	"eblow/internal/seqpair"
)

func randomBlocks(rng *rand.Rand, n int) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		w := 10 + rng.Intn(40)
		h := 10 + rng.Intn(40)
		blocks[i] = Block{
			W: w, H: h,
			BlankL: rng.Intn(w/2 + 1), BlankR: rng.Intn(w/2 + 1),
			BlankT: rng.Intn(h/2 + 1), BlankB: rng.Intn(h/2 + 1),
		}
	}
	return blocks
}

// checkAgainstFull compares the incremental caches with a from-scratch
// PackApprox + InsideOutline evaluation of the same sequence pair.
func checkAgainstFull(t *testing.T, inc *Incremental, sp *seqpair.SeqPair, blocks []Block, outW, outH int) {
	t.Helper()
	pl := PackApprox(sp, blocks)
	inside := InsideOutline(pl, blocks, outW, outH)
	for b := range blocks {
		if inc.X(b) != pl.X[b] || inc.Y(b) != pl.Y[b] {
			t.Fatalf("block %d position (%d,%d), full repack has (%d,%d)",
				b, inc.X(b), inc.Y(b), pl.X[b], pl.Y[b])
		}
		if inc.Inside(b) != inside[b] {
			t.Fatalf("block %d inside=%v, full repack has %v", b, inc.Inside(b), inside[b])
		}
	}
}

// TestIncrementalMatchesFullRepack drives the evaluator through random swap
// sequences (interleaved with undos and wholesale resets) and asserts that
// every reevaluation is bit-identical to a full repack.
func TestIncrementalMatchesFullRepack(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 40} {
		rng := rand.New(rand.NewSource(int64(100 + n)))
		blocks := randomBlocks(rng, n)
		outW, outH := 120, 120
		sp := seqpair.Random(n, rng)
		inc := NewIncremental(sp, blocks, outW, outH)
		inc.Reevaluate(nil)
		checkAgainstFull(t, inc, sp, blocks, outW, outH)

		for move := 0; move < 300; move++ {
			if n >= 2 {
				i, j := rng.Intn(n), rng.Intn(n)
				for j == i {
					j = rng.Intn(n)
				}
				kind := rng.Intn(3)
				apply := func() {
					switch kind {
					case 0:
						inc.SwapPos(i, j)
					case 1:
						inc.SwapNeg(i, j)
					default:
						inc.SwapBoth(sp.Pos[i], sp.Pos[j])
					}
				}
				apply()
				if rng.Intn(3) == 0 {
					// Rejected move: undo before reevaluating (the cache is
					// still dirty from the aborted move).
					apply()
				}
			}
			if rng.Intn(5) == 0 {
				// Sometimes re-evaluate mid-sequence so the dirty window
				// spans a mix of evaluated and pending moves.
				inc.Reevaluate(nil)
			}
			inc.Reevaluate(nil)
			checkAgainstFull(t, inc, sp, blocks, outW, outH)
			if err := sp.Validate(); err != nil {
				t.Fatal(err)
			}
		}

		// Wholesale replacement (the Restore path).
		repl := seqpair.Random(n, rng)
		sp.CopyFrom(repl)
		inc.Reset()
		inc.Reevaluate(nil)
		checkAgainstFull(t, inc, sp, blocks, outW, outH)
	}
}

// TestIncrementalFlips checks that Reevaluate reports exactly the blocks
// whose inside status changed.
func TestIncrementalFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	blocks := randomBlocks(rng, n)
	sp := seqpair.Random(n, rng)
	inc := NewIncremental(sp, blocks, 100, 100)

	prev := make([]bool, n)
	for move := 0; move < 200; move++ {
		i, j := rng.Intn(n), rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		inc.SwapNeg(i, j)
		flips := inc.Reevaluate(nil)
		for _, b := range flips {
			prev[b] = !prev[b]
		}
		for b := 0; b < n; b++ {
			if prev[b] != inc.Inside(b) {
				t.Fatalf("move %d: flips out of sync at block %d", move, b)
			}
		}
	}
}
