package report

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The report tests run the experiment plumbing on the two smallest cases of
// each family so they stay fast; the full tables are exercised by the
// benchmark harness.

func quickConfig() Config {
	return Config{Seed: 1, SATimeLimit: time.Second, EBlow2DTimeLimit: time.Second, ExactTimeLimit: 2 * time.Second}
}

func TestTable3Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment plumbing is slow; run without -short")
	}
	rows, err := Table3(context.Background(), []string{"1D-1"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Results) != 4 {
		t.Fatalf("unexpected shape: %+v", rows)
	}
	for _, r := range rows[0].Results {
		if r.WritingTime <= 0 || r.Characters <= 0 {
			t.Errorf("%s produced empty result", r.Algorithm)
		}
	}
	text := FormatRows("Table 3", rows)
	if !strings.Contains(text, "1D-1") || !strings.Contains(text, "E-BLOW") {
		t.Error("formatted table missing content")
	}
}

func TestTable4Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment plumbing is slow; run without -short")
	}
	rows, err := Table4(context.Background(), []string{"2D-1"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Results) != 3 {
		t.Fatalf("unexpected shape: %+v", rows)
	}
}

func TestTable5SmallestCases(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment plumbing is slow; run without -short")
	}
	// Run only through the plumbing for the smallest case of each family by
	// constructing a config with a tiny time limit; the point is that the
	// rows are produced and formatted, not that the ILP finishes.
	cfg := quickConfig()
	rows, err := Table5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table5Cases()) {
		t.Fatalf("expected %d rows, got %d", len(Table5Cases()), len(rows))
	}
	text := FormatRows("Table 5", rows)
	if !strings.Contains(text, "ILP") {
		t.Error("table 5 missing ILP column")
	}
}

func TestFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment plumbing is slow; run without -short")
	}
	data, err := Fig5(context.Background(), []string{"1M-1"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(data["1M-1"]) == 0 {
		t.Error("Fig5 produced no iterations")
	}
	hist, err := Fig6(context.Background(), "1M-1", quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 10 {
		t.Errorf("Fig6 histogram has %d buckets", len(hist))
	}
	if FormatFig5(data) == "" || FormatFig6("1M-1", hist) == "" {
		t.Error("figure formatting empty")
	}
}

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment plumbing is slow; run without -short")
	}
	rows, err := Ablation(context.Background(), []string{"1D-1"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].T0 <= 0 || rows[0].T1 <= 0 {
		t.Fatalf("unexpected ablation rows: %+v", rows)
	}
	if FormatAblation(rows) == "" {
		t.Error("ablation formatting empty")
	}
}

func TestCaseLists(t *testing.T) {
	if len(Table3Cases()) != 12 || len(Table4Cases()) != 12 || len(Table5Cases()) != 9 {
		t.Error("unexpected case list lengths")
	}
}
