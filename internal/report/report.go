// Package report runs the experiments of the E-BLOW paper's evaluation
// section (Tables 3-5, Figures 5, 6, 11, 12) on the synthetic benchmark
// suite and formats the results. It is shared by the benchmark harness in
// the repository root (bench_test.go) and the cmd/ospbench binary.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"eblow/internal/baseline"
	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/gen"
	"eblow/internal/oned"
	"eblow/internal/twod"
)

// AlgoResult is one algorithm's outcome on one benchmark case.
type AlgoResult struct {
	Algorithm string
	// WritingTime is the MCC writing time T; -1 means the algorithm found no
	// solution within its limit.
	WritingTime int64
	Characters  int
	CPU         time.Duration
	Optimal     bool
}

// Row is one benchmark case of a table.
type Row struct {
	Case    string
	Results []AlgoResult
}

// Config controls the experiment runtime budget.
type Config struct {
	// Seed seeds the randomized algorithms.
	Seed int64
	// SATimeLimit bounds the prior-work 2D annealer per case (default 20s).
	SATimeLimit time.Duration
	// EBlow2DTimeLimit bounds the E-BLOW 2D annealer per case (default 10s).
	EBlow2DTimeLimit time.Duration
	// ExactTimeLimit bounds each exact ILP solve of Table 5 (default 20s;
	// the paper used 3600s, the shape — which cases finish — is the same).
	ExactTimeLimit time.Duration
	// Workers bounds the goroutines used by the parallel solver stages
	// (0 = one per CPU). Results are identical for every worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.SATimeLimit <= 0 {
		c.SATimeLimit = 20 * time.Second
	}
	if c.EBlow2DTimeLimit <= 0 {
		c.EBlow2DTimeLimit = 10 * time.Second
	}
	if c.ExactTimeLimit <= 0 {
		c.ExactTimeLimit = 20 * time.Second
	}
	return c
}

// Table3Cases lists the benchmark cases of Table 3 (1DOSP).
func Table3Cases() []string {
	return []string{"1D-1", "1D-2", "1D-3", "1D-4", "1M-1", "1M-2", "1M-3", "1M-4", "1M-5", "1M-6", "1M-7", "1M-8"}
}

// Table4Cases lists the benchmark cases of Table 4 (2DOSP).
func Table4Cases() []string {
	return []string{"2D-1", "2D-2", "2D-3", "2D-4", "2M-1", "2M-2", "2M-3", "2M-4", "2M-5", "2M-6", "2M-7", "2M-8"}
}

// Table5Cases lists the benchmark cases of Table 5 (exact ILP comparison).
func Table5Cases() []string {
	return []string{"1T-1", "1T-2", "1T-3", "1T-4", "1T-5", "2T-1", "2T-2", "2T-3", "2T-4"}
}

func resultFromSolution(alg string, sol *core.Solution) AlgoResult {
	return AlgoResult{
		Algorithm:   alg,
		WritingTime: sol.WritingTime,
		Characters:  sol.NumSelected(),
		CPU:         sol.Runtime,
	}
}

// Table3 reproduces the 1DOSP comparison: greedy, the prior-work heuristic
// [24], the row-structure heuristic [25], and E-BLOW, on the given cases.
func Table3(ctx context.Context, cases []string, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, name := range cases {
		in, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Row{Case: name}

		g, err := baseline.Greedy1D(in)
		if err != nil {
			return nil, fmt.Errorf("%s greedy: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("Greedy[24]", g))

		h, err := baseline.Heuristic1D(ctx, in, baseline.Heuristic1DOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("%s heuristic: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("[24]", h))

		r, err := baseline.RowHeuristic1D(in)
		if err != nil {
			return nil, fmt.Errorf("%s row heuristic: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("[25]", r))

		eopt := oned.Defaults()
		eopt.Workers = cfg.Workers
		e, _, err := oned.Solve(ctx, in, eopt)
		if err != nil {
			return nil, fmt.Errorf("%s e-blow: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("E-BLOW", e))

		rows = append(rows, row)
	}
	return rows, nil
}

// Table4 reproduces the 2DOSP comparison: greedy, the prior-work SA
// floorplanner [24], and E-BLOW.
func Table4(ctx context.Context, cases []string, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, name := range cases {
		in, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Row{Case: name}

		g, err := baseline.Greedy2D(in)
		if err != nil {
			return nil, fmt.Errorf("%s greedy: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("Greedy[24]", g))

		sa, err := baseline.SA2D(ctx, in, baseline.SA2DOptions{Seed: cfg.Seed, TimeLimit: cfg.SATimeLimit, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("%s SA: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("[24]", sa))

		opt := twod.Defaults()
		opt.Seed = cfg.Seed
		opt.TimeLimit = cfg.EBlow2DTimeLimit
		opt.Workers = cfg.Workers
		e, _, err := twod.Solve(ctx, in, opt)
		if err != nil {
			return nil, fmt.Errorf("%s e-blow: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("E-BLOW", e))

		rows = append(rows, row)
	}
	return rows, nil
}

// Table5 compares the exact ILP formulations against E-BLOW on the tiny 1T/2T
// cases. A missing writing time (-1) means the ILP hit its time limit without
// an incumbent, mirroring the "NA" entries of the paper.
func Table5(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, name := range Table5Cases() {
		in, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Row{Case: name}

		var exactRes *exact.Result
		eopt := exact.Options{TimeLimit: cfg.ExactTimeLimit, Workers: cfg.Workers}
		if in.Kind == core.OneD {
			exactRes, err = exact.Solve1D(ctx, in, eopt)
		} else {
			exactRes, err = exact.Solve2D(ctx, in, eopt)
		}
		if err != nil {
			return nil, fmt.Errorf("%s exact: %w", name, err)
		}
		ilpResult := AlgoResult{Algorithm: "ILP", WritingTime: -1, CPU: exactRes.Elapsed, Optimal: exactRes.Optimal}
		if exactRes.Solution != nil {
			ilpResult.WritingTime = exactRes.Solution.WritingTime
			ilpResult.Characters = exactRes.Solution.NumSelected()
		}
		row.Results = append(row.Results, ilpResult)

		var heur *core.Solution
		if in.Kind == core.OneD {
			hopt := oned.Defaults()
			hopt.Workers = cfg.Workers
			heur, _, err = oned.Solve(ctx, in, hopt)
		} else {
			opt := twod.Defaults()
			opt.Seed = cfg.Seed
			opt.Workers = cfg.Workers
			heur, _, err = twod.Solve(ctx, in, opt)
		}
		if err != nil {
			return nil, fmt.Errorf("%s e-blow: %w", name, err)
		}
		row.Results = append(row.Results, resultFromSolution("E-BLOW", heur))
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5 returns the unsolved-character counts per successive-rounding
// iteration for the given 1D cases (Fig. 5 of the paper).
func Fig5(ctx context.Context, cases []string, cfg Config) (map[string][]int, error) {
	out := make(map[string][]int)
	for _, name := range cases {
		in, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		opt := oned.Defaults()
		opt.CollectTrace = true
		opt.Workers = cfg.Workers
		_, trace, err := oned.Solve(ctx, in, opt)
		if err != nil {
			return nil, err
		}
		out[name] = trace.UnsolvedPerIteration
	}
	return out, nil
}

// Fig6 returns the histogram (10 buckets of width 0.1) of the fractional LP
// values in the last rounding iteration of the given case (Fig. 6).
func Fig6(ctx context.Context, caseName string, cfg Config) ([]int, error) {
	in, err := gen.ByName(caseName)
	if err != nil {
		return nil, err
	}
	opt := oned.Defaults()
	opt.CollectTrace = true
	opt.Workers = cfg.Workers
	_, trace, err := oned.Solve(ctx, in, opt)
	if err != nil {
		return nil, err
	}
	hist := make([]int, 10)
	for _, v := range trace.LastLPValues {
		b := int(v * 10)
		if b < 0 {
			b = 0
		}
		if b > 9 {
			b = 9
		}
		hist[b]++
	}
	return hist, nil
}

// AblationRow compares E-BLOW-0 (no fast ILP convergence, no post-insertion)
// against E-BLOW-1 on one case (Figs. 11 and 12).
type AblationRow struct {
	Case           string
	T0, T1         int64
	CPU0, CPU1     time.Duration
	Chars0, Chars1 int
}

// Ablation runs the E-BLOW-0 vs E-BLOW-1 comparison of Figs. 11 and 12.
func Ablation(ctx context.Context, cases []string, cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, name := range cases {
		in, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		opt0 := oned.Defaults()
		opt0.EnableFastConvergence = false
		opt0.EnablePostInsertion = false
		opt0.Workers = cfg.Workers
		s0, _, err := oned.Solve(ctx, in, opt0)
		if err != nil {
			return nil, err
		}
		opt1 := oned.Defaults()
		opt1.Workers = cfg.Workers
		s1, _, err := oned.Solve(ctx, in, opt1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Case: name,
			T0:   s0.WritingTime, T1: s1.WritingTime,
			CPU0: s0.Runtime, CPU1: s1.Runtime,
			Chars0: s0.NumSelected(), Chars1: s1.NumSelected(),
		})
	}
	return rows, nil
}

// FormatRows renders rows as a fixed-width text table with one column group
// per algorithm (T, char#, CPU), in the style of the paper's tables.
func FormatRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "case")
	for _, r := range rows[0].Results {
		fmt.Fprintf(&b, " | %-30s", r.Algorithm)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-8s", "")
	for range rows[0].Results {
		fmt.Fprintf(&b, " | %10s %8s %10s", "T", "char#", "CPU")
	}
	fmt.Fprintln(&b)
	sums := make([]float64, len(rows[0].Results))
	valid := make([]int, len(rows[0].Results))
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s", row.Case)
		for i, r := range row.Results {
			t := "NA"
			if r.WritingTime >= 0 {
				t = fmt.Sprintf("%d", r.WritingTime)
				sums[i] += float64(r.WritingTime)
				valid[i]++
			}
			fmt.Fprintf(&b, " | %10s %8d %10s", t, r.Characters, formatDur(r.CPU))
		}
		fmt.Fprintln(&b)
	}
	// Ratio line relative to the last column group (E-BLOW), as in the paper.
	last := len(sums) - 1
	if last >= 0 && sums[last] > 0 && valid[last] == len(rows) {
		fmt.Fprintf(&b, "%-8s", "ratio")
		for i := range sums {
			if valid[i] == len(rows) {
				fmt.Fprintf(&b, " | %10.2f %8s %10s", sums[i]/sums[last], "", "")
			} else {
				fmt.Fprintf(&b, " | %10s %8s %10s", "-", "", "")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig5 renders the per-iteration unsolved counts.
func FormatFig5(data map[string][]int) string {
	var b strings.Builder
	b.WriteString("Figure 5: unsolved characters per LP rounding iteration\n")
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-6s %v\n", name, data[name])
	}
	return b.String()
}

// FormatFig6 renders the last-LP value histogram.
func FormatFig6(caseName string, hist []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: distribution of LP values in the last iteration (%s)\n", caseName)
	for i, c := range hist {
		fmt.Fprintf(&b, "%.1f-%.1f: %d\n", float64(i)/10, float64(i+1)/10, c)
	}
	return b.String()
}

// FormatAblation renders the E-BLOW-0 vs E-BLOW-1 comparison.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Figures 11/12: E-BLOW-0 (no fast ILP convergence, no post-insertion) vs E-BLOW-1\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %8s %12s %12s %8s\n", "case", "T(E-BLOW-0)", "T(E-BLOW-1)", "ratio", "CPU(0)", "CPU(1)", "ratio")
	var sumT0, sumT1 float64
	var sumC0, sumC1 float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %12d %8.3f %12s %12s %8.3f\n",
			r.Case, r.T0, r.T1, ratio(r.T1, r.T0), formatDur(r.CPU0), formatDur(r.CPU1),
			ratio(int64(r.CPU1), int64(r.CPU0)))
		sumT0 += float64(r.T0)
		sumT1 += float64(r.T1)
		sumC0 += float64(r.CPU0)
		sumC1 += float64(r.CPU1)
	}
	if sumT0 > 0 && sumC0 > 0 {
		fmt.Fprintf(&b, "%-8s %12s %12s %8.3f %12s %12s %8.3f\n", "avg", "", "", sumT1/sumT0, "", "", sumC1/sumC0)
	}
	return b.String()
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func formatDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
