// Package portfolio races several OSP planners against each other under one
// deadline and returns the best feasible stencil plan any of them found.
// This is the solver-orchestration layer above the raw algorithms: E-BLOW
// (the paper's planner) runs alongside the prior-work baselines, every
// entrant honours the shared context, and the winner is picked by comparing
// writing times in a fixed strategy order — so for a fixed seed the outcome
// is identical no matter how many workers ran the race or in which order
// the entrants finished. (A deadline that truncates an entrant mid-run is
// the one source of nondeterminism: wall clock decides how far it got.)
//
// The race is useful in two regimes. Under a tight deadline the cheap
// greedy/row heuristics guarantee a feasible incumbent even when the LP or
// annealing planners are cut off mid-run. With room to spare, E-BLOW
// usually wins, but on degenerate instances a baseline occasionally beats
// it — the portfolio returns whichever plan writes fastest.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"eblow/internal/baseline"
	"eblow/internal/core"
	"eblow/internal/oned"
	"eblow/internal/par"
	"eblow/internal/twod"
)

// Options configures a portfolio race.
type Options struct {
	// Workers bounds how many strategies run concurrently and how many
	// goroutines the inner planners may use (the heavy strategies share
	// the pool; see buildStrategies). 0 means one worker per CPU; 1 runs
	// the whole portfolio sequentially. The returned solution is the same
	// for every worker count unless the deadline truncates an entrant.
	Workers int
	// Timeout is the shared deadline for the whole race (0 = none beyond
	// the caller's context). Strategies cut off by the deadline simply
	// drop out; the best finished strategy still wins.
	Timeout time.Duration
	// Seed seeds the randomized strategies; each strategy derives its own
	// sub-seed, so runs are reproducible.
	Seed int64
	// Restarts is the number of annealing restarts given to the SA-based
	// strategies (0 means 1).
	Restarts int
	// Only restricts the race to the named strategies (see Names). Nil
	// means every strategy applicable to the instance kind.
	Only []string
}

func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run is one strategy's outcome in the race.
type Run struct {
	// Name identifies the strategy.
	Name string
	// Solution is nil when the strategy failed or was cut off.
	Solution *core.Solution
	// Err reports why Solution is nil (typically context.DeadlineExceeded).
	Err error
	// Elapsed is the strategy's wall-clock time.
	Elapsed time.Duration
}

// Result is the outcome of a portfolio race.
type Result struct {
	// Best is the fastest-writing feasible plan any strategy produced.
	Best *core.Solution
	// Winner names the strategy that produced Best.
	Winner string
	// Runs holds every strategy's outcome in the fixed strategy order.
	Runs []Run
	// Elapsed is the wall-clock time of the whole race.
	Elapsed time.Duration
}

// strategy is one entrant: a stable name plus the solver invocation.
type strategy struct {
	name  string
	solve func(ctx context.Context) (*core.Solution, error)
}

// ErrNoSolution is returned when no strategy produced a feasible solution
// (for example because the deadline cut all of them off).
var ErrNoSolution = errors.New("portfolio: no strategy produced a feasible solution")

// Names lists the strategies applicable to the given instance kind, in race
// order. The order is part of the determinism contract: ties in writing
// time go to the earlier strategy.
func Names(kind core.Kind) []string {
	if kind == core.OneD {
		return []string{"eblow", "row25", "heuristic24", "greedy"}
	}
	return []string{"eblow", "sa24", "greedy"}
}

// Solve races every applicable strategy on the instance and returns the
// best feasible plan. The context plus opt.Timeout bound the whole race; a
// context that is already done returns ctx.Err() immediately.
func Solve(ctx context.Context, in *core.Instance, opt Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}

	strategies, err := buildStrategies(in, opt)
	if err != nil {
		return nil, err
	}

	// Race: every strategy writes only its own slot, so the runs slice is
	// identical for any worker count; completion order never matters.
	runs := make([]Run, len(strategies))
	tasks := make([]func(), len(strategies))
	for i, st := range strategies {
		i, st := i, st
		tasks[i] = func() {
			t0 := time.Now()
			sol, err := st.solve(ctx)
			if err == nil && sol != nil {
				// Only feasible plans may win the race.
				if verr := sol.Validate(in); verr != nil {
					sol, err = nil, fmt.Errorf("portfolio: %s produced an invalid plan: %w", st.name, verr)
				}
			}
			runs[i] = Run{Name: st.name, Solution: sol, Err: err, Elapsed: time.Since(t0)}
		}
	}
	par.Do(opt.workerCount(), tasks...)

	res := &Result{Runs: runs, Elapsed: time.Since(start)}
	for _, r := range runs {
		if r.Solution == nil {
			continue
		}
		if res.Best == nil || r.Solution.WritingTime < res.Best.WritingTime {
			res.Best = r.Solution
			res.Winner = r.Name
		}
	}
	if res.Best == nil {
		// Prefer surfacing the caller's cancellation over the generic error.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrNoSolution
	}
	return res, nil
}

// heavyStrategies names the entrants that saturate the worker pool
// themselves (annealing/LP planners); the rest are single-shot heuristics.
var heavyStrategies = map[string]bool{"eblow": true, "sa24": true}

// buildStrategies assembles the entrants for the instance kind, filtered by
// opt.Only, in the fixed race order.
func buildStrategies(in *core.Instance, opt Options) ([]strategy, error) {
	names := Names(in.Kind)
	if len(opt.Only) > 0 {
		allowed := make(map[string]bool, len(opt.Only))
		for _, n := range opt.Only {
			allowed[n] = true
		}
		var kept []string
		for _, n := range names {
			if allowed[n] {
				kept = append(kept, n)
				delete(allowed, n)
			}
		}
		for n := range allowed {
			return nil, fmt.Errorf("portfolio: unknown strategy %q for %s instances (have %v)", n, in.Kind, Names(in.Kind))
		}
		names = kept
	}

	workers := opt.workerCount()
	// The heavy (annealing/LP) strategies race concurrently; handing each of
	// them the full pool would oversubscribe the CPUs roughly heavy-fold and
	// distort per-strategy timings, so the ones actually racing share it.
	// The split does not affect results — inner solvers are worker-count
	// independent.
	heavy := 0
	for _, n := range names {
		if heavyStrategies[n] {
			heavy++
		}
	}
	if heavy < 1 {
		heavy = 1
	}
	inner := workers / heavy
	if inner < 1 {
		inner = 1
	}
	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	all := map[string]strategy{}
	if in.Kind == core.OneD {
		all["eblow"] = strategy{"eblow", func(ctx context.Context) (*core.Solution, error) {
			o := oned.Defaults()
			o.Workers = inner
			sol, _, err := oned.Solve(ctx, in, o)
			return sol, err
		}}
		all["row25"] = strategy{"row25", func(ctx context.Context) (*core.Solution, error) {
			return baseline.RowHeuristic1D(in)
		}}
		all["heuristic24"] = strategy{"heuristic24", func(ctx context.Context) (*core.Solution, error) {
			return baseline.Heuristic1D(ctx, in, baseline.Heuristic1DOptions{Seed: opt.Seed + 1})
		}}
		all["greedy"] = strategy{"greedy", func(ctx context.Context) (*core.Solution, error) {
			return baseline.Greedy1D(in)
		}}
	} else {
		all["eblow"] = strategy{"eblow", func(ctx context.Context) (*core.Solution, error) {
			o := twod.Defaults()
			o.Seed = opt.Seed
			o.Workers = inner
			o.Restarts = restarts
			sol, _, err := twod.Solve(ctx, in, o)
			return sol, err
		}}
		all["sa24"] = strategy{"sa24", func(ctx context.Context) (*core.Solution, error) {
			return baseline.SA2D(ctx, in, baseline.SA2DOptions{
				Seed:     opt.Seed + 2,
				Restarts: restarts,
				Workers:  inner,
			})
		}}
		all["greedy"] = strategy{"greedy", func(ctx context.Context) (*core.Solution, error) {
			return baseline.Greedy2D(in)
		}}
	}

	out := make([]strategy, len(names))
	for i, n := range names {
		out[i] = all[n]
	}
	return out, nil
}
