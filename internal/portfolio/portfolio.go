// Package portfolio races several OSP planners against each other under one
// deadline and returns the best feasible stencil plan any of them found.
// This is the solver-orchestration layer above the raw algorithms: the
// entrants come from the shared strategy registry (package solver) — E-BLOW
// (the paper's planner) runs alongside the prior-work baselines, every
// entrant honours the shared context, and the winner is picked by comparing
// writing times in the fixed registry race order — so for a fixed seed the
// outcome is identical no matter how many workers ran the race or in which
// order the entrants finished. (A deadline that truncates an entrant mid-run
// is the one source of nondeterminism: wall clock decides how far it got.)
//
// The race is useful in two regimes. Under a tight deadline the cheap
// greedy/row heuristics guarantee a feasible incumbent even when the LP or
// annealing planners are cut off mid-run. With room to spare, E-BLOW
// usually wins, but on degenerate instances a baseline occasionally beats
// it — the portfolio returns whichever plan writes fastest.
//
// The race can also be learned (package learn): with Options.Learn set the
// entrant order, the pruning of never-winning heavy entrants and the
// heavy-worker split come from the store's shape-conditioned win-rate
// statistics, and the outcome of the race is recorded back. A cold store
// reproduces the static registry order bit-for-bit, so opting in is never a
// regression.
//
// The package also registers itself in the strategy registry under the name
// "portfolio", so the job service and eblow.SolveWith can schedule a whole
// race like any single strategy.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"eblow/internal/core"
	"eblow/internal/learn"
	"eblow/internal/par"
	"eblow/internal/solver"
)

// Options configures a portfolio race.
type Options struct {
	// Workers bounds how many strategies run concurrently and how many
	// goroutines the inner planners may use (the heavy strategies share
	// the pool; see entrants). 0 means one worker per CPU; 1 runs
	// the whole portfolio sequentially. The returned solution is the same
	// for every worker count unless the deadline truncates an entrant.
	Workers int
	// Timeout is the shared deadline for the whole race (0 = none beyond
	// the caller's context). Strategies cut off by the deadline simply
	// drop out; the best finished strategy still wins.
	Timeout time.Duration
	// Seed seeds the randomized strategies; each strategy derives its own
	// sub-seed (Seed plus its registry seed offset), so runs are
	// reproducible and entrants never share a random stream.
	Seed int64
	// Restarts is the number of annealing restarts given to the SA-based
	// strategies (0 means 1).
	Restarts int
	// Only restricts the race to the named strategies (see Names). Nil
	// means every registered racing strategy for the instance kind.
	Only []string
	// Learn, when set, makes the race shape-aware: the entrant order, the
	// pruning of heavy entrants whose win probability on this instance's
	// shape sits below the floor, and the heavy-worker split all come from
	// the store's accumulated statistics (see learn.Store.Plan), and the
	// race outcome (winner, objectives, wall-clock) is recorded back into
	// the store unless NoRecord is set. With no or too few statistics for
	// the shape the plan is the static registry order bit-for-bit. The
	// caller owns persistence: Record only mutates memory, call
	// Learn.Save() to write the file.
	Learn *learn.Store
	// NoRecord consults the store without recording this race's outcome.
	NoRecord bool
}

func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run is one strategy's outcome in the race.
type Run = solver.Run

// Result is the outcome of a portfolio race.
type Result struct {
	// Best is the fastest-writing feasible plan any strategy produced.
	Best *core.Solution
	// Winner names the strategy that produced Best.
	Winner string
	// Runs holds every strategy's outcome in the race order actually used
	// (the static registry order, or the learned order when Options.Learn
	// reordered or pruned the race).
	Runs []Run
	// Plan is the learned race plan (nil unless Options.Learn was set). A
	// cold store yields a plan with Learned == false and the static order.
	Plan *learn.Plan
	// Elapsed is the wall-clock time of the whole race.
	Elapsed time.Duration
}

// ErrNoSolution is returned when no strategy produced a feasible solution
// (for example because the deadline cut all of them off).
var ErrNoSolution = errors.New("portfolio: no strategy produced a feasible solution")

// Names lists the strategies applicable to the given instance kind, in race
// order. The order comes from the strategy registry and is part of the
// determinism contract: ties in writing time go to the earlier strategy.
func Names(kind core.Kind) []string { return solver.RacingNames(kind) }

// Solve races every applicable registered strategy on the instance and
// returns the best feasible plan. The context plus opt.Timeout bound the
// whole race; a context that is already done returns ctx.Err() immediately.
func Solve(ctx context.Context, in *core.Instance, opt Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}

	entries, err := entrants(in, opt)
	if err != nil {
		return nil, err
	}

	// Learned scheduling: the store turns the instance's shape fingerprint
	// into a race plan. A learned plan reorders the entrants by win rate and
	// drops the pruned ones; a cold plan leaves the static order untouched,
	// so the code below behaves bit-identically to a race without a store.
	var plan *learn.Plan
	if opt.Learn != nil {
		ents := make([]learn.Entrant, len(entries))
		for i, e := range entries {
			ents[i] = e.LearnEntrant()
		}
		plan = opt.Learn.Plan(learn.Fingerprint(in), ents, learn.PlanConfig{})
		if plan.Learned {
			byName := make(map[string]*solver.Entry, len(entries))
			for _, e := range entries {
				byName[e.Name] = e
			}
			planned := make([]*solver.Entry, 0, len(plan.Order))
			for _, n := range plan.Order {
				if e := byName[n]; e != nil {
					planned = append(planned, e)
				}
			}
			entries = planned
		}
	}

	// The heavy (annealing/LP) strategies race concurrently; handing each of
	// them the full pool would oversubscribe the CPUs roughly heavy-fold and
	// distort per-strategy timings, so the ones actually racing share it.
	// Only the worker-scalable heavies count for the split (registry
	// metadata): a heavy entrant that cannot use more than one goroutine is
	// handed exactly one, and the pool divides among the entrants that
	// genuinely scale — the exact branch and bound included, now that its
	// node evaluation is parallel. A learned plan rebalances the split
	// toward the likely winners (largest-remainder shares, at least one
	// worker each); the static split stays uniform. The split does not
	// affect results — inner solvers are worker-count independent.
	workers := opt.workerCount()
	scalable := 0
	var heavyScalable []string
	for _, e := range entries {
		if e.Heavy && e.Scalable {
			scalable++
			heavyScalable = append(heavyScalable, e.Name)
		}
	}
	if scalable < 1 {
		scalable = 1
	}
	inner := workers / scalable
	if inner < 1 {
		inner = 1
	}
	var shares map[string]int
	if plan != nil && plan.Learned {
		shares = plan.SplitWorkers(workers, heavyScalable)
	}

	// Race: every strategy writes only its own slot, so the runs slice is
	// identical for any worker count; completion order never matters.
	runs := make([]Run, len(entries))
	tasks := make([]func(), len(entries))
	for i, e := range entries {
		i, e := i, e
		entrantWorkers := inner
		if s, ok := shares[e.Name]; ok {
			entrantWorkers = s
		}
		if e.Heavy && !e.Scalable {
			entrantWorkers = 1
		}
		p := solver.Params{
			Workers:  entrantWorkers,
			Seed:     opt.Seed + e.SeedOffset,
			Restarts: opt.Restarts,
		}
		// The cheap deterministic heuristics run outside the shared
		// deadline: they finish in milliseconds and guarantee a feasible
		// incumbent even when the deadline already cut the heavy planners
		// off mid-run.
		runCtx := ctx
		if e.Cheap {
			runCtx = context.WithoutCancel(ctx)
		}
		tasks[i] = func() {
			t0 := time.Now()
			res, err := e.Solver().Solve(runCtx, in, p)
			var sol *core.Solution
			switch {
			case err != nil:
			case !res.Feasible:
				// Only feasible plans may win the race.
				err = fmt.Errorf("portfolio: %s produced an invalid plan: %w", e.Name, res.Solution.Validate(in))
			default:
				sol = res.Solution
			}
			runs[i] = Run{Name: e.Name, Solution: sol, Err: err, Elapsed: time.Since(t0)}
		}
	}
	par.Do(workers, tasks...)

	res := &Result{Runs: runs, Plan: plan, Elapsed: time.Since(start)}
	for _, r := range runs {
		if r.Solution == nil {
			continue
		}
		if res.Best == nil || r.Solution.WritingTime < res.Best.WritingTime {
			res.Best = r.Solution
			res.Winner = r.Name
		}
	}
	if res.Best == nil {
		// Prefer surfacing the caller's cancellation over the generic error.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrNoSolution
	}
	// Recording happens only for races that produced a winner: an aborted
	// race says nothing about which strategy wins the shape. Memory only —
	// persistence stays with whoever opened the store.
	if opt.Learn != nil && !opt.NoRecord {
		outcomes := make([]learn.RunOutcome, len(runs))
		for i, r := range runs {
			o := learn.RunOutcome{
				Name:      r.Name,
				Won:       r.Name == res.Winner,
				Objective: -1,
				Elapsed:   r.Elapsed,
				Failed:    r.Solution == nil,
			}
			if r.Solution != nil {
				o.Objective = r.Solution.WritingTime
			}
			outcomes[i] = o
		}
		opt.Learn.Record(plan.Shape, outcomes)
	}
	return res, nil
}

// entrants resolves the registry entries racing for the instance kind, in
// the fixed registration (race) order. With no opt.Only filter the default
// racing set runs; an explicit filter may name any registered strategy that
// supports the kind (so "exact" can be raced on tiny instances), except the
// portfolio itself.
func entrants(in *core.Instance, opt Options) ([]*solver.Entry, error) {
	if len(opt.Only) == 0 {
		return solver.Racing(in.Kind), nil
	}
	allowed := make(map[string]bool, len(opt.Only))
	for _, n := range opt.Only {
		allowed[n] = true
	}
	var kept []*solver.Entry
	for _, e := range solver.Entries() {
		if allowed[e.Name] && e.Name != "portfolio" && e.Supports(in.Kind) {
			kept = append(kept, e)
			delete(allowed, e.Name)
		}
	}
	// Report leftovers in the caller's order, not map order, so the same
	// bad filter always produces the same error.
	for _, n := range opt.Only {
		if !allowed[n] {
			continue
		}
		if n == "portfolio" {
			return nil, errors.New("portfolio: the race cannot contain itself; drop \"portfolio\" from Only")
		}
		return nil, fmt.Errorf("portfolio: unknown strategy %q for %s instances (have %v)", n, in.Kind, Names(in.Kind))
	}
	return kept, nil
}

// init registers the whole race as a strategy of its own, so callers that
// schedule solvers by name (the job service, eblow.SolveWith) can ask for
// "portfolio" like any other entry. Params map onto Options: Workers, Seed
// and Restarts pass through, Strategies restricts the entrant set, the
// Learn fields select the statistics store, and the deadline is already
// carried by the context the registry wrapper built.
func init() {
	solver.Register(&solver.Entry{
		Name: "portfolio",
		Doc:  "races the registered strategies under one deadline; best feasible plan wins (optionally learned: see Params.Learn)",
		// Deliberately not Batchable: the race consults the shared learn
		// store and saturates the pool itself, so cohort formation would
		// neither preserve the solo resource envelope nor amortize anything.
		OneD: true, TwoD: true, Heavy: true, Scalable: true,
	}, func(ctx context.Context, in *core.Instance, p solver.Params) (*solver.Result, error) {
		// A caller-provided store is shared (the job service holds one for
		// every job) and persisted by its owner; a store opened here from
		// Params.LearnPath is owned by this solve and saved before returning.
		store, ownStore := p.LearnStore, false
		if store == nil && p.Learn {
			path := p.LearnPath
			if path == "" {
				path = learn.DefaultPath
			}
			var err error
			if store, err = learn.Open(path); err != nil {
				return nil, err
			}
			ownStore = true
		}
		res, err := Solve(ctx, in, Options{
			Workers:  p.Workers,
			Seed:     p.Seed,
			Restarts: p.Restarts,
			Only:     p.Strategies,
			Learn:    store,
		})
		if err != nil {
			return nil, err
		}
		if ownStore {
			if err := store.Save(); err != nil {
				return nil, err
			}
		}
		return &solver.Result{Solution: res.Best, Strategy: res.Winner, Runs: res.Runs, Plan: res.Plan}, nil
	})
}
