package portfolio

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
	"eblow/internal/learn"
	"eblow/internal/solver"
)

// smallIn builds the small test instance both learned-race tests share.
func smallIn(kind core.Kind) *core.Instance {
	if kind == core.OneD {
		return testInstance1D()
	}
	return testInstance2D()
}

func testInstance1D() *core.Instance {
	return gen.Small(core.OneD, 60, 3, 11)
}

func testInstance2D() *core.Instance {
	return gen.Small(core.TwoD, 40, 2, 12)
}

// The acceptance contract of learned scheduling: with an empty store the
// race plan, winner and objective are bit-identical to the static registry
// race for a fixed seed.
func TestEmptyStoreRaceIsBitIdenticalToStatic(t *testing.T) {
	for _, kind := range []core.Kind{core.OneD, core.TwoD} {
		in := smallIn(kind)
		static, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2})
		if err != nil {
			t.Fatalf("%s static: %v", kind, err)
		}
		learned, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: learn.NewStore()})
		if err != nil {
			t.Fatalf("%s learned: %v", kind, err)
		}

		if learned.Plan == nil || learned.Plan.Learned {
			t.Fatalf("%s: empty store produced plan %+v, want cold", kind, learned.Plan)
		}
		if learned.Winner != static.Winner {
			t.Errorf("%s: winner %s != static %s", kind, learned.Winner, static.Winner)
		}
		if learned.Best.WritingTime != static.Best.WritingTime {
			t.Errorf("%s: objective %d != static %d", kind, learned.Best.WritingTime, static.Best.WritingTime)
		}
		if !reflect.DeepEqual(learned.Best.Selected, static.Best.Selected) ||
			!reflect.DeepEqual(learned.Best.Placements, static.Best.Placements) {
			t.Errorf("%s: plan differs from the static race", kind)
		}
		staticNames := make([]string, len(static.Runs))
		for i, r := range static.Runs {
			staticNames[i] = r.Name
		}
		if !reflect.DeepEqual(learned.Plan.Order, staticNames) {
			t.Errorf("%s: cold plan order %v != static race order %v", kind, learned.Plan.Order, staticNames)
		}
	}
}

// A store warmed with races where one heavy entrant never wins must prune
// that entrant from subsequent races of the same shape.
func TestWarmedStorePrunesNeverWinningHeavyEntrant(t *testing.T) {
	in := testInstance2D() // 2D race: two heavy entrants (eblow, sa24) + greedy
	store := learn.NewStore()

	var winner string
	for i := 0; i < learn.DefaultMinRaces; i++ {
		res, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: store})
		if err != nil {
			t.Fatal(err)
		}
		winner = res.Winner
	}
	// The race is deterministic, so one heavy entrant won every recorded
	// race and the other never did.
	loser := "sa24"
	if winner == "sa24" {
		loser = "eblow"
	}

	res, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || !res.Plan.Learned {
		t.Fatalf("plan not learned after %d recorded races", learn.DefaultMinRaces)
	}
	if !reflect.DeepEqual(res.Plan.Pruned, []string{loser}) {
		t.Fatalf("pruned = %v, want [%s]", res.Plan.Pruned, loser)
	}
	for _, r := range res.Runs {
		if r.Name == loser {
			t.Fatalf("pruned entrant %s still raced", loser)
		}
	}
	if res.Plan.Order[0] != winner {
		t.Fatalf("learned order %v does not lead with the winner %s", res.Plan.Order, winner)
	}
	if res.Winner != winner || res.Best == nil {
		t.Fatalf("learned race winner %s, want %s", res.Winner, winner)
	}
}

// The full acceptance round trip: record races, persist the store, reload
// it, and plan — the reloaded plan matches the in-memory one. Run with
// -race in CI.
func TestLearnedRoundTripRecordPersistReloadPlan(t *testing.T) {
	in := testInstance2D()
	path := filepath.Join(t.TempDir(), "learn.json")
	store, err := learn.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < learn.DefaultMinRaces; i++ {
		if _, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: store}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: store, NoRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := learn.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Solve(context.Background(), in, Options{Seed: 7, Restarts: 2, Learn: reloaded, NoRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Plan, before.Plan) {
		t.Fatalf("reloaded plan differs:\nbefore %+v\nafter  %+v", before.Plan, after.Plan)
	}
	if after.Winner != before.Winner || after.Best.WritingTime != before.Best.WritingTime {
		t.Fatalf("reloaded race (%s, T=%d) differs from in-memory (%s, T=%d)",
			after.Winner, after.Best.WritingTime, before.Winner, before.Best.WritingTime)
	}
}

// NoRecord consults the plan without mutating the store.
func TestNoRecordLeavesStoreUntouched(t *testing.T) {
	in := testInstance1D()
	store := learn.NewStore()
	if _, err := Solve(context.Background(), in, Options{Seed: 1, Learn: store, NoRecord: true}); err != nil {
		t.Fatal(err)
	}
	if store.Dirty() {
		t.Fatal("NoRecord race recorded an outcome")
	}
	if _, err := Solve(context.Background(), in, Options{Seed: 1, Learn: store}); err != nil {
		t.Fatal(err)
	}
	if !store.Dirty() {
		t.Fatal("recording race left the store clean")
	}
}

// The registry strategy "portfolio" wires Params.LearnStore through to the
// race and reports the plan on the unified Result.
func TestRegistryPortfolioCarriesLearnStore(t *testing.T) {
	in := testInstance1D()
	store := learn.NewStore()
	res, err := solver.Solve(context.Background(), "portfolio", in, solver.Params{Seed: 1, LearnStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("unified Result carries no learned plan")
	}
	if !store.Dirty() {
		t.Fatal("registry race did not record into the shared store")
	}
}

// A deadline-truncated learned race must not poison the store: recording
// only happens for races that produced a winner, and the cheap entrants
// still win under an expired deadline, so the recorded winner is a cheap
// strategy rather than garbage.
func TestLearnedRaceUnderDeadline(t *testing.T) {
	in := gen.Small(core.OneD, 150, 4, 9)
	store := learn.NewStore()
	res, err := Solve(context.Background(), in, Options{Timeout: time.Nanosecond, Learn: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no incumbent under deadline")
	}
}
