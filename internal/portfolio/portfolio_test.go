package portfolio

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
)

func TestRace1D(t *testing.T) {
	in := gen.Small(core.OneD, 60, 3, 11)
	res, err := Solve(context.Background(), in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Winner == "" {
		t.Fatal("race produced no winner")
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatalf("winning plan invalid: %v", err)
	}
	if len(res.Runs) != len(Names(core.OneD)) {
		t.Fatalf("expected %d runs, got %d", len(Names(core.OneD)), len(res.Runs))
	}
	// The winner must be at least as good as every finished entrant.
	for _, r := range res.Runs {
		if r.Solution != nil && r.Solution.WritingTime < res.Best.WritingTime {
			t.Errorf("%s (T=%d) beat the declared winner %s (T=%d)",
				r.Name, r.Solution.WritingTime, res.Winner, res.Best.WritingTime)
		}
	}
}

func TestRace2D(t *testing.T) {
	in := gen.Small(core.TwoD, 40, 2, 12)
	res, err := Solve(context.Background(), in, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatalf("winning plan invalid: %v", err)
	}
	if len(res.Runs) != len(Names(core.TwoD)) {
		t.Fatalf("expected %d runs, got %d", len(Names(core.TwoD)), len(res.Runs))
	}
}

// Same seed, 1 worker vs many workers: identical winner and identical plan.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, kind := range []core.Kind{core.OneD, core.TwoD} {
		in := gen.Small(kind, 50, 2, 21)
		var ref *Result
		for _, workers := range []int{1, 4} {
			res, err := Solve(context.Background(), in, Options{Workers: workers, Seed: 5, Restarts: 2})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Winner != ref.Winner {
				t.Errorf("%s: winner changed with worker count: %s vs %s", kind, ref.Winner, res.Winner)
			}
			if res.Best.WritingTime != ref.Best.WritingTime {
				t.Errorf("%s: writing time changed with worker count: %d vs %d",
					kind, ref.Best.WritingTime, res.Best.WritingTime)
			}
			if !reflect.DeepEqual(res.Best.Selected, ref.Best.Selected) ||
				!reflect.DeepEqual(res.Best.Placements, ref.Best.Placements) {
				t.Errorf("%s: plan changed with worker count", kind)
			}
		}
	}
}

func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := gen.Small(core.OneD, 40, 2, 3)
	start := time.Now()
	_, err := Solve(ctx, in, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled solve took %s", d)
	}
}

// A deadline that cuts off the heavy strategies must still yield a feasible
// plan: the cheap deterministic entrants run outside the shared deadline,
// so even an already-expired race deadline cannot leave the caller without
// an incumbent.
func TestDeadlineStillYieldsFeasiblePlan(t *testing.T) {
	in := gen.Small(core.OneD, 150, 4, 9)
	for _, timeout := range []time.Duration{time.Nanosecond, 5 * time.Millisecond} {
		res, err := Solve(context.Background(), in, Options{Timeout: timeout})
		if err != nil {
			t.Fatalf("timeout %s: race yielded no incumbent: %v", timeout, err)
		}
		if err := res.Best.Validate(in); err != nil {
			t.Fatalf("timeout %s: plan under deadline invalid: %v", timeout, err)
		}
	}
}

func TestOnlyFiltersStrategies(t *testing.T) {
	in := gen.Small(core.OneD, 30, 1, 2)
	res, err := Solve(context.Background(), in, Options{Only: []string{"greedy", "row25"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("expected 2 runs, got %d", len(res.Runs))
	}
	if _, err := Solve(context.Background(), in, Options{Only: []string{"sa24"}}); err == nil {
		t.Error("2D-only strategy accepted for a 1D instance")
	}
}

func TestRejectsInvalidInstance(t *testing.T) {
	if _, err := Solve(context.Background(), &core.Instance{}, Options{}); err == nil {
		t.Error("empty instance accepted")
	}
}
