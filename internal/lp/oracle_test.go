package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// randomLP builds a random bounded-variable LP. Roughly half the seeds
// anchor the constraint right-hand sides around a known interior point so
// the instance is usually feasible; the rest are unconstrained-random so
// infeasible and unbounded cases appear too. withFree sprinkles in free
// variables (no finite bound on either side), which the dense oracle does
// not support natively — see splitFree.
func randomLP(rng *rand.Rand, withFree bool) *Problem {
	n := 1 + rng.Intn(7)
	m := 1 + rng.Intn(7)
	p := NewProblem(n)
	obj := make([]float64, n)
	for j := 0; j < n; j++ {
		obj[j] = float64(rng.Intn(21) - 10)
		switch {
		case withFree && rng.Intn(4) == 0:
			p.SetBounds(j, math.Inf(-1), math.Inf(1))
		case rng.Intn(3) == 0:
			p.SetBounds(j, float64(rng.Intn(3)), math.Inf(1))
		default:
			lo := float64(rng.Intn(3))
			p.SetBounds(j, lo, lo+1+rng.Float64()*8)
		}
	}
	p.SetObjective(obj, rng.Intn(2) == 0)

	anchored := rng.Intn(2) == 0
	x0 := make([]float64, n)
	for j := range x0 {
		lo, up := p.LowerBound(j), p.UpperBound(j)
		switch {
		case math.IsInf(lo, -1):
			x0[j] = rng.Float64()*6 - 3
		case math.IsInf(up, 1):
			x0[j] = lo + rng.Float64()*4
		default:
			x0[j] = lo + rng.Float64()*(up-lo)
		}
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		dot := 0.0
		for j := 0; j < n; j++ {
			row[j] = float64(rng.Intn(11) - 5)
			dot += row[j] * x0[j]
		}
		op := []Op{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(21) - 10)
		if anchored {
			switch op {
			case LE:
				rhs = dot + rng.Float64()*3
			case GE:
				rhs = dot - rng.Float64()*3
			default:
				rhs = dot
			}
		}
		p.AddDense(row, op, rhs)
	}
	return p
}

// splitFree rewrites every free variable x as xp - xm with xp, xm >= 0 so
// the dense oracle (which rejects infinite lower bounds) can solve an
// equivalent problem. Only status and objective survive the rewrite; the
// vertex lives in a different space.
func splitFree(p *Problem) *Problem {
	n := p.NumVars()
	col := make([]int, n)
	neg := make([]int, n)
	nn := 0
	for j := 0; j < n; j++ {
		col[j] = nn
		nn++
		if math.IsInf(p.LowerBound(j), -1) {
			neg[j] = nn
			nn++
		} else {
			neg[j] = -1
		}
	}
	q := NewProblem(nn)
	obj := make([]float64, nn)
	for j := 0; j < n; j++ {
		obj[col[j]] = p.ObjectiveCoeff(j)
		if neg[j] >= 0 {
			obj[neg[j]] = -p.ObjectiveCoeff(j)
		} else {
			q.SetBounds(col[j], p.LowerBound(j), p.UpperBound(j))
		}
	}
	q.SetObjective(obj, p.Maximize())
	for i := 0; i < p.NumConstraints(); i++ {
		terms, op, rhs := p.Constraint(i)
		var out []Term
		for _, t := range terms {
			out = append(out, Term{Var: col[t.Var], Coeff: t.Coeff})
			if neg[t.Var] >= 0 {
				out = append(out, Term{Var: neg[t.Var], Coeff: -t.Coeff})
			}
		}
		q.AddConstraint(out, op, rhs)
	}
	return q
}

// vertexFeasible checks x against every bound and constraint of p.
func vertexFeasible(p *Problem, x []float64) bool {
	const tol = 1e-5
	for j := 0; j < p.NumVars(); j++ {
		if x[j] < p.LowerBound(j)-tol || x[j] > p.UpperBound(j)+tol {
			return false
		}
	}
	for i := 0; i < p.NumConstraints(); i++ {
		terms, op, rhs := p.Constraint(i)
		dot := 0.0
		for _, t := range terms {
			dot += t.Coeff * x[t.Var]
		}
		switch op {
		case LE:
			if dot > rhs+tol {
				return false
			}
		case GE:
			if dot < rhs-tol {
				return false
			}
		default:
			if math.Abs(dot-rhs) > tol {
				return false
			}
		}
	}
	return true
}

// TestSparseMatchesDenseOracle is the backend equivalence property: on
// random LPs with equality rows, finite upper bounds and free variables,
// the sparse revised simplex and the dense tableau oracle must agree on
// status and objective, and the sparse vertex must satisfy the original
// problem exactly.
func TestSparseMatchesDenseOracle(t *testing.T) {
	sparse, ok := LookupBackend("sparse")
	if !ok {
		t.Fatal("sparse backend missing")
	}
	dense, ok := LookupBackend("dense")
	if !ok {
		t.Fatal("dense backend missing")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		withFree := rng.Intn(2) == 0
		p := randomLP(rng, withFree)

		sp, err := sparse.Solve(p.Clone(), nil)
		if err != nil {
			t.Logf("seed %d: sparse error %v", seed, err)
			return false
		}
		dp := p
		if withFree {
			dp = splitFree(p)
		}
		dn, err := dense.Solve(dp.Clone(), nil)
		if err != nil {
			t.Logf("seed %d: dense error %v", seed, err)
			return false
		}
		if sp.Status != dn.Status {
			t.Logf("seed %d: sparse %v vs dense %v", seed, sp.Status, dn.Status)
			return false
		}
		if sp.Status != Optimal {
			return true
		}
		if !vertexFeasible(p, sp.X) {
			t.Logf("seed %d: sparse vertex infeasible: %v", seed, sp.X)
			return false
		}
		scale := 1 + math.Abs(dn.Objective)
		if math.Abs(sp.Objective-dn.Objective) > 1e-6*scale {
			t.Logf("seed %d: objective sparse %v vs dense %v", seed, sp.Objective, dn.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWarmResolveIdenticalProblem re-solves a just-solved LP from its own
// optimal basis: the warm solve must confirm optimality immediately, in a
// handful of pivots at most. This is the unit-level form of the
// warm-starts-are-cheap contract that ospbench -lp-perf measures end to
// end.
func TestWarmResolveIdenticalProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solved := 0
	for trial := 0; trial < 80; trial++ {
		p := randomLP(rng, true)
		cold, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: cold solve error: %v", trial, err)
		}
		if cold.Status != Optimal || cold.Basis == nil {
			continue
		}
		solved++
		warm, err := SolveWarm(p, cold.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm solve error: %v", trial, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: warm status %v", trial, warm.Status)
		}
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
			t.Errorf("trial %d: warm objective %v vs cold %v", trial, warm.Objective, cold.Objective)
		}
		// The cold solve ran through presolve, so its postsolved basis can
		// sit a few repair pivots away from a full-space vertex; the warm
		// re-solve must still be near-instant.
		if warm.Iters > 8 {
			t.Errorf("trial %d: warm re-solve took %d pivots from the optimal basis", trial, warm.Iters)
		}
	}
	if solved < 20 {
		t.Fatalf("only %d optimal instances generated; generator drifted", solved)
	}
}

// TestWarmPerturbedMatchesCold mutates bounds and objective (the way
// branch-and-bound children and successive-rounding iterations do) and
// checks that a warm start from the stale basis reaches the same status
// and objective as a cold solve of the mutated problem.
func TestWarmPerturbedMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		p := randomLP(rng, false)
		base, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: base solve error: %v", trial, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}

		mut := p.Clone()
		// Tighten one variable the way a branching step would.
		j := rng.Intn(mut.NumVars())
		lo, up := mut.LowerBound(j), mut.UpperBound(j)
		if rng.Intn(2) == 0 {
			mut.SetBounds(j, lo, math.Min(up, lo+math.Floor((up-lo)/2)))
		} else if !math.IsInf(up, 1) {
			mut.SetBounds(j, math.Ceil((lo+up)/2), up)
		}
		// Jitter the objective the way a profit update would.
		obj := make([]float64, mut.NumVars())
		for k := range obj {
			obj[k] = mut.ObjectiveCoeff(k) + float64(rng.Intn(3)-1)
		}
		mut.SetObjective(obj, mut.Maximize())

		cold, err := Solve(mut)
		if err != nil {
			t.Fatalf("trial %d: cold solve error: %v", trial, err)
		}
		warm, err := SolveWarm(mut.Clone(), base.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm solve error: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			checked++
			scale := 1 + math.Abs(cold.Objective)
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
				t.Errorf("trial %d: warm objective %v vs cold %v", trial, warm.Objective, cold.Objective)
			}
			if !vertexFeasible(mut, warm.X) {
				t.Errorf("trial %d: warm vertex infeasible", trial)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d optimal mutated instances; generator drifted", checked)
	}
}

// TestCyclingLPTerminates runs the Beale cycling example through every
// registered backend: the stall-triggered Bland fallback must terminate at
// the optimum within a small pivot budget instead of burning MaxIters.
func TestCyclingLPTerminates(t *testing.T) {
	for _, name := range Backends() {
		b, _ := LookupBackend(name)
		p := NewProblem(4)
		p.SetObjective([]float64{0.75, -150, 0.02, -6}, true)
		p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0)
		p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0)
		p.AddDense([]float64{0, 0, 1, 0}, LE, 1)
		res, err := b.Solve(p, nil)
		if err != nil {
			t.Fatalf("%s: error %v", name, err)
		}
		if res.Status != Optimal {
			t.Fatalf("%s: status %v", name, res.Status)
		}
		if math.Abs(res.Objective-0.05) > 1e-6 {
			t.Errorf("%s: objective %v, want 0.05", name, res.Objective)
		}
		if res.Iters > 500 {
			t.Errorf("%s: %d pivots on a 4-variable LP; anti-cycling is not engaging", name, res.Iters)
		}
	}
}

// TestSparseDeterministicAcrossWorkers solves the same random LPs on 8
// concurrent goroutines (run under -race in CI) and requires bit-identical
// results: the sparse backend must be a pure function of the problem, with
// no shared mutable state between solves.
func TestSparseDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := randomLP(rand.New(rand.NewSource(seed)), true)
		ref, err := Solve(p.Clone())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		const workers = 8
		results := make([]*Result, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = Solve(p.Clone())
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatalf("seed %d worker %d: %v", seed, w, errs[w])
			}
			r := results[w]
			if r.Status != ref.Status || r.Objective != ref.Objective || r.Iters != ref.Iters {
				t.Fatalf("seed %d worker %d: result diverged (%v %v %d vs %v %v %d)",
					seed, w, r.Status, r.Objective, r.Iters, ref.Status, ref.Objective, ref.Iters)
			}
			for j := range r.X {
				if r.X[j] != ref.X[j] {
					t.Fatalf("seed %d worker %d: X[%d] = %v vs %v", seed, w, j, r.X[j], ref.X[j])
				}
			}
		}
	}
}
