package lp

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return res
}

func TestSimpleMaximization(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Classic optimum: x=2, y=6, obj=36.
	p := NewProblem(2)
	p.SetObjective([]float64{3, 5}, true)
	p.AddDense([]float64{1, 0}, LE, 4)
	p.AddDense([]float64{0, 2}, LE, 12)
	p.AddDense([]float64{3, 2}, LE, 18)
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-36) > 1e-6 {
		t.Errorf("objective = %v, want 36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Errorf("X = %v, want [2 6]", res.X)
	}
}

func TestSimpleMinimization(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
	// Optimum: push y to its lower bound 3 => x = 7, obj = 23.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3}, false)
	p.AddDense([]float64{1, 1}, GE, 10)
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 3, math.Inf(1))
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-23) > 1e-6 {
		t.Errorf("objective = %v, want 23", res.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x + 2y s.t. x + y = 5, x - y <= 1, x, y >= 0.
	// Optimum: y as large as possible: x=0, y=5, obj=10.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 2}, true)
	p.AddDense([]float64{1, 1}, EQ, 5)
	p.AddDense([]float64{1, -1}, LE, 1)
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-10) > 1e-6 {
		t.Errorf("objective = %v, want 10", res.Objective)
	}
	if math.Abs(res.X[0]+res.X[1]-5) > 1e-6 {
		t.Errorf("equality violated: %v", res.X)
	}
}

func TestUpperBounds(t *testing.T) {
	// maximize x + y with x <= 0.4, y <= 0.7 via bounds and x + y <= 2.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.SetBounds(0, 0, 0.4)
	p.SetBounds(1, 0, 0.7)
	p.AddDense([]float64{1, 1}, LE, 2)
	res := solveOK(t, p)
	if math.Abs(res.Objective-1.1) > 1e-6 {
		t.Errorf("objective = %v, want 1.1", res.Objective)
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// minimize x + y, x >= 1.5, y >= 2.5, x + y >= 5  => obj 5 with x+y=5.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, false)
	p.SetBounds(0, 1.5, math.Inf(1))
	p.SetBounds(1, 2.5, math.Inf(1))
	p.AddDense([]float64{1, 1}, GE, 5)
	res := solveOK(t, p)
	if res.Status != Optimal || math.Abs(res.Objective-5) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal 5", res.Status, res.Objective)
	}
	if res.X[0] < 1.5-1e-9 || res.X[1] < 2.5-1e-9 {
		t.Errorf("lower bounds violated: %v", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1}, true)
	p.AddDense([]float64{1}, GE, 10)
	p.AddDense([]float64{1}, LE, 5)
	res := solveOK(t, p)
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 5, 3)
	res := solveOK(t, p)
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.AddDense([]float64{1, -1}, LE, 1)
	res := solveOK(t, p)
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// maximize -x s.t. -x <= -3  (i.e. x >= 3): optimum x=3, obj=-3.
	p := NewProblem(1)
	p.SetObjective([]float64{-1}, true)
	p.AddDense([]float64{-1}, LE, -3)
	res := solveOK(t, p)
	if res.Status != Optimal || math.Abs(res.Objective+3) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal -3", res.Status, res.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic cycling-prone problem (Beale); Bland fallback must terminate.
	p := NewProblem(4)
	p.SetObjective([]float64{0.75, -150, 0.02, -6}, true)
	p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddDense([]float64{0, 0, 1, 0}, LE, 1)
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-0.05) > 1e-6 {
		t.Errorf("objective = %v, want 0.05", res.Objective)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op strings")
	}
	if Op(9).String() == "" || Status(9).String() == "" {
		t.Error("fallback strings empty")
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterationLimit} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestSortTermsByVar(t *testing.T) {
	terms := []Term{{Var: 3, Coeff: 1}, {Var: 1, Coeff: 2}, {Var: 2, Coeff: 3}}
	SortTermsByVar(terms)
	if !sort.SliceIsSorted(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var }) {
		t.Error("terms not sorted")
	}
}

// TestKnapsackRelaxationMatchesGreedy cross-checks the simplex against the
// closed-form solution of the fractional knapsack problem.
func TestKnapsackRelaxationMatchesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		w := make([]float64, n)
		v := make([]float64, n)
		var totalW float64
		for i := range w {
			w[i] = 1 + float64(rng.Intn(20))
			v[i] = 1 + float64(rng.Intn(50))
			totalW += w[i]
		}
		cap := 1 + rng.Float64()*totalW

		p := NewProblem(n)
		p.SetObjective(v, true)
		var terms []Term
		for i := range w {
			p.SetBounds(i, 0, 1)
			terms = append(terms, Term{Var: i, Coeff: w[i]})
		}
		p.AddConstraint(terms, LE, cap)
		res, err := Solve(p)
		if err != nil || res.Status != Optimal {
			return false
		}

		// Greedy closed form.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return v[idx[a]]/w[idx[a]] > v[idx[b]]/w[idx[b]] })
		remaining := cap
		want := 0.0
		for _, i := range idx {
			if remaining <= 0 {
				break
			}
			take := math.Min(1, remaining/w[i])
			want += take * v[i]
			remaining -= take * w[i]
		}
		return math.Abs(res.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRandomFeasibility checks that on random problems built around a known
// feasible point the solver reports optimal, satisfies every constraint and
// does at least as well as the known point.
func TestRandomFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(n)
		obj := make([]float64, n)
		x0 := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(21) - 10)
			x0[j] = rng.Float64() * 5
			p.SetBounds(j, 0, 10)
		}
		p.SetObjective(obj, true)
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			dot := 0.0
			for j := 0; j < n; j++ {
				rows[i][j] = float64(rng.Intn(11) - 5)
				dot += rows[i][j] * x0[j]
			}
			rhs[i] = dot + rng.Float64()*3 // slack keeps x0 feasible
			p.AddDense(rows[i], LE, rhs[i])
		}
		res, err := Solve(p)
		if err != nil || res.Status != Optimal {
			return false
		}
		// Feasibility of the returned point.
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += rows[i][j] * res.X[j]
			}
			if dot > rhs[i]+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if res.X[j] < -1e-6 || res.X[j] > 10+1e-6 {
				return false
			}
		}
		// Optimality relative to the known feasible point.
		objX0 := 0.0
		for j := range obj {
			objX0 += obj[j] * x0[j]
		}
		return res.Objective >= objX0-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAddConstraintPanicsOnBadVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range variable")
		}
	}()
	p := NewProblem(1)
	p.AddConstraint([]Term{{Var: 3, Coeff: 1}}, LE, 1)
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective([]float64{1, 1, 1}, true)
	p.AddDense([]float64{1, 1, 1}, LE, 10)
	p.AddDense([]float64{1, 2, 3}, LE, 15)
	p.MaxIters = 1
	res := solveOK(t, p)
	if res.Status != IterationLimit && res.Status != Optimal {
		t.Errorf("status = %v, want iteration-limit or optimal", res.Status)
	}
}

// Clone must produce a fully independent problem: changing the clone's
// bounds or adding constraints to it leaves the original untouched, and
// both solve to their own optima.
func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{3, 2}, true)
	p.AddDense([]float64{1, 1}, LE, 4)
	p.SetBounds(0, 0, 3)

	c := p.Clone()
	c.SetBounds(0, 0, 1) // tighten only the clone
	c.AddConstraint([]Term{{Var: 1, Coeff: 1}}, LE, 2)

	orig := solveOK(t, p)
	cl := solveOK(t, c)
	if math.Abs(orig.Objective-11) > 1e-6 { // x = (3, 1)
		t.Errorf("original objective %v, want 11", orig.Objective)
	}
	if math.Abs(cl.Objective-7) > 1e-6 { // x = (1, 2)
		t.Errorf("clone objective %v, want 7", cl.Objective)
	}
	if p.UpperBound(0) != 3 || p.NumConstraints() != 1 {
		t.Error("mutating the clone leaked into the original")
	}
}

// Clones must be solvable concurrently with distinct per-clone bounds —
// exactly how the parallel branch and bound uses them (run under -race).
func TestClonesSolveConcurrently(t *testing.T) {
	base := NewProblem(3)
	base.SetObjective([]float64{2, 3, 4}, true)
	base.AddDense([]float64{1, 1, 1}, LE, 2)
	for j := 0; j < 3; j++ {
		base.SetBounds(j, 0, 1)
	}
	var wg sync.WaitGroup
	objs := make([]float64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base.Clone()
			c.SetBounds(w%3, 0, 0) // a different restriction per goroutine
			res, err := Solve(c)
			if err != nil || res.Status != Optimal {
				return
			}
			objs[w] = res.Objective
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		want := []float64{7, 6, 5}[w%3]
		if math.Abs(objs[w]-want) > 1e-6 {
			t.Errorf("goroutine %d objective %v, want %v", w, objs[w], want)
		}
	}
}

// A Stop channel closed before cloning is shared: every clone gives up with
// IterationLimit, which is how one cancellation interrupts all workers.
func TestCloneSharesStopChannel(t *testing.T) {
	stop := make(chan struct{})
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.AddDense([]float64{1, 1}, LE, 3)
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 2)
	p.Stop = stop
	c := p.Clone()
	close(stop)
	res := solveOK(t, c)
	if res.Status != IterationLimit {
		t.Errorf("clone ignored the shared Stop channel: status %v", res.Status)
	}
}
