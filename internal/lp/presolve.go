package lp

import "math"

// Presolve shrinks a problem before the cold sparse solve: fixed and
// collapsed variables are substituted out, empty and dominated columns
// are pinned to their improving bound, empty rows are checked and
// dropped, singleton rows become bound tightenings, and rows whose
// activity range cannot violate them are removed. Postsolve maps the
// reduced vertex back to the full variable space and rebuilds a full
// basis (removed columns nonbasic at their recorded bound, removed rows'
// logicals basic) so warm-start consumers see a complete status vector.
//
// Warm solves skip presolve entirely — a warm basis indexes the full
// variable space, and the handful of pivots a warm re-solve needs would
// be swamped by the reduction bookkeeping anyway.
//
// A column whose improving bound is infinite is deliberately left in the
// problem even when it is empty or dominated: declaring Unbounded is only
// correct once feasibility is established, which is the simplex's job.

const presolveMaxPasses = 16

type presolveState struct {
	n, m int

	// Working bounds; singleton rows tighten these, and the reduced
	// problem is built from them.
	lo, up []float64

	fixed  []bool
	fixVal []float64
	fixSt  []VarStatus

	rowKept []bool

	infeasible bool

	colMap []int // full var -> reduced var, -1 when fixed
	rowMap []int // full row -> reduced row, -1 when dropped
}

func (ps *presolveState) fix(j int, val float64, st VarStatus) {
	ps.fixed[j] = true
	ps.fixVal[j] = val
	ps.fixSt[j] = st
}

func runPresolve(p *Problem) *presolveState {
	n := p.numVars
	m := len(p.cons)
	ps := &presolveState{
		n: n, m: m,
		lo:      append([]float64(nil), p.lower...),
		up:      append([]float64(nil), p.upper...),
		fixed:   make([]bool, n),
		fixVal:  make([]float64, n),
		fixSt:   make([]VarStatus, n),
		rowKept: make([]bool, m),
	}
	for i := range ps.rowKept {
		ps.rowKept[i] = true
	}

	// Internal minimize costs decide improving directions.
	cost := func(j int) float64 {
		if p.maximize {
			return -p.obj[j]
		}
		return p.obj[j]
	}

	// Scratch for per-row term accumulation (repeated variables add up,
	// matching the solvers' semantics).
	acc := make([]float64, n)
	inAcc := make([]bool, n)
	var accVars []int

	// Per-column domination trackers, rebuilt each pass from the live rows.
	colCnt := make([]int, n)
	canLower := make([]bool, n) // moving x_j down only loosens every live row
	canUpper := make([]bool, n)

	for pass := 0; pass < presolveMaxPasses && !ps.infeasible; pass++ {
		changed := false

		// Collapsed bounds become fixed variables.
		for j := 0; j < n; j++ {
			if ps.fixed[j] {
				continue
			}
			if ps.lo[j] > ps.up[j]+feasTol {
				ps.infeasible = true
				return ps
			}
			if ps.lo[j] >= ps.up[j] {
				ps.fix(j, math.Min(ps.lo[j], ps.up[j]), AtLower)
				changed = true
			}
		}

		for j := 0; j < n; j++ {
			colCnt[j] = 0
			canLower[j] = true
			canUpper[j] = true
		}

		// Row sweep: substitute fixed variables, then classify.
		for i := 0; i < m && !ps.infeasible; i++ {
			if !ps.rowKept[i] {
				continue
			}
			c := &p.cons[i]
			rhs := c.rhs
			accVars = accVars[:0]
			for _, t := range c.terms {
				if ps.fixed[t.Var] {
					rhs -= t.Coeff * ps.fixVal[t.Var]
					continue
				}
				if !inAcc[t.Var] {
					inAcc[t.Var] = true
					accVars = append(accVars, t.Var)
				}
				acc[t.Var] += t.Coeff
			}
			// Compact to the nonzero live terms (accVars is in first-seen
			// order, which follows the deterministic term order of the row).
			live := 0
			var loneVar int
			var loneCoeff float64
			minAct, maxAct := 0.0, 0.0
			for _, v := range accVars {
				a := acc[v]
				if a != 0 {
					live++
					loneVar, loneCoeff = v, a
					if a > 0 {
						minAct += a * ps.lo[v]
						maxAct += a * ps.up[v]
					} else {
						minAct += a * ps.up[v]
						maxAct += a * ps.lo[v]
					}
				}
			}

			switch {
			case live == 0:
				ok := true
				switch c.op {
				case LE:
					ok = rhs >= -feasTol
				case GE:
					ok = rhs <= feasTol
				default:
					ok = rhs >= -feasTol && rhs <= feasTol
				}
				if !ok {
					ps.infeasible = true
				}
				ps.rowKept[i] = false
				changed = true
			case live == 1:
				// Singleton row: a*x op rhs is a bound on x.
				v, a := loneVar, loneCoeff
				bound := rhs / a
				tightenLo := func(b float64) {
					if b > ps.lo[v] {
						ps.lo[v] = b
						changed = true
					}
				}
				tightenUp := func(b float64) {
					if b < ps.up[v] {
						ps.up[v] = b
						changed = true
					}
				}
				switch {
				case c.op == EQ:
					tightenLo(bound)
					tightenUp(bound)
				case (c.op == LE) == (a > 0):
					tightenUp(bound)
				default:
					tightenLo(bound)
				}
				if ps.lo[v] > ps.up[v]+feasTol {
					ps.infeasible = true
				}
				ps.rowKept[i] = false
				changed = true
			default:
				// Activity-range redundancy / infeasibility checks.
				switch c.op {
				case LE:
					if minAct > rhs+feasTol {
						ps.infeasible = true
					} else if maxAct <= rhs+feasTol {
						ps.rowKept[i] = false
						changed = true
					}
				case GE:
					if maxAct < rhs-feasTol {
						ps.infeasible = true
					} else if minAct >= rhs-feasTol {
						ps.rowKept[i] = false
						changed = true
					}
				default:
					if minAct > rhs+feasTol || maxAct < rhs-feasTol {
						ps.infeasible = true
					}
				}
			}

			// The row survived (or not): record column facts for the
			// domination sweep only while it is still live.
			for _, v := range accVars {
				a := acc[v]
				if a != 0 && ps.rowKept[i] {
					colCnt[v]++
					switch c.op {
					case LE:
						if a < 0 {
							canLower[v] = false
						}
						if a > 0 {
							canUpper[v] = false
						}
					case GE:
						if a > 0 {
							canLower[v] = false
						}
						if a < 0 {
							canUpper[v] = false
						}
					default:
						canLower[v] = false
						canUpper[v] = false
					}
				}
				acc[v] = 0
				inAcc[v] = false
			}
		}
		if ps.infeasible {
			return ps
		}

		// Column sweep: empty and dominated columns pin to their
		// improving bound when that bound is finite.
		for j := 0; j < n; j++ {
			if ps.fixed[j] {
				continue
			}
			cj := cost(j)
			if colCnt[j] == 0 {
				switch {
				case cj > 0 && !math.IsInf(ps.lo[j], -1):
					ps.fix(j, ps.lo[j], AtLower)
					changed = true
				case cj < 0 && !math.IsInf(ps.up[j], 1):
					ps.fix(j, ps.up[j], AtUpper)
					changed = true
				case cj == 0:
					switch {
					case !math.IsInf(ps.lo[j], -1):
						ps.fix(j, ps.lo[j], AtLower)
					case !math.IsInf(ps.up[j], 1):
						ps.fix(j, ps.up[j], AtUpper)
					default:
						ps.fix(j, 0, NonbasicFree)
					}
					changed = true
				}
				continue
			}
			// Dominated: the objective pushes toward a bound and every
			// live row only loosens in that direction, so the bound is
			// optimal (and feasibility is preserved) when it is finite.
			if cj >= 0 && canLower[j] && !math.IsInf(ps.lo[j], -1) {
				ps.fix(j, ps.lo[j], AtLower)
				changed = true
			} else if cj <= 0 && canUpper[j] && !math.IsInf(ps.up[j], 1) {
				ps.fix(j, ps.up[j], AtUpper)
				changed = true
			}
		}

		if !changed {
			break
		}
	}

	ps.colMap = make([]int, n)
	nRed := 0
	for j := 0; j < n; j++ {
		if ps.fixed[j] {
			ps.colMap[j] = -1
		} else {
			ps.colMap[j] = nRed
			nRed++
		}
	}
	ps.rowMap = make([]int, m)
	mRed := 0
	for i := 0; i < m; i++ {
		if ps.rowKept[i] {
			ps.rowMap[i] = mRed
			mRed++
		} else {
			ps.rowMap[i] = -1
		}
	}
	return ps
}

// buildReduced materializes the reduced problem under the presolve maps.
func (ps *presolveState) buildReduced(p *Problem) *Problem {
	nRed := 0
	for j := 0; j < ps.n; j++ {
		if !ps.fixed[j] {
			nRed++
		}
	}
	red := NewProblem(nRed)
	red.maximize = p.maximize
	red.MaxIters = p.MaxIters
	red.Stop = p.Stop
	for j := 0; j < ps.n; j++ {
		if jj := ps.colMap[j]; jj >= 0 {
			red.obj[jj] = p.obj[j]
			red.lower[jj] = ps.lo[j]
			red.upper[jj] = ps.up[j]
		}
	}
	for i := 0; i < ps.m; i++ {
		if !ps.rowKept[i] {
			continue
		}
		c := &p.cons[i]
		rhs := c.rhs
		var terms []Term
		for _, t := range c.terms {
			if ps.fixed[t.Var] {
				rhs -= t.Coeff * ps.fixVal[t.Var]
				continue
			}
			terms = append(terms, Term{Var: ps.colMap[t.Var], Coeff: t.Coeff})
		}
		red.cons = append(red.cons, constraint{terms: terms, op: c.op, rhs: rhs})
	}
	return red
}

// postsolveX lifts a reduced vertex to the full variable space.
func (ps *presolveState) postsolveX(xRed []float64) []float64 {
	x := make([]float64, ps.n)
	for j := 0; j < ps.n; j++ {
		if ps.fixed[j] {
			x[j] = ps.fixVal[j]
		} else {
			x[j] = xRed[ps.colMap[j]]
		}
	}
	return x
}

// postsolveBasis lifts a reduced basis to the full space: removed columns
// are nonbasic at their recorded bound, removed rows' logicals are basic
// (the resulting basis matrix is block triangular, hence nonsingular).
func (ps *presolveState) postsolveBasis(red *Basis) *Basis {
	nRed := 0
	for j := 0; j < ps.n; j++ {
		if !ps.fixed[j] {
			nRed++
		}
	}
	full := make([]VarStatus, ps.n+ps.m)
	for j := 0; j < ps.n; j++ {
		if ps.fixed[j] {
			full[j] = ps.fixSt[j]
		} else {
			full[j] = red.Status[ps.colMap[j]]
		}
	}
	for i := 0; i < ps.m; i++ {
		if ps.rowKept[i] {
			full[ps.n+i] = red.Status[nRed+ps.rowMap[i]]
		} else {
			full[ps.n+i] = Basic
		}
	}
	return &Basis{Status: full}
}

// solveSparseCold presolves, solves the reduced problem with the sparse
// revised simplex, and postsolves the vertex and basis.
func solveSparseCold(p *Problem) (*Result, error) {
	for j := 0; j < p.numVars; j++ {
		if p.lower[j] > p.upper[j]+eps {
			return &Result{Status: Infeasible}, nil
		}
	}
	ps := runPresolve(p)
	if ps.infeasible {
		return &Result{Status: Infeasible}, nil
	}
	red := ps.buildReduced(p)
	res, basis, err := solveSparse(red, nil)
	if err != nil {
		return nil, err
	}
	if res.Status != Optimal {
		return &Result{Status: res.Status, Iters: res.Iters}, nil
	}
	x := ps.postsolveX(res.X)
	// Clamp to the original bounds: fixed values derived from constraint
	// tightenings are intersections of the originals, so only float dust
	// can stick out.
	for j := 0; j < p.numVars; j++ {
		if x[j] < p.lower[j] {
			x[j] = p.lower[j]
		}
		if x[j] > p.upper[j] {
			x[j] = p.upper[j]
		}
	}
	obj := 0.0
	for j := 0; j < p.numVars; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Result{
		Status:    Optimal,
		Objective: obj,
		X:         x,
		Iters:     res.Iters,
		Basis:     ps.postsolveBasis(basis),
	}, nil
}
