// Package lp implements linear-programming solvers for the planner. It is
// the drop-in substitute for the commercial LP/ILP solver (GUROBI) used by
// the E-BLOW paper: the planner only needs LP relaxation values and vertex
// solutions of small and medium sized programs, plus an exact backend for
// the branch-and-bound ILP solver in package ilp.
//
// Problems are stated as
//
//	maximize (or minimize)  c'x
//	subject to              a_i'x  (<=, =, >=)  b_i        for every row i
//	                        lo_j <= x_j <= up_j             for every column j
//
// Lower bounds default to 0 and upper bounds to +inf.
//
// Two solver backends are registered (see Backend): "sparse", the default,
// is a revised simplex over a CSC matrix with an LU-factorized basis,
// product-form updates, native bounded variables, a presolve/postsolve
// pass and dual-simplex warm starts (SolveWarm); "dense" is the original
// two-phase tableau simplex, kept as the property-test oracle. The sparse
// backend additionally accepts free variables (lower bound -inf), which
// the dense backend rejects.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is a <= constraint.
	LE Op = iota
	// GE is a >= constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterationLimit means the solver gave up after MaxIters pivots.
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction.
type Problem struct {
	numVars  int
	maximize bool
	obj      []float64
	lower    []float64
	upper    []float64
	cons     []constraint

	// MaxIters bounds the total number of simplex pivots (both phases).
	// Zero means the default of 50*(rows+cols)+10000.
	MaxIters int

	// Stop, when non-nil, is polled between pivots and while the dense
	// tableau is being built; once it is closed the solve gives up with
	// Status IterationLimit. It is how the branch-and-bound layer makes a
	// cancelled context interrupt a solve mid-node instead of waiting out
	// a full simplex run.
	Stop <-chan struct{}
}

// stopRequested polls the Stop channel without blocking.
func (p *Problem) stopRequested() bool {
	if p.Stop == nil {
		return false
	}
	select {
	case <-p.Stop:
		return true
	default:
		return false
	}
}

// NewProblem creates a problem with n decision variables, objective 0 and
// default bounds [0, +inf).
func NewProblem(n int) *Problem {
	p := &Problem{
		numVars: n,
		obj:     make([]float64, n),
		lower:   make([]float64, n),
		upper:   make([]float64, n),
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// Clone returns an independent copy of the problem for concurrent solving:
// objective, bounds and the constraint list are copied, so SetBounds and
// Solve on the clone never touch the original (and vice versa). The Stop
// channel is shared, which is exactly what a parallel branch-and-bound
// search wants — one cancellation interrupts every per-worker simplex at
// once. Constraint term slices are shared read-only; both sides may keep
// appending constraints without affecting the other.
func (p *Problem) Clone() *Problem {
	return &Problem{
		numVars:  p.numVars,
		maximize: p.maximize,
		obj:      append([]float64(nil), p.obj...),
		lower:    append([]float64(nil), p.lower...),
		upper:    append([]float64(nil), p.upper...),
		cons:     append([]constraint(nil), p.cons...),
		MaxIters: p.MaxIters,
		Stop:     p.Stop,
	}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjective sets the objective coefficients and direction.
func (p *Problem) SetObjective(c []float64, maximize bool) {
	if len(c) != p.numVars {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(c), p.numVars))
	}
	copy(p.obj, c)
	p.maximize = maximize
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, c float64) { p.obj[j] = c }

// SetMaximize sets the optimization direction.
func (p *Problem) SetMaximize(maximize bool) { p.maximize = maximize }

// SetBounds sets the bounds of variable j.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lower[j] = lo
	p.upper[j] = hi
}

// LowerBound returns the lower bound of variable j.
func (p *Problem) LowerBound(j int) float64 { return p.lower[j] }

// UpperBound returns the upper bound of variable j.
func (p *Problem) UpperBound(j int) float64 { return p.upper[j] }

// ObjectiveCoeff returns the objective coefficient of variable j.
func (p *Problem) ObjectiveCoeff(j int) float64 { return p.obj[j] }

// Maximize reports whether the objective is maximized.
func (p *Problem) Maximize() bool { return p.maximize }

// Constraint returns row i as (terms, op, rhs). The term slice is a copy
// and safe to retain or modify.
func (p *Problem) Constraint(i int) ([]Term, Op, float64) {
	c := p.cons[i]
	return append([]Term(nil), c.terms...), c.op, c.rhs
}

// AddConstraint appends the row  sum(terms) op rhs. Terms referencing the
// same variable are accumulated.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.numVars))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{terms: cp, op: op, rhs: rhs})
}

// AddDense appends a dense constraint row.
func (p *Problem) AddDense(coeffs []float64, op Op, rhs float64) {
	if len(coeffs) != p.numVars {
		panic("lp: dense row length mismatch")
	}
	var terms []Term
	for j, c := range coeffs {
		if c != 0 {
			terms = append(terms, Term{Var: j, Coeff: c})
		}
	}
	p.AddConstraint(terms, op, rhs)
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
	Iters     int

	// Basis is the optimal simplex basis in status form, set by backends
	// that support warm starts (the sparse backend) on Optimal solves.
	// It is shared immutably: Clone before mutating.
	Basis *Basis
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: invalid problem")

const eps = 1e-9

// Solve runs the default backend (the sparse revised simplex with
// presolve) and returns the result. The returned error is non-nil only
// for structurally invalid problems; an infeasible or unbounded model is
// reported through Result.Status.
func Solve(p *Problem) (*Result, error) {
	return defaultBackend().Solve(p, nil)
}

// SolveWarm solves p starting from a previous basis. The warm basis is
// not modified; branch-and-bound children and successive-rounding
// re-solves share parent bases by pointer. A nil warm basis (or a backend
// without warm-start support) falls back to a cold solve. Warm solves
// skip presolve — the basis indexes the full variable space.
func SolveWarm(p *Problem, warm *Basis) (*Result, error) {
	return defaultBackend().Solve(p, warm)
}

// solveDense runs the dense two-phase tableau simplex. Unlike the sparse
// backend it cannot represent free variables (lower bound -inf) and
// reports them as ErrBadProblem.
func solveDense(p *Problem) (*Result, error) {
	for j := 0; j < p.numVars; j++ {
		if p.lower[j] > p.upper[j]+eps {
			return &Result{Status: Infeasible}, nil
		}
		if math.IsInf(p.lower[j], -1) {
			return nil, fmt.Errorf("%w: variable %d has no finite lower bound", ErrBadProblem, j)
		}
	}
	t := newTableau(p)
	if t == nil { // stopped while building the tableau
		return &Result{Status: IterationLimit}, nil
	}
	res := t.solve()
	return res, nil
}

// tableau is the dense simplex working state. Columns are laid out as
// [shifted decision vars | slacks/surpluses | artificials]; the last column
// of each row is the right-hand side.
type tableau struct {
	p *Problem

	rows, cols int // constraint rows, total structural columns (excluding rhs)
	nDecision  int
	nArt       int
	artStart   int

	a     [][]float64 // rows x (cols+1)
	basis []int

	objRow []float64 // cols+1, current phase objective (reduced costs layout)

	maxIters int
}

func newTableau(p *Problem) *tableau {
	// Count extra rows for finite upper bounds.
	type row struct {
		terms []Term
		op    Op
		rhs   float64
	}
	var rowsList []row
	for _, c := range p.cons {
		rowsList = append(rowsList, row{terms: c.terms, op: c.op, rhs: c.rhs})
	}
	for j := 0; j < p.numVars; j++ {
		if !math.IsInf(p.upper[j], 1) {
			rowsList = append(rowsList, row{
				terms: []Term{{Var: j, Coeff: 1}},
				op:    LE,
				rhs:   p.upper[j],
			})
		}
	}

	m := len(rowsList)
	t := &tableau{p: p, rows: m, nDecision: p.numVars}

	// Shift variables by their lower bounds: x = x' + lo, x' >= 0.
	shiftRHS := func(terms []Term, rhs float64) float64 {
		for _, term := range terms {
			rhs -= term.Coeff * p.lower[term.Var]
		}
		return rhs
	}

	// First pass: determine slack and artificial counts.
	nSlack := 0
	for i := range rowsList {
		rhs := shiftRHS(rowsList[i].terms, rowsList[i].rhs)
		op := rowsList[i].op
		if rhs < 0 {
			op = flip(op)
		}
		if op != EQ {
			nSlack++
		}
	}
	nArt := 0
	for i := range rowsList {
		rhs := shiftRHS(rowsList[i].terms, rowsList[i].rhs)
		op := rowsList[i].op
		if rhs < 0 {
			op = flip(op)
		}
		if op != LE {
			nArt++
		}
	}
	t.nArt = nArt
	t.artStart = p.numVars + nSlack
	t.cols = p.numVars + nSlack + nArt

	// Allocating and filling the dense matrix is the most expensive
	// non-pivot work (hundreds of MB for the big exact formulations), so
	// honour Stop here too — otherwise a cancelled branch-and-bound run
	// would stall behind every node's tableau build.
	t.a = make([][]float64, m)
	for i := range t.a {
		if i&1023 == 0 && p.stopRequested() {
			return nil
		}
		t.a[i] = make([]float64, t.cols+1)
	}
	t.basis = make([]int, m)

	slackIdx := p.numVars
	artIdx := t.artStart
	for i, r := range rowsList {
		if i&1023 == 0 && p.stopRequested() {
			return nil
		}
		rhs := shiftRHS(r.terms, r.rhs)
		sign := 1.0
		op := r.op
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for _, term := range r.terms {
			t.a[i][term.Var] += sign * term.Coeff
		}
		t.a[i][t.cols] = rhs
		switch op {
		case LE:
			t.a[i][slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			t.a[i][slackIdx] = -1
			slackIdx++
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}

	t.maxIters = p.MaxIters
	if t.maxIters <= 0 {
		t.maxIters = 50*(m+t.cols) + 10000
	}
	return t
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solve runs phase 1 (if artificials exist) and phase 2.
func (t *tableau) solve() *Result {
	iters := 0

	if t.nArt > 0 {
		// Phase 1: maximize -(sum of artificials).
		t.objRow = make([]float64, t.cols+1)
		for j := t.artStart; j < t.cols; j++ {
			t.objRow[j] = -1
		}
		t.priceOut()
		st, n := t.iterate(t.maxIters)
		iters += n
		if st == IterationLimit {
			return &Result{Status: IterationLimit, Iters: iters}
		}
		if t.objValue() < -1e-7 {
			return &Result{Status: Infeasible, Iters: iters}
		}
		t.purgeArtificials()
	}

	// Phase 2: the real objective on the shifted variables.
	t.objRow = make([]float64, t.cols+1)
	sign := 1.0
	if !t.p.maximize {
		sign = -1
	}
	for j := 0; j < t.nDecision; j++ {
		t.objRow[j] = sign * t.p.obj[j]
	}
	t.priceOut()
	st, n := t.iterate(t.maxIters - iters)
	iters += n
	if st == Unbounded {
		return &Result{Status: Unbounded, Iters: iters}
	}
	if st == IterationLimit {
		return &Result{Status: IterationLimit, Iters: iters}
	}

	x := make([]float64, t.nDecision)
	for j := range x {
		x[j] = t.p.lower[j]
	}
	for i, b := range t.basis {
		if b < t.nDecision {
			x[b] = t.p.lower[b] + t.a[i][t.cols]
		}
	}
	obj := 0.0
	for j, c := range t.p.obj {
		obj += c * x[j]
	}
	return &Result{Status: Optimal, Objective: obj, X: x, Iters: iters}
}

// priceOut rewrites the objective row in terms of the current non-basic
// variables (subtracts multiples of the constraint rows so that basic
// columns have zero reduced cost).
func (t *tableau) priceOut() {
	for i, b := range t.basis {
		c := t.objRow[b]
		if c == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.objRow[j] -= c * t.a[i][j]
		}
	}
}

// objValue returns the current phase objective value (for the maximization
// form used internally).
func (t *tableau) objValue() float64 { return -t.objRow[t.cols] }

// iterate performs simplex pivots until optimality, unboundedness or the
// iteration budget is exhausted. It uses Dantzig pricing and switches to
// Bland's rule after a long stall to guarantee termination.
func (t *tableau) iterate(budget int) (Status, int) {
	iters := 0
	blandAfter := 2*(t.rows+t.cols) + 200
	for {
		if iters >= budget {
			return IterationLimit, iters
		}
		if t.p.stopRequested() {
			return IterationLimit, iters
		}
		useBland := iters > blandAfter

		// Choose entering column: most positive reduced cost (Dantzig) or
		// first positive (Bland).
		enter := -1
		best := eps
		for j := 0; j < t.cols; j++ {
			rc := t.objRow[j]
			if rc > eps {
				if useBland {
					enter = j
					break
				}
				if rc > best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, iters
		}

		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.rows; i++ {
			a := t.a[i][enter]
			if a > eps {
				ratio := t.a[i][t.cols] / a
				if leave < 0 || ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}

		t.pivot(leave, enter)
		iters++
	}
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	invPiv := 1.0 / piv
	rowL := t.a[leave]
	for j := 0; j <= t.cols; j++ {
		rowL[j] *= invPiv
	}
	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j <= t.cols; j++ {
			row[j] -= f * rowL[j]
		}
	}
	f := t.objRow[enter]
	if f != 0 {
		for j := 0; j <= t.cols; j++ {
			t.objRow[j] -= f * rowL[j]
		}
	}
	t.basis[leave] = enter
}

// purgeArtificials removes artificial variables from the basis after phase 1
// when possible, and neutralises their columns so phase 2 never re-enters
// them.
func (t *tableau) purgeArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Basic artificial at (numerically) zero level: try to pivot in any
		// non-artificial column with a nonzero coefficient.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant; leave the artificial basic at level ~0.
			t.a[i][t.cols] = 0
		}
	}
	// Block artificial columns from ever being selected again.
	for i := 0; i < t.rows; i++ {
		for j := t.artStart; j < t.cols; j++ {
			t.a[i][j] = 0
		}
	}
}

// SortTermsByVar sorts a term slice in place by variable index; handy for
// deterministic constraint construction in callers and tests.
func SortTermsByVar(terms []Term) {
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
}
