package lp

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is one LP solver implementation. Solve must be deterministic —
// the same problem and warm basis always produce the same Result — and
// safe for concurrent use on distinct Problems. Backends that do not
// support warm starts must ignore the warm argument and solve cold.
type Backend interface {
	Name() string
	Solve(p *Problem, warm *Basis) (*Result, error)
}

// backendRegistry holds the registered backends and the default choice.
type backendRegistry struct {
	mu sync.RWMutex
	// byName maps backend name to implementation.
	// guarded by mu — RegisterBackend writes, lookups read.
	byName map[string]Backend
	// def is the name of the default backend used by Solve/SolveWarm.
	// guarded by mu — SetDefaultBackend writes, defaultBackend reads.
	def string
}

var registry = &backendRegistry{
	byName: map[string]Backend{
		"sparse": sparseBackend{},
		"dense":  denseBackend{},
	},
	def: "sparse",
}

// RegisterBackend adds a backend to the registry. It panics on an empty
// or duplicate name; registration is an init-time affair.
func RegisterBackend(b Backend) {
	name := b.Name()
	if name == "" {
		panic("lp: backend with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("lp: duplicate backend %q", name))
	}
	registry.byName[name] = b
}

// Backends returns the registered backend names in sorted order.
func Backends() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupBackend returns the backend registered under name.
func LookupBackend(name string) (Backend, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	b, ok := registry.byName[name]
	return b, ok
}

// SetDefaultBackend switches the backend used by Solve and SolveWarm.
func SetDefaultBackend(name string) error {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, ok := registry.byName[name]; !ok {
		return fmt.Errorf("lp: unknown backend %q", name)
	}
	registry.def = name
	return nil
}

// DefaultBackendName returns the name of the current default backend.
func DefaultBackendName() string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.def
}

func defaultBackend() Backend {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byName[registry.def]
}

// sparseBackend is the revised simplex in sparse.go: presolve on cold
// solves, dual-simplex warm starts, Result.Basis populated.
type sparseBackend struct{}

func (sparseBackend) Name() string { return "sparse" }

func (sparseBackend) Solve(p *Problem, warm *Basis) (*Result, error) {
	if warm != nil {
		res, basis, err := solveSparse(p, warm)
		if err != nil {
			return nil, err
		}
		res.Basis = basis
		return res, nil
	}
	return solveSparseCold(p)
}

// denseBackend is the original two-phase tableau simplex, kept as the
// property-test oracle. It has no warm-start support.
type denseBackend struct{}

func (denseBackend) Name() string { return "dense" }

func (denseBackend) Solve(p *Problem, _ *Basis) (*Result, error) {
	return solveDense(p)
}
