package lp

import (
	"math"
	"sort"
)

// Sparse revised simplex over the standard form  A x + s = b  with native
// bounded variables: every structural variable x_j lives in [lo_j, up_j]
// (either side may be infinite) and every row i gets one logical s_i whose
// bounds encode the row sense (LE: [0,+inf), GE: (-inf,0], EQ: [0,0]).
// Nonbasic variables sit at a bound (or at 0 when free); the m basic
// values solve B x_B = b - N x_N through the LU factors in lu.go.
//
// The engine runs in internal MINIMIZE sense; maximize problems negate the
// cost vector and the final objective is recomputed from the original
// coefficients, so the reported objective carries no sign gymnastics.

// Solver tolerances. feasTol/dualTol are the primal/dual feasibility
// cutoffs, ratioTol classifies pivot column entries, dualPivTol is the
// minimum acceptable dual pivot before a refactorization is forced.
const (
	feasTol    = 1e-7
	dualTol    = 1e-7
	ratioTol   = 1e-9
	dualPivTol = 1e-8
	// degenStep: a ratio-test step at or below this counts as a
	// degenerate (stalling) pivot for the anti-cycling guard.
	degenStep = 1e-9
)

// stallLimit is the number of consecutive degenerate pivots tolerated
// before the pricing rule switches to Bland's rule (which cannot cycle)
// until the next strictly improving step. This is the anti-cycling guard:
// the stall budget is small, so a cycling LP costs tens of pivots instead
// of the whole MaxIters budget.
func stallLimit(m int) int { return 64 + m/4 }

type spx struct {
	p   *Problem
	m   int // rows
	n   int // structural variables
	tot int // n + m

	// Structural columns in CSC order; logical j >= n is the unit column
	// e_{j-n} and is never stored.
	colPtr []int32
	rowIdx []int32
	colVal []float64

	cost []float64 // internal minimize costs, len tot (logicals are 0)
	lo   []float64 // len tot
	up   []float64 // len tot
	b    []float64 // row rhs, len m

	status         []VarStatus
	heading        []int // basis position -> variable
	logicalInBasis []bool
	xB             []float64 // basic values by position

	lu luFactor

	iters    int
	maxIters int

	// scratch
	alpha []float64 // ftran image of the entering column, by position
	y     []float64 // btran image of the basic costs, by row
	rho   []float64 // btran image of a unit row vector, by row
}

func newSpx(p *Problem) *spx {
	n := p.numVars
	m := len(p.cons)
	s := &spx{
		p: p, m: m, n: n, tot: n + m,
		cost: make([]float64, n+m),
		lo:   make([]float64, n+m),
		up:   make([]float64, n+m),
		b:    make([]float64, m),

		status:         make([]VarStatus, n+m),
		heading:        make([]int, m),
		logicalInBasis: make([]bool, m),
		xB:             make([]float64, m),

		alpha: make([]float64, m),
		y:     make([]float64, m),
		rho:   make([]float64, m),
	}
	for j := 0; j < n; j++ {
		if p.maximize {
			s.cost[j] = -p.obj[j]
		} else {
			s.cost[j] = p.obj[j]
		}
		s.lo[j] = p.lower[j]
		s.up[j] = p.upper[j]
	}
	// Build the CSC matrix. Terms are gathered as (col,row,val) triplets,
	// sorted, and duplicates within one row accumulated, mirroring the
	// dense solver's += semantics for repeated variables.
	type trip struct {
		col, row int32
		val      float64
	}
	var trips []trip
	for i, c := range p.cons {
		s.b[i] = c.rhs
		for _, t := range c.terms {
			if t.Coeff != 0 {
				trips = append(trips, trip{col: int32(t.Var), row: int32(i), val: t.Coeff})
			}
		}
		lj := n + i
		switch c.op {
		case LE:
			s.lo[lj], s.up[lj] = 0, math.Inf(1)
		case GE:
			s.lo[lj], s.up[lj] = math.Inf(-1), 0
		default: // EQ
			s.lo[lj], s.up[lj] = 0, 0
		}
	}
	sort.Slice(trips, func(a, b int) bool {
		if trips[a].col != trips[b].col {
			return trips[a].col < trips[b].col
		}
		return trips[a].row < trips[b].row
	})
	s.colPtr = make([]int32, n+1)
	for k := 0; k < len(trips); {
		c, r := trips[k].col, trips[k].row
		v := trips[k].val
		k++
		for k < len(trips) && trips[k].col == c && trips[k].row == r {
			v += trips[k].val
			k++
		}
		if v != 0 {
			s.rowIdx = append(s.rowIdx, r)
			s.colVal = append(s.colVal, v)
			s.colPtr[c+1]++
		}
	}
	for c := 0; c < n; c++ {
		s.colPtr[c+1] += s.colPtr[c]
	}
	s.maxIters = p.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 50*(m+s.tot) + 10000
	}
	return s
}

// colScatter invokes fn for every nonzero of variable v's standard-form
// column (logical columns are the implicit unit vectors).
func (s *spx) colScatter(v int, fn func(row int32, val float64)) {
	if v < s.n {
		for k := s.colPtr[v]; k < s.colPtr[v+1]; k++ {
			fn(s.rowIdx[k], s.colVal[k])
		}
		return
	}
	fn(int32(v-s.n), 1)
}

// colDot returns A_v · w for a row-indexed vector w.
func (s *spx) colDot(v int, w []float64) float64 {
	if v >= s.n {
		return w[v-s.n]
	}
	d := 0.0
	for k := s.colPtr[v]; k < s.colPtr[v+1]; k++ {
		d += s.colVal[k] * w[s.rowIdx[k]]
	}
	return d
}

// nbVal returns the value a nonbasic variable holds under its status.
func (s *spx) nbVal(j int) float64 {
	switch s.status[j] {
	case AtLower:
		return s.lo[j]
	case AtUpper:
		return s.up[j]
	default:
		return 0
	}
}

// defaultStatus is the cold-start (and repair) status for a variable:
// its finite bound, preferring the lower one, or free when unbounded.
func (s *spx) defaultStatus(j int) VarStatus {
	if !math.IsInf(s.lo[j], -1) {
		return AtLower
	}
	if !math.IsInf(s.up[j], 1) {
		return AtUpper
	}
	return NonbasicFree
}

// normalizeStatus repairs a warm status that is inconsistent with the
// variable's current bounds (a bound may have changed since the basis was
// recorded; branch-and-bound children do exactly that).
func (s *spx) normalizeStatus(j int, st VarStatus) VarStatus {
	if st == Basic {
		return Basic
	}
	if s.lo[j] == s.up[j] {
		return AtLower
	}
	switch st {
	case AtLower:
		if math.IsInf(s.lo[j], -1) {
			return s.defaultStatus(j)
		}
	case AtUpper:
		if math.IsInf(s.up[j], 1) {
			return s.defaultStatus(j)
		}
	case NonbasicFree:
		if !math.IsInf(s.lo[j], -1) || !math.IsInf(s.up[j], 1) {
			return s.defaultStatus(j)
		}
	}
	return st
}

// adoptBasis installs a warm basis (or the cold all-logical basis when
// warm is nil or sized for a different problem) and repairs the basic
// count: extra basics are demoted from the highest variable index down,
// missing slots are filled with nonbasic logicals in ascending row order.
func (s *spx) adoptBasis(warm *Basis) {
	if warm == nil || len(warm.Status) != s.tot {
		for j := 0; j < s.tot; j++ {
			s.status[j] = s.defaultStatus(j)
		}
		for i := 0; i < s.m; i++ {
			s.status[s.n+i] = Basic
			s.heading[i] = s.n + i
			s.logicalInBasis[i] = true
		}
		return
	}
	basics := 0
	for j := 0; j < s.tot; j++ {
		s.status[j] = s.normalizeStatus(j, warm.Status[j])
		if s.status[j] == Basic {
			basics++
		}
	}
	for j := s.tot - 1; j >= 0 && basics > s.m; j-- {
		if s.status[j] == Basic {
			s.status[j] = s.defaultStatus(j)
			basics--
		}
	}
	for i := 0; i < s.m && basics < s.m; i++ {
		if s.status[s.n+i] != Basic {
			s.status[s.n+i] = Basic
			basics++
		}
	}
	pos := 0
	for i := range s.logicalInBasis {
		s.logicalInBasis[i] = false
	}
	for j := 0; j < s.tot; j++ {
		if s.status[j] == Basic {
			s.heading[pos] = j
			if j >= s.n {
				s.logicalInBasis[j-s.n] = true
			}
			pos++
		}
	}
}

// factorizeNow rebuilds the LU factors, applies any singularity repairs
// to the status vector, and recomputes the basic values.
func (s *spx) factorizeNow() {
	repairs := s.lu.factorize(s.m, s.heading, s.n, s.colScatter, s.logicalInBasis)
	for _, rp := range repairs {
		s.status[rp.oldVar] = s.defaultStatus(rp.oldVar)
		s.status[s.n+rp.row] = Basic
	}
	s.computeXB()
}

// computeXB solves B x_B = b - N x_N for the basic values.
func (s *spx) computeXB() {
	w := s.xB
	copy(w, s.b)
	for j := 0; j < s.tot; j++ {
		if s.status[j] == Basic {
			continue
		}
		v := s.nbVal(j)
		if v == 0 {
			continue
		}
		s.colScatter(j, func(r int32, val float64) {
			w[r] -= val * v
		})
	}
	s.lu.ftran(w)
}

func (s *spx) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		v := s.heading[i]
		if s.xB[i] < s.lo[v]-feasTol || s.xB[i] > s.up[v]+feasTol {
			return false
		}
	}
	return true
}

// btranCost fills s.y with B^-T c_B.
func (s *spx) btranCost() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.heading[i]]
	}
	s.lu.btran(s.y)
}

func (s *spx) dualFeasible() bool {
	s.btranCost()
	for j := 0; j < s.tot; j++ {
		st := s.status[j]
		if st == Basic || s.lo[j] == s.up[j] {
			continue
		}
		d := s.cost[j] - s.colDot(j, s.y)
		switch st {
		case AtLower:
			if d < -dualTol {
				return false
			}
		case AtUpper:
			if d > dualTol {
				return false
			}
		default: // NonbasicFree
			if d < -dualTol || d > dualTol {
				return false
			}
		}
	}
	return true
}

// loadAlpha computes alpha = B^-1 A_enter by position.
func (s *spx) loadAlpha(enter int) {
	for i := range s.alpha {
		s.alpha[i] = 0
	}
	s.colScatter(enter, func(r int32, val float64) {
		s.alpha[r] = val
	})
	s.lu.ftran(s.alpha)
}

// pivot performs the basis exchange at position r: the entering variable
// becomes basic with value enterVal, the leaving variable takes leaveSt.
// alpha must already hold B^-1 A_enter.
func (s *spx) pivot(r, enter int, enterVal float64, leaveSt VarStatus) {
	leaveVar := s.heading[r]
	s.status[leaveVar] = leaveSt
	if leaveVar >= s.n {
		s.logicalInBasis[leaveVar-s.n] = false
	}
	s.status[enter] = Basic
	s.heading[r] = enter
	if enter >= s.n {
		s.logicalInBasis[enter-s.n] = true
	}
	s.xB[r] = enterVal
	if !s.lu.update(r, s.alpha) {
		s.factorizeNow()
	}
	s.iters++
}

// primal runs the phase-2 primal simplex (minimize) from a primal-feasible
// basis. Pricing is Dantzig (most negative reduced cost) with ties broken
// toward the smallest variable index; after stallLimit consecutive
// degenerate pivots it switches to Bland's rule until a strictly improving
// step lands, which guarantees termination on cycling LPs.
func (s *spx) primal() Status {
	bland := false
	stall := 0
	limit := stallLimit(s.m)
	for {
		if s.iters >= s.maxIters || s.p.stopRequested() {
			return IterationLimit
		}
		if s.lu.numEtas() >= refactorEvery {
			s.factorizeNow()
		}
		s.btranCost()
		enter := -1
		var sigma, dEnter float64
		best := dualTol
		for j := 0; j < s.tot; j++ {
			st := s.status[j]
			if st == Basic || s.lo[j] == s.up[j] {
				continue
			}
			d := s.cost[j] - s.colDot(j, s.y)
			var score, sg float64
			switch st {
			case AtLower:
				if d < -dualTol {
					score, sg = -d, 1
				}
			case AtUpper:
				if d > dualTol {
					score, sg = d, -1
				}
			default: // NonbasicFree
				if d < -dualTol {
					score, sg = -d, 1
				} else if d > dualTol {
					score, sg = d, -1
				}
			}
			if score == 0 {
				continue
			}
			if bland {
				enter, sigma, dEnter = j, sg, d
				break
			}
			if score > best {
				best, enter, sigma, dEnter = score, j, sg, d
			}
		}
		if enter < 0 {
			return Optimal
		}
		s.loadAlpha(enter)

		// Ratio test: the entering variable moves by t*sigma; each basic
		// value changes by -t*sigma*alpha_i. The entering variable's own
		// range bounds t (a full traverse is a bound flip).
		tMax := s.up[enter] - s.lo[enter]
		leave := -1
		bestT := tMax
		var leaveSt VarStatus
		var bestA float64
		for i := 0; i < s.m; i++ {
			a := s.alpha[i]
			if a < ratioTol && a > -ratioTol {
				continue
			}
			delta := -sigma * a
			v := s.heading[i]
			var room float64
			var st VarStatus
			if delta > 0 {
				if math.IsInf(s.up[v], 1) {
					continue
				}
				room = s.up[v] - s.xB[i]
				st = AtUpper
			} else {
				if math.IsInf(s.lo[v], -1) {
					continue
				}
				room = s.xB[i] - s.lo[v]
				st = AtLower
			}
			if room < 0 {
				room = 0
			}
			ratio := room / math.Abs(a)
			take := false
			if ratio < bestT-degenStep {
				take = true
			} else if leave >= 0 && ratio <= bestT+degenStep {
				// Tie: Bland takes the smallest basic variable; Dantzig
				// prefers the largest pivot magnitude, then the smallest
				// basic variable, keeping the pivot sequence deterministic.
				aa := math.Abs(a)
				if bland {
					take = v < s.heading[leave]
				} else if aa > bestA+degenStep {
					take = true
				} else if aa >= bestA-degenStep && v < s.heading[leave] {
					take = true
				}
			}
			if take {
				leave, bestT, leaveSt, bestA = i, ratio, st, math.Abs(a)
			}
		}
		if leave < 0 {
			if math.IsInf(tMax, 1) {
				return Unbounded
			}
			// Bound flip: the entering variable traverses to its other
			// bound without a basis change.
			t := tMax
			for i := 0; i < s.m; i++ {
				if s.alpha[i] != 0 {
					s.xB[i] -= sigma * t * s.alpha[i]
				}
			}
			if s.status[enter] == AtLower {
				s.status[enter] = AtUpper
			} else {
				s.status[enter] = AtLower
			}
			s.iters++
			if math.Abs(dEnter)*t > degenStep {
				stall, bland = 0, false
			}
			continue
		}
		t := bestT
		for i := 0; i < s.m; i++ {
			if s.alpha[i] != 0 {
				s.xB[i] -= sigma * t * s.alpha[i]
			}
		}
		enterVal := s.nbVal(enter) + sigma*t
		s.pivot(leave, enter, enterVal, leaveSt)
		if math.Abs(dEnter)*t > degenStep {
			stall, bland = 0, false
		} else {
			stall++
			if stall > limit {
				bland = true
			}
		}
	}
}

// phase1 drives the basis to primal feasibility by minimizing the total
// bound violation of the basic variables. The piecewise-linear cost is
// priced through its gradient (-1 below the lower bound, +1 above the
// upper), recomputed every iteration; basics that are currently
// infeasible block the ratio test only at the bound they are violating,
// so one pivot can repair several violations at once.
func (s *spx) phase1() Status {
	bland := false
	stall := 0
	limit := stallLimit(s.m)
	w := make([]float64, s.m)
	for {
		if s.iters >= s.maxIters || s.p.stopRequested() {
			return IterationLimit
		}
		if s.lu.numEtas() >= refactorEvery {
			s.factorizeNow()
		}
		infeas := 0.0
		for i := 0; i < s.m; i++ {
			v := s.heading[i]
			switch {
			case s.xB[i] < s.lo[v]-feasTol:
				w[i] = -1
				infeas += s.lo[v] - s.xB[i]
			case s.xB[i] > s.up[v]+feasTol:
				w[i] = 1
				infeas += s.xB[i] - s.up[v]
			default:
				w[i] = 0
			}
		}
		if infeas == 0 {
			return Optimal
		}
		copy(s.y, w)
		s.lu.btran(s.y)
		enter := -1
		var sigma, dEnter float64
		best := dualTol
		for j := 0; j < s.tot; j++ {
			st := s.status[j]
			if st == Basic || s.lo[j] == s.up[j] {
				continue
			}
			d := -s.colDot(j, s.y)
			var score, sg float64
			switch st {
			case AtLower:
				if d < -dualTol {
					score, sg = -d, 1
				}
			case AtUpper:
				if d > dualTol {
					score, sg = d, -1
				}
			default:
				if d < -dualTol {
					score, sg = -d, 1
				} else if d > dualTol {
					score, sg = d, -1
				}
			}
			if score == 0 {
				continue
			}
			if bland {
				enter, sigma, dEnter = j, sg, d
				break
			}
			if score > best {
				best, enter, sigma, dEnter = score, j, sg, d
			}
		}
		if enter < 0 {
			return Infeasible
		}
		s.loadAlpha(enter)

		tMax := s.up[enter] - s.lo[enter]
		leave := -1
		bestT := tMax
		var leaveSt VarStatus
		var bestA float64
		for i := 0; i < s.m; i++ {
			a := s.alpha[i]
			if a < ratioTol && a > -ratioTol {
				continue
			}
			delta := -sigma * a
			v := s.heading[i]
			var room float64
			var st VarStatus
			switch {
			case s.xB[i] < s.lo[v]-feasTol:
				// Infeasible below: blocks only while rising to lo.
				if delta <= 0 {
					continue
				}
				room = s.lo[v] - s.xB[i]
				st = AtLower
			case s.xB[i] > s.up[v]+feasTol:
				if delta >= 0 {
					continue
				}
				room = s.xB[i] - s.up[v]
				st = AtUpper
			default:
				if delta > 0 {
					if math.IsInf(s.up[v], 1) {
						continue
					}
					room = s.up[v] - s.xB[i]
					st = AtUpper
				} else {
					if math.IsInf(s.lo[v], -1) {
						continue
					}
					room = s.xB[i] - s.lo[v]
					st = AtLower
				}
			}
			if room < 0 {
				room = 0
			}
			ratio := room / math.Abs(a)
			take := false
			if ratio < bestT-degenStep {
				take = true
			} else if leave >= 0 && ratio <= bestT+degenStep {
				aa := math.Abs(a)
				if bland {
					take = v < s.heading[leave]
				} else if aa > bestA+degenStep {
					take = true
				} else if aa >= bestA-degenStep && v < s.heading[leave] {
					take = true
				}
			}
			if take {
				leave, bestT, leaveSt, bestA = i, ratio, st, math.Abs(a)
			}
		}
		if leave < 0 {
			if math.IsInf(tMax, 1) {
				// Mathematically impossible (the violation sum is bounded
				// below by 0); reachable only through numerical trouble.
				return Infeasible
			}
			t := tMax
			for i := 0; i < s.m; i++ {
				if s.alpha[i] != 0 {
					s.xB[i] -= sigma * t * s.alpha[i]
				}
			}
			if s.status[enter] == AtLower {
				s.status[enter] = AtUpper
			} else {
				s.status[enter] = AtLower
			}
			s.iters++
			if math.Abs(dEnter)*t > degenStep {
				stall, bland = 0, false
			}
			continue
		}
		t := bestT
		for i := 0; i < s.m; i++ {
			if s.alpha[i] != 0 {
				s.xB[i] -= sigma * t * s.alpha[i]
			}
		}
		enterVal := s.nbVal(enter) + sigma*t
		s.pivot(leave, enter, enterVal, leaveSt)
		if math.Abs(dEnter)*t > degenStep {
			stall, bland = 0, false
		} else {
			stall++
			if stall > limit {
				bland = true
			}
		}
	}
}

// dual runs the dual simplex from a dual-feasible basis — the warm-start
// workhorse: a branch-and-bound child tightens one bound, which leaves the
// parent's basis dual-feasible but primal-infeasible, and a handful of
// dual pivots restore feasibility. Returns done=false when numerics force
// the caller to fall back to phase1+primal.
func (s *spx) dual() (Status, bool) {
	bland := false
	stall := 0
	limit := stallLimit(s.m)
	badPivots := 0
	for {
		if s.iters >= s.maxIters || s.p.stopRequested() {
			return IterationLimit, true
		}
		if s.lu.numEtas() >= refactorEvery {
			s.factorizeNow()
		}
		// Leaving row: largest bound violation (Bland: smallest basic
		// variable among the violated), smallest row index on ties.
		r := -1
		worst := feasTol
		for i := 0; i < s.m; i++ {
			v := s.heading[i]
			viol := 0.0
			if s.xB[i] < s.lo[v]-feasTol {
				viol = s.lo[v] - s.xB[i]
			} else if s.xB[i] > s.up[v]+feasTol {
				viol = s.xB[i] - s.up[v]
			}
			if viol <= feasTol {
				continue
			}
			if bland {
				if r < 0 || v < s.heading[r] {
					r = i
				}
			} else if viol > worst {
				worst, r = viol, i
			}
		}
		if r < 0 {
			return Optimal, true
		}
		leaveVar := s.heading[r]
		toLower := s.xB[r] < s.lo[leaveVar]
		for i := range s.rho {
			s.rho[i] = 0
		}
		// btran expects position-indexed input; e_r is the unit vector at
		// basis position r.
		s.rho[r] = 1
		s.lu.btran(s.rho)
		s.btranCost()

		// Entering column: the dual ratio test over nonbasic candidates
		// whose row entry has the sign that keeps dual feasibility.
		enter := -1
		bestRatio := math.Inf(1)
		var bestA float64
		for j := 0; j < s.tot; j++ {
			st := s.status[j]
			if st == Basic || s.lo[j] == s.up[j] {
				continue
			}
			aj := s.colDot(j, s.rho)
			if aj < ratioTol && aj > -ratioTol {
				continue
			}
			ok := false
			if toLower {
				ok = (st == AtLower && aj < 0) || (st == AtUpper && aj > 0) || st == NonbasicFree
			} else {
				ok = (st == AtLower && aj > 0) || (st == AtUpper && aj < 0) || st == NonbasicFree
			}
			if !ok {
				continue
			}
			d := s.cost[j] - s.colDot(j, s.y)
			ratio := math.Abs(d) / math.Abs(aj)
			if bland {
				if enter < 0 || j < enter {
					enter, bestA = j, math.Abs(aj)
				}
				continue
			}
			take := false
			if ratio < bestRatio-degenStep {
				take = true
			} else if enter >= 0 && ratio <= bestRatio+degenStep {
				aa := math.Abs(aj)
				if aa > bestA+degenStep || (aa >= bestA-degenStep && j < enter) {
					take = true
				}
			}
			if take {
				enter, bestRatio, bestA = j, ratio, math.Abs(aj)
			}
		}
		if enter < 0 {
			// No column can absorb the violation: the primal is infeasible.
			return Infeasible, true
		}
		s.loadAlpha(enter)
		arq := s.alpha[r]
		if math.Abs(arq) < dualPivTol {
			// The agreed pivot is numerically unusable; refactorize and
			// retry, bail to the primal path if it keeps happening.
			badPivots++
			if badPivots > 3 {
				return Optimal, false
			}
			s.factorizeNow()
			continue
		}
		var beta float64
		var leaveSt VarStatus
		if toLower {
			beta, leaveSt = s.lo[leaveVar], AtLower
		} else {
			beta, leaveSt = s.up[leaveVar], AtUpper
		}
		dxq := (s.xB[r] - beta) / arq
		for i := 0; i < s.m; i++ {
			if s.alpha[i] != 0 {
				s.xB[i] -= dxq * s.alpha[i]
			}
		}
		enterVal := s.nbVal(enter) + dxq
		s.pivot(r, enter, enterVal, leaveSt)
		if worst > degenStep && math.Abs(dxq) > degenStep {
			stall, bland = 0, false
		} else {
			stall++
			if stall > limit {
				bland = true
			}
		}
	}
}

// solveSparse runs the revised simplex on p, warm-starting from warm when
// provided. It returns the result and the final basis (nil unless the
// solve reached a terminal vertex).
func solveSparse(p *Problem, warm *Basis) (*Result, *Basis, error) {
	for j := 0; j < p.numVars; j++ {
		if p.lower[j] > p.upper[j]+eps {
			return &Result{Status: Infeasible}, nil, nil
		}
	}
	s := newSpx(p)
	s.adoptBasis(warm)
	s.factorizeNow()

	var st Status
	switch {
	case s.primalFeasible():
		st = s.primal()
	case warm != nil && s.dualFeasible():
		var done bool
		st, done = s.dual()
		if done && st == Optimal {
			// The dual loop ends primal-feasible; a primal cleanup pass
			// (usually zero pivots) certifies optimality and catches any
			// dual-tolerance slack.
			st = s.primal()
		} else if !done {
			if st = s.phase1(); st == Optimal {
				st = s.primal()
			}
		}
	default:
		if st = s.phase1(); st == Optimal {
			st = s.primal()
		}
	}

	res := &Result{Status: st, Iters: s.iters}
	if st != Optimal {
		if st == Infeasible || st == Unbounded || st == IterationLimit {
			return res, nil, nil
		}
	}
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] != Basic {
			x[j] = s.nbVal(j)
		}
	}
	for i := 0; i < s.m; i++ {
		if v := s.heading[i]; v < s.n {
			x[v] = s.xB[i]
		}
	}
	// Clamp tiny tolerance-level bound violations away so downstream
	// consumers (rounding, branching) see hard-feasible coordinates.
	for j := 0; j < s.n; j++ {
		if x[j] < p.lower[j] {
			x[j] = p.lower[j]
		}
		if x[j] > p.upper[j] {
			x[j] = p.upper[j]
		}
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += p.obj[j] * x[j]
	}
	res.Objective = obj
	res.X = x
	basis := &Basis{Status: append([]VarStatus(nil), s.status...)}
	return res, basis, nil
}
