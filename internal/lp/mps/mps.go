// Package mps reads and writes linear programs in the (free-format) MPS
// interchange format, so any relaxation the planner builds can be
// exported and cross-checked against an external LP solver, and external
// models can be replayed through the in-tree backends.
//
// The dialect is the common free-format subset: sections NAME, OBJSENSE
// (MAXIMIZE/MINIMIZE), ROWS (N/L/G/E), COLUMNS, RHS, BOUNDS (UP, LO, FX,
// FR, MI, PL) and ENDATA; fields are whitespace-separated, '*' starts a
// comment line. The first N row is the objective; further N rows are
// ignored (free rows). Writing renames rows and columns to canonical
// R0..Rm-1 / C0..Cn-1 identifiers — lp.Problem tracks variables by index,
// not by name — so Read(Write(Read(x))) is a fixpoint after the first
// round trip.
package mps

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"eblow/internal/lp"
)

// Model is a named linear program, the unit of MPS interchange.
type Model struct {
	// Name is the NAME-section identifier. Write sanitizes it to
	// [A-Za-z0-9_.-] and substitutes "LP" when empty.
	Name string
	// Problem is the program itself.
	Problem *lp.Problem
}

// Read parses a free-format MPS model.
func Read(r io.Reader) (*Model, error) {
	p := &parser{
		rowIdx: map[string]int{},
		colIdx: map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '*'); i == 0 {
			continue // comment line
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.line(line, fields); err != nil {
			return nil, fmt.Errorf("mps: line %d: %w", lineNo, err)
		}
		if p.done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mps: %w", err)
	}
	return p.finish()
}

// ReadBytes parses a free-format MPS model from a byte slice.
func ReadBytes(data []byte) (*Model, error) {
	return Read(strings.NewReader(string(data)))
}

type rowDef struct {
	name string
	op   lp.Op
}

type colEntry struct {
	row int // index into rows, -1 for the objective row
	val float64
}

type colDef struct {
	name    string
	entries []colEntry
	obj     float64

	// Bound bookkeeping: MPS defaults are [0, +inf), an UP bound with no
	// prior LO keeps lo at 0 (negative UP values historically imply a
	// free lower bound; we follow the common modern reading and keep 0
	// unless MI/LO say otherwise).
	lo, up   float64
	loSet    bool
	freeLow  bool
	fixedVal float64
	isFixed  bool
}

type parser struct {
	name    string
	section string
	done    bool

	maximize bool

	objName string
	objSeen bool

	rows   []rowDef
	rowIdx map[string]int
	rhs    []float64

	cols   []*colDef
	colIdx map[string]int

	freeRows map[string]bool
}

func (p *parser) col(name string) *colDef {
	if i, ok := p.colIdx[name]; ok {
		return p.cols[i]
	}
	c := &colDef{name: name, up: math.Inf(1)}
	p.colIdx[name] = len(p.cols)
	p.cols = append(p.cols, c)
	return c
}

func parseNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite number %q", s)
	}
	return v, nil
}

func (p *parser) line(raw string, fields []string) error {
	// Section headers start in column one; data lines are indented.
	indented := raw[0] == ' ' || raw[0] == '\t'
	if !indented {
		head := strings.ToUpper(fields[0])
		switch head {
		case "NAME":
			if len(fields) > 1 {
				p.name = fields[1]
			}
			p.section = "NAME"
			return nil
		case "OBJSENSE", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS":
			p.section = head
			return nil
		case "ENDATA":
			p.done = true
			return nil
		default:
			return fmt.Errorf("unknown section %q", fields[0])
		}
	}
	switch p.section {
	case "OBJSENSE":
		switch strings.ToUpper(fields[0]) {
		case "MAX", "MAXIMIZE":
			p.maximize = true
		case "MIN", "MINIMIZE":
			p.maximize = false
		default:
			return fmt.Errorf("bad OBJSENSE %q", fields[0])
		}
	case "ROWS":
		if len(fields) < 2 {
			return fmt.Errorf("ROWS line needs type and name")
		}
		typ := strings.ToUpper(fields[0])
		name := fields[1]
		switch typ {
		case "N":
			if !p.objSeen {
				p.objSeen = true
				p.objName = name
			} else {
				if p.freeRows == nil {
					p.freeRows = map[string]bool{}
				}
				p.freeRows[name] = true
			}
			return nil
		case "L", "G", "E":
			if _, dup := p.rowIdx[name]; dup || name == p.objName {
				return fmt.Errorf("duplicate row %q", name)
			}
			op := lp.LE
			if typ == "G" {
				op = lp.GE
			} else if typ == "E" {
				op = lp.EQ
			}
			p.rowIdx[name] = len(p.rows)
			p.rows = append(p.rows, rowDef{name: name, op: op})
			p.rhs = append(p.rhs, 0)
			return nil
		default:
			return fmt.Errorf("bad row type %q", fields[0])
		}
	case "COLUMNS":
		// Ignore integrality MARKER lines; this reader targets LPs.
		if len(fields) >= 2 && strings.HasPrefix(strings.ToUpper(fields[1]), "'MARKER'") {
			return nil
		}
		if len(fields) < 3 || len(fields)%2 == 0 {
			return fmt.Errorf("COLUMNS line needs name and row/value pairs")
		}
		c := p.col(fields[0])
		for k := 1; k+1 < len(fields); k += 2 {
			rowName := fields[k]
			v, err := parseNum(fields[k+1])
			if err != nil {
				return err
			}
			if rowName == p.objName && p.objSeen {
				c.obj += v
				continue
			}
			if p.freeRows[rowName] {
				continue
			}
			ri, ok := p.rowIdx[rowName]
			if !ok {
				return fmt.Errorf("unknown row %q", rowName)
			}
			c.entries = append(c.entries, colEntry{row: ri, val: v})
		}
	case "RHS":
		if len(fields) < 3 || len(fields)%2 == 0 {
			return fmt.Errorf("RHS line needs set name and row/value pairs")
		}
		for k := 1; k+1 < len(fields); k += 2 {
			rowName := fields[k]
			v, err := parseNum(fields[k+1])
			if err != nil {
				return err
			}
			if rowName == p.objName || p.freeRows[rowName] {
				continue
			}
			ri, ok := p.rowIdx[rowName]
			if !ok {
				return fmt.Errorf("unknown row %q", rowName)
			}
			p.rhs[ri] = v
		}
	case "RANGES":
		return fmt.Errorf("RANGES section not supported")
	case "BOUNDS":
		if len(fields) < 3 {
			return fmt.Errorf("BOUNDS line needs type, set and column")
		}
		typ := strings.ToUpper(fields[0])
		c := p.col(fields[2])
		needVal := typ == "UP" || typ == "LO" || typ == "FX"
		var v float64
		if needVal {
			if len(fields) < 4 {
				return fmt.Errorf("bound %s needs a value", typ)
			}
			var err error
			if v, err = parseNum(fields[3]); err != nil {
				return err
			}
		}
		switch typ {
		case "UP":
			c.up = v
			c.isFixed = false
		case "LO":
			c.lo = v
			c.loSet = true
			c.freeLow = false
			c.isFixed = false
		case "FX":
			c.isFixed = true
			c.fixedVal = v
		case "FR":
			c.freeLow = true
			c.up = math.Inf(1)
			c.isFixed = false
		case "MI":
			c.freeLow = true
			c.isFixed = false
		case "PL":
			c.up = math.Inf(1)
			c.isFixed = false
		default:
			return fmt.Errorf("bad bound type %q", fields[0])
		}
	case "NAME", "":
		return fmt.Errorf("data line outside a section")
	default:
		return fmt.Errorf("data line in unknown section %q", p.section)
	}
	return nil
}

func (p *parser) finish() (*Model, error) {
	if !p.done {
		return nil, fmt.Errorf("mps: missing ENDATA")
	}
	prob := lp.NewProblem(len(p.cols))
	prob.SetMaximize(p.maximize)
	for j, c := range p.cols {
		prob.SetObjectiveCoeff(j, c.obj)
		lo, up := c.lo, c.up
		if !c.loSet && c.freeLow {
			lo = math.Inf(-1)
		}
		if c.isFixed {
			lo, up = c.fixedVal, c.fixedVal
		}
		if lo > up {
			return nil, fmt.Errorf("mps: column %q has crossing bounds", c.name)
		}
		prob.SetBounds(j, lo, up)
	}
	// Gather rows column-major first, then emit row-major with terms in
	// column order — deterministic regardless of input interleaving.
	rowTerms := make([][]lp.Term, len(p.rows))
	for j, c := range p.cols {
		for _, e := range c.entries {
			rowTerms[e.row] = append(rowTerms[e.row], lp.Term{Var: j, Coeff: e.val})
		}
	}
	for i, rd := range p.rows {
		prob.AddConstraint(rowTerms[i], rd.op, p.rhs[i])
	}
	return &Model{Name: p.name, Problem: prob}, nil
}

// sanitizeName strips a NAME identifier to [A-Za-z0-9_.-], returning "LP"
// when nothing survives. The function is idempotent, which is what makes
// Write ∘ Read a fixpoint.
func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "LP"
	}
	return b.String()
}

func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// Write emits the model in free-format MPS with canonical R#/C# row and
// column names.
func Write(w io.Writer, m *Model) error {
	p := m.Problem
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME %s\n", sanitizeName(m.Name))
	if p.Maximize() {
		fmt.Fprintf(bw, "OBJSENSE\n MAXIMIZE\n")
	}
	fmt.Fprintf(bw, "ROWS\n N OBJ\n")
	mRows := p.NumConstraints()
	ops := make([]lp.Op, mRows)
	rhs := make([]float64, mRows)
	colEntries := make([][]colEntry, p.NumVars())
	for i := 0; i < mRows; i++ {
		terms, op, b := p.Constraint(i)
		ops[i], rhs[i] = op, b
		typ := "L"
		if op == lp.GE {
			typ = "G"
		} else if op == lp.EQ {
			typ = "E"
		}
		fmt.Fprintf(bw, " %s R%d\n", typ, i)
		// Accumulate repeated variables so the written file has one
		// coefficient per (row, column) pair.
		lp.SortTermsByVar(terms)
		for k := 0; k < len(terms); {
			v := terms[k].Var
			coeff := terms[k].Coeff
			k++
			for k < len(terms) && terms[k].Var == v {
				coeff += terms[k].Coeff
				k++
			}
			if coeff != 0 {
				colEntries[v] = append(colEntries[v], colEntry{row: i, val: coeff})
			}
		}
	}
	fmt.Fprintf(bw, "COLUMNS\n")
	for j := 0; j < p.NumVars(); j++ {
		// A column with no entries at all is still anchored by a zero
		// objective line, so every variable reappears (in index order) on
		// re-read and Write ∘ Read is a fixpoint.
		if c := p.ObjectiveCoeff(j); c != 0 || len(colEntries[j]) == 0 {
			fmt.Fprintf(bw, " C%d OBJ %s\n", j, fnum(c))
		}
		for _, e := range colEntries[j] {
			fmt.Fprintf(bw, " C%d R%d %s\n", j, e.row, fnum(e.val))
		}
	}
	fmt.Fprintf(bw, "RHS\n")
	for i := 0; i < mRows; i++ {
		if rhs[i] != 0 {
			fmt.Fprintf(bw, " B R%d %s\n", i, fnum(rhs[i]))
		}
	}
	fmt.Fprintf(bw, "BOUNDS\n")
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.LowerBound(j), p.UpperBound(j)
		switch {
		case lo == up:
			fmt.Fprintf(bw, " FX BND C%d %s\n", j, fnum(lo))
		case math.IsInf(lo, -1) && math.IsInf(up, 1):
			fmt.Fprintf(bw, " FR BND C%d\n", j)
		default:
			if math.IsInf(lo, -1) {
				fmt.Fprintf(bw, " MI BND C%d\n", j)
			} else if lo != 0 {
				fmt.Fprintf(bw, " LO BND C%d %s\n", j, fnum(lo))
			}
			if !math.IsInf(up, 1) {
				fmt.Fprintf(bw, " UP BND C%d %s\n", j, fnum(up))
			}
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}

// WriteString renders the model to a string.
func WriteString(m *Model) (string, error) {
	var b strings.Builder
	if err := Write(&b, m); err != nil {
		return "", err
	}
	return b.String(), nil
}
