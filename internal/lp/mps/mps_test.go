package mps

import (
	"math"
	"strings"
	"testing"

	"eblow/internal/lp"
)

// buildSample exercises every feature the writer can emit: both senses,
// all three row ops, free / fixed / shifted / bounded / empty columns.
func buildSample() *Model {
	p := lp.NewProblem(5)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 3)
	p.SetObjectiveCoeff(1, -1.5)
	p.SetObjectiveCoeff(3, 2)
	p.SetBounds(0, 0, 4)
	p.SetBounds(1, math.Inf(-1), math.Inf(1)) // free
	p.SetBounds(2, 1.25, 1.25)                // fixed
	p.SetBounds(3, -2, 10)
	// variable 4: default bounds, no objective, no rows — must survive.
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}, {Var: 1, Coeff: 1}}, lp.LE, 10)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 3, Coeff: -1}}, lp.GE, -1)
	p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}, {Var: 2, Coeff: 3}}, lp.EQ, 5)
	return &Model{Name: "sample lp!", Problem: p}
}

func mustWrite(t *testing.T, m *Model) string {
	t.Helper()
	s, err := WriteString(m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	return s
}

func TestWriteReadFixpoint(t *testing.T) {
	m := buildSample()
	w1 := mustWrite(t, m)
	m2, err := ReadBytes([]byte(w1))
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, w1)
	}
	w2 := mustWrite(t, m2)
	if w1 != w2 {
		t.Fatalf("write/read/write not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", w1, w2)
	}
	// The round trip must preserve the model semantically: same status
	// and objective from the solver.
	r1, err := lp.Solve(m.Problem)
	if err != nil {
		t.Fatalf("solve original: %v", err)
	}
	r2, err := lp.Solve(m2.Problem)
	if err != nil {
		t.Fatalf("solve round trip: %v", err)
	}
	if r1.Status != r2.Status {
		t.Fatalf("status changed across round trip: %v vs %v", r1.Status, r2.Status)
	}
	if r1.Status == lp.Optimal && math.Abs(r1.Objective-r2.Objective) > 1e-9 {
		t.Fatalf("objective changed across round trip: %g vs %g", r1.Objective, r2.Objective)
	}
}

func TestReadBasics(t *testing.T) {
	src := `* a comment
NAME tiny
OBJSENSE
 MAXIMIZE
ROWS
 N cost
 L cap
COLUMNS
 x cost 2 cap 1
 y cost 3
RHS
 rhsset cap 4
BOUNDS
 UP bnd y 1.5
ENDATA
`
	m, err := ReadBytes([]byte(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	p := m.Problem
	if m.Name != "tiny" || p.NumVars() != 2 || p.NumConstraints() != 1 || !p.Maximize() {
		t.Fatalf("parsed shape wrong: name=%q vars=%d rows=%d max=%v",
			m.Name, p.NumVars(), p.NumConstraints(), p.Maximize())
	}
	res, err := lp.Solve(p)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	// max 2x+3y, x+0y <= 4... row cap: x <= 4; y <= 1.5 → obj 8+4.5.
	if res.Status != lp.Optimal || math.Abs(res.Objective-12.5) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal 12.5", res.Status, res.Objective)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing endata": "NAME x\nROWS\n N OBJ\n",
		"unknown row":    "ROWS\n N OBJ\nCOLUMNS\n x nosuch 1\nENDATA\n",
		"bad number":     "ROWS\n N OBJ\nCOLUMNS\n x OBJ nan\nENDATA\n",
		"bad section":    "JUNKSECTION\nENDATA\n",
		"ranges":         "ROWS\n N OBJ\nRANGES\n r x 1\nENDATA\n",
		"crossing fx":    "ROWS\n N OBJ\nCOLUMNS\n x OBJ 1\nBOUNDS\n LO b x 5\n UP b x 1\nENDATA\n",
	}
	for name, src := range cases {
		if _, err := ReadBytes([]byte(src)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestSanitizeNameIdempotent(t *testing.T) {
	for _, s := range []string{"", "a b!c", "ok-name_1.2", "日本語"} {
		once := sanitizeName(s)
		if twice := sanitizeName(once); twice != once {
			t.Fatalf("sanitizeName not idempotent: %q -> %q -> %q", s, once, twice)
		}
	}
}

// FuzzMPSRoundTrip asserts the interchange contract on arbitrary input:
// parsing never panics, and any input that parses satisfies the
// write → read → write fixpoint.
func FuzzMPSRoundTrip(f *testing.F) {
	if s, err := WriteString(buildSample()); err == nil {
		f.Add([]byte(s))
	}
	f.Add([]byte("NAME t\nROWS\n N OBJ\n L r\nCOLUMNS\n x OBJ 1 r 1\nRHS\n b r 2\nENDATA\n"))
	f.Add([]byte("ROWS\n N OBJ\n G g\nCOLUMNS\n x g 1\nRHS\n b g -3\nBOUNDS\n MI b x\nENDATA\n"))
	f.Add([]byte("ROWS\n L r\nCOLUM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBytes(data)
		if err != nil {
			return
		}
		w1, err := WriteString(m)
		if err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		m2, err := ReadBytes([]byte(w1))
		if err != nil {
			t.Fatalf("re-read of written model failed: %v\n%s", err, w1)
		}
		w2, err := WriteString(m2)
		if err != nil {
			t.Fatalf("second write: %v", err)
		}
		if w1 != w2 {
			t.Fatalf("not a fixpoint:\n--- w1 ---\n%s\n--- w2 ---\n%s", w1, w2)
		}
	})
}

func TestTornInputsDoNotPanic(t *testing.T) {
	full := mustWrite(t, buildSample())
	for i := 0; i <= len(full); i++ {
		_, _ = ReadBytes([]byte(full[:i]))
	}
	for _, junk := range []string{
		"\x00\x01\x02", "ROWS", " ROWS", "BOUNDS\n UP\nENDATA",
		"ROWS\n N OBJ\nCOLUMNS\n 'MARKER'\nENDATA",
		strings.Repeat(" x", 1000),
	} {
		_, _ = ReadBytes([]byte(junk))
	}
}
