package lp

import "math"

// luFactor is a sparse LU factorization of the simplex basis matrix with
// product-form (eta) updates appended per pivot. The factorization is a
// column-ordered Doolittle elimination with partial pivoting over the
// basis columns; each pivot after that appends one eta transform instead
// of refactorizing, and the solver refactorizes from scratch every
// refactorEvery pivots (or when a pivot is numerically unusable) to keep
// the eta file short and the factors accurate.
//
// ftran solves B z = rhs (z indexed by basis position), btran solves
// B' y = c (c indexed by basis position, y by row) — the two kernels every
// revised-simplex iteration is built from.
type luFactor struct {
	m int

	// LU factors, one entry per pivot t in elimination order: pivRow[t]
	// is the pivot row, pivVal[t] the pivot value, lRows/lVals[t] the
	// below-pivot multipliers (rows still unpivoted at stage t) and
	// uRows/uVals[t] the column-t entries of U in earlier pivot
	// coordinates (t2 < t).
	pivRow []int32
	pivVal []float64
	lRows  [][]int32
	lVals  [][]float64
	uRows  [][]int32
	uVals  [][]float64

	// Product-form update etas, in application order. Each records the
	// basis position it replaced, the pivot element of the transformed
	// entering column and the remaining nonzero entries.
	etas []luEta

	// scratch buffers reused across solves
	work []float64
	ybuf []float64
}

type luEta struct {
	pos  int32
	piv  float64
	rows []int32
	vals []float64
}

// singTol is the absolute pivot magnitude below which a basis column is
// treated as linearly dependent and replaced by a logical column.
const singTol = 1e-10

// luDropTol drops negligible fill-in from the stored factors.
const luDropTol = 1e-13

// refactorEvery bounds the eta file length before the solver rebuilds the
// LU factors from scratch.
const refactorEvery = 64

// basisRepair records one column the factorization had to replace: the
// basis position, the variable that was evicted, and the logical variable
// (expressed as a row index) that took its place.
type basisRepair struct {
	pos    int
	oldVar int
	row    int
}

// factorize rebuilds the LU factors for the basis described by heading.
// column(v, scatter) must invoke scatter(row, val) for every nonzero of
// variable v's standard-form column. When a column turns out dependent it
// is replaced in heading by the logical of the lowest-numbered unpivoted
// row whose logical is not already basic, and the replacement is returned
// so the caller can fix variable statuses. inBasis must report, per
// logical row index, whether that row's logical is currently in heading;
// factorize updates it for replacements.
func (f *luFactor) factorize(m int, heading []int, logicalBase int,
	column func(v int, scatter func(row int32, val float64)),
	logicalInBasis []bool) []basisRepair {

	f.m = m
	f.pivRow = f.pivRow[:0]
	f.pivVal = f.pivVal[:0]
	f.lRows = f.lRows[:0]
	f.lVals = f.lVals[:0]
	f.uRows = f.uRows[:0]
	f.uVals = f.uVals[:0]
	f.etas = f.etas[:0]
	if cap(f.work) < m {
		f.work = make([]float64, m)
		f.ybuf = make([]float64, m)
	}
	work := f.work[:m]
	for i := range work {
		work[i] = 0
	}

	pivoted := make([]bool, m)
	var repairs []basisRepair
	var touched []int32

	loadColumn := func(v int) {
		for _, r := range touched {
			work[r] = 0
		}
		touched = touched[:0]
		column(v, func(row int32, val float64) {
			if work[row] == 0 && val != 0 {
				touched = append(touched, row)
			}
			work[row] += val
		})
	}

	for t := 0; t < m; t++ {
		loadColumn(heading[t])

		eliminate := func() (ur []int32, uv []float64) {
			for t2 := 0; t2 < t; t2++ {
				pr := f.pivRow[t2]
				fv := work[pr]
				if fv == 0 {
					continue
				}
				ur = append(ur, int32(t2))
				uv = append(uv, fv)
				work[pr] = 0
				lr, lv := f.lRows[t2], f.lVals[t2]
				for k, row := range lr {
					if work[row] == 0 {
						touched = append(touched, row)
					}
					work[row] -= fv * lv[k]
				}
			}
			return ur, uv
		}
		ur, uv := eliminate()

		// Partial pivoting over the unpivoted rows; strict max with the
		// smallest row index winning ties keeps the factorization (and
		// therefore the whole solve) deterministic.
		piv := -1
		best := 0.0
		for r := 0; r < m; r++ {
			if pivoted[r] {
				continue
			}
			if a := math.Abs(work[r]); a > best {
				best = a
				piv = r
			}
		}
		if piv < 0 || best <= singTol {
			// Dependent column: swap in the logical of the lowest
			// unpivoted row whose logical is still nonbasic. Its column
			// e_r passes through the prior eliminations untouched (r is
			// unpivoted, so no U entry fires), leaving a clean unit pivot.
			rr := -1
			for r := 0; r < m; r++ {
				if !pivoted[r] && !logicalInBasis[r] {
					rr = r
					break
				}
			}
			if rr < 0 {
				// Every unpivoted row's logical is already basic
				// elsewhere; fall back to any unpivoted row. The
				// duplicate heading entry is resolved by the caller
				// (cold restart); in practice this cannot happen because
				// a logical column is never dependent.
				for r := 0; r < m; r++ {
					if !pivoted[r] {
						rr = r
						break
					}
				}
			}
			repairs = append(repairs, basisRepair{pos: t, oldVar: heading[t], row: rr})
			if old := heading[t] - logicalBase; old >= 0 && old < m {
				logicalInBasis[old] = false
			}
			heading[t] = logicalBase + rr
			logicalInBasis[rr] = true
			loadColumn(heading[t])
			ur, uv = eliminate()
			piv = rr
			if work[piv] == 0 {
				work[piv] = 1 // defensive; e_rr survives elimination intact
			}
		}

		pv := work[piv]
		pivoted[piv] = true
		var lr []int32
		var lv []float64
		for _, r := range touched {
			if pivoted[r] {
				continue
			}
			v := work[r]
			if v == 0 {
				continue
			}
			// Consume the entry so a row listed twice in touched (set,
			// cancelled to zero, set again) is only extracted once.
			work[r] = 0
			if math.Abs(v) > luDropTol {
				lr = append(lr, r)
				lv = append(lv, v/pv)
			}
		}
		f.pivRow = append(f.pivRow, int32(piv))
		f.pivVal = append(f.pivVal, pv)
		f.lRows = append(f.lRows, lr)
		f.lVals = append(f.lVals, lv)
		f.uRows = append(f.uRows, ur)
		f.uVals = append(f.uVals, uv)
	}
	return repairs
}

// ftran solves B z = rhs in place: rhs is indexed by row on input and by
// basis position on output.
func (f *luFactor) ftran(v []float64) {
	m := f.m
	y := f.ybuf[:m]
	// L pass (row space -> pivot coordinates).
	for t := 0; t < m; t++ {
		ft := v[f.pivRow[t]]
		if ft != 0 {
			lr, lv := f.lRows[t], f.lVals[t]
			for k, row := range lr {
				v[row] -= ft * lv[k]
			}
		}
		y[t] = ft
	}
	// U back substitution.
	for t := m - 1; t >= 0; t-- {
		x := y[t] / f.pivVal[t]
		y[t] = x
		if x != 0 {
			ur, uv := f.uRows[t], f.uVals[t]
			for k, t2 := range ur {
				y[t2] -= uv[k] * x
			}
		}
	}
	copy(v, y)
	// Update etas, in application order.
	for e := range f.etas {
		eta := &f.etas[e]
		ft := v[eta.pos] / eta.piv
		v[eta.pos] = ft
		if ft != 0 {
			for k, i := range eta.rows {
				v[i] -= eta.vals[k] * ft
			}
		}
	}
}

// btran solves B' y = c in place: c is indexed by basis position on input
// and the result is indexed by row on output.
func (f *luFactor) btran(v []float64) {
	m := f.m
	// Update etas transposed, in reverse order.
	for e := len(f.etas) - 1; e >= 0; e-- {
		eta := &f.etas[e]
		s := v[eta.pos]
		for k, i := range eta.rows {
			s -= eta.vals[k] * v[i]
		}
		v[eta.pos] = s / eta.piv
	}
	// U' forward substitution (basis positions -> pivot coordinates).
	y := f.ybuf[:m]
	for t := 0; t < m; t++ {
		s := v[t]
		ur, uv := f.uRows[t], f.uVals[t]
		for k, t2 := range ur {
			s -= uv[k] * y[t2]
		}
		y[t] = s / f.pivVal[t]
	}
	// L' backward pass scatters into row space.
	for i := 0; i < m; i++ {
		v[i] = 0
	}
	for t := m - 1; t >= 0; t-- {
		s := y[t]
		lr, lv := f.lRows[t], f.lVals[t]
		for k, row := range lr {
			s -= lv[k] * v[row]
		}
		v[f.pivRow[t]] = s
	}
}

// update appends a product-form eta for a pivot that replaces basis
// position pos with a column whose ftran image is alpha (dense, indexed by
// basis position). It reports false when the pivot element is too small to
// be stable, in which case the caller must refactorize instead.
func (f *luFactor) update(pos int, alpha []float64) bool {
	piv := alpha[pos]
	if math.Abs(piv) < singTol {
		return false
	}
	var rows []int32
	var vals []float64
	for i, a := range alpha {
		if i == pos {
			continue
		}
		if math.Abs(a) > luDropTol {
			rows = append(rows, int32(i))
			vals = append(vals, a)
		}
	}
	f.etas = append(f.etas, luEta{pos: int32(pos), piv: piv, rows: rows, vals: vals})
	return true
}

// numEtas returns the current eta-file length (pivots since refactorize).
func (f *luFactor) numEtas() int { return len(f.etas) }
