package lp

// VarStatus is the simplex status of one variable. The sparse revised
// simplex works on the standard form  A x + s = b  with one logical
// (slack) variable s_i per row, so a basis assigns a status to every
// structural variable and every logical.
type VarStatus int8

const (
	// AtLower marks a nonbasic variable sitting at its lower bound.
	AtLower VarStatus = iota
	// AtUpper marks a nonbasic variable sitting at its upper bound.
	AtUpper
	// NonbasicFree marks a nonbasic free variable, held at value 0.
	NonbasicFree
	// Basic marks a basic variable; its value is determined by the solve.
	Basic
)

// Basis is a simplex basis in variable-status form: one status per
// structural variable followed by one per row logical, in problem order.
// The status form survives problem edits better than an explicit basis
// heading — a warm start maps statuses for the variables that still exist
// and the solver repairs the basic count and any singularity — which is
// what lets branch-and-bound children and successive-rounding re-solves
// start from their parent's basis.
//
// A Basis returned by a solve is immutable by convention: warm-start
// consumers share the pointer (a branch-and-bound node hands the same
// parent basis to both children), so callers must Clone before mutating.
type Basis struct {
	// Status has length NumVars()+NumConstraints() of the problem the
	// basis was derived from: structural variables first, then one
	// logical per constraint row.
	Status []VarStatus
}

// Clone returns an independent copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{Status: append([]VarStatus(nil), b.Status...)}
}

// NumBasic returns the number of variables with Basic status.
func (b *Basis) NumBasic() int {
	n := 0
	for _, st := range b.Status {
		if st == Basic {
			n++
		}
	}
	return n
}
