package solver

import (
	"context"
	"fmt"

	"eblow/internal/baseline"
	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/oned"
	"eblow/internal/twod"
)

// The base strategies register here in race order: the registration order is
// the portfolio race order per kind (1D: eblow, row25, heuristic24, greedy —
// 2D: eblow, sa24, greedy), and ties in writing time go to the earlier
// entry. The seed offsets reproduce the pre-registry strategy table
// bit-for-bit: heuristic24 raced with Seed+1 and sa24 with Seed+2.
func init() {
	Register(&Entry{
		Name: "eblow", Doc: "the paper's E-BLOW planner (1D successive rounding with a block-decomposed parallel relaxation / 2D clustering + incremental-cost annealing)",
		OneD: true, TwoD: true, Heavy: true, Racing: true, Scalable: true,
	}, solveEBlow)
	Register(&Entry{
		Name: "row25", Doc: "deterministic row-structure 1D heuristic ([25] in the paper)",
		OneD: true, Racing: true, Cheap: true, Batchable: true,
	}, func(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
		sol, err := baseline.RowHeuristic1D(in)
		if err != nil {
			return nil, err
		}
		return &Result{Solution: sol}, nil
	})
	Register(&Entry{
		Name: "heuristic24", Doc: "prior-work two-step 1D heuristic ([24] in the paper)",
		OneD: true, Racing: true, SeedOffset: 1, Batchable: true,
	}, func(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
		sol, err := baseline.Heuristic1D(ctx, in, baseline.Heuristic1DOptions{Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		return &Result{Solution: sol}, nil
	})
	Register(&Entry{
		Name: "sa24", Doc: "prior-work fixed-outline SA floorplanner for 2DOSP ([24] in the paper)",
		TwoD: true, Heavy: true, Racing: true, Scalable: true, SeedOffset: 2, Batchable: true,
	}, func(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
		sol, err := baseline.SA2D(ctx, in, baseline.SA2DOptions{
			Seed:      p.Seed,
			Restarts:  p.Restarts,
			Workers:   p.Workers,
			TimeLimit: p.Deadline,
		})
		if err != nil {
			return nil, err
		}
		return &Result{Solution: sol}, nil
	})
	Register(&Entry{
		Name: "greedy", Doc: "greedy selection baseline (Tables 3 and 4 of the paper)",
		OneD: true, TwoD: true, Racing: true, Cheap: true, Batchable: true,
	}, func(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
		var (
			sol *core.Solution
			err error
		)
		if in.Kind == core.OneD {
			sol, err = baseline.Greedy1D(in)
		} else {
			sol, err = baseline.Greedy2D(in)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Solution: sol}, nil
	})
	Register(&Entry{
		Name: "exact", Doc: "exact ILP formulations (3)/(7) by parallel branch and bound (tiny instances only)",
		OneD: true, TwoD: true, Heavy: true, Scalable: true,
	}, solveExact)
}

// solveEBlow dispatches the E-BLOW planner by instance kind under the
// unified params.
func solveEBlow(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
	if in.Kind == core.OneD {
		sol, trace, err := oned.Solve(ctx, in, p.effective1D())
		if err != nil {
			return nil, err
		}
		return &Result{Solution: sol, Trace: trace}, nil
	}
	sol, stats, err := twod.Solve(ctx, in, p.effective2D())
	if err != nil {
		return nil, err
	}
	return &Result{Solution: sol, Stats: stats}, nil
}

// solveExact runs the exact branch-and-bound formulation; Params.Deadline is
// the ILP time limit (0 leaves the search bounded only by the context) and
// Params.Workers sizes the parallel node evaluation.
func solveExact(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
	opt := exact.Options{TimeLimit: p.Deadline, Workers: p.Workers}
	var (
		res *exact.Result
		err error
	)
	if in.Kind == core.OneD {
		res, err = exact.Solve1D(ctx, in, opt)
	} else {
		res, err = exact.Solve2D(ctx, in, opt)
	}
	if err != nil {
		return nil, err
	}
	if res.Solution == nil {
		return nil, fmt.Errorf("solver: exact ILP found no incumbent (status %s)", res.Status)
	}
	return &Result{Solution: res.Solution, Exact: res}, nil
}
