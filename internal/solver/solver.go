// Package solver defines the unified planning API every OSP strategy in
// this repository is exposed through: one Solver interface, one Params
// struct, one Result struct, and a registry that names every strategy. The
// public facade (package eblow) re-exports these types verbatim, the
// portfolio race consumes the registry instead of keeping a private
// strategy table, and the batched job service (internal/service) schedules
// arbitrary registered strategies by name.
//
// The contract every registered Solver honours:
//
//   - Solve validates the instance and rejects kinds the strategy does not
//     support before doing any work.
//   - An already-done context returns ctx.Err() immediately; Params.Deadline
//     (when positive) bounds the solve on top of the caller's context.
//   - The Result reports the plan, its writing-time objective, whether the
//     plan passed core validation, which strategy produced it, and the
//     wall-clock time of the solve.
//   - For a fixed Params.Seed the result is independent of Params.Workers,
//     unless a deadline truncates an annealing schedule mid-run (wall clock
//     then decides how far it got, which nothing can make reproducible).
package solver

import (
	"context"
	"time"

	"eblow/internal/core"
	"eblow/internal/exact"
	"eblow/internal/learn"
	"eblow/internal/oned"
	"eblow/internal/twod"
)

// Params is the unified solver configuration shared by every strategy.
// The zero value asks for the paper's defaults: one worker per CPU, seed 0,
// no deadline, one annealing restart.
type Params struct {
	// Workers bounds the goroutines a strategy may use for its parallel
	// stages (and, for the portfolio, how many strategies race at once).
	// 0 means one worker per CPU; 1 forces the sequential flow.
	Workers int
	// Seed seeds the randomized strategies. Racing strategies derive
	// disjoint sub-seeds from it (see Entry.SeedOffset), so a portfolio
	// race never feeds two entrants the same random stream.
	Seed int64
	// Deadline bounds the solve (0 = none beyond the caller's context).
	// The exact strategy also uses it as the branch-and-bound time limit.
	Deadline time.Duration
	// Restarts is the number of independent annealing restarts for the
	// SA-based strategies (0 means 1).
	Restarts int
	// Strategies selects which strategies a multi-strategy entry point
	// considers: SolveWith runs the single named strategy directly, races
	// several, and the portfolio strategy restricts its entrant set to the
	// named ones. Nil means the default set. Single-strategy solvers
	// ignore it.
	Strategies []string
	// Learn opts the portfolio strategy into learned scheduling: the race
	// plan (entrant order, pruning of never-winning heavy entrants, the
	// heavy-worker split) is conditioned on the instance's shape using the
	// statistics store at LearnPath, and the race outcome is recorded back
	// and persisted. A cold store reproduces the static registry order
	// bit-for-bit. Strategies other than "portfolio" ignore it.
	Learn bool
	// LearnPath locates the JSON statistics store Learn uses; "" means
	// learn.DefaultPath in the working directory.
	LearnPath string
	// LearnStore hands the portfolio an already-open store instead of
	// opening LearnPath: the job service shares one store across all jobs
	// this way. Implies Learn; the owner of the store persists it (the
	// solve records outcomes in memory only).
	LearnStore *learn.Store
	// Options1D overrides the full E-BLOW 1D option set (nil = defaults
	// completed with Workers/CollectTrace above).
	Options1D *oned.Options
	// Options2D overrides the full E-BLOW 2D option set (nil = defaults
	// completed with Workers/Seed/Restarts above).
	Options2D *twod.Options
	// CollectTrace asks the 1D planner to record its successive-rounding
	// iteration trace in Result.Trace.
	CollectTrace bool
}

// effective1D resolves the 1D planner options from the unified params.
func (p Params) effective1D() oned.Options {
	o := oned.Defaults()
	if p.Options1D != nil {
		o = *p.Options1D
	}
	if o.Workers == 0 {
		o.Workers = p.Workers
	}
	o.CollectTrace = o.CollectTrace || p.CollectTrace
	return o
}

// effective2D resolves the 2D planner options from the unified params.
func (p Params) effective2D() twod.Options {
	o := twod.Defaults()
	if p.Options2D != nil {
		o = *p.Options2D
	}
	if o.Workers == 0 {
		o.Workers = p.Workers
	}
	if o.Seed == 0 {
		o.Seed = p.Seed
	}
	if o.Restarts == 0 {
		o.Restarts = p.Restarts
	}
	if o.TimeLimit == 0 {
		// Hand the deadline to the annealer too: it ends its schedule at
		// the limit and returns the best plan so far, where the bare
		// context timeout would surface an error from the later stages.
		o.TimeLimit = p.Deadline
	}
	return o
}

// Result is the unified outcome of one Solve call.
type Result struct {
	// Solution is the stencil plan (nil only alongside a non-nil error).
	Solution *core.Solution
	// Objective is the plan's MCC writing time (Solution.WritingTime).
	Objective int64
	// Feasible reports whether the plan passed core validation against the
	// instance.
	Feasible bool
	// Strategy names the strategy that produced the plan; for the
	// portfolio strategy it is the winning entrant.
	Strategy string
	// Elapsed is the wall-clock time of the solve.
	Elapsed time.Duration

	// Trace is the 1D successive-rounding trace (only when requested via
	// Params.CollectTrace or Options1D.CollectTrace).
	Trace *oned.Trace
	// Stats reports what the 2D clustering stage did (2D E-BLOW only).
	Stats *twod.Stats
	// Exact carries the branch-and-bound details of an exact solve.
	Exact *exact.Result
	// Runs holds every entrant's outcome of a portfolio race, in race
	// order (portfolio strategy only).
	Runs []Run
	// Plan is the learned race plan of a portfolio race scheduled with
	// Params.Learn or Params.LearnStore (nil otherwise; Learned == false
	// when the store was cold for the instance's shape).
	Plan *learn.Plan
}

// Run is one strategy's outcome inside a portfolio race.
type Run struct {
	// Name identifies the entrant strategy.
	Name string
	// Solution is nil when the entrant failed or was cut off.
	Solution *core.Solution
	// Err reports why Solution is nil (typically context.DeadlineExceeded).
	Err error
	// Elapsed is the entrant's wall-clock time.
	Elapsed time.Duration
}

// Solver is one named OSP planning strategy.
type Solver interface {
	// Name returns the stable registry name of the strategy.
	Name() string
	// Solve plans the stencil of the instance under the unified contract
	// documented at the package level.
	Solve(ctx context.Context, in *core.Instance, p Params) (*Result, error)
}

// finish stamps the uniform Result fields after a raw solve: objective,
// feasibility against the instance, strategy name (unless the inner solver
// already set one, as the portfolio does with its winner) and elapsed time.
func finish(r *Result, in *core.Instance, name string, elapsed time.Duration) {
	r.Elapsed = elapsed
	if r.Strategy == "" {
		r.Strategy = name
	}
	if r.Solution != nil {
		r.Objective = r.Solution.WritingTime
		r.Feasible = r.Solution.Validate(in) == nil
	}
}
