package solver

import (
	"context"
	"fmt"
	"sort"
	"time"

	"eblow/internal/core"
	"eblow/internal/learn"
)

// Entry describes one registered strategy: the Solver plus the metadata the
// portfolio race and the job service need to schedule it.
type Entry struct {
	// Name is the stable registry name ("eblow", "greedy", ...).
	Name string
	// Doc is a one-line human description.
	Doc string
	// OneD and TwoD report which instance kinds the strategy supports.
	OneD, TwoD bool
	// Heavy marks strategies that saturate the worker pool themselves
	// (annealing/LP planners); the portfolio splits its pool among the
	// heavy entrants actually racing.
	Heavy bool
	// Scalable marks strategies whose throughput actually grows with
	// Params.Workers (parallel rounding/annealing stages, the parallel
	// branch and bound) while their result stays worker-count independent.
	// The portfolio divides its pool among the scalable heavy entrants
	// only: a heavy-but-serial strategy is handed a single worker, so the
	// pool is never wasted on goroutines a strategy cannot use.
	Scalable bool
	// Racing marks strategies that take part in the default portfolio
	// race. Exact ILP and the portfolio itself stay out.
	Racing bool
	// Cheap marks deterministic strategies fast enough to run to
	// completion even after a race deadline has expired. The portfolio
	// runs them outside the shared deadline so a tight race still yields
	// a feasible incumbent — the degradation guarantee the package doc of
	// internal/portfolio promises.
	Cheap bool
	// SeedOffset is added to Params.Seed when the strategy runs inside a
	// portfolio race, so racing entrants never share a random stream. The
	// offsets are part of the determinism contract: they keep race results
	// bit-identical to the pre-registry strategy table.
	SeedOffset int64
	// Batchable marks strategies the batch execution layer
	// (internal/batch) may run as a many-instance cohort with results
	// bit-identical to solo Solve calls: single-strategy runs whose only
	// inputs are the instance and (Seed, Restarts, Workers, Deadline).
	// Meta-strategies that consult shared state (the portfolio's learn
	// store) or search under an adaptive budget stay solo.
	Batchable bool

	solve func(ctx context.Context, in *core.Instance, p Params) (*Result, error)
}

// LearnEntrant projects the entry onto the scheduler's view of a race
// entrant. Both the portfolio race and eblow.PlanRace build their entrant
// lists through this one conversion, so the plan a caller previews is
// computed from exactly the metadata the race itself uses.
func (e *Entry) LearnEntrant() learn.Entrant {
	return learn.Entrant{Name: e.Name, Heavy: e.Heavy, Scalable: e.Scalable, Cheap: e.Cheap}
}

// Supports reports whether the strategy applies to the given instance kind.
func (e *Entry) Supports(kind core.Kind) bool {
	if kind == core.OneD {
		return e.OneD
	}
	return e.TwoD
}

// Kinds renders the supported kinds for error messages and listings.
func (e *Entry) Kinds() string {
	switch {
	case e.OneD && e.TwoD:
		return "1D+2D"
	case e.OneD:
		return "1D"
	default:
		return "2D"
	}
}

// Solver returns the entry's strategy under the uniform Solve contract.
func (e *Entry) Solver() Solver { return entrySolver{e} }

// entrySolver adapts an Entry to the Solver interface while enforcing the
// uniform contract (validation, kind check, deadline, result stamping).
type entrySolver struct{ e *Entry }

func (s entrySolver) Name() string { return s.e.Name }

func (s entrySolver) Solve(ctx context.Context, in *core.Instance, p Params) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !s.e.Supports(in.Kind) {
		return nil, fmt.Errorf("solver: strategy %q supports %s instances, not %s", s.e.Name, s.e.Kinds(), in.Kind)
	}
	if p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		defer cancel()
	}
	t0 := time.Now()
	r, err := s.e.solve(ctx, in, p)
	if err != nil {
		return nil, err
	}
	if r.Solution == nil {
		// Enforce the interface contract (nil Solution only with a non-nil
		// error) so no caller downstream has to guard against a strategy
		// that violates it.
		return nil, fmt.Errorf("solver: strategy %q returned no solution", s.e.Name)
	}
	finish(r, in, s.e.Name, time.Since(t0))
	return r, nil
}

// Finish stamps the uniform Result fields exactly as the registry wrapper
// does after a raw solve (Elapsed, Strategy fallback, Objective,
// Feasible). The batched cohort executor uses it so cohort results carry
// the same stamping as solo entrySolver results.
func Finish(r *Result, in *core.Instance, name string, elapsed time.Duration) {
	finish(r, in, name, elapsed)
}

// registry holds the entries in registration order; that order is the
// portfolio race order and therefore part of the determinism contract (ties
// in writing time go to the earlier strategy).
var registry []*Entry

// Register adds a strategy to the registry. It panics on a duplicate name —
// registration happens at init time, so a duplicate is a programming error.
// Packages outside internal/solver (such as internal/portfolio) register
// their meta-strategies through this hook.
func Register(e *Entry, solve func(ctx context.Context, in *core.Instance, p Params) (*Result, error)) {
	if e.Name == "" || solve == nil {
		panic("solver: Register needs a name and a solve function")
	}
	for _, have := range registry {
		if have.Name == e.Name {
			panic(fmt.Sprintf("solver: duplicate strategy %q", e.Name))
		}
	}
	e.solve = solve
	registry = append(registry, e)
}

// Lookup returns the named strategy as a Solver.
func Lookup(name string) (Solver, bool) {
	for _, e := range registry {
		if e.Name == name {
			return entrySolver{e}, true
		}
	}
	return nil, false
}

// LookupEntry returns the named registry entry with its metadata.
func LookupEntry(name string) (*Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// ForKind returns every strategy applicable to the given instance kind, in
// registration order.
func ForKind(kind core.Kind) []Solver {
	var out []Solver
	for _, e := range registry {
		if e.Supports(kind) {
			out = append(out, entrySolver{e})
		}
	}
	return out
}

// Entries returns a snapshot of every registry entry in registration
// order. The entries are copies: mutating them cannot alter the process-
// wide registry (race composition, seed offsets) behind other callers'
// backs.
func Entries() []*Entry {
	out := make([]*Entry, len(registry))
	for i, e := range registry {
		cp := *e
		out[i] = &cp
	}
	return out
}

// Names lists every registered strategy name, sorted, for error messages.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// Racing returns the entries of the default portfolio race for the given
// instance kind, in race order.
func Racing(kind core.Kind) []*Entry {
	var out []*Entry
	for _, e := range registry {
		if e.Racing && e.Supports(kind) {
			out = append(out, e)
		}
	}
	return out
}

// RacingNames lists the default portfolio race for the given kind, in race
// order.
func RacingNames(kind core.Kind) []string {
	entries := Racing(kind)
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// Solve runs the named strategy on the instance; it is the string-keyed
// convenience the job service schedules through.
func Solve(ctx context.Context, name string, in *core.Instance, p Params) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("solver: unknown strategy %q (have %v)", name, Names())
	}
	return s.Solve(ctx, in, p)
}
