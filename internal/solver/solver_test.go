package solver_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
	_ "eblow/internal/portfolio" // registers the "portfolio" strategy
	"eblow/internal/solver"
)

func TestRegistryRaceOrder(t *testing.T) {
	want1D := []string{"eblow", "row25", "heuristic24", "greedy"}
	if got := solver.RacingNames(core.OneD); !reflect.DeepEqual(got, want1D) {
		t.Errorf("1D race order %v, want %v", got, want1D)
	}
	want2D := []string{"eblow", "sa24", "greedy"}
	if got := solver.RacingNames(core.TwoD); !reflect.DeepEqual(got, want2D) {
		t.Errorf("2D race order %v, want %v", got, want2D)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"eblow", "row25", "heuristic24", "sa24", "greedy", "exact", "portfolio"} {
		s, ok := solver.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	if _, ok := solver.Lookup("bogus"); ok {
		t.Error("Lookup accepted an unknown strategy")
	}
}

// The seed offsets are part of the determinism contract: they keep race
// results identical to the pre-registry strategy table.
func TestSeedOffsetsPinned(t *testing.T) {
	want := map[string]int64{"eblow": 0, "row25": 0, "greedy": 0, "heuristic24": 1, "sa24": 2}
	for name, off := range want {
		e, ok := solver.LookupEntry(name)
		if !ok {
			t.Fatalf("no entry %q", name)
		}
		if e.SeedOffset != off {
			t.Errorf("%s: seed offset %d, want %d", name, e.SeedOffset, off)
		}
	}
}

func TestUniformResultContract(t *testing.T) {
	in := gen.Small(core.OneD, 40, 2, 3)
	r, err := solver.Solve(context.Background(), "greedy", in, solver.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Solution == nil {
		t.Fatal("no solution")
	}
	if !r.Feasible {
		t.Error("greedy plan reported infeasible")
	}
	if r.Objective != r.Solution.WritingTime {
		t.Errorf("objective %d != writing time %d", r.Objective, r.Solution.WritingTime)
	}
	if r.Strategy != "greedy" {
		t.Errorf("strategy %q, want greedy", r.Strategy)
	}
	if r.Elapsed <= 0 {
		t.Error("elapsed not stamped")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	in2 := gen.Small(core.TwoD, 20, 2, 4)
	if _, err := solver.Solve(context.Background(), "row25", in2, solver.Params{}); err == nil {
		t.Error("row25 accepted a 2D instance")
	} else if !strings.Contains(err.Error(), "supports 1D") {
		t.Errorf("unhelpful kind error: %v", err)
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	in := gen.Small(core.OneD, 20, 2, 4)
	if _, err := solver.Solve(context.Background(), "nope", in, solver.Params{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestDeadlineBoundsSolve(t *testing.T) {
	in := gen.Small(core.OneD, 200, 4, 5)
	_, err := solver.Solve(context.Background(), "eblow", in, solver.Params{Deadline: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected DeadlineExceeded, got %v", err)
	}
}

func TestCollectTrace(t *testing.T) {
	in := gen.Small(core.OneD, 40, 2, 6)
	r, err := solver.Solve(context.Background(), "eblow", in, solver.Params{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil || len(r.Trace.UnsolvedPerIteration) == 0 {
		t.Error("CollectTrace produced no trace")
	}
}

func TestPortfolioStrategyRaces(t *testing.T) {
	in := gen.Small(core.OneD, 40, 2, 7)
	r, err := solver.Solve(context.Background(), "portfolio", in, solver.Params{
		Seed:       1,
		Strategies: []string{"greedy", "row25"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("expected 2 runs, got %d", len(r.Runs))
	}
	if r.Strategy != "greedy" && r.Strategy != "row25" {
		t.Errorf("winner %q not among the raced strategies", r.Strategy)
	}
	if !r.Feasible {
		t.Error("race winner infeasible")
	}
}

// The unified entry must return the same plan as the legacy per-strategy
// path for a fixed seed.
func TestRegistryMatchesDirectSolve(t *testing.T) {
	in := gen.Small(core.TwoD, 30, 2, 8)
	a, err := solver.Solve(context.Background(), "sa24", in, solver.Params{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.Solve(context.Background(), "sa24", in, solver.Params{Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || !reflect.DeepEqual(a.Solution.Selected, b.Solution.Selected) {
		t.Error("sa24 result changed with worker count")
	}
}
