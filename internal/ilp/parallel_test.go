package ilp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"eblow/internal/lp"
)

// randomBinaryProgram builds a seeded random binary program with <=
// constraints (0 is always feasible) plus one correlated second constraint
// so the branch-and-bound tree is non-trivial.
func randomBinaryProgram(seed int64, n, m int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem(n)
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = 1 + rng.Float64()*100
	}
	p.SetObjective(obj, true)
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		var sum float64
		for j := range row {
			row[j] = rng.Float64() * 10
			sum += row[j]
		}
		p.AddDense(row, lp.LE, sum*(0.2+0.5*rng.Float64()))
	}
	vars := make([]int, n)
	for j := range vars {
		vars[j] = j
	}
	return NewBinaryProblem(p, vars)
}

// identicalResults fails the test unless the two results agree bit-for-bit
// on status, objective and solution vector.
func identicalResults(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Status != b.Status {
		t.Errorf("%s: status %v vs %v", label, a.Status, b.Status)
	}
	if a.Objective != b.Objective {
		t.Errorf("%s: objective %v vs %v", label, a.Objective, b.Objective)
	}
	if (a.X == nil) != (b.X == nil) {
		t.Fatalf("%s: one run has a solution, the other does not", label)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Errorf("%s: X[%d] = %v vs %v", label, j, a.X[j], b.X[j])
		}
	}
}

// The determinism contract of the engine: Workers=1 and Workers=8 return
// bit-identical status, objective and solution on a spread of random binary
// programs (run under -race in CI).
func TestWorkersBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 6 + int(seed)%8
		prob := randomBinaryProgram(seed, n, 3)
		seq, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, seq, par, fmt.Sprintf("seed %d", seed))
		if seq.Status != Optimal {
			t.Errorf("seed %d: expected optimal, got %v", seed, seq.Status)
		}
	}
}

// A minimization problem must obey the same contract (the sign-adjusted
// bounds and the live incumbent publishing both flip direction).
func TestWorkersBitIdenticalMinimize(t *testing.T) {
	// Set-cover over 9 elements with 12 sets, minimized.
	rng := rand.New(rand.NewSource(5))
	nSets, nElems := 12, 9
	p := lp.NewProblem(nSets)
	obj := make([]float64, nSets)
	for j := range obj {
		obj[j] = 1 + rng.Float64()*4
	}
	p.SetObjective(obj, false)
	for e := 0; e < nElems; e++ {
		row := make([]float64, nSets)
		covered := 0
		for j := 0; j < nSets; j++ {
			if rng.Intn(3) == 0 {
				row[j] = 1
				covered++
			}
		}
		if covered == 0 {
			row[e%nSets] = 1
		}
		p.AddDense(row, lp.GE, 1)
	}
	vars := make([]int, nSets)
	for j := range vars {
		vars[j] = j
	}
	prob := NewBinaryProblem(p, vars)
	seq, err := Solve(context.Background(), prob, Options{Maximize: false, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(context.Background(), prob, Options{Maximize: false, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, seq, par, "set-cover")
}

// Result.Nodes must be reproducible run-to-run at Workers=1 (no limits, so
// wall clock cannot interfere), and it only counts fully evaluated nodes.
func TestNodesDeterministicAtOneWorker(t *testing.T) {
	prob := randomBinaryProgram(42, 12, 3)
	first, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if again.Nodes != first.Nodes {
			t.Fatalf("run %d explored %d nodes, first run %d", run, again.Nodes, first.Nodes)
		}
		identicalResults(t, first, again, "repeat")
	}
	if first.Nodes == 0 {
		t.Error("no nodes counted on a solved program")
	}
}

// Cancelling a parallel solve must stop every worker promptly: the solve
// returns quickly and no worker goroutines outlive it.
func TestParallelCancellationExitsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	prob := randomBinaryProgram(7, 26, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Solve(ctx, prob, Options{Maximize: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation ignored: solve ran %v", d)
	}
	if res.Status == Optimal && res.X == nil {
		t.Error("optimal status without a solution")
	}
	// Workers are joined before Solve returns; give the runtime a moment to
	// reap the exited goroutines, then require the count to come back down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+1 {
		t.Errorf("worker goroutines leaked: %d before, %d after", before, now)
	}
}

// A time limit must bound a parallel solve the same way it bounds the
// sequential one, and the incumbent (when one exists) must be feasible.
func TestParallelTimeLimit(t *testing.T) {
	prob := randomBinaryProgram(11, 26, 4)
	start := time.Now()
	res, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 4, TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("time limit ignored: solve ran %v", d)
	}
	if res.X != nil {
		for j, x := range res.X {
			if f := x - math.Floor(x); math.Min(f, 1-f) > 1e-6 {
				t.Errorf("incumbent X[%d] = %v is not integral", j, x)
			}
		}
	}
}

// The engine must keep its hands off the caller's LP: bounds are applied to
// per-worker clones, never to the template problem.
func TestSolveDoesNotMutateTemplate(t *testing.T) {
	prob := randomBinaryProgram(3, 8, 2)
	n := prob.LP.NumVars()
	lo := make([]float64, n)
	hi := make([]float64, n)
	for j := 0; j < n; j++ {
		lo[j], hi[j] = prob.LP.LowerBound(j), prob.LP.UpperBound(j)
	}
	if _, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if prob.LP.LowerBound(j) != lo[j] || prob.LP.UpperBound(j) != hi[j] {
			t.Fatalf("template bounds of variable %d changed: [%v,%v] -> [%v,%v]",
				j, lo[j], hi[j], prob.LP.LowerBound(j), prob.LP.UpperBound(j))
		}
	}
}
