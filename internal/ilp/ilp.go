// Package ilp implements a branch-and-bound solver for (mixed) integer
// linear programs on top of the simplex solver in package lp. Together the
// two packages replace the commercial solver used by the E-BLOW paper for
// the exact ILP formulations (3) and (7) and for the fast-ILP-convergence
// step of the 1D planner.
//
// The solver uses best-bound node selection, most-fractional branching and
// supports wall-clock and node-count limits, which matters because the exact
// OSP formulations are deliberately allowed to time out in the Table 5
// experiment (that is the point of the comparison).
package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"eblow/internal/lp"
)

// Status describes the outcome of a branch-and-bound run.
type Status int

const (
	// Optimal means the incumbent is provably optimal (within Options.Gap).
	Optimal Status = iota
	// Feasible means a feasible integral incumbent was found but the search
	// stopped early (time or node limit).
	Feasible
	// Infeasible means no integral solution exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// Limit means a limit was hit before any integral solution was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an integer linear program: an LP plus integrality flags.
type Problem struct {
	LP      *lp.Problem
	Integer []bool
}

// NewBinaryProblem builds a problem where the listed variables are binary
// (integral with bounds [0,1]); the remaining variables stay continuous.
func NewBinaryProblem(p *lp.Problem, binaryVars []int) *Problem {
	integer := make([]bool, p.NumVars())
	for _, v := range binaryVars {
		integer[v] = true
		p.SetBounds(v, 0, 1)
	}
	return &Problem{LP: p, Integer: integer}
}

// Options controls the search.
type Options struct {
	// TimeLimit bounds the wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes (0 = no limit).
	MaxNodes int
	// Gap is the relative optimality gap at which the search stops
	// (default 1e-6).
	Gap float64
	// Maximize must match the LP objective sense. It defaults to true when
	// constructed through Maximize()/Minimize() helpers; Solve reads the
	// sense from this flag because lp.Problem does not expose it.
	Maximize bool
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int
	BestBound float64
	Elapsed   time.Duration
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("ilp: invalid problem")

const intTol = 1e-6

type node struct {
	bounds []boundChange
	bound  float64 // LP relaxation value at the parent (optimistic)
	depth  int
}

type boundChange struct {
	v      int
	lo, hi float64
}

// nodeQueue is a max-heap on the optimistic bound (for maximization; bounds
// are stored pre-negated for minimization so max-heap is always right).
type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs branch and bound. The LP inside p is used as a template: its
// variable bounds are temporarily overridden per node and restored before
// returning. A done context stops the search like a time limit: the best
// incumbent found so far (if any) is returned with a Feasible/Limit status.
func Solve(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	if p == nil || p.LP == nil || len(p.Integer) != p.LP.NumVars() {
		return nil, fmt.Errorf("%w: integrality flags do not match LP", ErrBadProblem)
	}
	if opt.Gap <= 0 {
		opt.Gap = 1e-6
	}
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	// Interrupt the simplex between pivots, not just between nodes: a
	// single node relaxation of a big formulation can run for a long time,
	// and cancellation should not wait it out. The derived context also
	// folds the wall-clock limit into the same stop channel.
	lpCtx := ctx
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		lpCtx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	prevStop := p.LP.Stop
	p.LP.Stop = lpCtx.Done()
	defer func() { p.LP.Stop = prevStop }()

	sign := 1.0
	if !opt.Maximize {
		sign = -1
	}

	// Save original bounds so we can restore them.
	n := p.LP.NumVars()
	origLo := make([]float64, n)
	origHi := make([]float64, n)
	for j := 0; j < n; j++ {
		origLo[j], origHi[j] = boundsOf(p.LP, j)
	}
	defer func() {
		for j := 0; j < n; j++ {
			p.LP.SetBounds(j, origLo[j], origHi[j])
		}
	}()

	solveNode := func(nd *node) (*lp.Result, error) {
		for j := 0; j < n; j++ {
			p.LP.SetBounds(j, origLo[j], origHi[j])
		}
		for _, bc := range nd.bounds {
			p.LP.SetBounds(bc.v, bc.lo, bc.hi)
		}
		return lp.Solve(p.LP)
	}

	res := &Result{Status: Limit, Objective: sign * math.Inf(-1), BestBound: sign * math.Inf(1)}
	var incumbent []float64
	haveIncumbent := false

	queue := &nodeQueue{}
	heap.Init(queue)
	heap.Push(queue, &node{bound: math.Inf(1)})

	better := func(a, b float64) bool { // is a strictly better than b?
		if opt.Maximize {
			return a > b+1e-12
		}
		return a < b-1e-12
	}

	done := ctx.Done()
	interrupted := false
	dropped := false // nodes lost to the LP pivot budget or an interrupt
	nodes := 0
	for queue.Len() > 0 {
		if opt.MaxNodes > 0 && nodes >= opt.MaxNodes {
			break
		}
		select {
		case <-done:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		nd := heap.Pop(queue).(*node)
		// Prune against incumbent using the parent bound.
		if haveIncumbent && !math.IsInf(nd.bound, 1) {
			parentObj := nd.bound
			if opt.Maximize {
				if parentObj <= res.Objective+opt.Gap*math.Abs(res.Objective)+1e-9 {
					continue
				}
			} else {
				if -parentObj >= res.Objective-opt.Gap*math.Abs(res.Objective)-1e-9 {
					continue
				}
			}
		}
		nodes++

		lpRes, err := solveNode(nd)
		if err != nil {
			return nil, err
		}
		switch lpRes.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if nd.depth == 0 {
				res.Status = Unbounded
				res.Nodes = nodes
				res.Elapsed = time.Since(start)
				return res, nil
			}
			continue
		case lp.IterationLimit:
			dropped = true
			continue
		}

		obj := lpRes.Objective
		// Prune: the node cannot beat the incumbent.
		if haveIncumbent && !better(obj, res.Objective) {
			continue
		}

		// Find the most fractional integer variable.
		branchVar := -1
		bestFrac := intTol
		for j := 0; j < n; j++ {
			if !p.Integer[j] {
				continue
			}
			f := lpRes.X[j] - math.Floor(lpRes.X[j])
			dist := math.Min(f, 1-f)
			if dist > bestFrac {
				bestFrac = dist
				branchVar = j
			}
		}

		if branchVar < 0 {
			// Integral solution.
			xr := make([]float64, n)
			for j := 0; j < n; j++ {
				if p.Integer[j] {
					xr[j] = math.Round(lpRes.X[j])
				} else {
					xr[j] = lpRes.X[j]
				}
			}
			if !haveIncumbent || better(obj, res.Objective) {
				res.Objective = obj
				incumbent = xr
				haveIncumbent = true
			}
			continue
		}

		// Branch.
		xv := lpRes.X[branchVar]
		lo, hi := origLo[branchVar], origHi[branchVar]
		loNode := &node{bounds: appendBound(nd.bounds, boundChange{branchVar, lo, math.Floor(xv)}), bound: signAdjust(obj, opt.Maximize), depth: nd.depth + 1}
		hiNode := &node{bounds: appendBound(nd.bounds, boundChange{branchVar, math.Ceil(xv), hi}), bound: signAdjust(obj, opt.Maximize), depth: nd.depth + 1}
		heap.Push(queue, loNode)
		heap.Push(queue, hiNode)
	}

	res.Nodes = nodes
	res.Elapsed = time.Since(start)
	if haveIncumbent {
		res.X = incumbent
		if queue.Len() == 0 && !interrupted && !dropped && (opt.MaxNodes == 0 || nodes < opt.MaxNodes) &&
			(deadline.IsZero() || time.Now().Before(deadline)) {
			res.Status = Optimal
		} else {
			// A dropped node (LP pivot budget or interrupt) may hide a
			// better plan, so the incumbent is only Feasible, not proven.
			res.Status = Feasible
		}
		res.BestBound = res.Objective
		// Tighten the reported bound from the remaining open nodes.
		for _, nd := range *queue {
			b := nd.bound
			if !opt.Maximize {
				b = -b
			}
			if opt.Maximize && b > res.BestBound {
				res.BestBound = b
			}
			if !opt.Maximize && b < res.BestBound {
				res.BestBound = b
			}
		}
		return res, nil
	}
	// An emptied queue only proves infeasibility when the whole tree was
	// genuinely explored: an interrupt or a node dropped at its LP pivot
	// budget leaves the run inconclusive (Status stays Limit).
	if queue.Len() == 0 && !interrupted && !dropped {
		res.Status = Infeasible
	}
	return res, nil
}

// signAdjust stores bounds so the max-heap always pops the most promising
// node first regardless of the optimization direction.
func signAdjust(obj float64, maximize bool) float64 {
	if maximize {
		return obj
	}
	return -obj
}

func appendBound(bs []boundChange, bc boundChange) []boundChange {
	out := make([]boundChange, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = bc
	return out
}

// boundsOf extracts the current bounds of variable j from an lp.Problem.
// lp.Problem does not export its bounds, so the package keeps them here.
func boundsOf(p *lp.Problem, j int) (float64, float64) {
	return p.LowerBound(j), p.UpperBound(j)
}
