// Package ilp implements a parallel branch-and-bound solver for (mixed)
// integer linear programs on top of the simplex solver in package lp.
// Together the two packages replace the commercial solver used by the E-BLOW
// paper for the exact ILP formulations (3) and (7) and for the
// fast-ILP-convergence step of the 1D planner.
//
// The solver uses best-bound node selection, most-fractional branching and
// supports wall-clock and node-count limits, which matters because the exact
// OSP formulations are deliberately allowed to time out in the Table 5
// experiment (that is the point of the comparison).
//
// Node relaxations are evaluated by Options.Workers goroutines, each owning
// a private clone of the LP (see engine.go for the work-stealing round
// design). Status, Objective and Solution are bit-identical for every
// worker count; only the wall-clock time changes.
package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"eblow/internal/lp"
)

// Status describes the outcome of a branch-and-bound run.
type Status int

const (
	// Optimal means the incumbent is provably optimal (within Options.Gap).
	Optimal Status = iota
	// Feasible means a feasible integral incumbent was found but the search
	// stopped early (time or node limit).
	Feasible
	// Infeasible means no integral solution exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// Limit means a limit was hit before any integral solution was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an integer linear program: an LP plus integrality flags.
type Problem struct {
	LP      *lp.Problem
	Integer []bool
}

// NewBinaryProblem builds a problem where the listed variables are binary
// (integral with bounds [0,1]); the remaining variables stay continuous.
func NewBinaryProblem(p *lp.Problem, binaryVars []int) *Problem {
	integer := make([]bool, p.NumVars())
	for _, v := range binaryVars {
		integer[v] = true
		p.SetBounds(v, 0, 1)
	}
	return &Problem{LP: p, Integer: integer}
}

// Options controls the search.
type Options struct {
	// TimeLimit bounds the wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes (0 = no limit).
	MaxNodes int
	// Gap is the relative optimality gap at which the search stops
	// (default 1e-6).
	Gap float64
	// Maximize must match the LP objective sense. It defaults to true when
	// constructed through Maximize()/Minimize() helpers; Solve reads the
	// sense from this flag because lp.Problem does not expose it.
	Maximize bool
	// Workers is the number of goroutines evaluating node relaxations, each
	// on its own clone of the LP (0 = one per CPU, 1 = sequential). The
	// returned Status, Objective and Solution are bit-identical for every
	// worker count; Nodes may differ because a faster incumbent lets the
	// engine skip relaxations it would otherwise have evaluated.
	Workers int
	// RootBasis warm-starts the root relaxation (and, transitively, the
	// whole tree: every child node starts from its parent's optimal
	// basis). The basis is shared read-only and never mutated. Callers
	// that re-solve a drifting problem — the 1D planner's successive
	// rounding — pass the previous solve's basis here.
	RootBasis *lp.Basis
	// ColdLP disables warm starts: every node relaxation is solved from
	// scratch. The search trace is identical either way (the LP optimum
	// is basis-independent); this exists for benchmarking the warm-start
	// pivot savings and as an escape hatch.
	ColdLP bool
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes counts the fully evaluated nodes: relaxations that ran to a
	// conclusive LP status. Nodes pruned before or instead of evaluation,
	// and nodes whose simplex was cut off by a pivot budget or a
	// cancellation, do not count. For a fixed problem the count is
	// deterministic at Workers=1 (absent limits); across worker counts it
	// may differ even though the result never does.
	Nodes     int
	BestBound float64
	Elapsed   time.Duration
	// LPPivots sums the simplex iterations of every merged node
	// relaxation. Like Nodes it is deterministic at Workers=1; across
	// worker counts it may differ (skipped nodes never solve their LP)
	// even though the result never does.
	LPPivots int
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("ilp: invalid problem")

const intTol = 1e-6

// Solve runs parallel branch and bound. The LP inside p is used as a
// read-only template: every worker solves node relaxations on its own clone,
// so p is never mutated (callers may reuse it concurrently as long as they
// do not mutate it either). A done context stops the search like a time
// limit: the best incumbent found so far (if any) is returned with a
// Feasible/Limit status.
func Solve(ctx context.Context, p *Problem, opt Options) (*Result, error) {
	if p == nil || p.LP == nil || len(p.Integer) != p.LP.NumVars() {
		return nil, fmt.Errorf("%w: integrality flags do not match LP", ErrBadProblem)
	}
	if opt.Gap <= 0 {
		opt.Gap = 1e-6
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxBatch {
		// A round never evaluates more than maxBatch nodes, so extra workers
		// could never run — and each one costs a full LP clone up front. The
		// cap also keeps an absurd caller-supplied count (the job service
		// passes Params.Workers straight from the wire) from allocating
		// clones without bound.
		workers = maxBatch
	}
	start := time.Now()

	// Fold the wall-clock limit and the caller's context into one stop
	// channel that interrupts the per-worker simplex runs between pivots,
	// not just between nodes: a single node relaxation of a big formulation
	// can run for a long time, and cancellation should not wait it out.
	lpCtx := ctx
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		lpCtx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
	}
	done := lpCtx.Done()

	e := newEngine(p, opt, workers, done)

	sign := 1.0
	if !opt.Maximize {
		sign = -1
	}
	res := &Result{Status: Limit, Objective: sign * math.Inf(-1), BestBound: sign * math.Inf(1)}

	interrupted := false
	for e.queue.Len() > 0 && !e.rootUnbounded {
		if stopped(done) {
			interrupted = true
			break
		}
		limit := maxBatch
		if opt.MaxNodes > 0 {
			if remaining := opt.MaxNodes - e.nodes; remaining < limit {
				limit = remaining
			}
			if limit <= 0 {
				break
			}
		}
		batch := e.nextBatch(limit)
		if len(batch) == 0 {
			break // the incumbent pruned the whole frontier
		}
		results, errs, skipped := e.evaluate(batch, done)
		// Merge every slot in batch order even when interrupted mid-round:
		// results already paid for must not be thrown away, and the order
		// keeps the trace deterministic.
		for i, nd := range batch {
			if errs[i] != nil {
				return nil, errs[i]
			}
			switch {
			case skipped[i]:
				// Pruned against an incumbent published mid-round: the
				// strict bound comparison guarantees the merge would have
				// discarded the evaluated result too.
			case results[i] == nil:
				// Not evaluated before the stop fired: still an open node.
				heap.Push(&e.queue, nd)
				interrupted = true
			default:
				e.merge(nd, results[i])
			}
		}
	}

	res.Nodes = e.nodes
	res.LPPivots = e.lpIters
	res.Elapsed = time.Since(start)
	if e.rootUnbounded {
		res.Status = Unbounded
		return res, nil
	}
	if e.haveInc {
		res.X = e.incumbent
		res.Objective = e.incObj
		if e.queue.Len() == 0 && !interrupted && !e.dropped &&
			(opt.MaxNodes == 0 || e.nodes < opt.MaxNodes) {
			res.Status = Optimal
		} else {
			// A dropped node (LP pivot budget or interrupt) may hide a
			// better plan, so the incumbent is only Feasible, not proven.
			res.Status = Feasible
		}
		res.BestBound = res.Objective
		// Tighten the reported bound from the remaining open nodes.
		for _, nd := range e.queue {
			b := nd.bound
			if !opt.Maximize {
				b = -b
			}
			if opt.Maximize && b > res.BestBound {
				res.BestBound = b
			}
			if !opt.Maximize && b < res.BestBound {
				res.BestBound = b
			}
		}
		return res, nil
	}
	// An emptied queue only proves infeasibility when the whole tree was
	// genuinely explored: an interrupt or a node dropped at its LP pivot
	// budget leaves the run inconclusive (Status stays Limit).
	if e.queue.Len() == 0 && !interrupted && !e.dropped {
		res.Status = Infeasible
	}
	return res, nil
}
