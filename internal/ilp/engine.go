package ilp

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"eblow/internal/lp"
)

// The search core is a round-based parallel best-bound branch and bound.
//
// Determinism is the design constraint: ilp.Solve must return bit-identical
// Status/Objective/Solution for Workers=1 and Workers=N, because the planners
// above it promise worker-count-independent plans. Asynchronous work stealing
// alone cannot give that (which optimum is found first depends on timing), so
// the engine fixes the *search trace* instead and parallelizes only the pure
// part:
//
//   - The frontier is one global best-bound heap ordered by (bound, seq),
//     where seq is a node id assigned in deterministic merge order. Heap
//     content evolves only in the merge step, never concurrently.
//   - Each round pops a batch of open nodes (skipping ones the incumbent
//     already prunes). The batch size is a fixed constant — deliberately NOT
//     a function of Workers — so the set of LP relaxations evaluated per
//     round is identical for every worker count.
//   - The batch is dealt into per-worker deques; workers drain their own
//     deque and steal from the others when empty. Each worker solves its
//     node relaxations on a private lp.Problem clone (per-worker simplex
//     state; the Stop channel is shared so cancellation interrupts all of
//     them mid-pivot). LP solving is a pure function of the node, so WHO
//     evaluates a node cannot change WHAT it evaluates to.
//   - After a barrier, results are merged sequentially in batch (seq) order:
//     incumbent updates, pruning and branching replay exactly the sequential
//     decision sequence. The merge rule is deterministic — a candidate
//     replaces the incumbent only when its objective is strictly better, so
//     among equal-objective optima the earliest node in the fixed
//     (bound, seq) order wins.
//
// The incumbent objective is mirrored in an atomic so batch formation and
// any future in-round consumers read it lock-free; within a round it is
// frozen (workers never publish from the side), which is what keeps the
// trace worker-count independent.

// maxBatch is the number of open nodes evaluated per round. It trades
// parallelism (a round is the unit of fan-out, so it should comfortably
// exceed the worker count) against speculation (nodes evaluated in the same
// round cannot prune each other until the merge). It must stay independent
// of Options.Workers: the fixed batch size is what makes the search trace —
// and therefore the result — bit-identical for every worker count.
const maxBatch = 64

type node struct {
	seq    uint64 // deterministic id, assigned in merge order
	bounds []boundChange
	bound  float64 // LP relaxation value at the parent (sign-adjusted, optimistic)
	depth  int
	// basis is the parent relaxation's optimal basis (nil at a cold
	// root). A child differs from its parent by one bound, so the parent
	// basis is dual-feasible for the child and the warm re-solve needs a
	// handful of dual pivots instead of a full cold solve. The pointer is
	// shared between siblings and never mutated.
	basis *lp.Basis
}

type boundChange struct {
	v      int
	lo, hi float64
}

// nodeQueue is a max-heap on the optimistic bound (bounds are stored
// pre-negated for minimization so max-heap is always right), with ties going
// to the earlier node id. The seq tiebreak pins the pop order completely,
// which the deterministic merge relies on.
type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound > q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// engine is the working state of one branch-and-bound run.
type engine struct {
	p   *Problem
	opt Options
	n   int

	origLo, origHi []float64
	clones         []*lp.Problem // per-worker simplex state

	queue   nodeQueue
	nextSeq uint64

	incumbent []float64
	incObj    float64
	haveInc   bool
	// incBound mirrors the sign-adjusted incumbent objective for lock-free
	// reads (math.Inf(-1) until an incumbent exists).
	incBound atomic.Value

	nodes         int // fully evaluated nodes (conclusive LP status)
	lpIters       int // simplex pivots across merged node relaxations
	dropped       bool
	rootUnbounded bool
}

func newEngine(p *Problem, opt Options, workers int, stop <-chan struct{}) *engine {
	n := p.LP.NumVars()
	e := &engine{p: p, opt: opt, n: n}
	e.origLo = make([]float64, n)
	e.origHi = make([]float64, n)
	for j := 0; j < n; j++ {
		e.origLo[j] = p.LP.LowerBound(j)
		e.origHi[j] = p.LP.UpperBound(j)
	}
	// Per-worker clones instead of the historical mutate-and-restore of the
	// caller's problem: each worker owns its bounds, the caller's lp.Problem
	// is never touched, and the shared Stop channel interrupts every clone.
	e.clones = make([]*lp.Problem, workers)
	for w := range e.clones {
		e.clones[w] = p.LP.Clone()
		e.clones[w].Stop = stop
	}
	e.incBound.Store(math.Inf(-1))
	root := &node{seq: 0, bound: math.Inf(1)}
	if !opt.ColdLP {
		root.basis = opt.RootBasis
	}
	heap.Push(&e.queue, root)
	e.nextSeq = 1
	return e
}

// prunable reports whether the incumbent already rules the node out, within
// the relative optimality gap (bound is sign-adjusted).
func (e *engine) prunable(bound float64) bool {
	if !e.haveInc || math.IsInf(bound, 1) {
		return false
	}
	if e.opt.Maximize {
		return bound <= e.incObj+e.opt.Gap*math.Abs(e.incObj)+1e-9
	}
	return -bound >= e.incObj-e.opt.Gap*math.Abs(e.incObj)-1e-9
}

// better reports whether objective a strictly beats b in the problem sense.
func (e *engine) better(a, b float64) bool {
	if e.opt.Maximize {
		return a > b+1e-12
	}
	return a < b-1e-12
}

// nextBatch pops up to limit non-prunable open nodes, in the deterministic
// (bound, seq) frontier order.
func (e *engine) nextBatch(limit int) []*node {
	var batch []*node
	for len(batch) < limit && e.queue.Len() > 0 {
		nd := heap.Pop(&e.queue).(*node)
		if e.prunable(nd.bound) {
			continue
		}
		batch = append(batch, nd)
	}
	return batch
}

// solveNode solves the node's LP relaxation on the given per-worker clone:
// reset to the root bounds, apply the node's branching decisions, solve —
// warm-started from the parent's basis unless Options.ColdLP. The node's
// relaxation is a pure function of (bounds, parent basis), and bases
// propagate through the deterministic merge order, so the search trace is
// bit-identical at every worker count. Warm vs cold agreement (same
// objective always; same vertex on the golden families) is gated by the
// warm-start tests — see docs/INVARIANTS.md.
func (e *engine) solveNode(clone *lp.Problem, nd *node) (*lp.Result, error) {
	for j := 0; j < e.n; j++ {
		clone.SetBounds(j, e.origLo[j], e.origHi[j])
	}
	for _, bc := range nd.bounds {
		clone.SetBounds(bc.v, bc.lo, bc.hi)
	}
	if e.opt.ColdLP {
		return lp.Solve(clone)
	}
	return lp.SolveWarm(clone, nd.basis)
}

// deque is one worker's share of a round: a contiguous slice of batch
// indexes drained through an atomic cursor, so idle workers can steal the
// remainder of a busy worker's deque without locks.
type deque struct {
	lo, hi int
	next   atomic.Int64 // offset from lo of the next unclaimed index
}

// take claims the next batch index of the deque, returning ok=false once it
// is drained. Owner and thieves share the same claim path, so every index is
// evaluated exactly once.
func (d *deque) take() (int, bool) {
	pos := d.lo + int(d.next.Add(1)) - 1
	if pos >= d.hi {
		return 0, false
	}
	return pos, true
}

// skipLive reports whether a freshly published incumbent already dominates
// the node, so its LP relaxation need not be solved at all. The comparison
// is deliberately strict (no gap, no epsilon): a strictly smaller bound
// guarantees the deterministic merge would prune the node's result anyway
// (see evalNode), so skipping cannot change Status/Objective/Solution — it
// only saves the simplex run. Within a round this is what keeps pruning
// aggressive across workers: one worker's incumbent kills the queued nodes
// of all the others.
func (e *engine) skipLive(nd *node) bool {
	return nd.bound < e.incBound.Load().(float64)
}

// publish lifts the shared atomic incumbent bound to adj if it improves it.
func (e *engine) publish(adj float64) {
	for {
		cur := e.incBound.Load().(float64)
		if adj <= cur {
			return
		}
		if e.incBound.CompareAndSwap(cur, adj) {
			return
		}
	}
}

// integral reports whether x satisfies every integrality flag.
func (e *engine) integral(x []float64) bool {
	for j, isInt := range e.p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if math.Min(f, 1-f) > intTol {
			return false
		}
	}
	return true
}

// evalNode solves one batch slot on the given clone: it either skips the
// node against the live incumbent bound (skipped[idx]) or solves its LP and,
// when the relaxation comes back integral, publishes the objective so the
// other workers start skipping immediately.
func (e *engine) evalNode(clone *lp.Problem, batch []*node, idx int, results []*lp.Result, errs []error, skipped []bool) {
	if e.skipLive(batch[idx]) {
		skipped[idx] = true
		return
	}
	res, err := e.solveNode(clone, batch[idx])
	results[idx], errs[idx] = res, err
	if err == nil && res.Status == lp.Optimal && e.integral(res.X) {
		e.publish(signAdjust(res.Objective, e.opt.Maximize))
	}
}

// evaluate solves the LP relaxation of every batch node, spreading the work
// over the per-worker deques with stealing. Slot i of every output slice
// belongs to batch[i] alone; a slot with nil result and skipped false means
// the node was not evaluated because the stop channel fired first (the
// caller re-enqueues it).
func (e *engine) evaluate(batch []*node, stop <-chan struct{}) ([]*lp.Result, []error, []bool) {
	results := make([]*lp.Result, len(batch))
	errs := make([]error, len(batch))
	skipped := make([]bool, len(batch))
	workers := len(e.clones)
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i := range batch {
			if stopped(stop) {
				break
			}
			e.evalNode(e.clones[0], batch, i, results, errs, skipped)
		}
		return results, errs, skipped
	}

	// Deal the batch into contiguous per-worker deques (cache-friendly and
	// deterministic, though the assignment does not matter for results).
	deques := make([]*deque, workers)
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		deques[w] = &deque{lo: lo, hi: hi}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := e.clones[w]
			for {
				if stopped(stop) {
					return
				}
				idx, ok := deques[w].take()
				if !ok {
					// Own deque drained: steal from the other workers'
					// deques until every one is empty.
					for off := 1; off < workers && !ok; off++ {
						idx, ok = deques[(w+off)%workers].take()
					}
					if !ok {
						return
					}
				}
				e.evalNode(clone, batch, idx, results, errs, skipped)
			}
		}(w)
	}
	wg.Wait()
	return results, errs, skipped
}

// merge folds one evaluated node into the search state: count it, prune or
// branch, and update the incumbent under the deterministic merge rule
// (strictly better objective wins; equal objectives keep the incumbent of
// the earlier node in (bound, seq) order). Callers invoke merge in batch
// order, which makes the whole search trace worker-count independent.
func (e *engine) merge(nd *node, lpRes *lp.Result) {
	e.lpIters += lpRes.Iters
	switch lpRes.Status {
	case lp.Infeasible:
		e.nodes++
		return
	case lp.Unbounded:
		e.nodes++
		if nd.depth == 0 {
			e.rootUnbounded = true
		}
		return
	case lp.IterationLimit:
		// The node hit its pivot budget (or a cancellation interrupted the
		// simplex): it was not fully evaluated, so it does not count, and
		// the subtree it guards is lost — the final status can no longer
		// claim a proof.
		e.dropped = true
		return
	}
	e.nodes++

	obj := lpRes.Objective
	// Prune against the incumbent as of this merge slot: a node evaluated
	// speculatively in the same round as a better incumbent dies here, just
	// as it would have died before evaluation in a purely sequential run.
	if e.haveInc && !e.better(obj, e.incObj) {
		return
	}

	// Find the most fractional integer variable.
	branchVar := -1
	bestFrac := intTol
	for j := 0; j < e.n; j++ {
		if !e.p.Integer[j] {
			continue
		}
		f := lpRes.X[j] - math.Floor(lpRes.X[j])
		dist := math.Min(f, 1-f)
		if dist > bestFrac {
			bestFrac = dist
			branchVar = j
		}
	}

	if branchVar < 0 {
		// Integral solution strictly better than the incumbent: accept.
		xr := make([]float64, e.n)
		for j := 0; j < e.n; j++ {
			if e.p.Integer[j] {
				xr[j] = math.Round(lpRes.X[j])
			} else {
				xr[j] = lpRes.X[j]
			}
		}
		e.incumbent = xr
		e.incObj = obj
		e.haveInc = true
		e.incBound.Store(signAdjust(obj, e.opt.Maximize))
		return
	}

	// Branch; children get their deterministic ids in merge order and
	// share their parent's optimal basis as the warm start (nil when the
	// backend does not produce one or ColdLP is set).
	xv := lpRes.X[branchVar]
	lo, hi := e.origLo[branchVar], e.origHi[branchVar]
	b := signAdjust(obj, e.opt.Maximize)
	var wb *lp.Basis
	if !e.opt.ColdLP {
		wb = lpRes.Basis
	}
	loNode := &node{seq: e.nextSeq, bounds: appendBound(nd.bounds, boundChange{branchVar, lo, math.Floor(xv)}), bound: b, depth: nd.depth + 1, basis: wb}
	hiNode := &node{seq: e.nextSeq + 1, bounds: appendBound(nd.bounds, boundChange{branchVar, math.Ceil(xv), hi}), bound: b, depth: nd.depth + 1, basis: wb}
	e.nextSeq += 2
	heap.Push(&e.queue, loNode)
	heap.Push(&e.queue, hiNode)
}

// stopped polls a stop channel without blocking.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// signAdjust stores bounds so the max-heap always pops the most promising
// node first regardless of the optimization direction.
func signAdjust(obj float64, maximize bool) float64 {
	if maximize {
		return obj
	}
	return -obj
}

func appendBound(bs []boundChange, bc boundChange) []boundChange {
	out := make([]boundChange, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = bc
	return out
}
