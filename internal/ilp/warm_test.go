package ilp

import (
	"context"
	"fmt"
	"testing"
)

// Warm starts must never change what the solver returns — only how many
// pivots it spends getting there. Every (warm|cold) x (worker count)
// combination solves to bit-identical status, objective and solution (run
// under -race in CI).
func TestWarmColdWorkersBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 6 + int(seed)%8
		prob := randomBinaryProgram(seed, n, 3)
		ref, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, cold := range []bool{false, true} {
			for _, workers := range []int{1, 2, 4, 8} {
				got, err := Solve(context.Background(), prob, Options{
					Maximize: true, Workers: workers, ColdLP: cold,
				})
				if err != nil {
					t.Fatal(err)
				}
				identicalResults(t, ref, got, fmt.Sprintf("seed %d cold=%v workers=%d", seed, cold, workers))
			}
		}
	}
}

// The point of handing each child its parent's basis: across a spread of
// branch-and-bound trees the warm runs must spend strictly fewer total
// simplex pivots than the cold runs. Aggregated over the seeds so a single
// degenerate tree cannot flake the assertion; Workers=1 keeps LPPivots
// deterministic.
func TestWarmStartSavesPivots(t *testing.T) {
	var warmTotal, coldTotal int
	for seed := int64(1); seed <= 12; seed++ {
		n := 8 + int(seed)%8
		prob := randomBinaryProgram(seed, n, 4)
		warm, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(context.Background(), prob, Options{Maximize: true, Workers: 1, ColdLP: true})
		if err != nil {
			t.Fatal(err)
		}
		warmTotal += warm.LPPivots
		coldTotal += cold.LPPivots
	}
	if warmTotal >= coldTotal {
		t.Errorf("warm starts spent %d pivots, cold %d; expected strict savings", warmTotal, coldTotal)
	}
	t.Logf("warm %d pivots vs cold %d (%.1f%%)", warmTotal, coldTotal, 100*float64(warmTotal)/float64(coldTotal))
}
