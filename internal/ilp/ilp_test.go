package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"eblow/internal/lp"
)

func TestKnapsackILP(t *testing.T) {
	// maximize 10a + 13b + 14c, 3a + 4b + 5c <= 7, binary.
	// Brute force: {a,b}=23 weight 7 is optimal.
	p := lp.NewProblem(3)
	p.SetObjective([]float64{10, 13, 14}, true)
	p.AddDense([]float64{3, 4, 5}, lp.LE, 7)
	prob := NewBinaryProblem(p, []int{0, 1, 2})
	res, err := Solve(context.Background(), prob, Options{Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-23) > 1e-6 {
		t.Errorf("objective = %v, want 23", res.Objective)
	}
	if math.Round(res.X[0]) != 1 || math.Round(res.X[1]) != 1 || math.Round(res.X[2]) != 0 {
		t.Errorf("X = %v, want [1 1 0]", res.X)
	}
}

func TestMinimizationILP(t *testing.T) {
	// Set-cover style: minimize a + b + c with a + b >= 1, b + c >= 1, a + c >= 1.
	// Optimum 2.
	p := lp.NewProblem(3)
	p.SetObjective([]float64{1, 1, 1}, false)
	p.AddDense([]float64{1, 1, 0}, lp.GE, 1)
	p.AddDense([]float64{0, 1, 1}, lp.GE, 1)
	p.AddDense([]float64{1, 0, 1}, lp.GE, 1)
	prob := NewBinaryProblem(p, []int{0, 1, 2})
	res, err := Solve(context.Background(), prob, Options{Maximize: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.AddDense([]float64{1, 1}, lp.GE, 3) // impossible for two binaries
	prob := NewBinaryProblem(p, []int{0, 1})
	res, err := Solve(context.Background(), prob, Options{Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedILP(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective([]float64{1}, true)
	prob := &Problem{LP: p, Integer: []bool{false}}
	res, err := Solve(context.Background(), prob, Options{Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestMixedIntegerProblem(t *testing.T) {
	// maximize x + 10y, x continuous in [0, 2.5], y binary, x + 4y <= 5.
	// y=1 -> x <= 1 -> obj 11; y=0 -> x=2.5 -> 2.5. Optimum 11.
	p := lp.NewProblem(2)
	p.SetObjective([]float64{1, 10}, true)
	p.SetBounds(0, 0, 2.5)
	p.AddDense([]float64{1, 4}, lp.LE, 5)
	prob := NewBinaryProblem(p, []int{1})
	res, err := Solve(context.Background(), prob, Options{Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-11) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal 11", res.Status, res.Objective)
	}
}

func TestTimeLimitReturnsQuickly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 24
	p := lp.NewProblem(n)
	obj := make([]float64, n)
	w := make([]float64, n)
	var total float64
	for i := range obj {
		obj[i] = 1 + rng.Float64()*100
		w[i] = 1 + rng.Float64()*100
		total += w[i]
	}
	p.SetObjective(obj, true)
	p.AddDense(w, lp.LE, total/2)
	// A second correlated constraint to make the search tree non-trivial.
	w2 := make([]float64, n)
	for i := range w2 {
		w2[i] = w[i] + rng.Float64()*10
	}
	p.AddDense(w2, lp.LE, total/2)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	prob := NewBinaryProblem(p, vars)
	start := time.Now()
	res, err := Solve(context.Background(), prob, Options{Maximize: true, TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("time limit not respected: took %v", time.Since(start))
	}
	if res.Status != Optimal && res.Status != Feasible && res.Status != Limit {
		t.Errorf("unexpected status %v", res.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	p := lp.NewProblem(3)
	p.SetObjective([]float64{2, 3, 4}, true)
	p.AddDense([]float64{1, 1, 1}, lp.LE, 1.5)
	prob := NewBinaryProblem(p, []int{0, 1, 2})
	res, err := Solve(context.Background(), prob, Options{Maximize: true, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 1 {
		t.Errorf("explored %d nodes with MaxNodes=1", res.Nodes)
	}
}

func TestBadProblem(t *testing.T) {
	if _, err := Solve(context.Background(), &Problem{LP: lp.NewProblem(2), Integer: []bool{true}}, Options{}); err == nil {
		t.Error("expected error for mismatched integrality flags")
	}
	if _, err := Solve(context.Background(), nil, Options{}); err == nil {
		t.Error("expected error for nil problem")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, Infeasible, Unbounded, Limit} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if Status(42).String() == "" {
		t.Error("fallback status string empty")
	}
}

// bruteForceBinary enumerates all 0/1 assignments and returns the best
// objective of a feasible one (ok=false when none is feasible).
func bruteForceBinary(obj []float64, rows [][]float64, rhs []float64, maximize bool) (float64, bool) {
	n := len(obj)
	best := 0.0
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		feasible := true
		for r := range rows {
			dot := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					dot += rows[r][j]
				}
			}
			if dot > rhs[r]+1e-9 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		val := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				val += obj[j]
			}
		}
		if !found || (maximize && val > best) || (!maximize && val < best) {
			best = val
			found = true
		}
	}
	return best, found
}

// Property: branch and bound matches brute force on random small binary
// programs with <= constraints (always feasible because 0 is feasible).
func TestRandomBinaryProgramsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(4)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(40) + 1)
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		p := lp.NewProblem(n)
		p.SetObjective(obj, true)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			var sum float64
			for j := 0; j < n; j++ {
				rows[i][j] = float64(rng.Intn(10))
				sum += rows[i][j]
			}
			rhs[i] = math.Floor(sum * (0.2 + 0.6*rng.Float64()))
			p.AddDense(rows[i], lp.LE, rhs[i])
		}
		vars := make([]int, n)
		for j := range vars {
			vars[j] = j
		}
		prob := NewBinaryProblem(p, vars)
		res, err := Solve(context.Background(), prob, Options{Maximize: true})
		if err != nil || res.Status != Optimal {
			return false
		}
		want, ok := bruteForceBinary(obj, rows, rhs, true)
		if !ok {
			return false
		}
		return math.Abs(res.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
