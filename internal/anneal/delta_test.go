package anneal

import (
	"context"
	"math/rand"
	"testing"
)

// vecState is a toy quadratic state: cost is the sum of squared deviations
// of a permutation-free integer vector from zero; a move bumps one slot.
type vecState struct {
	v    []int
	last int
}

func newVecState(n int, seed int64) *vecState {
	rng := rand.New(rand.NewSource(seed))
	v := make([]int, n)
	for i := range v {
		v[i] = rng.Intn(21) - 10
	}
	return &vecState{v: v}
}

func (s *vecState) Cost() float64 {
	c := 0.0
	for _, x := range s.v {
		c += float64(x * x)
	}
	return c
}

func (s *vecState) Perturb(rng *rand.Rand) func() {
	i := rng.Intn(len(s.v))
	d := 1
	if rng.Intn(2) == 0 {
		d = -1
	}
	s.v[i] += d
	s.last = i
	return func() { s.v[i] -= d }
}

func (s *vecState) Snapshot() interface{} { return append([]int(nil), s.v...) }

func (s *vecState) Restore(v interface{}) { copy(s.v, v.([]int)) }

// deltaVecState layers the DeltaState fast path on top of vecState,
// consuming the same random draws and returning the same costs.
type deltaVecState struct {
	vecState
}

func (s *deltaVecState) PerturbCost(rng *rand.Rand) (float64, func()) {
	undo := s.Perturb(rng)
	return s.Cost(), undo
}

// TestDeltaStateMatchesPlain runs the engine on the plain and the
// delta-aware version of the same state with the same seed: the trajectories
// must be bit-identical (same moves, acceptances, best cost and final
// state), proving the fused PerturbCost path changes nothing but the number
// of evaluation calls.
func TestDeltaStateMatchesPlain(t *testing.T) {
	opt := Options{Seed: 9, InitialTemp: 30, FinalTemp: 0.5, MovesPerTemp: 50}
	plain := newVecState(40, 4)
	delta := &deltaVecState{vecState: *newVecState(40, 4)}

	resPlain := Minimize(context.Background(), plain, opt)
	resDelta := Minimize(context.Background(), delta, opt)

	if resPlain.BestCost != resDelta.BestCost ||
		resPlain.Moves != resDelta.Moves ||
		resPlain.Accepted != resDelta.Accepted {
		t.Fatalf("trajectories diverged: plain %+v delta %+v", resPlain, resDelta)
	}
	for i := range plain.v {
		if plain.v[i] != delta.v[i] {
			t.Fatalf("final states differ at %d: %d vs %d", i, plain.v[i], delta.v[i])
		}
	}
}
