package anneal

import (
	"context"
	"testing"
	"time"
)

func TestMinimizeCancelledContextStopsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &quadState{x: make([]int, 100), target: make([]int, 100)}
	for i := range s.target {
		s.target[i] = 1000
	}
	start := time.Now()
	res := Minimize(ctx, s, Options{Seed: 5, InitialTemp: 1e6, FinalTemp: 1e-9, MovesPerTemp: 100000, Cooling: 0.999999})
	if res.Moves != 0 {
		t.Errorf("cancelled run still proposed %d moves", res.Moves)
	}
	if res.BestCost != res.InitialCost {
		t.Error("cancelled run should report the initial state as best")
	}
	if time.Since(start) > time.Second {
		t.Errorf("cancelled run took %s", time.Since(start))
	}
}

func TestMultiStartDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		runs := MultiStart(context.Background(), func(r int) State {
			return &quadState{x: make([]int, 6), target: []int{5, -3, 7, 0, 2, -8}}
		}, 5, workers, Options{Seed: 11, InitialTemp: 50, FinalTemp: 0.01, MovesPerTemp: 100, Cooling: 0.9})
		costs := make([]float64, len(runs))
		for i, r := range runs {
			costs[i] = r.Result.BestCost
		}
		return costs
	}
	a, b := run(1), run(4)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("expected 5 runs, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("restart %d cost differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMultiStartDistinctSeedsExploreDifferently(t *testing.T) {
	runs := MultiStart(context.Background(), func(r int) State {
		return &quadState{x: make([]int, 8), target: []int{50, 50, 50, 50, 50, 50, 50, 50}}
	}, 4, 2, Options{Seed: 1, InitialTemp: 10, FinalTemp: 1, MovesPerTemp: 20})
	distinct := map[float64]bool{}
	for _, r := range runs {
		distinct[r.Result.BestCost] = true
	}
	if len(distinct) < 2 {
		t.Error("all restarts converged identically; seeds are probably shared")
	}
}
